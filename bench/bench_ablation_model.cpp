/// Ablations of the population-model design choices DESIGN.md §4 calls out.
/// Each variant reruns the full controlled study with one mechanism
/// disabled and reports the paper results that depend on it:
///
///   no-surprise   frog-in-the-pot penalty = 0  -> the §3.3.5 ramp/step
///                 effect and Fig 9's high step-discomfort counts collapse;
///   no-noise      noise-floor hazards = 0      -> blank discomfort
///                 vanishes and the Quake/IE cells lose their low-level
///                 CDF mass (Fig 9 / Fig 15);
///   no-skill      skill loadings = 0           -> Fig 17's group
///                 differences disappear (tested at 330 users for power);
///   no-correlation shared sensitivity loading = 0 -> per-cell marginals
///                 are unchanged (copula property) but users are no longer
///                 consistently tolerant/sensitive across cells.

#include <cstdio>

#include "analysis/breakdown.hpp"
#include "analysis/consistency.hpp"
#include "analysis/dynamics.hpp"
#include "analysis/skill_report.hpp"
#include "common.hpp"
#include "study/paper_constants.hpp"
#include "util/table.hpp"

namespace {

struct VariantReport {
  std::string name;
  double ramp_step_frac = 0.0;
  double ramp_step_diff = 0.0;
  std::size_t quake_blank_df = 0;
  std::size_t step_df_ppt_cpu = 0;
  std::optional<double> quake_cpu_c05;
  std::size_t skill_rows_330 = 0;
  double consistency = 0.0;
  uucs::engine::EngineStats engine;
};

VariantReport run_variant(const std::string& name,
                          uucs::study::PopulationParams params,
                          std::size_t jobs) {
  using namespace uucs;
  study::ControlledStudyConfig config;
  config.jobs = jobs;
  const auto out = study::run_controlled_study(config, params);

  VariantReport report;
  report.name = name;
  const auto cmp = analysis::compare_ramp_vs_step(
      out.results, sim::Task::kPowerpoint, Resource::kCpu);
  report.ramp_step_frac = cmp.frac_ramp_higher;
  report.ramp_step_diff = cmp.mean_difference;

  const auto quake = analysis::compute_breakdown(out.results, "quake");
  report.quake_blank_df = quake.blank_discomforted;

  for (const auto& run : out.results.records()) {
    if (run.task == "powerpoint" && run.discomforted &&
        analysis::is_step_run(run, Resource::kCpu)) {
      ++report.step_df_ppt_cpu;
    }
  }
  report.quake_cpu_c05 =
      analysis::compute_cell(out.results, "quake", Resource::kCpu).c05;

  study::ControlledStudyConfig big = config;
  big.participants = 330;
  big.seed = 777;
  const auto big_out = study::run_controlled_study(big, params);
  report.skill_rows_330 =
      analysis::significant_skill_differences(big_out.results, 0.01).size();
  const auto consistency = analysis::user_consistency(big_out.results);
  report.consistency = consistency.valid ? consistency.spearman : 0.0;
  report.engine = out.engine;
  report.engine.merge(big_out.engine);
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace uucs;
  const std::size_t jobs = bench::parse_jobs(argc, argv);
  const auto base_params = study::calibrate_population();

  std::printf("=== population-model ablations (full study rerun per variant) ===\n");

  std::vector<VariantReport> reports;
  reports.push_back(run_variant("full-model", base_params, jobs));

  {
    auto p = base_params;
    p.surprise_penalty = 0.0;
    reports.push_back(run_variant("no-surprise", p, jobs));
  }
  {
    auto p = base_params;
    p.noise_rates = {0.0, 0.0, 0.0, 0.0};
    reports.push_back(run_variant("no-noise", p, jobs));
  }
  {
    auto p = base_params;
    for (auto& row : p.skill_loadings) row = {0.0, 0.0, 0.0};
    reports.push_back(run_variant("no-skill", p, jobs));
  }
  {
    auto p = base_params;
    p.sensitivity_loading = 0.0;
    reports.push_back(run_variant("no-correlation", p, jobs));
  }

  TextTable t;
  t.set_header({"variant", "ramp>step frac", "ramp-step diff", "ppt/cpu step df",
                "quake blank df", "quake/cpu c05", "fig17 rows@330",
                "user consistency"});
  for (const auto& r : reports) {
    t.add_row({r.name, strprintf("%.2f", r.ramp_step_frac),
               strprintf("%.3f", r.ramp_step_diff),
               std::to_string(r.step_df_ppt_cpu),
               std::to_string(r.quake_blank_df),
               r.quake_cpu_c05 ? strprintf("%.2f", *r.quake_cpu_c05)
                               : std::string("*"),
               std::to_string(r.skill_rows_330),
               strprintf("%.2f", r.consistency)});
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "\npaper anchors: ramp>step frac 0.96, diff 0.22; quake blank df 19; "
      "quake/cpu c05 0.18; Fig 17 has 6 rows.\n"
      "expected: each mechanism's column collapses when it is disabled and "
      "only then. Exceptions by design: residual fig17 rows under no-skill "
      "are the multiple-testing false-positive rate (144 tests at "
      "alpha=0.01), and user consistency is fed by BOTH correlation "
      "mechanisms (shared sensitivity and shared expertise), so it halves "
      "under either ablation rather than vanishing under one.\n");
  engine::EngineStats total;
  for (const auto& r : reports) total.merge(r.engine);
  std::printf("\n%s", total.summary().render().c_str());
  return 0;
}
