/// Extension experiment for the paper's question 2: "How does the level
/// depend on which resource or COMBINATION of resources is borrowed?" The
/// controlled study only ran single-resource testcases; here the same
/// calibrated users face combined CPU+memory+disk ramps (each resource
/// ramping to the Fig 8 maximum it had alone) and we measure how much the
/// discomfort rate rises and which resource triggers first per task.
///
/// Expected shape: combined borrowing discomforts at least as often as the
/// worst single resource (first-crossing union), and the triggering
/// resource distribution follows each task's sensitivity profile from
/// Fig 13 (CPU for Quake/PPT, disk gaining share for IE).

#include <cstdio>
#include <map>

#include "common.hpp"
#include "sim/host_model.hpp"
#include "study/paper_constants.hpp"
#include "study/population.hpp"
#include "util/table.hpp"

int main() {
  using namespace uucs;
  const auto params = study::calibrate_population();
  Rng root(1234);
  Rng pop_rng = root.fork(1);
  const auto users = study::generate_population(params, 200, pop_rng);

  const sim::HostModel host(HostSpec::paper_study_machine());
  sim::RunSimulator simulator(
      host, {params.noise_rates[0], params.noise_rates[1], params.noise_rates[2],
             params.noise_rates[3]});
  simulator.set_nonblank_noise_scale(params.nonblank_noise_scale);

  bench::heading("question 2 extension: combined-resource borrowing (200 users)");
  TextTable t;
  t.set_header({"Task", "fd worst single", "fd combined", "trigger cpu/mem/disk",
                "noise"});
  for (sim::Task task : sim::kAllTasks) {
    // The combined testcase: all three Fig 8 ramps at once.
    Testcase combined("combined-" + sim::task_name(task));
    for (Resource r : kStudyResources) {
      combined.set_function(
          r, make_ramp(study::ramp_max(task, r), study::kRunDuration));
    }

    double worst_single = 0.0;
    for (Resource r : kStudyResources) {
      Testcase single("single-" + resource_name(r));
      single.set_function(
          r, make_ramp(study::ramp_max(task, r), study::kRunDuration));
      std::size_t df = 0;
      Rng rng = root.fork(100 + static_cast<std::size_t>(task) * 8 +
                          static_cast<std::size_t>(r));
      for (const auto& user : users) {
        if (simulator.simulate(user, task, single, rng).discomforted) ++df;
      }
      worst_single =
          std::max(worst_single, static_cast<double>(df) / users.size());
    }

    std::size_t df = 0, noise = 0;
    std::map<Resource, std::size_t> trigger;
    Rng rng = root.fork(200 + static_cast<std::size_t>(task));
    for (const auto& user : users) {
      const auto outcome = simulator.simulate(user, task, combined, rng);
      if (!outcome.discomforted) continue;
      ++df;
      if (outcome.noise_triggered) {
        ++noise;
      } else if (outcome.trigger) {
        ++trigger[*outcome.trigger];
      }
    }
    t.add_row({sim::task_display_name(task), bench::fmt(worst_single),
               bench::fmt(static_cast<double>(df) / users.size()),
               strprintf("%zu/%zu/%zu", trigger[Resource::kCpu],
                         trigger[Resource::kMemory], trigger[Resource::kDisk]),
               std::to_string(noise)});
  }
  std::printf("%s", t.render().c_str());
  std::printf("\n(each combined run borrows all three resources on the Fig 8 "
              "ramps simultaneously; discomfort fires at the first threshold "
              "crossed)\n");
  return 0;
}
