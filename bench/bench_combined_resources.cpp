/// Extension experiment for the paper's question 2: "How does the level
/// depend on which resource or COMBINATION of resources is borrowed?" The
/// controlled study only ran single-resource testcases; here the same
/// calibrated users face combined CPU+memory+disk ramps (each resource
/// ramping to the Fig 8 maximum it had alone) and we measure how much the
/// discomfort rate rises and which resource triggers first per task.
///
/// Expected shape: combined borrowing discomforts at least as often as the
/// worst single resource (first-crossing union), and the triggering
/// resource distribution follows each task's sensitivity profile from
/// Fig 13 (CPU for Quake/PPT, disk gaining share for IE).

#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>

#include "common.hpp"
#include "engine/session_engine.hpp"
#include "sim/host_model.hpp"
#include "study/paper_constants.hpp"
#include "study/population.hpp"
#include "util/rng_streams.hpp"
#include "util/table.hpp"

namespace {

/// One experiment cell: a task facing either one resource's Fig 8 ramp or
/// all three at once. Each cell runs as one engine job with its pre-forked
/// stream; cells are declared in the historical fork order (per task: the
/// three single-resource cells, then the combined cell).
struct Cell {
  uucs::sim::Task task;
  std::optional<uucs::Resource> single;  ///< nullopt = combined cell
  uucs::Rng rng;
};

struct CellResult {
  std::size_t df = 0;
  std::size_t noise = 0;
  std::map<uucs::Resource, std::size_t> trigger;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace uucs;
  const std::size_t jobs = bench::parse_jobs(argc, argv);

  const auto params = study::calibrate_population();
  Rng root(1234);
  Rng pop_rng = root.fork(streams::kBenchPopulation);
  const auto users = study::generate_population(params, 200, pop_rng);

  const sim::HostModel host(HostSpec::paper_study_machine());
  const sim::RunSimulator simulator(
      host,
      {params.noise_rates[0], params.noise_rates[1], params.noise_rates[2],
       params.noise_rates[3]},
      params.nonblank_noise_scale);

  std::vector<Cell> cells;
  for (sim::Task task : sim::kAllTasks) {
    const auto ti = static_cast<std::size_t>(task);
    for (Resource r : kStudyResources) {
      cells.push_back(Cell{task, r,
                           root.fork(streams::bench_single(
                               ti, static_cast<std::size_t>(r)))});
    }
    cells.push_back(Cell{task, std::nullopt, root.fork(streams::bench_combined(ti))});
  }

  engine::SessionEngine eng(engine::EngineConfig{jobs});
  const std::vector<CellResult> results = eng.map<CellResult>(
      cells.size(), [&](engine::JobContext& ctx) {
        Cell& cell = cells[ctx.index()];
        Testcase tc(cell.single
                        ? "single-" + resource_name(*cell.single)
                        : "combined-" + sim::task_name(cell.task));
        for (Resource r : kStudyResources) {
          if (cell.single && r != *cell.single) continue;
          tc.set_function(
              r, make_ramp(study::ramp_max(cell.task, r), study::kRunDuration));
        }
        CellResult out;
        for (const auto& user : users) {
          const auto outcome = simulator.simulate(user, cell.task, tc, cell.rng);
          if (!outcome.discomforted) continue;
          ++out.df;
          if (outcome.noise_triggered) {
            ++out.noise;
          } else if (outcome.trigger) {
            ++out.trigger[*outcome.trigger];
          }
        }
        ctx.count_runs(users.size());
        return out;
      });

  bench::heading("question 2 extension: combined-resource borrowing (200 users)");
  TextTable t;
  t.set_header({"Task", "fd worst single", "fd combined", "trigger cpu/mem/disk",
                "noise"});
  const std::size_t cells_per_task = kStudyResources.size() + 1;
  for (sim::Task task : sim::kAllTasks) {
    const std::size_t base = static_cast<std::size_t>(task) * cells_per_task;
    double worst_single = 0.0;
    for (std::size_t s = 0; s < kStudyResources.size(); ++s) {
      worst_single = std::max(
          worst_single, static_cast<double>(results[base + s].df) / users.size());
    }
    const CellResult& combined = results[base + kStudyResources.size()];
    auto trigger = combined.trigger;
    t.add_row({sim::task_display_name(task), bench::fmt(worst_single),
               bench::fmt(static_cast<double>(combined.df) / users.size()),
               strprintf("%zu/%zu/%zu", trigger[Resource::kCpu],
                         trigger[Resource::kMemory], trigger[Resource::kDisk]),
               std::to_string(combined.noise)});
  }
  std::printf("%s", t.render().c_str());
  std::printf("\n(each combined run borrows all three resources on the Fig 8 "
              "ramps simultaneously; discomfort fires at the first threshold "
              "crossed)\n");
  std::printf("\n%s", eng.stats().summary().render().c_str());
  return 0;
}
