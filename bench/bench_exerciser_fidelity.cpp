/// Reproduces the §2.2 exerciser verification: "This exerciser is
/// experimentally verified to a contention level of 10 for equal priority
/// threads" (CPU) and "to a contention level of 7" (disk). An equal-priority
/// probe thread should run at 1/(1+c) of its uncontended rate while the real
/// exerciser applies contention c.
///
/// Windows are short so the full sweep stays under ~30 s; on a loaded or
/// single-core CI host expect noise at the high end (the paper used an idle
/// dedicated machine).

#include <cstdio>

#include "exerciser/probe.hpp"
#include "util/clock.hpp"
#include "util/fs.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace uucs;
  RealClock clock;
  TempDir dir("uucs-fidelity");

  std::printf("=== §2.2: CPU exerciser fidelity (probe slowdown vs 1/(1+c)) ===\n");
  constexpr double kWindow = 0.4;
  ExerciserConfig cfg;
  cfg.subinterval_s = 0.01;
  cfg.max_threads = 12;
  cfg.disk_dir = dir.path();
  cfg.disk_file_bytes = 8u << 20;
  cfg.disk_max_write_bytes = 32u << 10;

  const double cpu_base = cpu_probe_rate(clock, kWindow);
  std::printf("uncontended probe rate: %.3g work units/s\n", cpu_base);
  {
    auto exerciser = make_cpu_exerciser(clock, cfg);
    TextTable t;
    t.set_header({"contention", "measured share", "expected 1/(1+c)", "ratio"});
    for (double c : {0.5, 1.0, 2.0, 4.0, 7.0, 10.0}) {
      const double rate = probe_rate_under_contention(
          *exerciser, c, kWindow, clock,
          [&] { return cpu_probe_rate(clock, kWindow); });
      const double share = rate / cpu_base;
      const double expected = 1.0 / (1.0 + c);
      t.add_row({uucs::strprintf("%.1f", c), uucs::strprintf("%.3f", share),
                 uucs::strprintf("%.3f", expected),
                 uucs::strprintf("%.2f", share / expected)});
    }
    std::printf("%s", t.render().c_str());
  }

  std::printf("\n=== §2.2: disk exerciser fidelity ===\n");
  const double disk_base =
      disk_probe_rate(clock, kWindow, dir.path(), 8u << 20, 32u << 10);
  std::printf("uncontended probe rate: %.3g synced writes/s\n", disk_base);
  {
    auto exerciser = make_disk_exerciser(clock, cfg);
    TextTable t;
    t.set_header({"contention", "measured share", "expected 1/(1+c)", "ratio"});
    for (double c : {1.0, 3.0, 7.0}) {
      const double rate = probe_rate_under_contention(
          *exerciser, c, kWindow, clock, [&] {
            return disk_probe_rate(clock, kWindow, dir.path(), 8u << 20,
                                   32u << 10);
          });
      const double share = rate / disk_base;
      const double expected = 1.0 / (1.0 + c);
      t.add_row({uucs::strprintf("%.1f", c), uucs::strprintf("%.3f", share),
                 uucs::strprintf("%.3f", expected),
                 uucs::strprintf("%.2f", share / expected)});
    }
    std::printf("%s", t.render().c_str());
  }
  std::printf("\nexpected shape: measured share tracks 1/(1+c) (ratio ~1) "
              "through c=10 for CPU and c=7 for disk.\n");
  std::printf("note: on virtualized/caching disks (VM images, tmpfs) O_SYNC "
              "writes never reach a seeking spindle, so the disk share reads "
              "high while still falling monotonically with contention; the "
              "paper's 1/(1+c) held on a physical IDE disk.\n");
  return 0;
}
