/// Reproduces Fig 3 (the exercise-function catalog) and Fig 4 (the shapes of
/// step(2.0, 120, 40) and ramp(2.0, 120)) by generating each function type
/// and rendering it as ASCII, plus summary statistics for the stochastic
/// M/M/1 and M/G/1 traces.

#include <cstdio>

#include "common.hpp"
#include "testcase/exercise_function.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

void plot(const uucs::ExerciseFunction& f, const std::string& title, double ymax) {
  constexpr int kWidth = 60;
  constexpr int kHeight = 12;
  std::printf("%s\n", title.c_str());
  std::vector<std::string> grid(kHeight, std::string(kWidth, ' '));
  for (int col = 0; col < kWidth; ++col) {
    const double t = f.duration() * col / (kWidth - 1);
    const double level = f.level_at(std::min(t, f.duration() - 1e-9));
    int row = static_cast<int>(level / ymax * (kHeight - 1) + 0.5);
    row = std::min(std::max(row, 0), kHeight - 1);
    grid[static_cast<std::size_t>(kHeight - 1 - row)][static_cast<std::size_t>(col)] = '*';
  }
  for (int r = 0; r < kHeight; ++r) {
    std::printf("%5.2f |%s\n", ymax * (kHeight - 1 - r) / (kHeight - 1),
                grid[static_cast<std::size_t>(r)].c_str());
  }
  std::printf("      +%s\n       0%*.0f s\n\n", std::string(kWidth, '-').c_str(),
              kWidth - 1, f.duration());
}

}  // namespace

int main() {
  uucs::bench::heading("Figure 3: exercise function catalog");
  uucs::TextTable table;
  table.set_header({"Name", "Description"});
  table.add_row({"step(x,t,b)", "contention of zero to time b, then x to time t"});
  table.add_row({"ramp(x,t)", "ramp from zero to x over times 0 to t"});
  table.add_row({"sin", "sine wave"});
  table.add_row({"saw", "sawtooth wave"});
  table.add_row({"expexp", "Poisson arrivals of exponential-sized jobs (M/M/1)"});
  table.add_row({"exppar", "Poisson arrivals of Pareto-sized jobs (M/G/1)"});
  std::printf("%s\n", table.render().c_str());

  uucs::bench::heading("Figure 4: step(2.0,120,40) and ramp(2.0,120)");
  plot(uucs::make_step(2.0, 120.0, 40.0), "step(2.0, 120, 40)", 2.2);
  plot(uucs::make_ramp(2.0, 120.0), "ramp(2.0, 120)", 2.2);

  uucs::bench::heading("Other catalog members (samples)");
  plot(uucs::make_sine(2.0, 40.0, 120.0), "sin (amp 2.0, period 40 s)", 2.2);
  plot(uucs::make_sawtooth(2.0, 30.0, 120.0), "saw (amp 2.0, period 30 s)", 2.2);

  uucs::Rng rng(2004);
  const auto mm1 = uucs::make_expexp(4.0, 2.0, 120.0, rng);
  plot(mm1, "expexp (M/M/1, rho=0.5)", std::max(2.2, mm1.max_level()));
  std::printf("expexp mean occupancy %.2f (theory rho/(1-rho) = 1.0 over a long run)\n",
              mm1.mean_level());

  const auto mg1 = uucs::make_exppar(4.0, 2.0, 1.5, 120.0, rng);
  plot(mg1, "exppar (M/G/1, Pareto alpha=1.5)", std::max(2.2, mg1.max_level()));
  std::printf("exppar mean occupancy %.2f, burst max %.0f (heavy tail)\n",
              mg1.mean_level(), mg1.max_level());
  return 0;
}
