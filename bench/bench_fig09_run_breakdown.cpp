/// Reproduces Fig 9: the breakdown of controlled-study runs by task,
/// blank/non-blank, and discomforted/exhausted, plus the blank-testcase
/// (noise-floor) discomfort probabilities. Paper numbers print beside the
/// reproduced ones as "sim/paper". The published table covers CPU + blank
/// runs (see DESIGN.md §6); the all-resource breakdown follows for
/// completeness.

#include <cstdio>

#include "analysis/breakdown.hpp"
#include "common.hpp"
#include "study/paper_constants.hpp"
#include "util/table.hpp"

int main() {
  using namespace uucs;
  const auto& study_out = bench::default_study();
  const auto table =
      analysis::compute_breakdown_table(study_out.results);

  bench::heading("Figure 9: breakdown of runs (sim/paper), CPU + blank scope");
  TextTable t;
  t.set_header({"Task", "NonBlank Df", "NonBlank Ex", "Blank Df", "Blank Ex",
                "P(discomfort|blank)"});
  auto row = [&](const std::string& name, const analysis::RunBreakdown& b,
                 const study::PaperBreakdown& p) {
    t.add_row({name, strprintf("%zu/%zu", b.nonblank_discomforted, p.nonblank_df),
               strprintf("%zu/%zu", b.nonblank_exhausted, p.nonblank_ex),
               strprintf("%zu/%zu", b.blank_discomforted, p.blank_df),
               strprintf("%zu/%zu", b.blank_exhausted, p.blank_ex),
               strprintf("%.2f/%.2f", b.blank_discomfort_probability(),
                         p.blank_prob)});
  };
  for (sim::Task task : sim::kAllTasks) {
    row(sim::task_display_name(task),
        table.per_task[static_cast<std::size_t>(task)],
        study::paper_breakdown(task));
  }
  t.add_rule();
  row("Total", table.total, study::paper_breakdown_total());
  std::printf("%s\n", t.render().c_str());

  bench::heading("All-resource breakdown (no paper counterpart)");
  const auto all = analysis::compute_breakdown_table(
      study_out.results, analysis::BreakdownScope::kAllRuns);
  TextTable t2;
  t2.set_header({"Task", "NonBlank Df", "NonBlank Ex", "Blank Df", "Blank Ex"});
  for (sim::Task task : sim::kAllTasks) {
    const auto& b = all.per_task[static_cast<std::size_t>(task)];
    t2.add_row({sim::task_display_name(task),
                std::to_string(b.nonblank_discomforted),
                std::to_string(b.nonblank_exhausted),
                std::to_string(b.blank_discomforted),
                std::to_string(b.blank_exhausted)});
  }
  std::printf("%s\ntotal runs simulated: %zu\n", t2.render().c_str(),
              study_out.results.size());
  return 0;
}
