/// Reproduces Fig 10: the CDF of discomfort for CPU borrowing aggregated
/// over all four tasks (paper headline: c_0.05 ~ 0.35 — 35% of a CPU can be
/// taken while discomforting fewer than 5% of users).

#include "cdf_bench.hpp"

int main() {
  return uucs::bench::run_cdf_bench(uucs::Resource::kCpu, "Figure 10");
}
