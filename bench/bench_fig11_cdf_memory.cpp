/// Reproduces Fig 11: the CDF of discomfort for memory borrowing aggregated
/// over all four tasks (paper headline: ~80% of users unfazed even when
/// nearly all memory is consumed; c_0.05 ~ 0.33).

#include "cdf_bench.hpp"

int main() {
  return uucs::bench::run_cdf_bench(uucs::Resource::kMemory, "Figure 11");
}
