/// Reproduces Fig 12: the CDF of discomfort for disk-bandwidth borrowing
/// aggregated over all four tasks (paper headline: a full disk-consuming
/// writer — contention 1.11 — irritates fewer than 5% of users).

#include "cdf_bench.hpp"

int main() {
  return uucs::bench::run_cdf_bench(uucs::Resource::kDisk, "Figure 12");
}
