/// Reproduces Fig 13: the Low/Medium/High user-sensitivity grades by task
/// and resource. The paper's grid is an explicit "overall judgement"; ours
/// uses the documented discomfort-pressure heuristic (fd / c_a), which
/// agrees with the paper on 10 of the 12 cells when fed the paper's own
/// numbers — the two disk cells the paper itself flags as surprising
/// (IE/Disk graded H, Quake/Disk M) are the exceptions.

#include <cstdio>

#include "analysis/sensitivity.hpp"
#include "common.hpp"
#include "study/paper_constants.hpp"
#include "util/table.hpp"

int main() {
  using namespace uucs;
  const auto& study_out = bench::default_study();

  bench::heading("Figure 13: user sensitivity by task and resource (sim/paper)");
  TextTable t;
  t.set_header({"", "CPU", "Memory", "Disk"});
  int agree = 0;
  for (sim::Task task : sim::kAllTasks) {
    std::vector<std::string> row{sim::task_display_name(task)};
    for (Resource r : kStudyResources) {
      const auto m =
          analysis::compute_cell(study_out.results, sim::task_name(task), r);
      const std::string sim_grade =
          analysis::sensitivity_name(analysis::sensitivity_grade(m));
      const char paper_grade = study::paper_sensitivity(task, r);
      if (sim_grade[0] == paper_grade) ++agree;
      row.push_back(sim_grade + "/" + paper_grade);
    }
    t.add_row(std::move(row));
  }
  std::printf("%s\nagreement: %d/12 cells\n", t.render().c_str(), agree);

  bench::heading("Discomfort-pressure scores behind the grades (fd / c_a)");
  TextTable p;
  p.set_header({"", "CPU", "Memory", "Disk"});
  for (sim::Task task : sim::kAllTasks) {
    std::vector<std::string> row{sim::task_display_name(task)};
    for (Resource r : kStudyResources) {
      const auto m =
          analysis::compute_cell(study_out.results, sim::task_name(task), r);
      row.push_back(bench::fmt(analysis::sensitivity_pressure(m)));
    }
    p.add_row(std::move(row));
  }
  std::printf("%s", p.render().c_str());
  return 0;
}
