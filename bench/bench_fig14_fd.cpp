/// Reproduces Fig 14: f_d — the fraction of ramp testcase runs that end in
/// user discomfort — by task and resource, with the paper value after the
/// slash. Key shape: CPU provokes discomfort most often (total 0.86), while
/// memory (0.21) and disk (0.33) can be borrowed with far fewer reactions.

#include "grid_bench.hpp"

int main() {
  uucs::bench::print_metric_grid(
      "Figure 14: f_d by task and resource (sim/paper)",
      [](const uucs::analysis::CellMetrics& m, const uucs::study::PaperCell& p) {
        return uucs::bench::fmt(m.fd) + "/" + uucs::bench::fmt(p.fd);
      });
  std::printf("\n(ramp runs only, as in the paper; '*' = no discomfort observed)\n");
  return 0;
}
