/// Reproduces Fig 15: c_0.05 — the contention level that discomforts 5% of
/// users — by task and resource ("sim/paper"; '*' where the cell has too
/// little discomfort, as in the paper). This is the number an implementor
/// would use to throttle borrowing to a 5% annoyance budget.

#include "grid_bench.hpp"

int main() {
  uucs::bench::print_metric_grid(
      "Figure 15: c_0.05 by task and resource (sim/paper)",
      [](const uucs::analysis::CellMetrics& m, const uucs::study::PaperCell& p) {
        const std::string paper =
            p.has_c05() ? uucs::bench::fmt(p.c05) : std::string("*");
        return uucs::bench::fmt_opt(m.c05) + "/" + paper;
      });
  std::printf("\nheadline totals: CPU ~0.35, memory ~0.33, disk ~1.11 — borrow "
              "disk and memory aggressively, CPU less so.\n");
  return 0;
}
