/// Reproduces Fig 16: c_a — the average contention level at which discomfort
/// occurs — with 95% confidence intervals, by task and resource. Each cell
/// prints the reproduced mean (CI) above the paper's mean (CI).

#include "grid_bench.hpp"

int main() {
  uucs::bench::print_metric_grid(
      "Figure 16: c_a with 95% CI by task and resource (sim | paper)",
      [](const uucs::analysis::CellMetrics& m, const uucs::study::PaperCell& p) {
        const std::string mine = uucs::bench::fmt_ca(m.ca);
        const std::string paper =
            p.has_ca() ? uucs::strprintf("%.2f (%.2f,%.2f)", p.ca, p.ca_lo, p.ca_hi)
                       : std::string("*");
        return mine + " | " + paper;
      });
  return 0;
}
