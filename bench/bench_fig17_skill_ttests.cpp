/// Reproduces Fig 17: significant differences in mean discomfort contention
/// between self-rated skill groups (unpaired Welch t-tests, §3.3.4). With
/// the paper's 33 participants the tests are underpowered (the paper calls
/// its own results "preliminary"), so the bench reports both the 33-user
/// run and a 330-user run that shows the same machinery with real power.
/// The expected *shape*: the strongest splits involve Quake/CPU — experts
/// tolerate ~0.1-0.2 less CPU contention there — with general PC/Windows
/// ratings also separating groups through their correlation with expertise.

#include <cstdio>

#include "analysis/skill_report.hpp"
#include "common.hpp"
#include "study/paper_constants.hpp"
#include "util/table.hpp"

namespace {

void print_rows(const std::vector<uucs::analysis::SkillDifference>& rows,
                std::size_t limit) {
  using namespace uucs;
  TextTable t;
  t.set_header({"App", "Rsrc", "Rating", "Groups", "p", "Diff", "n"});
  std::size_t shown = 0;
  for (const auto& r : rows) {
    if (shown++ == limit) break;
    t.add_row({sim::task_display_name(r.task), resource_name(r.resource),
               sim::skill_category_name(r.category),
               sim::skill_rating_name(r.group_a) + " vs " +
                   sim::skill_rating_name(r.group_b),
               strprintf("%.4f", r.p), strprintf("%.3f", r.diff),
               strprintf("%zu,%zu", r.n_a, r.n_b)});
  }
  std::printf("%s", t.render().c_str());
}

}  // namespace

int main() {
  using namespace uucs;

  bench::heading("Figure 17 (paper): significant skill-level differences");
  TextTable paper;
  paper.set_header({"App", "Rsrc", "Rating", "Groups", "p", "Diff"});
  for (const auto& row : study::paper_skill_rows()) {
    paper.add_row({sim::task_display_name(row.task), resource_name(row.resource),
                   sim::skill_category_name(row.category),
                   sim::skill_rating_name(row.group_hi) + " vs " +
                       sim::skill_rating_name(row.group_lo),
                   strprintf("%.3f", row.p), strprintf("%.3f", row.diff)});
  }
  std::printf("%s", paper.render().c_str());

  bench::heading("Reproduced, 33 participants (alpha = 0.05)");
  const auto rows33 =
      analysis::significant_skill_differences(bench::default_study().results, 0.05);
  if (rows33.empty()) {
    std::printf("(no significant rows at this sample size — expected: the "
                "paper's own results here are preliminary)\n");
  } else {
    print_rows(rows33, 10);
  }

  bench::heading("Reproduced, 330 participants (alpha = 0.01)");
  const auto rows330 =
      analysis::significant_skill_differences(bench::scaled_study(330).results, 0.01);
  print_rows(rows330, 12);
  std::printf("\nexpected shape: Quake/CPU splits hardest on the Quake rating, "
              "with PC/Windows ratings correlated.\n");
  return 0;
}
