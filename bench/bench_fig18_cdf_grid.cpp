/// Reproduces Fig 18: the full 4x3 grid of per-context, per-resource
/// discomfort CDFs from the controlled study — the paper's most detailed
/// figure. Each panel is an ASCII CDF with its DfCount/ExCount annotation;
/// reading down a column shows the strong dependence on context (§3.3.3),
/// across a row the dependence on resource (§3.3.2).

#include <cstdio>

#include "analysis/export.hpp"
#include "common.hpp"
#include "study/paper_constants.hpp"

int main() {
  using namespace uucs;
  const auto& study_out = bench::default_study();

  bench::heading("Figure 18: per-task, per-resource discomfort CDFs");
  for (sim::Task task : sim::kAllTasks) {
    for (Resource r : kStudyResources) {
      const auto runs = analysis::select_ramp_runs(study_out.results,
                                                   sim::task_name(task), r);
      const auto cdf = analysis::build_discomfort_cdf(runs, r);
      const auto& paper = study::paper_cell(task, r);
      std::printf("--- %s / %s (paper: fd %.2f, c05 %s, ca %s) ---\n",
                  sim::task_display_name(task).c_str(), resource_name(r).c_str(),
                  paper.fd,
                  paper.has_c05() ? bench::fmt(paper.c05).c_str() : "*",
                  paper.has_ca() ? bench::fmt(paper.ca).c_str() : "*");
      std::printf("%s\n", cdf.ascii_plot(50, 10).c_str());

      const std::string csv = "cdf_" + sim::task_name(task) + "_" +
                              resource_name(r) + ".csv";
      analysis::export_cdf(cdf).save(csv);
    }
  }
  std::printf("per-panel curves exported to cdf_<task>_<resource>.csv\n");
  return 0;
}
