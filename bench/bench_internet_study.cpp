/// Reproduces §4: the Internet-wide study mechanics — ~100 heterogeneous
/// clients registering with the server, hot-syncing growing random samples
/// of the 2000+ testcase suite, executing testcases at Poisson arrival
/// times, and uploading results. Prints deployment statistics, the improved
/// aggregate CDF estimates the paper wants from this data, and the raw-host-
/// power split (the paper's open question 6).

#include <cstdio>

#include "analysis/export.hpp"
#include "analysis/metrics.hpp"
#include "common.hpp"
#include "stats/correlation.hpp"
#include "stats/summary.hpp"
#include "study/controlled_study.hpp"
#include "study/internet_study.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace uucs;
  Logger::instance().set_level(LogLevel::kWarn);
  study::InternetStudyConfig config;
  config.clients = 100;
  config.duration_s = 7.0 * 24 * 3600;
  config.jobs = bench::parse_jobs(argc, argv);

  std::printf("=== §4: Internet-wide study simulation ===\n");
  std::printf("simulating %zu clients for %.0f days...\n", config.clients,
              config.duration_s / 86400.0);
  const auto out = study::run_internet_study(config);

  std::printf("%s", out.engine.summary().render().c_str());
  std::printf("registered clients:        %zu\n", out.server->client_count());
  std::printf("testcases on server:       %zu\n", out.server->testcases().size());
  std::printf("runs executed:             %zu\n", out.total_runs);
  std::printf("hot syncs:                 %zu\n", out.total_syncs);
  std::printf("distinct testcases run:    %zu\n", out.distinct_testcases_run);
  std::printf("results on server:         %zu\n", out.server->results().size());

  std::printf("\n--- discomfort rate by resource over the whole suite ---\n");
  TextTable t;
  t.set_header({"resource", "runs", "discomforted", "fraction"});
  for (Resource r : kStudyResources) {
    std::size_t runs = 0, df = 0;
    for (const auto& rec : out.server->results().records()) {
      if (!rec.level_at_feedback(r).has_value()) continue;
      ++runs;
      if (rec.discomforted) ++df;
    }
    t.add_row({resource_name(r), std::to_string(runs), std::to_string(df),
               runs ? strprintf("%.2f", double(df) / double(runs)) : "-"});
  }
  std::printf("%s", t.render().c_str());

  std::printf("\n--- question 6: raw host power vs tolerated CPU contention ---\n");
  TextTable p;
  p.set_header({"host power", "discomforted CPU runs", "mean level at discomfort"});
  const std::pair<double, double> buckets[] = {{0.0, 1.0}, {1.0, 2.0}, {2.0, 99.0}};
  const char* labels[] = {"< 1.0x", "1.0-2.0x", "> 2.0x"};
  for (int b = 0; b < 3; ++b) {
    std::vector<double> levels;
    for (const auto& rec : out.server->results().records()) {
      if (!rec.discomforted) continue;
      const auto level = rec.level_at_feedback(Resource::kCpu);
      if (!level) continue;
      const double power = rec.meta_double("host.power", 1.0);
      if (power >= buckets[b].first && power < buckets[b].second) {
        levels.push_back(*level);
      }
    }
    p.add_row({labels[b], std::to_string(levels.size()),
               levels.empty() ? "-" : strprintf("%.2f", stats::mean_of(levels))});
  }
  std::printf("%s", p.render().c_str());
  {
    // Rank correlation across all discomforted CPU runs: the scalar answer
    // to question 6.
    std::vector<double> powers, levels;
    for (const auto& rec : out.server->results().records()) {
      if (!rec.discomforted) continue;
      const auto level = rec.level_at_feedback(Resource::kCpu);
      if (!level) continue;
      powers.push_back(rec.meta_double("host.power", 1.0));
      levels.push_back(*level);
    }
    if (powers.size() > 10) {
      std::printf("Spearman rank correlation(host power, CPU level at "
                  "discomfort) = %.2f over %zu runs\n",
                  stats::spearman_correlation(powers, levels), powers.size());
    }
  }
  std::printf("\nexpected shape: tolerated CPU contention grows with host power.\n");

  // §4's purpose: "better estimates for the aggregated resource CDFs". The
  // Internet deployment's ramp runs give a tighter c_0.05 estimate than the
  // 33-user controlled study — compare bootstrap intervals.
  std::printf("\n--- improved CDF estimates (bootstrap 95%% CI on c_0.05) ---\n");
  study::ControlledStudyConfig controlled_config;
  controlled_config.jobs = config.jobs;
  const auto controlled =
      study::run_controlled_study(controlled_config, out.params);
  TextTable ci_table;
  ci_table.set_header({"resource", "controlled (n=33)", "internet (100 clients)"});
  for (Resource r : kStudyResources) {
    const auto c_cdf = analysis::aggregate_cdf(controlled.results, r);
    const auto i_cdf = analysis::aggregate_cdf(out.server->results(), r);
    const auto c_ci = analysis::bootstrap_level_ci(c_cdf);
    const auto i_ci = analysis::bootstrap_level_ci(i_cdf);
    auto fmt_ci = [](const analysis::LevelCi& ci) {
      if (!ci.valid) return std::string("(insufficient discomfort)");
      return strprintf("%.2f [%.2f, %.2f]", ci.estimate, ci.lo, ci.hi);
    };
    ci_table.add_row({resource_name(r), fmt_ci(c_ci), fmt_ci(i_ci)});
  }
  std::printf("%s", ci_table.render().c_str());
  std::printf("(intervals narrow as the deployment gathers data — the paper's "
              "motivation for the Internet-wide study)\n");
  return 0;
}
