/// Methodological ablation of the paper's aggregated CDFs (Figs 10-12).
/// The paper pools ramp runs across tasks and divides by all runs — but the
/// per-task ramps explore different maxima (Word's CPU ramp reaches 7.0,
/// Quake's only 1.3), so exhausted Quake runs are *censored at 1.3*, not
/// evidence of comfort at 5. The Kaplan–Meier estimator treats them as
/// right-censored and recovers the population curve the naive estimator
/// compresses.
///
/// Expected shape: naive and KM agree below the smallest ramp maximum and
/// diverge above it, with KM estimating MORE discomfort at high contention
/// (the naive curve's denominator keeps censored runs forever).

#include <cstdio>

#include "common.hpp"
#include "study/paper_constants.hpp"
#include "util/table.hpp"

int main() {
  using namespace uucs;
  const auto& study_out = bench::default_study();

  for (Resource r : kStudyResources) {
    const auto cdf = analysis::aggregate_cdf(study_out.results, r);
    const auto km = analysis::aggregate_km(study_out.results, r);

    bench::heading("naive vs Kaplan-Meier aggregated CDF: " + resource_name(r));
    std::printf("runs: %zu events + %zu censored\n", km.event_count(),
                km.censored_count());

    TextTable t;
    t.set_header({"contention", "naive F(x)", "KM F(x)"});
    double xmax = 0.0;
    for (const auto& [level, frac] : cdf.curve_points()) xmax = level;
    for (int i = 1; i <= 8; ++i) {
      const double x = xmax * i / 8.0;
      t.add_row({strprintf("%.2f", x), strprintf("%.3f", cdf.fraction_at(x)),
                 strprintf("%.3f", km.discomfort_probability(x))});
    }
    std::printf("%s", t.render().c_str());

    const auto naive05 = cdf.level_at_fraction(0.05);
    const auto km05 = km.level_at_probability(0.05);
    std::printf("c_0.05: naive %s, KM %s (paper %s: %.2f)\n",
                naive05 ? strprintf("%.2f", *naive05).c_str() : "*",
                km05 ? strprintf("%.2f", *km05).c_str() : "*",
                resource_name(r).c_str(), study::paper_total(r).c05);
  }
  std::printf("\nreading: the low-contention region (where throttles operate) "
              "is estimator-insensitive; the divergence above the smallest "
              "ramp maximum quantifies how conservative the paper's pooled "
              "curves are at high contention.\n");
  return 0;
}
