/// google-benchmark microbenchmarks for the hot paths of the library: the
/// codec the stores and the wire protocol share, the queueing-trace
/// generators behind the Internet suite, the discrete-event engine, the CDF
/// machinery the analysis pipeline leans on, and a full simulated run.

#include <benchmark/benchmark.h>

#include <array>
#include <atomic>
#include <functional>
#include <limits>
#include <vector>

#include "analysis/metrics.hpp"
#include "server/protocol.hpp"
#include "util/crc32.hpp"
#include "analysis/streaming.hpp"
#include "engine/session_engine.hpp"
#include "exerciser/failpoints.hpp"
#include "monitor/sampler.hpp"
#include "server/fault_injection.hpp"
#include "server/inproc.hpp"
#include "server/server.hpp"
#include "sim/event_queue.hpp"
#include "sim/user_model.hpp"
#include "stats/ecdf.hpp"
#include "stats/special.hpp"
#include "study/controlled_study.hpp"
#include "study/population.hpp"
#include "testcase/suite.hpp"
#include "util/fs.hpp"
#include "util/interner.hpp"
#include "util/journal.hpp"
#include "util/kvtext.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

void BM_RngUniform(benchmark::State& state) {
  uucs::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.uniform());
  }
}
BENCHMARK(BM_RngUniform);

void BM_RngPoisson(benchmark::State& state) {
  uucs::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.poisson(static_cast<double>(state.range(0))));
  }
}
BENCHMARK(BM_RngPoisson)->Arg(3)->Arg(100);

void BM_KvRoundTrip(benchmark::State& state) {
  const auto tc = uucs::make_ramp_testcase(uucs::Resource::kCpu, 2.0,
                                           static_cast<double>(state.range(0)));
  for (auto _ : state) {
    const std::string text = uucs::kv_serialize({tc.to_record()});
    const auto records = uucs::kv_parse(text);
    benchmark::DoNotOptimize(records.size());
  }
  state.SetLabel(std::to_string(state.range(0)) + "s testcase");
}
BENCHMARK(BM_KvRoundTrip)->Arg(120)->Arg(1200);

std::string crc_test_buffer(std::size_t n) {
  // Mixed bytes so table lookups don't stay in one cache line.
  std::string data(n, '\0');
  std::uint32_t x = 0x12345678u;
  for (std::size_t i = 0; i < n; ++i) {
    x = x * 1664525u + 1013904223u;
    data[i] = static_cast<char>(x >> 24);
  }
  return data;
}

void BM_Crc32Bytewise(benchmark::State& state) {
  // The pre-slice-by-8 reference loop: one table lookup per byte. Kept as
  // the baseline the perf-smoke guard measures BM_Crc32 against (>= 4x).
  const std::string data = crc_test_buffer(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(uucs::crc32_bytewise(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
  state.SetLabel("bytewise");
}
BENCHMARK(BM_Crc32Bytewise)->Arg(64)->Arg(4096)->Arg(65536);

void BM_Crc32(benchmark::State& state) {
  // The dispatched production path every journal frame and replay pays:
  // slice-by-8 (or the ARMv8 CRC32 instructions where the IEEE polynomial
  // is available in hardware — x86's SSE4.2 crc32 is CRC32C and would
  // change the journal bytes, so it is deliberately not used).
  const std::string data = crc_test_buffer(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(uucs::crc32(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
  state.SetLabel(uucs::crc32_impl_name());
}
BENCHMARK(BM_Crc32)->Arg(64)->Arg(4096)->Arg(65536);

std::string bench_sync_request_text() {
  uucs::SyncRequest req;
  req.guid = uucs::Guid::parse("0123456789abcdef0123456789abcdef");
  req.sync_seq = 7;
  for (int r = 0; r < 2; ++r) {
    uucs::RunRecord rec;
    rec.run_id = "bench/" + std::to_string(r);
    rec.client_guid = "0123456789abcdef0123456789abcdef";
    rec.testcase_id = "memory-ramp-x1-t120";
    rec.task = "bench";
    rec.discomforted = (r % 2) == 0;
    rec.offset_s = 10.0 + r;
    req.results.push_back(std::move(rec));
  }
  return uucs::encode_sync_request(req);
}

void BM_KvParseRecords(benchmark::State& state) {
  // The owning parse: materializes a vector<KvRecord> (heap strings for
  // every key and value) per call. The cold paths still use it.
  const std::string text = bench_sync_request_text();
  for (auto _ : state) {
    benchmark::DoNotOptimize(uucs::kv_parse(text).size());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_KvParseRecords);

void BM_KvParseDoc(benchmark::State& state) {
  // The zero-copy parse the dispatch hot path uses: string_views into the
  // input plus recycled pair/record vectors — no allocation once warm.
  const std::string text = bench_sync_request_text();
  uucs::KvDoc doc;
  doc.parse(text);  // warm the arena
  for (auto _ : state) {
    doc.parse(text);
    benchmark::DoNotOptimize(doc.size());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_KvParseDoc);

void BM_PeekRequest(benchmark::State& state) {
  // The admission-control sniff: op + declared result count from the first
  // lines of a frame, without parsing the body.
  const std::string text = bench_sync_request_text();
  for (auto _ : state) {
    benchmark::DoNotOptimize(uucs::peek_request(text).op);
  }
}
BENCHMARK(BM_PeekRequest);

void BM_SyncResponseEncodeInto(benchmark::State& state) {
  // Response encode into a recycled buffer. Arg 0: testcase serialization
  // cache cold (re-formats every "%.17g" sample). Arg 1: warm, as served
  // from TestcaseStore — the production configuration.
  uucs::SyncResponse response;
  response.accepted_results = 2;
  response.stored_run_ids = {"bench/0", "bench/1"};
  response.server_testcase_count = 2;
  response.new_testcases.push_back(
      uucs::make_ramp_testcase(uucs::Resource::kMemory, 1.0, 120.0));
  response.new_testcases.push_back(
      uucs::make_ramp_testcase(uucs::Resource::kCpu, 0.5, 0.05, 60.0));
  if (state.range(0) != 0) {
    for (auto& tc : response.new_testcases) tc.warm_encoded_record();
  }
  std::string out;
  uucs::encode_sync_response_into(response, out);  // warm the buffer
  std::size_t bytes = out.size();
  for (auto _ : state) {
    out.clear();
    uucs::encode_sync_response_into(response, out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(bytes));
  state.SetLabel(state.range(0) ? "warm testcase cache" : "cold testcase cache");
}
BENCHMARK(BM_SyncResponseEncodeInto)->Arg(0)->Arg(1);

void BM_JournalBatchBuild(benchmark::State& state) {
  // Group-commit batch framing: header + payload + CRC for range(0)
  // entries appended into one recycled buffer — the pure CPU share of an
  // append_batch, with the write(2)/fsync(2) left out.
  std::vector<std::string> payloads;
  for (int i = 0; i < state.range(0); ++i) {
    payloads.push_back("entry " + std::to_string(i) + std::string(250, 'z'));
  }
  std::string batch;
  std::int64_t bytes = 0;
  for (auto _ : state) {
    batch.clear();
    for (const auto& p : payloads) uucs::Journal::frame_into(batch, p);
    benchmark::DoNotOptimize(batch.size());
  }
  bytes = static_cast<std::int64_t>(batch.size());
  state.SetBytesProcessed(state.iterations() * bytes);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_JournalBatchBuild)->Arg(64)->Arg(512);

void BM_ExpExpTrace(benchmark::State& state) {
  uucs::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        uucs::make_expexp(4.0, 2.0, static_cast<double>(state.range(0)), rng));
  }
}
BENCHMARK(BM_ExpExpTrace)->Arg(120)->Arg(1200);

void BM_EventQueueChurn(benchmark::State& state) {
  for (auto _ : state) {
    uucs::VirtualClock clock;
    uucs::sim::EventQueue queue(clock);
    uucs::Rng rng(3);
    std::size_t fired = 0;
    for (int i = 0; i < state.range(0); ++i) {
      queue.schedule_at(rng.uniform(0.0, 1000.0), [&fired] { ++fired; });
    }
    queue.run_all();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueChurn)->Arg(1000)->Arg(10000);

void BM_EventQueueScheduleStep(benchmark::State& state) {
  // Steady-state schedule+step pairs through the (time, class, seq) keyed
  // heap — the self-rescheduling shape every ported driver uses. range(0)
  // is the standing queue depth the new event competes against.
  uucs::VirtualClock clock;
  uucs::sim::EventQueue queue(clock);
  queue.set_max_events(std::numeric_limits<std::size_t>::max());
  uucs::Rng rng(3);
  for (int i = 0; i < state.range(0); ++i) {
    queue.schedule_in(1e12 + i, [] {});  // standing backlog, never fires
  }
  const std::array<uucs::sim::EventClass, 4> classes = {
      uucs::sim::EventClass::kSync, uucs::sim::EventClass::kRunStart,
      uucs::sim::EventClass::kFeedback, uucs::sim::EventClass::kRunEnd};
  std::size_t fired = 0;
  std::size_t n = 0;
  for (auto _ : state) {
    queue.schedule_in(rng.uniform(0.0, 1.0), classes[n++ % classes.size()],
                      [&fired] { ++fired; });
    queue.step();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(fired));
}
BENCHMARK(BM_EventQueueScheduleStep)->Arg(0)->Arg(1000)->Arg(100000);

void BM_EventQueueChurnOutline(benchmark::State& state) {
  // Same churn with handlers past HandlerArena::kInlineBytes: prices the
  // size-class slab path (freelist pop/push) instead of the inline slots.
  struct Payload {
    std::array<double, 16> values{};
  };
  for (auto _ : state) {
    uucs::VirtualClock clock;
    uucs::sim::EventQueue queue(clock);
    uucs::Rng rng(3);
    std::size_t fired = 0;
    for (int i = 0; i < state.range(0); ++i) {
      Payload p;
      p.values[0] = static_cast<double>(i);
      queue.schedule_at(rng.uniform(0.0, 1000.0),
                        [&fired, p] { fired += p.values[0] >= 0.0; });
    }
    queue.run_all();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueChurnOutline)->Arg(1000)->Arg(10000);

void BM_DiscomfortCdfMetrics(benchmark::State& state) {
  uucs::Rng rng(5);
  uucs::stats::DiscomfortCdf cdf;
  for (int i = 0; i < state.range(0); ++i) {
    if (rng.bernoulli(0.7)) {
      cdf.add_discomfort(rng.lognormal(0.3, 0.5));
    } else {
      cdf.add_exhausted();
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(cdf.level_at_fraction(0.05));
    benchmark::DoNotOptimize(cdf.mean_discomfort_level());
  }
}
BENCHMARK(BM_DiscomfortCdfMetrics)->Arg(300)->Arg(3000);

void BM_StudentTQuantile(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(uucs::stats::student_t_quantile(0.975, 17.0));
  }
}
BENCHMARK(BM_StudentTQuantile);

void BM_SimulatedRun(benchmark::State& state) {
  static const uucs::sim::HostModel host{uucs::HostSpec::paper_study_machine()};
  uucs::sim::RunSimulator sim(host, {0.0, 0.0, 0.002, 0.003});
  uucs::sim::UserProfile user;
  user.user_id = "bench";
  for (auto t : uucs::sim::kAllTasks) {
    for (auto r : uucs::kStudyResources) user.set_threshold(t, r, 1.0);
  }
  const auto tc = uucs::make_ramp_testcase(uucs::Resource::kCpu, 2.0, 120.0);
  uucs::Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim.simulate(user, uucs::sim::Task::kQuake, tc, rng));
  }
}
BENCHMARK(BM_SimulatedRun);

void BM_ThreadPoolDispatch(benchmark::State& state) {
  // Per-task dispatch overhead of the bounded work queue: submit trivial
  // tasks and wait for the pool to drain. items/s ~ dispatch throughput.
  uucs::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  constexpr int kBatch = 4096;
  for (auto _ : state) {
    std::atomic<int> done{0};
    for (int i = 0; i < kBatch; ++i) {
      pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    benchmark::DoNotOptimize(done.load());
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_ThreadPoolDispatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_ThreadPoolDispatchBulk(benchmark::State& state) {
  // The batched twin of BM_ThreadPoolDispatch: one lock per queue refill
  // instead of one per task. The engine's session fan-out uses this path.
  uucs::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  constexpr int kBatch = 4096;
  for (auto _ : state) {
    std::atomic<int> done{0};
    std::vector<std::function<void()>> tasks;
    tasks.reserve(kBatch);
    for (int i = 0; i < kBatch; ++i) {
      tasks.push_back([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.submit_bulk(tasks);
    pool.wait_idle();
    benchmark::DoNotOptimize(done.load());
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_ThreadPoolDispatchBulk)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_SimulateRecordMap(benchmark::State& state) {
  // The allocation-heavy record builder the non-streaming path uses: two
  // std::maps of heap strings per run.
  static const uucs::sim::HostModel host{uucs::HostSpec::paper_study_machine()};
  uucs::sim::RunSimulator sim(host, {0.0, 0.0, 0.002, 0.003});
  uucs::sim::UserProfile user;
  user.user_id = "bench";
  for (auto t : uucs::sim::kAllTasks) {
    for (auto r : uucs::kStudyResources) user.set_threshold(t, r, 1.0);
  }
  const auto tc = uucs::make_ramp_testcase(uucs::Resource::kCpu, 2.0, 120.0);
  uucs::Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim.simulate_record(user, uucs::sim::Task::kQuake, tc, rng, "bench-run"));
  }
}
BENCHMARK(BM_SimulateRecordMap);

void BM_SimulateRecordFlat(benchmark::State& state) {
  // The flat hot-path twin: interned ids + inline arrays, no maps. Same RNG
  // draws as BM_SimulateRecordMap; the delta is pure record-building cost.
  static const uucs::sim::HostModel host{uucs::HostSpec::paper_study_machine()};
  uucs::sim::RunSimulator sim(host, {0.0, 0.0, 0.002, 0.003});
  uucs::sim::UserProfile user;
  user.user_id = "bench";
  for (auto t : uucs::sim::kAllTasks) {
    for (auto r : uucs::kStudyResources) user.set_threshold(t, r, 1.0);
  }
  const auto tc = uucs::make_ramp_testcase(uucs::Resource::kCpu, 2.0, 120.0);
  const uucs::InternedTestcase itc{
      uucs::StringInterner::global().intern(tc.id()),
      uucs::StringInterner::global().intern(tc.description())};
  const auto ctx = sim.flat_context(user);
  uucs::Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.simulate_flat(
        user, uucs::sim::Task::kQuake, tc, itc, rng, "bench-run", ctx));
  }
}
BENCHMARK(BM_SimulateRecordFlat);

void BM_InternerGlobalHit(benchmark::State& state) {
  // intern() hit on the process-global synchronized pool: every call takes
  // the pool mutex even uncontended. Run with ->Threads(4) the same lock
  // is contended, which is exactly what the sharded drivers avoid by
  // giving each engine worker its own unsynchronized pool.
  auto& pool = uucs::StringInterner::global();
  pool.intern("bench-interner-hot-key");
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.intern("bench-interner-hot-key"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InternerGlobalHit)->Threads(1)->Threads(4);

void BM_InternerLocalHit(benchmark::State& state) {
  // The worker-pool shape: an unsynchronized StringInterner instance owned
  // by one thread, as each SessionEngine WorkerSlot holds. No mutex in the
  // hit path, and per-thread instances mean ->Threads(4) scales instead of
  // serializing on a shared lock.
  thread_local uucs::StringInterner pool;
  pool.intern("bench-interner-hot-key");
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.intern("bench-interner-hot-key"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InternerLocalHit)->Threads(1)->Threads(4);

void BM_StudyAccumulatorAdd(benchmark::State& state) {
  // Streaming-aggregation absorb cost per flat record (classification is
  // cached by interned testcase id after the first sighting).
  static const uucs::sim::HostModel host{uucs::HostSpec::paper_study_machine()};
  uucs::sim::RunSimulator sim(host, {0.0, 0.0, 0.002, 0.003});
  uucs::sim::UserProfile user;
  user.user_id = "bench";
  for (auto t : uucs::sim::kAllTasks) {
    for (auto r : uucs::kStudyResources) user.set_threshold(t, r, 1.0);
  }
  const auto tc = uucs::make_ramp_testcase(uucs::Resource::kCpu, 2.0, 120.0);
  const uucs::InternedTestcase itc{
      uucs::StringInterner::global().intern(tc.id()),
      uucs::StringInterner::global().intern(tc.description())};
  const auto ctx = sim.flat_context(user);
  uucs::Rng rng(11);
  const uucs::FlatRunRecord rec = sim.simulate_flat(
      user, uucs::sim::Task::kQuake, tc, itc, rng, "bench-run", ctx);
  uucs::analysis::StudyAccumulator acc;
  for (auto _ : state) {
    acc.add(rec);
  }
  benchmark::DoNotOptimize(acc.runs());
}
BENCHMARK(BM_StudyAccumulatorAdd);

void BM_EngineSessionsPerSec(benchmark::State& state) {
  // End-to-end controlled-study session throughput through the
  // SessionEngine at 1/2/4/8 workers. Output is bit-identical across
  // worker counts; only wall-clock should move (on multi-core hosts).
  static const uucs::study::PopulationParams params =
      uucs::study::calibrate_population();
  uucs::study::ControlledStudyConfig config;
  config.participants = 64;
  config.seed = 7;
  config.jobs = static_cast<std::size_t>(state.range(0));
  std::size_t sessions = 0;
  for (auto _ : state) {
    const auto out = uucs::study::run_controlled_study(config, params);
    sessions = out.engine.jobs_executed;
    benchmark::DoNotOptimize(out.results.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(sessions));
  state.SetLabel(std::to_string(state.range(0)) + " workers");
}
BENCHMARK(BM_EngineSessionsPerSec)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_ControlledStudyEventDriven(benchmark::State& state) {
  // The full event-driven controlled study on one worker — every run is a
  // run-start/run-end event pair through sim::Simulation. Arg toggles the
  // trace layer, so the delta is the cost of recording (label formatting +
  // trace vector) per event; with tracing off it must price like the old
  // hand-rolled loop.
  static const uucs::study::PopulationParams params =
      uucs::study::calibrate_population();
  uucs::study::ControlledStudyConfig config;
  config.participants = 16;
  config.seed = 7;
  config.jobs = 1;
  config.trace = state.range(0) != 0;
  std::size_t runs = 0;
  for (auto _ : state) {
    const auto out = uucs::study::run_controlled_study(config, params);
    runs = out.results.size();
    benchmark::DoNotOptimize(out.results.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(runs));
  state.SetLabel(config.trace ? "traced" : "untraced");
}
BENCHMARK(BM_ControlledStudyEventDriven)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_JournalAppend(benchmark::State& state) {
  // Durable-append cost: frame + CRC + write + fsync per entry. The fsync
  // dominates, and it is the price every run record / accepted result pays
  // before it is acknowledged. range(0) is the payload size in bytes.
  uucs::TempDir dir;
  uucs::Journal journal = uucs::Journal::open(dir.file("bench.journal"));
  const std::string payload(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    journal.append(payload);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_JournalAppend)->Arg(64)->Arg(1024)->Unit(benchmark::kMicrosecond);

void BM_JournalRecover(benchmark::State& state) {
  // Crash-recovery cost: reopen a journal of range(0) entries and CRC-check
  // every frame. This is the startup tax after an unclean shutdown.
  uucs::TempDir dir;
  const std::string path = dir.file("bench.journal");
  {
    uucs::Journal journal = uucs::Journal::open(path);
    std::vector<std::string> batch;
    for (int i = 0; i < state.range(0); ++i) {
      batch.push_back("entry " + std::to_string(i) + std::string(100, 'y'));
    }
    journal.append_batch(batch);
  }
  for (auto _ : state) {
    uucs::Journal journal = uucs::Journal::open(path);
    benchmark::DoNotOptimize(journal.entries().size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_JournalRecover)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

void BM_FaultyChannelCleanOverhead(benchmark::State& state) {
  // What the fault decorator costs when no fault fires: one RNG draw and a
  // counter bump per op, on top of the in-process queue round trip. The
  // baseline (Arg 0) is the bare channel; Arg 1 wraps it in a FaultyChannel
  // drawing from a seeded schedule whose probabilities are all zero.
  class Borrowed final : public uucs::MessageChannel {
   public:
    explicit Borrowed(uucs::MessageChannel& inner) : inner_(inner) {}
    void write(const std::string& m) override { inner_.write(m); }
    std::optional<std::string> read() override { return inner_.read(); }
    void close() override { inner_.close(); }

   private:
    uucs::MessageChannel& inner_;
  };
  uucs::InProcChannelPair pair;
  std::unique_ptr<uucs::MessageChannel> channel =
      std::make_unique<Borrowed>(pair.a());
  if (state.range(0) != 0) {
    auto schedule = std::make_shared<uucs::FaultSchedule>(
        uucs::FaultSchedule::seeded(1, uucs::FaultProfile{}));
    channel = std::make_unique<uucs::FaultyChannel>(std::move(channel),
                                                    std::move(schedule));
  }
  const std::string request(256, 'q');
  for (auto _ : state) {
    channel->write(request);
    benchmark::DoNotOptimize(pair.b().read());
    pair.b().write(request);
    benchmark::DoNotOptimize(channel->read());
  }
  state.SetLabel(state.range(0) ? "faulty (no faults)" : "bare channel");
}
BENCHMARK(BM_FaultyChannelCleanOverhead)->Arg(0)->Arg(1);

void BM_HostFailpointGuard(benchmark::State& state) {
  // What the host-failpoint check costs per disk write. Arg 0: disarmed —
  // the guard the live client always pays when a failpoints object is
  // wired in (one relaxed atomic load). Arg 1: armed with an all-clean
  // seeded schedule — mutex + RNG draw + stats bump, the chaos-host price.
  uucs::HostFailpoints fp;
  if (state.range(0) != 0) {
    fp.arm(uucs::HostFaultSchedule::seeded(1, uucs::HostFaultProfile{}));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fp.on_disk_write().kind);
  }
  state.SetLabel(state.range(0) ? "armed (no faults)" : "disarmed");
}
BENCHMARK(BM_HostFailpointGuard)->Arg(0)->Arg(1);

void BM_MemoryPressureProbe(benchmark::State& state) {
  // One /proc/meminfo (+ cgroup v2) pressure reading — paid once per
  // pressure_check_interval_s by the memory exerciser during a run.
  for (auto _ : state) {
    benchmark::DoNotOptimize(uucs::read_memory_pressure());
  }
}
BENCHMARK(BM_MemoryPressureProbe)->Unit(benchmark::kMicrosecond);

void BM_HotSyncDispatch(benchmark::State& state) {
  // Server-side hot sync with two fresh results per request, with (Arg 1)
  // and without (Arg 0) the fsync'd journal attached — the durability tax
  // on the accept path.
  uucs::TempDir dir;
  uucs::UucsServer server(1, 4);
  server.add_testcase(uucs::make_ramp_testcase(uucs::Resource::kCpu, 1.0, 120.0));
  if (state.range(0) != 0) server.attach_journal(dir.file("server.journal"));
  const uucs::Guid guid =
      server.register_client(uucs::HostSpec::paper_study_machine(), 0.0);
  std::uint64_t serial = 0;
  for (auto _ : state) {
    uucs::SyncRequest request;
    request.guid = guid;
    request.sync_seq = serial + 1;
    for (int i = 0; i < 2; ++i) {
      uucs::RunRecord r;
      r.run_id = "bench/" + std::to_string(serial++);
      r.testcase_id = "cpu-ramp-x1-t120";
      r.task = "bench";
      r.offset_s = 1.0;
      request.results.push_back(std::move(r));
    }
    benchmark::DoNotOptimize(server.hot_sync(request).accepted_results);
  }
  state.SetLabel(state.range(0) ? "journaled" : "in-memory");
}
BENCHMARK(BM_HotSyncDispatch)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
