/// google-benchmark microbenchmarks for the hot paths of the library: the
/// codec the stores and the wire protocol share, the queueing-trace
/// generators behind the Internet suite, the discrete-event engine, the CDF
/// machinery the analysis pipeline leans on, and a full simulated run.

#include <benchmark/benchmark.h>

#include <array>
#include <atomic>
#include <limits>

#include "analysis/metrics.hpp"
#include "engine/session_engine.hpp"
#include "sim/event_queue.hpp"
#include "sim/user_model.hpp"
#include "stats/ecdf.hpp"
#include "stats/special.hpp"
#include "study/controlled_study.hpp"
#include "study/population.hpp"
#include "testcase/suite.hpp"
#include "util/kvtext.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

void BM_RngUniform(benchmark::State& state) {
  uucs::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.uniform());
  }
}
BENCHMARK(BM_RngUniform);

void BM_RngPoisson(benchmark::State& state) {
  uucs::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.poisson(static_cast<double>(state.range(0))));
  }
}
BENCHMARK(BM_RngPoisson)->Arg(3)->Arg(100);

void BM_KvRoundTrip(benchmark::State& state) {
  const auto tc = uucs::make_ramp_testcase(uucs::Resource::kCpu, 2.0,
                                           static_cast<double>(state.range(0)));
  for (auto _ : state) {
    const std::string text = uucs::kv_serialize({tc.to_record()});
    const auto records = uucs::kv_parse(text);
    benchmark::DoNotOptimize(records.size());
  }
  state.SetLabel(std::to_string(state.range(0)) + "s testcase");
}
BENCHMARK(BM_KvRoundTrip)->Arg(120)->Arg(1200);

void BM_ExpExpTrace(benchmark::State& state) {
  uucs::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        uucs::make_expexp(4.0, 2.0, static_cast<double>(state.range(0)), rng));
  }
}
BENCHMARK(BM_ExpExpTrace)->Arg(120)->Arg(1200);

void BM_EventQueueChurn(benchmark::State& state) {
  for (auto _ : state) {
    uucs::VirtualClock clock;
    uucs::sim::EventQueue queue(clock);
    uucs::Rng rng(3);
    std::size_t fired = 0;
    for (int i = 0; i < state.range(0); ++i) {
      queue.schedule_at(rng.uniform(0.0, 1000.0), [&fired] { ++fired; });
    }
    queue.run_all();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueChurn)->Arg(1000)->Arg(10000);

void BM_EventQueueScheduleStep(benchmark::State& state) {
  // Steady-state schedule+step pairs through the (time, class, seq) keyed
  // heap — the self-rescheduling shape every ported driver uses. range(0)
  // is the standing queue depth the new event competes against.
  uucs::VirtualClock clock;
  uucs::sim::EventQueue queue(clock);
  queue.set_max_events(std::numeric_limits<std::size_t>::max());
  uucs::Rng rng(3);
  for (int i = 0; i < state.range(0); ++i) {
    queue.schedule_in(1e12 + i, [] {});  // standing backlog, never fires
  }
  const std::array<uucs::sim::EventClass, 4> classes = {
      uucs::sim::EventClass::kSync, uucs::sim::EventClass::kRunStart,
      uucs::sim::EventClass::kFeedback, uucs::sim::EventClass::kRunEnd};
  std::size_t fired = 0;
  std::size_t n = 0;
  for (auto _ : state) {
    queue.schedule_in(rng.uniform(0.0, 1.0), classes[n++ % classes.size()],
                      [&fired] { ++fired; });
    queue.step();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(fired));
}
BENCHMARK(BM_EventQueueScheduleStep)->Arg(0)->Arg(1000)->Arg(100000);

void BM_DiscomfortCdfMetrics(benchmark::State& state) {
  uucs::Rng rng(5);
  uucs::stats::DiscomfortCdf cdf;
  for (int i = 0; i < state.range(0); ++i) {
    if (rng.bernoulli(0.7)) {
      cdf.add_discomfort(rng.lognormal(0.3, 0.5));
    } else {
      cdf.add_exhausted();
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(cdf.level_at_fraction(0.05));
    benchmark::DoNotOptimize(cdf.mean_discomfort_level());
  }
}
BENCHMARK(BM_DiscomfortCdfMetrics)->Arg(300)->Arg(3000);

void BM_StudentTQuantile(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(uucs::stats::student_t_quantile(0.975, 17.0));
  }
}
BENCHMARK(BM_StudentTQuantile);

void BM_SimulatedRun(benchmark::State& state) {
  static const uucs::sim::HostModel host{uucs::HostSpec::paper_study_machine()};
  uucs::sim::RunSimulator sim(host, {0.0, 0.0, 0.002, 0.003});
  uucs::sim::UserProfile user;
  user.user_id = "bench";
  for (auto t : uucs::sim::kAllTasks) {
    for (auto r : uucs::kStudyResources) user.set_threshold(t, r, 1.0);
  }
  const auto tc = uucs::make_ramp_testcase(uucs::Resource::kCpu, 2.0, 120.0);
  uucs::Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim.simulate(user, uucs::sim::Task::kQuake, tc, rng));
  }
}
BENCHMARK(BM_SimulatedRun);

void BM_ThreadPoolDispatch(benchmark::State& state) {
  // Per-task dispatch overhead of the bounded work queue: submit trivial
  // tasks and wait for the pool to drain. items/s ~ dispatch throughput.
  uucs::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  constexpr int kBatch = 4096;
  for (auto _ : state) {
    std::atomic<int> done{0};
    for (int i = 0; i < kBatch; ++i) {
      pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    benchmark::DoNotOptimize(done.load());
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_ThreadPoolDispatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_EngineSessionsPerSec(benchmark::State& state) {
  // End-to-end controlled-study session throughput through the
  // SessionEngine at 1/2/4/8 workers. Output is bit-identical across
  // worker counts; only wall-clock should move (on multi-core hosts).
  static const uucs::study::PopulationParams params =
      uucs::study::calibrate_population();
  uucs::study::ControlledStudyConfig config;
  config.participants = 64;
  config.seed = 7;
  config.jobs = static_cast<std::size_t>(state.range(0));
  std::size_t sessions = 0;
  for (auto _ : state) {
    const auto out = uucs::study::run_controlled_study(config, params);
    sessions = out.engine.jobs_executed;
    benchmark::DoNotOptimize(out.results.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(sessions));
  state.SetLabel(std::to_string(state.range(0)) + " workers");
}
BENCHMARK(BM_EngineSessionsPerSec)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_ControlledStudyEventDriven(benchmark::State& state) {
  // The full event-driven controlled study on one worker — every run is a
  // run-start/run-end event pair through sim::Simulation. Arg toggles the
  // trace layer, so the delta is the cost of recording (label formatting +
  // trace vector) per event; with tracing off it must price like the old
  // hand-rolled loop.
  static const uucs::study::PopulationParams params =
      uucs::study::calibrate_population();
  uucs::study::ControlledStudyConfig config;
  config.participants = 16;
  config.seed = 7;
  config.jobs = 1;
  config.trace = state.range(0) != 0;
  std::size_t runs = 0;
  for (auto _ : state) {
    const auto out = uucs::study::run_controlled_study(config, params);
    runs = out.results.size();
    benchmark::DoNotOptimize(out.results.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(runs));
  state.SetLabel(config.trace ? "traced" : "untraced");
}
BENCHMARK(BM_ControlledStudyEventDriven)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
