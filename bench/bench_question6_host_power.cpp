/// The paper's open question 6 — "How does the level depend on the raw
/// power of the host?" — which its Internet study was designed to answer.
/// This bench answers it with the model: the SAME user population performs
/// the controlled study on hosts of increasing raw power, and the
/// Quake/CPU tolerance metrics shift up with power (the same contention
/// hurts less on a faster machine), while memory metrics stay flat
/// (memory borrowing is a fraction of capacity, not a rate).

#include <cstdio>

#include "common.hpp"
#include "study/paper_constants.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace uucs;
  const std::size_t jobs = bench::parse_jobs(argc, argv);
  const auto params = study::calibrate_population();

  bench::heading("question 6: tolerated contention vs raw host power");
  TextTable t;
  t.set_header({"host power", "quake/cpu c05", "quake/cpu ca", "quake/cpu fd",
                "memory fd (all tasks)"});
  engine::EngineStats total;
  for (double power : {0.5, 1.0, 2.0, 4.0}) {
    study::ControlledStudyConfig config;
    config.host = HostSpec::paper_study_machine();
    config.host.cpu_mhz = 2000.0 * power;
    config.jobs = jobs;
    const auto out = study::run_controlled_study(config, params);
    total.merge(out.engine);
    const auto quake_cpu =
        analysis::compute_cell(out.results, "quake", Resource::kCpu);
    const auto mem = analysis::metrics_from_cdf(
        analysis::aggregate_cdf(out.results, Resource::kMemory));
    t.add_row({strprintf("%.1fx", power),
               quake_cpu.c05 ? strprintf("%.2f", *quake_cpu.c05) : "*",
               quake_cpu.ca ? strprintf("%.2f", quake_cpu.ca->mean) : "*",
               strprintf("%.2f", quake_cpu.fd), strprintf("%.2f", mem.fd)});
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "\n(1.0x = the paper's 2.0 GHz P4 study machine; thresholds are "
      "calibrated at 1.0x and mapped through the app-degradation model for "
      "other hosts)\n"
      "reading: threshold crossings collapse with host power — fd falls and "
      "c_a rises while crossings still dominate. Once fd nears the Quake "
      "noise floor (fast hosts) the surviving presses are ambient-annoyance "
      "events at time-uniform (hence low) ramp levels, so c05/c_a become "
      "noise-dominated rather than comfort-driven. Memory is capacity-based "
      "and stays flat throughout, as expected.\n");
  std::printf("\n%s", total.summary().render().c_str());
  return 0;
}
