/// Scale bench for the streaming study path (ISSUE 5 layer 4, extended by
/// ISSUE 6 with the jobs sweep): runs the controlled study at 10k/100k/1M
/// synthetic users with --streaming-style aggregation and records
/// wall/cpu/RSS/runs-per-second per size, plus (with --sweep) the same
/// study across a list of worker counts to measure scaling efficiency.
/// The numbers land in BENCH_scale.json (see --json) so future PRs can
/// track throughput, the bounded-memory property and multi-core scaling.
///
/// Usage:
///   bench_scale [--jobs N|auto] [--sizes 10000,100000,1000000]
///               [--sweep 1,2,4,0] [--json FILE] [--verify]
///
/// --verify additionally runs the smallest size through the in-memory path
/// and asserts the streaming aggregates serialize byte-identically (the
/// same check tests/study/test_streaming.cpp pins at small scale); the
/// process exits nonzero on mismatch.
///
/// --sweep runs every size at every listed worker count (0 = one worker
/// per hardware thread), asserts the aggregates stay byte-identical across
/// worker counts, and emits a "jobs" section in the JSON with runs/s,
/// scaling efficiency vs jobs=1, and peak RSS per worker count. Peak RSS
/// is process-wide and monotone (getrusage), so later sweep entries can
/// only report values >= earlier ones.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/streaming.hpp"
#include "common.hpp"
#include "engine/session_engine.hpp"
#include "study/controlled_study.hpp"
#include "study/population.hpp"
#include "util/fs.hpp"
#include "util/strings.hpp"

namespace {

struct SizeResult {
  std::size_t participants = 0;
  std::size_t runs = 0;
  double wall_s = 0.0;
  double cpu_s = 0.0;
  double runs_per_s = 0.0;
  std::size_t max_rss_bytes = 0;
};

struct SweepResult {
  std::size_t participants = 0;
  std::size_t jobs_flag = 0;     ///< as passed (0 = auto)
  std::size_t workers = 0;       ///< resolved worker count
  std::size_t runs = 0;
  double wall_s = 0.0;
  double cpu_s = 0.0;
  double merge_s = 0.0;
  double runs_per_s = 0.0;
  double efficiency = 0.0;       ///< (runs/s ÷ jobs=1 runs/s) ÷ workers
  std::size_t max_rss_bytes = 0;
  bool byte_identical = false;   ///< aggregates match the size's jobs=1 run
};

std::vector<std::size_t> parse_sizes(const std::string& csv) {
  std::vector<std::size_t> sizes;
  for (const std::string& part : uucs::split(csv, ',')) {
    sizes.push_back(std::strtoull(part.c_str(), nullptr, 10));
  }
  return sizes;
}

uucs::study::ControlledStudyOutput run_streaming(
    std::size_t participants, std::size_t jobs,
    const uucs::study::PopulationParams& params) {
  uucs::study::ControlledStudyConfig cfg;
  cfg.participants = participants;
  cfg.seed = 2004;
  cfg.jobs = jobs;
  cfg.streaming = true;
  return uucs::study::run_controlled_study(cfg, params);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t jobs = uucs::bench::parse_jobs(argc, argv);
  std::vector<std::size_t> sizes = {10'000, 100'000, 1'000'000};
  std::vector<std::size_t> sweep_jobs;
  std::string json_path;
  bool verify = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sizes") == 0 && i + 1 < argc) {
      sizes = parse_sizes(argv[++i]);
    } else if (std::strcmp(argv[i], "--sweep") == 0 && i + 1 < argc) {
      sweep_jobs = parse_sizes(argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--verify") == 0) {
      verify = true;
    }
  }

  const uucs::study::PopulationParams params = uucs::study::calibrate_population();

  if (verify && !sizes.empty()) {
    uucs::bench::heading("verify: streaming == in-memory");
    uucs::study::ControlledStudyConfig cfg;
    cfg.participants = *std::min_element(sizes.begin(), sizes.end());
    cfg.seed = 2004;
    cfg.jobs = jobs;
    const auto mem = uucs::study::run_controlled_study(cfg, params);
    uucs::analysis::StudyAccumulator ref;
    for (const auto& rec : mem.results.records()) ref.add(rec);
    cfg.streaming = true;
    const auto streamed = uucs::study::run_controlled_study(cfg, params);
    if (streamed.aggregates->serialize() != ref.serialize()) {
      std::fprintf(stderr, "FAIL: streaming aggregates diverge from the "
                           "in-memory path at %zu participants\n",
                   cfg.participants);
      return 1;
    }
    std::printf("ok: %llu runs, aggregates byte-identical\n",
                static_cast<unsigned long long>(streamed.aggregates->runs()));
  }

  std::vector<SizeResult> results;
  for (const std::size_t n : sizes) {
    uucs::bench::heading(uucs::strprintf("%zu users (streaming, jobs=%zu)",
                                         n, jobs));
    const auto out = run_streaming(n, jobs, params);
    SizeResult r;
    r.participants = n;
    r.runs = out.aggregates->runs();
    r.wall_s = out.engine.wall_s;
    r.cpu_s = out.engine.cpu_s;
    r.runs_per_s = out.engine.runs_per_s();
    r.max_rss_bytes = out.engine.max_rss_bytes;
    results.push_back(r);
    std::printf("%s\n", out.engine.summary().render().c_str());
  }

  std::vector<SweepResult> sweep;
  bool sweep_ok = true;
  for (const std::size_t n : sizes) {
    std::string reference;  ///< jobs=1 aggregates for this size
    double base_runs_per_s = 0.0;
    for (const std::size_t j : sweep_jobs) {
      const std::size_t workers = uucs::engine::effective_jobs(j);
      uucs::bench::heading(uucs::strprintf(
          "%zu users sweep (jobs=%zu -> %zu workers)", n, j, workers));
      const auto out = run_streaming(n, j, params);
      SweepResult r;
      r.participants = n;
      r.jobs_flag = j;
      r.workers = workers;
      r.runs = out.aggregates->runs();
      r.wall_s = out.engine.wall_s;
      r.cpu_s = out.engine.cpu_s;
      r.merge_s = out.engine.merge_s;
      r.runs_per_s = out.engine.runs_per_s();
      r.max_rss_bytes = out.engine.max_rss_bytes;
      const std::string agg = out.aggregates->serialize();
      if (reference.empty() && workers == 1) {
        reference = agg;
        base_runs_per_s = r.runs_per_s;
      }
      r.byte_identical = reference.empty() || agg == reference;
      if (!r.byte_identical) sweep_ok = false;
      r.efficiency =
          (base_runs_per_s > 0 && workers > 0)
              ? (r.runs_per_s / base_runs_per_s) / static_cast<double>(workers)
              : 0.0;
      sweep.push_back(r);
      std::printf("%s\n", out.engine.summary().render().c_str());
      if (!r.byte_identical) {
        std::fprintf(stderr,
                     "FAIL: aggregates at jobs=%zu diverge from jobs=1 "
                     "at %zu participants\n",
                     j, n);
      }
    }
  }

  if (!json_path.empty()) {
    std::string json = "{\n";
    json += "  \"description\": \"bench_scale: streaming controlled study "
            "(seed 2004); wall/cpu from EngineStats, RSS = peak process "
            "RSS after the engine drained\",\n";
    json += uucs::strprintf("  \"jobs\": %zu,\n", jobs);
    json += "  \"sizes\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const SizeResult& r = results[i];
      json += uucs::strprintf(
          "    { \"participants\": %zu, \"runs\": %zu, \"wall_s\": %.3f, "
          "\"cpu_s\": %.3f, \"runs_per_s\": %.1f, \"max_rss_mib\": %.1f }%s\n",
          r.participants, r.runs, r.wall_s, r.cpu_s, r.runs_per_s,
          static_cast<double>(r.max_rss_bytes) / (1024.0 * 1024.0),
          i + 1 < results.size() ? "," : "");
    }
    json += sweep.empty() ? "  ]\n" : "  ],\n";
    if (!sweep.empty()) {
      json += "  \"jobs_sweep_note\": \"efficiency = (runs/s vs jobs=1) / "
              "workers; byte_identical compares aggregate serialization "
              "against the same size at jobs=1; max_rss is process-wide "
              "and monotone across sweep entries\",\n";
      json += "  \"jobs_sweep\": [\n";
      for (std::size_t i = 0; i < sweep.size(); ++i) {
        const SweepResult& r = sweep[i];
        json += uucs::strprintf(
            "    { \"participants\": %zu, \"jobs\": %zu, \"workers\": %zu, "
            "\"runs\": %zu, \"wall_s\": %.3f, \"cpu_s\": %.3f, "
            "\"merge_s\": %.3f, \"runs_per_s\": %.1f, \"efficiency\": %.3f, "
            "\"max_rss_mib\": %.1f, \"byte_identical\": %s }%s\n",
            r.participants, r.jobs_flag, r.workers, r.runs, r.wall_s, r.cpu_s,
            r.merge_s, r.runs_per_s, r.efficiency,
            static_cast<double>(r.max_rss_bytes) / (1024.0 * 1024.0),
            r.byte_identical ? "true" : "false",
            i + 1 < sweep.size() ? "," : "");
      }
      json += "  ]\n";
    }
    json += "}\n";
    uucs::write_file(json_path, json);
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return sweep_ok ? 0 : 1;
}
