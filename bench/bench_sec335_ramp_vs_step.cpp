/// Reproduces §3.3.5: the "frog in the pot" time-dynamics observation. The
/// paper pairs each user's Powerpoint/CPU ramp and step runs and finds 96%
/// of users tolerated higher contention in the slow ramp, by 0.22 on
/// average, p = 0.0001. The bench prints the same comparison for every
/// (task, resource) cell with enough pairs — the effect should be clearest
/// exactly where the paper found it.

#include <cstdio>

#include "analysis/dynamics.hpp"
#include "common.hpp"
#include "study/paper_constants.hpp"
#include "util/table.hpp"

int main() {
  using namespace uucs;
  const auto& study_out = bench::default_study();

  bench::heading("§3.3.5: ramp vs step tolerated contention (paired by user)");
  std::printf("paper (Powerpoint/CPU): 96%% tolerate more in ramp, diff 0.22, "
              "p = 0.0001\n\n");

  TextTable t;
  t.set_header({"Task", "Rsrc", "Pairs", "FracRampHigher", "MeanDiff", "p"});
  for (sim::Task task : sim::kAllTasks) {
    for (Resource r : kStudyResources) {
      const auto cmp = analysis::compare_ramp_vs_step(study_out.results, task, r);
      if (cmp.pairs < 5) continue;
      t.add_row({sim::task_display_name(task), resource_name(r),
                 std::to_string(cmp.pairs), bench::fmt(cmp.frac_ramp_higher),
                 strprintf("%.3f", cmp.mean_difference),
                 cmp.ttest.valid ? strprintf("%.2g", cmp.ttest.p_two_sided)
                                 : std::string("-")});
    }
  }
  std::printf("%s", t.render().c_str());

  const auto headline = analysis::compare_ramp_vs_step(
      study_out.results, sim::Task::kPowerpoint, Resource::kCpu);
  std::printf("\nPowerpoint/CPU reproduced: %.0f%% tolerate more in ramp "
              "(paper 96%%), diff %.2f (paper 0.22), p %.2g (paper 1e-4)\n",
              headline.frac_ramp_higher * 100.0, headline.mean_difference,
              headline.ttest.p_two_sided);
  return 0;
}
