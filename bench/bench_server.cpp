/// Ingest-plane scale bench (ISSUE 7 layer 4): a client swarm of real TCP
/// connections against the production server assembly — epoll event loop,
/// worker pool, sharded UucsServer, group-commit journal. Each swarm member
/// registers, performs S hot syncs of R records, then holds its connection
/// open, so the recorded numbers measure the server with every connection
/// still alive.
///
/// The swarm runs in forked child processes (forked *before* the server's
/// threads start) so one process is the server under test with all sockets
/// on its epoll, and the children supply genuine kernel-scheduled load.
/// Children drive their connections through a nonblocking epoll state
/// machine of their own, so a 5000-connection child is one process, not
/// 5000 threads.
///
/// The numbers land in BENCH_server.json (see --json): connections held,
/// syncs/s, acks/s, fsyncs per 1k acks (the group-commit win; a
/// fsync-per-append design would be ~1000), entries-per-batch reduction
/// factor, and p50/p90/p99 ack latency from real microsecond samples (a
/// per-child reservoir, not a histogram — earlier revisions bucketed by
/// log2 and could only report powers of two).
///
/// Usage:
///   bench_server [--connections N] [--procs K] [--syncs S] [--records R]
///                [--workers N] [--shards N] [--group-commit-max N]
///                [--group-commit-wait-us N] [--json FILE] [--smoke]
///
/// --smoke shrinks the swarm (200 connections, 1 proc), asserts the
/// correctness floors (zero lost, zero duplicated, a minimum syncs/s), and
/// exits nonzero on any violation — the CI guard for the ingest plane.

#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "monitor/sysinfo.hpp"
#include "server/event_loop.hpp"
#include "server/ingest.hpp"
#include "server/net.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "testcase/suite.hpp"
#include "util/fs.hpp"
#include "util/kvtext.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace {

using BenchClock = std::chrono::steady_clock;
using uucs::FrameReader;
using uucs::Guid;
using uucs::KvDoc;
using uucs::RunRecord;
using uucs::SyncRequest;
using uucs::TcpChannel;

/// Per-child cap on retained latency samples. 16k floats keeps the report a
/// single 64 KiB pipe transfer while giving p99 of a 20k-ack run ~200
/// samples above the cut line.
constexpr std::size_t kLatencyReservoir = 16384;

/// What one swarm child reports back over its pipe.
///
/// Latencies are raw microseconds under reservoir sampling, not histogram
/// buckets: the earlier log2 histogram could only ever report 1.5*2^b, so
/// p50/p99 landed on eye-catching powers of two (786432, 1572864) that were
/// artifacts of the bucketing, not measurements.
struct ChildReport {
  std::uint64_t registers = 0;
  std::uint64_t syncs_acked = 0;
  std::uint64_t records_acked = 0;
  std::uint64_t errors = 0;
  std::uint64_t latency_count = 0;  ///< acks observed (>= samples retained)
  float latency_us[kLatencyReservoir] = {};
};

void raise_fd_limit() {
  struct rlimit rl;
  if (::getrlimit(RLIMIT_NOFILE, &rl) == 0 && rl.rlim_cur < rl.rlim_max) {
    rl.rlim_cur = rl.rlim_max;
    ::setrlimit(RLIMIT_NOFILE, &rl);
  }
}

/// Nearest-rank percentile over sorted raw samples.
double sample_percentile(const std::vector<float>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size());
  std::size_t idx = static_cast<std::size_t>(rank);
  if (static_cast<double>(idx) < rank) ++idx;  // ceil
  if (idx == 0) idx = 1;
  if (idx > sorted.size()) idx = sorted.size();
  return static_cast<double>(sorted[idx - 1]);
}

// --- swarm child -----------------------------------------------------------

enum class ConnState { kConnecting, kRegistering, kSyncing, kHolding, kDead };

struct SwarmConn {
  int fd = -1;
  ConnState state = ConnState::kConnecting;
  FrameReader reader;
  std::string out;
  std::size_t out_off = 0;
  bool registered_out = false;  ///< EPOLLOUT currently in the epoll set
  std::string guid;
  int next_sync = 0;
  BenchClock::time_point sent_at{};
};

struct SwarmChild {
  int epfd = -1;
  std::uint16_t port = 0;
  int syncs = 0;
  int records = 0;
  int child_index = 0;
  std::vector<SwarmConn> conns;
  std::size_t next_unstarted = 0;  ///< first conn not yet connect()ed
  std::size_t connecting = 0;      ///< conns mid-handshake (bounds SYN bursts)
  std::size_t settled = 0;         ///< holding or dead
  ChildReport report;
  std::string register_head;  ///< register payload up to the nonce value
  std::string register_tail;  ///< nonce onward: host spec, shared by all conns
  KvDoc doc;                  ///< recycled parse arena for every response
  SyncRequest req_scratch;    ///< recycled request arena (records kept warm)
  std::string payload_buf;    ///< recycled encode buffer for every request
  std::uint64_t rng = 0x9e3779b97f4a7c15ull;  ///< reservoir replacement LCG

  /// Reservoir sampling (algorithm R): every ack has an equal chance of
  /// being retained, so the percentiles are unbiased even past the cap.
  void record_latency(double us) {
    const std::uint64_t n = report.latency_count++;
    std::size_t slot = static_cast<std::size_t>(n);
    if (n >= kLatencyReservoir) {
      rng = rng * 6364136223846793005ull + 1442695040888963407ull;
      slot = static_cast<std::size_t>((rng >> 16) % (n + 1));
      if (slot >= kLatencyReservoir) return;
    }
    report.latency_us[slot] = static_cast<float>(us);
  }

  void update_events(std::size_t i) {
    SwarmConn& c = conns[i];
    const bool need_out = c.out_off < c.out.size() ||
                          c.state == ConnState::kConnecting;
    if (need_out == c.registered_out) return;  // epoll set already right
    struct epoll_event ev;
    ev.events = EPOLLIN | (need_out ? EPOLLOUT : 0u);
    ev.data.u64 = i;
    ::epoll_ctl(epfd, EPOLL_CTL_MOD, c.fd, &ev);
    c.registered_out = need_out;
  }

  void fail(std::size_t i) {
    SwarmConn& c = conns[i];
    if (c.state == ConnState::kDead) return;
    if (c.fd >= 0) {
      ::close(c.fd);
      c.fd = -1;
    }
    if (c.state == ConnState::kConnecting && connecting > 0) --connecting;
    c.state = ConnState::kDead;
    ++report.errors;
    ++settled;
  }

  void queue(std::size_t i, std::string_view payload) {
    SwarmConn& c = conns[i];
    c.out.clear();
    TcpChannel::frame_header_into(c.out, payload.size());
    c.out.append(payload.data(), payload.size());
    c.out_off = 0;
    c.sent_at = BenchClock::now();
    // Optimistic send: in the ping-pong steady state the socket is writable
    // and the frame fits the send buffer, so the common case needs no
    // EPOLLOUT registration (two epoll_ctl calls per request otherwise).
    while (c.out_off < c.out.size()) {
      const ssize_t n = ::send(c.fd, c.out.data() + c.out_off,
                               c.out.size() - c.out_off, MSG_NOSIGNAL);
      if (n > 0) {
        c.out_off += static_cast<std::size_t>(n);
      } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        break;
      } else if (n < 0 && errno == EINTR) {
        continue;
      } else {
        fail(i);
        return;
      }
    }
    update_events(i);
  }

  void start_one() {
    const std::size_t i = next_unstarted++;
    SwarmConn& c = conns[i];
    c.fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (c.fd < 0) {
      fail(i);
      return;
    }
    int one = 1;
    ::setsockopt(c.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    const int rc = ::connect(c.fd, reinterpret_cast<struct sockaddr*>(&addr),
                             sizeof(addr));
    if (rc != 0 && errno != EINPROGRESS) {
      fail(i);
      return;
    }
    ++connecting;
    struct epoll_event ev;
    ev.events = EPOLLIN | EPOLLOUT;
    ev.data.u64 = i;
    c.registered_out = true;
    if (::epoll_ctl(epfd, EPOLL_CTL_ADD, c.fd, &ev) != 0) fail(i);
  }

  /// Keep a bounded number of handshakes in flight so the listener backlog
  /// is never overwhelmed; established conns pull the next ones in.
  void pump_connects() {
    while (next_unstarted < conns.size() && connecting < 384) start_one();
  }

  /// Encodes the next sync request into the recycled `payload_buf` /
  /// `req_scratch` pair: after warm-up no per-sync heap allocation happens
  /// on the client side either, so the swarm's share of the single core
  /// measures the server, not the load generator.
  std::string_view sync_payload(std::size_t i) {
    SwarmConn& c = conns[i];
    req_scratch.guid = Guid::parse(c.guid);
    req_scratch.sync_seq = static_cast<std::uint64_t>(c.next_sync + 1);
    req_scratch.results.resize(static_cast<std::size_t>(records));
    for (int r = 0; r < records; ++r) {
      RunRecord& rec = req_scratch.results[static_cast<std::size_t>(r)];
      rec.run_id.clear();
      rec.run_id += c.guid;
      rec.run_id += '/';
      char seq[16];
      std::snprintf(seq, sizeof(seq), "%d", c.next_sync * records + r);
      rec.run_id += seq;
      rec.client_guid = c.guid;
      rec.testcase_id = "memory-ramp-x1-t120";
      rec.task = "bench";
      rec.discomforted = (r % 2) == 0;
      rec.offset_s = 10.0 + r;
    }
    payload_buf.clear();
    uucs::encode_sync_request_into(req_scratch, payload_buf);
    return payload_buf;
  }

  void on_frame(std::size_t i, std::string_view payload) {
    SwarmConn& c = conns[i];
    // Zero-copy client hot path: the view points into the connection's
    // frame buffer and `doc` recycles its pair/record vectors per frame.
    try {
      doc.parse(payload);
    } catch (const std::exception&) {
      fail(i);
      return;
    }
    if (doc.empty() || doc.at(0).type() == "error") {
      fail(i);
      return;
    }
    const double us = std::chrono::duration<double, std::micro>(
                          BenchClock::now() - c.sent_at)
                          .count();
    record_latency(us);
    if (c.state == ConnState::kRegistering) {
      c.guid = doc.at(0).get_or("guid", "");
      if (c.guid.empty()) {
        fail(i);
        return;
      }
      ++report.registers;
      c.state = ConnState::kSyncing;
      queue(i, sync_payload(i));
    } else if (c.state == ConnState::kSyncing) {
      const auto accepted = doc.at(0).get_int_or("accepted_results", -1);
      const auto dup = doc.at(0).get_int_or("duplicate_results", 0);
      if (accepted + dup != records) {
        fail(i);
        return;
      }
      ++report.syncs_acked;
      report.records_acked += static_cast<std::uint64_t>(records);
      if (++c.next_sync < syncs) {
        queue(i, sync_payload(i));
      } else {
        c.state = ConnState::kHolding;
        ++settled;
      }
    }
  }

  void on_writable(std::size_t i) {
    SwarmConn& c = conns[i];
    if (c.state == ConnState::kConnecting) {
      int err = 0;
      socklen_t len = sizeof(err);
      ::getsockopt(c.fd, SOL_SOCKET, SO_ERROR, &err, &len);
      if (err != 0) {
        fail(i);
        pump_connects();
        return;
      }
      --connecting;
      c.state = ConnState::kRegistering;
      payload_buf.clear();
      payload_buf += register_head;
      char nonce[48];
      std::snprintf(nonce, sizeof(nonce), "bench-%d-%zu", child_index, i);
      payload_buf += nonce;
      payload_buf += register_tail;
      queue(i, payload_buf);
      pump_connects();
      if (c.state == ConnState::kDead) return;  // queue's send may fail
    }
    while (c.out_off < c.out.size()) {
      const ssize_t n = ::send(c.fd, c.out.data() + c.out_off,
                               c.out.size() - c.out_off, MSG_NOSIGNAL);
      if (n > 0) {
        c.out_off += static_cast<std::size_t>(n);
      } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        break;
      } else {
        fail(i);
        return;
      }
    }
    if (c.out_off >= c.out.size()) update_events(i);
  }

  void on_readable(std::size_t i) {
    SwarmConn& c = conns[i];
    char buf[16384];
    for (;;) {
      const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
      if (n > 0) {
        try {
          c.reader.feed(buf, static_cast<std::size_t>(n));
        } catch (const std::exception&) {
          fail(i);
          return;
        }
        std::string_view frame;
        while (c.state != ConnState::kDead && c.reader.next_view(frame)) {
          on_frame(i, frame);  // view consumed before the next feed()
        }
        if (static_cast<std::size_t>(n) < sizeof(buf)) return;
      } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        return;
      } else if (n < 0 && errno == EINTR) {
        continue;
      } else {
        // EOF or error with the swarm still expecting responses.
        if (c.state != ConnState::kHolding) fail(i);
        return;
      }
    }
  }

  /// Runs the swarm to completion, reports, then parks until released.
  int run(std::size_t n_conns, int port_pipe, int report_pipe) {
    epfd = ::epoll_create1(0);
    if (epfd < 0) return 1;
    // Encode the register payload once and split it at the nonce, so each
    // connection's registration is two appends instead of a fresh HostSpec
    // probe + encode. Splitting on a sentinel (rather than hand-writing the
    // wire format here) keeps the bytes the encoder's own.
    const std::string sentinel = "@NONCE@";
    const std::string full = uucs::encode_register_request(
        uucs::HostSpec::paper_study_machine(), sentinel);
    const std::size_t at = full.find(sentinel);
    register_head = full.substr(0, at);
    register_tail = full.substr(at + sentinel.size());
    conns.resize(n_conns);
    pump_connects();
    std::vector<struct epoll_event> events(1024);
    while (settled < conns.size()) {
      const int n = ::epoll_wait(epfd, events.data(),
                                 static_cast<int>(events.size()), 30000);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;  // 30s of silence: report what we have
      for (int e = 0; e < n; ++e) {
        const std::size_t i = static_cast<std::size_t>(events[e].data.u64);
        if (conns[i].state == ConnState::kDead) continue;
        if (events[e].events & (EPOLLERR | EPOLLHUP)) {
          fail(i);
          continue;
        }
        if (events[e].events & EPOLLOUT) on_writable(i);
        if (conns[i].state != ConnState::kDead &&
            (events[e].events & EPOLLIN)) {
          on_readable(i);
        }
      }
      pump_connects();
    }
    for (std::size_t i = 0; i < conns.size(); ++i) {
      if (conns[i].state != ConnState::kHolding &&
          conns[i].state != ConnState::kDead) {
        ++report.errors;  // stranded mid-protocol by the 30s bail-out
      }
    }
    // The report (64 KiB of samples) exceeds PIPE_BUF; write it in pieces.
    const char* src = reinterpret_cast<const char*>(&report);
    std::size_t sent = 0;
    while (sent < sizeof(report)) {
      const ssize_t n = ::write(report_pipe, src + sent, sizeof(report) - sent);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return 1;
      sent += static_cast<std::size_t>(n);
    }
    // Hold every connection open until the parent has sampled its stats.
    char release = 0;
    [[maybe_unused]] const ssize_t r = ::read(port_pipe, &release, 1);
    for (SwarmConn& c : conns) {
      if (c.fd >= 0) ::close(c.fd);
    }
    return 0;
  }
};

// --- parent ----------------------------------------------------------------

struct Options {
  std::size_t connections = 10000;
  std::size_t procs = 2;
  int syncs = 2;
  int records = 2;
  std::size_t workers = 2;
  std::size_t shards = 8;
  std::size_t commit_max = 512;
  // Wider than the server default (500): under a sustained 10k-client burst
  // the extra linger buys ~2x larger batches for no measurable latency cost
  // (queueing at one core dominates the commit window by orders of
  // magnitude).
  std::uint32_t commit_wait_us = 2500;
  std::string json_path;
  bool smoke = false;
};

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: bench_server [--connections N] [--procs K] [--syncs S] "
               "[--records R] [--workers N] [--shards N] [--group-commit-max N] "
               "[--group-commit-wait-us N] [--json FILE] [--smoke]\n");
  std::exit(2);
}

Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (++i >= argc) usage();
      return argv[i];
    };
    if (arg == "--connections") {
      opt.connections = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--procs") {
      opt.procs = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--syncs") {
      opt.syncs = std::atoi(next().c_str());
    } else if (arg == "--records") {
      opt.records = std::atoi(next().c_str());
    } else if (arg == "--workers") {
      opt.workers = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--shards") {
      opt.shards = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--group-commit-max") {
      opt.commit_max = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--group-commit-wait-us") {
      opt.commit_wait_us = static_cast<std::uint32_t>(std::strtoul(next().c_str(), nullptr, 10));
    } else if (arg == "--json") {
      opt.json_path = next();
    } else if (arg == "--smoke") {
      opt.smoke = true;
    } else {
      usage();
    }
  }
  if (opt.smoke) {
    opt.connections = 200;
    opt.procs = 1;
  }
  if (opt.connections == 0 || opt.procs == 0 || opt.syncs <= 0 ||
      opt.records <= 0 || opt.procs > opt.connections) {
    usage();
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace uucs;
  const Options opt = parse_options(argc, argv);
  raise_fd_limit();
  // Ten thousand "registered client" lines are not a benchmark result.
  Logger::instance().set_level(LogLevel::kWarn);

  // Fork the swarm before any server thread exists. Children learn the port
  // over their pipe once the server is up.
  struct Child {
    pid_t pid = -1;
    int port_pipe = -1;    // parent writes: port, then the release byte
    int report_pipe = -1;  // child writes its ChildReport
    std::size_t conns = 0;
  };
  std::vector<Child> children(opt.procs);
  const std::size_t per_child = opt.connections / opt.procs;
  for (std::size_t k = 0; k < opt.procs; ++k) {
    children[k].conns =
        per_child + (k == 0 ? opt.connections % opt.procs : 0);
    int port_fds[2], report_fds[2];
    if (::pipe(port_fds) != 0 || ::pipe(report_fds) != 0) {
      std::perror("pipe");
      return 1;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("fork");
      return 1;
    }
    if (pid == 0) {
      for (std::size_t j = 0; j < k; ++j) {
        ::close(children[j].port_pipe);
        ::close(children[j].report_pipe);
      }
      ::close(port_fds[1]);
      ::close(report_fds[0]);
      SwarmChild swarm;
      swarm.child_index = static_cast<int>(k);
      swarm.syncs = opt.syncs;
      swarm.records = opt.records;
      std::uint16_t port = 0;
      if (::read(port_fds[0], &port, sizeof(port)) != sizeof(port)) std::_Exit(1);
      swarm.port = port;
      std::_Exit(swarm.run(children[k].conns, port_fds[0], report_fds[1]));
    }
    ::close(port_fds[0]);
    ::close(report_fds[1]);
    children[k].pid = pid;
    children[k].port_pipe = port_fds[1];
    children[k].report_pipe = report_fds[0];
  }

  // The server under test: sharded store, journal, group-commit ingest.
  TempDir state_dir;
  UucsServer server(4242, 16, opt.shards);
  server.add_testcase(make_ramp_testcase(Resource::kMemory, 1.0, 120.0));
  server.add_testcase(make_ramp_testcase(Resource::kCpu, 0.5, 0.05, 60.0));
  server.attach_journal(state_dir.file("server.journal"));
  const std::uint64_t fsyncs_before = server.mutable_journal()->fsync_count();

  IngestServer::Config config;
  config.loop.port = 0;
  config.loop.workers = opt.workers;
  config.loop.max_connections = opt.connections + 64;
  config.loop.idle_timeout_s = 120.0;
  config.commit.max_batch_entries = opt.commit_max;
  config.commit.max_wait_us = opt.commit_wait_us;
  if (opt.smoke) {
    // Overload control on, with room to spare: a healthy swarm must sail
    // through without a single request shed (asserted below). Catches both
    // spurious shedding and accounting leaks in the admission gate.
    config.overload.max_queue_depth = opt.connections * 4;
    config.overload.request_deadline_ms = 60000.0;
  }
  IngestServer ingest(server, config);

  const auto t0 = BenchClock::now();
  const std::uint16_t port = ingest.port();
  for (Child& c : children) {
    if (::write(c.port_pipe, &port, sizeof(port)) != sizeof(port)) {
      std::perror("write port");
      return 1;
    }
  }

  // Children report only when every connection has finished its syncs (and
  // is still holding its socket open).
  ChildReport total;
  std::vector<float> latencies;  // merged samples from every child
  bool report_failures = false;
  for (Child& c : children) {
    auto r = std::make_unique<ChildReport>();
    std::size_t got = 0;
    while (got < sizeof(*r)) {
      const ssize_t n = ::read(c.report_pipe,
                               reinterpret_cast<char*>(r.get()) + got,
                               sizeof(*r) - got);
      if (n <= 0) break;
      got += static_cast<std::size_t>(n);
    }
    if (got != sizeof(*r)) {
      std::fprintf(stderr, "child %d died without reporting\n", (int)c.pid);
      report_failures = true;
      continue;
    }
    total.registers += r->registers;
    total.syncs_acked += r->syncs_acked;
    total.records_acked += r->records_acked;
    total.errors += r->errors;
    total.latency_count += r->latency_count;
    const std::size_t kept = static_cast<std::size_t>(
        std::min<std::uint64_t>(r->latency_count, kLatencyReservoir));
    latencies.insert(latencies.end(), r->latency_us, r->latency_us + kept);
  }
  // Children run identical workloads, so concatenating their equal-rate
  // reservoirs keeps the merged sample unbiased.
  std::sort(latencies.begin(), latencies.end());
  const double wall_s =
      std::chrono::duration<double>(BenchClock::now() - t0).count();

  // Sample while the swarm still holds every connection.
  const EventLoopStats loop_stats = ingest.loop_stats();
  const GroupCommitJournal::Stats commit = ingest.commit_stats();
  const std::uint64_t fsyncs = server.mutable_journal()->fsync_count() - fsyncs_before;

  // Release the swarm, reap it, stop the server.
  for (Child& c : children) {
    const char release = 1;
    [[maybe_unused]] const ssize_t n = ::write(c.port_pipe, &release, 1);
  }
  for (Child& c : children) {
    int status = 0;
    ::waitpid(c.pid, &status, 0);
    ::close(c.port_pipe);
    ::close(c.report_pipe);
  }
  ingest.stop();

  // Correctness before speed: every acked record stored exactly once.
  const std::uint64_t stored = server.results().size();
  const std::uint64_t lost =
      total.records_acked > stored ? total.records_acked - stored : 0;
  const std::uint64_t duplicated =
      stored > total.records_acked ? stored - total.records_acked : 0;

  const double syncs_per_s = static_cast<double>(total.syncs_acked) / wall_s;
  const double acks_per_s =
      static_cast<double>(total.syncs_acked + total.registers) / wall_s;
  const double fsyncs_per_1k_acks =
      total.records_acked == 0
          ? 0.0
          : 1000.0 * static_cast<double>(fsyncs) /
                static_cast<double>(total.syncs_acked + total.registers);
  const double entries_per_batch =
      commit.batches == 0 ? 0.0
                          : static_cast<double>(commit.entries) /
                                static_cast<double>(commit.batches);
  // A fsync-per-append design needs one fsync per journal entry; ours needs
  // one per batch. This is the ISSUE's ">= 50x fewer fsyncs" headline.
  const double fsync_reduction =
      fsyncs == 0 ? 0.0
                  : static_cast<double>(commit.entries) / static_cast<double>(fsyncs);
  const double p50_us = sample_percentile(latencies, 0.50);
  const double p90_us = sample_percentile(latencies, 0.90);
  const double p99_us = sample_percentile(latencies, 0.99);

  std::printf("connections        %zu held (max open %zu, accepted %llu)\n",
              loop_stats.open_connections, loop_stats.max_open_connections,
              static_cast<unsigned long long>(loop_stats.accepted));
  std::printf("wall               %.3f s\n", wall_s);
  std::printf("registers          %llu\n",
              static_cast<unsigned long long>(total.registers));
  std::printf("syncs acked        %llu (%.1f/s)\n",
              static_cast<unsigned long long>(total.syncs_acked), syncs_per_s);
  std::printf("records stored     %llu (lost %llu, duplicated %llu)\n",
              static_cast<unsigned long long>(stored),
              static_cast<unsigned long long>(lost),
              static_cast<unsigned long long>(duplicated));
  std::printf("errors             %llu\n",
              static_cast<unsigned long long>(total.errors));
  std::printf("journal            %llu entries in %llu batches "
              "(%.1f entries/batch, largest %llu)\n",
              static_cast<unsigned long long>(commit.entries),
              static_cast<unsigned long long>(commit.batches), entries_per_batch,
              static_cast<unsigned long long>(commit.largest_batch));
  std::printf("fsyncs             %llu (%.2f per 1k acks; %.0fx fewer than "
              "fsync-per-append)\n",
              static_cast<unsigned long long>(fsyncs), fsyncs_per_1k_acks,
              fsync_reduction);
  std::printf("ack latency        p50 %.0f us, p90 %.0f us, p99 %.0f us "
              "(%zu samples of %llu acks)\n",
              p50_us, p90_us, p99_us, latencies.size(),
              static_cast<unsigned long long>(total.latency_count));

  if (!opt.json_path.empty()) {
    std::string json = "{\n";
    json +=
        "  \"description\": \"bench_server: client swarm against the ingest "
        "plane (epoll event loop + worker pool + sharded store + group-commit "
        "journal). Children forked before server threads drive nonblocking "
        "client state machines; every connection registers, hot-syncs, then "
        "stays open until the stats are sampled.\",\n";
    json +=
        "  \"host_note\": \"single-core container (nproc=1): server loop, "
        "workers, committer and the swarm children time-slice one core, so "
        "ack latency is dominated by run-queue waits, not by the commit "
        "window; connections-held, exactly-once and the fsync reduction are "
        "the portable results.\",\n";
    json += uucs::strprintf(
        "  \"config\": { \"connections\": %zu, \"procs\": %zu, \"syncs\": %d, "
        "\"records\": %d, \"workers\": %zu, \"shards\": %zu, "
        "\"group_commit_max\": %zu, \"group_commit_wait_us\": %u },\n",
        opt.connections, opt.procs, opt.syncs, opt.records, opt.workers,
        opt.shards, opt.commit_max, opt.commit_wait_us);
    json += uucs::strprintf(
        "  \"connections_held\": %zu,\n  \"max_open_connections\": %zu,\n",
        loop_stats.open_connections, loop_stats.max_open_connections);
    json += uucs::strprintf("  \"wall_s\": %.3f,\n", wall_s);
    json += uucs::strprintf(
        "  \"registers\": %llu,\n  \"syncs_acked\": %llu,\n"
        "  \"records_stored\": %llu,\n  \"lost\": %llu,\n"
        "  \"duplicated\": %llu,\n  \"errors\": %llu,\n",
        static_cast<unsigned long long>(total.registers),
        static_cast<unsigned long long>(total.syncs_acked),
        static_cast<unsigned long long>(stored),
        static_cast<unsigned long long>(lost),
        static_cast<unsigned long long>(duplicated),
        static_cast<unsigned long long>(total.errors));
    json += uucs::strprintf(
        "  \"syncs_per_s\": %.1f,\n  \"acks_per_s\": %.1f,\n", syncs_per_s,
        acks_per_s);
    json += uucs::strprintf(
        "  \"journal_entries\": %llu,\n  \"journal_batches\": %llu,\n"
        "  \"entries_per_batch\": %.1f,\n  \"largest_batch\": %llu,\n",
        static_cast<unsigned long long>(commit.entries),
        static_cast<unsigned long long>(commit.batches), entries_per_batch,
        static_cast<unsigned long long>(commit.largest_batch));
    json += uucs::strprintf(
        "  \"fsyncs\": %llu,\n  \"fsyncs_per_1k_acks\": %.2f,\n"
        "  \"fsync_reduction_vs_per_append\": %.1f,\n",
        static_cast<unsigned long long>(fsyncs), fsyncs_per_1k_acks,
        fsync_reduction);
    json += uucs::strprintf(
        "  \"ack_latency_p50_us\": %.0f,\n  \"ack_latency_p90_us\": %.0f,\n"
        "  \"ack_latency_p99_us\": %.0f,\n",
        p50_us, p90_us, p99_us);
    json += uucs::strprintf(
        "  \"ack_latency_samples\": %zu,\n  \"ack_latency_acks\": %llu\n",
        latencies.size(), static_cast<unsigned long long>(total.latency_count));
    json += "}\n";
    uucs::write_file(opt.json_path, json);
    std::printf("\nwrote %s\n", opt.json_path.c_str());
  }

  bool ok = !report_failures && lost == 0 && duplicated == 0;
  if (opt.smoke) {
    // CI floors: correctness is absolute; the throughput floor is set far
    // below any healthy run so only a real regression trips it.
    constexpr double kMinSyncsPerS = 50.0;
    if (total.errors != 0) {
      std::fprintf(stderr, "SMOKE FAIL: %llu connection errors\n",
                   static_cast<unsigned long long>(total.errors));
      ok = false;
    }
    if (total.registers != opt.connections ||
        total.syncs_acked !=
            opt.connections * static_cast<std::size_t>(opt.syncs)) {
      std::fprintf(stderr, "SMOKE FAIL: incomplete swarm\n");
      ok = false;
    }
    if (syncs_per_s < kMinSyncsPerS) {
      std::fprintf(stderr, "SMOKE FAIL: %.1f syncs/s < %.1f floor\n",
                   syncs_per_s, kMinSyncsPerS);
      ok = false;
    }
    // With the generous overload config above, a healthy swarm must never
    // be shed — any nonzero count means the gate misfires under load.
    const uucs::OverloadStats shed = ingest.overload_stats();
    const std::uint64_t total_shed = shed.shed_queue + shed.shed_deadline +
                                     shed.shed_registrations +
                                     shed.degraded_rejects;
    if (total_shed != 0) {
      std::fprintf(stderr,
                   "SMOKE FAIL: %llu requests shed (queue=%llu deadline=%llu "
                   "reg=%llu degraded=%llu) under a healthy load\n",
                   static_cast<unsigned long long>(total_shed),
                   static_cast<unsigned long long>(shed.shed_queue),
                   static_cast<unsigned long long>(shed.shed_deadline),
                   static_cast<unsigned long long>(shed.shed_registrations),
                   static_cast<unsigned long long>(shed.degraded_rejects));
      ok = false;
    }
    std::printf("smoke: %s\n", ok ? "PASS" : "FAIL");
  } else if (lost != 0 || duplicated != 0) {
    std::fprintf(stderr, "FAIL: lost=%llu duplicated=%llu\n",
                 static_cast<unsigned long long>(lost),
                 static_cast<unsigned long long>(duplicated));
  }
  return ok ? 0 : 1;
}
