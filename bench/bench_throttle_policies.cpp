/// Ablation for the paper's §5 advice to implementors and its stated future
/// work (feedback-driven scheduling). Three borrowing policies run against
/// identical synthetic-user sessions:
///
///   conservative — the Condor/SETI@home baseline: borrow only when the
///                  user is away;
///   cdf@B%       — §5's advice: throttle to the study CDFs at an annoyance
///                  budget of B% of users, context-aware;
///   adaptive     — the future-work policy: cdf setting + multiplicative
///                  backoff on every discomfort press, slow recovery.
///
/// Expected shape: the CDF throttles borrow several times more than the
/// baseline at bounded annoyance; the adaptive variant keeps most of the
/// extra borrowing while cutting the annoyance rate versus the static
/// throttle at the same budget.

#include <cstdio>

#include "core/policy_eval.hpp"
#include "common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace uucs;
  const auto& study_out = bench::default_study();
  const auto profile = core::ComfortProfile::from_results(study_out.results);

  core::PolicyEvalConfig config;
  config.session_s = 2.0 * 3600;
  config.dt_s = 1.0;
  config.jobs = bench::parse_jobs(argc, argv);

  bench::heading("§5 / future work: borrowing policy ablation");
  std::printf("population: %zu users x 4 task sessions x %.1f h each\n",
              study_out.users.size(), config.session_s / 3600.0);

  TextTable t;
  t.set_header({"policy", "borrowed (contention-hours)", "cpu", "mem", "disk",
                "presses", "presses/user-hour"});
  engine::EngineStats total;
  auto report = [&](core::ThrottlePolicy& policy) {
    const auto r = core::evaluate_policy(policy, study_out.users, config);
    total.merge(r.engine);
    t.add_row({r.policy, strprintf("%.1f", r.total_borrowed() / 3600.0),
               strprintf("%.1f", r.borrowed_contention_s[0] / 3600.0),
               strprintf("%.1f", r.borrowed_contention_s[1] / 3600.0),
               strprintf("%.1f", r.borrowed_contention_s[2] / 3600.0),
               std::to_string(r.total_events()),
               strprintf("%.3f", r.events_per_hour())});
  };

  core::ConservativePolicy conservative(1.0);
  report(conservative);
  for (double budget : {0.02, 0.05, 0.20}) {
    core::CdfThrottle cdf(profile, budget);
    report(cdf);
  }
  core::AdaptiveThrottle adaptive_tight(profile, 0.05);
  report(adaptive_tight);
  core::AdaptiveThrottle adaptive_loose(profile, 0.20);
  report(adaptive_loose);

  std::printf("%s", t.render().c_str());
  std::printf("\n(all policies face identical user presence traces and "
              "thresholds; 'borrowed' integrates allowed contention over "
              "time)\n");
  std::printf("\n%s", total.summary().render().c_str());
  return 0;
}
