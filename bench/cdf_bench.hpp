#pragma once

/// Shared body for the Fig 10/11/12 benches: the aggregated (all-task)
/// discomfort CDF for one resource, as an ASCII plot plus the derived
/// metrics against the paper's totals, with a CSV export for replotting.

#include <cstdio>

#include "analysis/export.hpp"
#include "common.hpp"
#include "study/paper_constants.hpp"

namespace uucs::bench {

inline int run_cdf_bench(uucs::Resource resource, const char* figure_name) {
  const auto& study_out = default_study();
  const auto cdf = analysis::aggregate_cdf(study_out.results, resource);
  const auto m = analysis::metrics_from_cdf(cdf);
  const auto& paper = study::paper_total(resource);

  heading(std::string(figure_name) + ": aggregated discomfort CDF for " +
          resource_name(resource));
  std::printf("%s\n", cdf.ascii_plot(60, 16, "cumulative fraction of runs discomforted "
                                             "vs contention").c_str());
  std::printf("metric           sim     paper\n");
  std::printf("f_d            %6.2f    %6.2f\n", m.fd, paper.fd);
  std::printf("c_0.05         %6s    %6.2f\n", fmt_opt(m.c05).c_str(), paper.c05);
  std::printf("c_a            %6s    %6.2f (%.2f,%.2f)\n",
              m.ca ? fmt(m.ca->mean).c_str() : "*", paper.ca, paper.ca_lo,
              paper.ca_hi);
  std::printf("DfCount/ExCount  %zu/%zu\n", m.df_count, m.ex_count);
  std::printf("DKW 95%% band: true curve within +-%.3f of the plot everywhere\n",
              cdf.dkw_half_width());

  const std::string csv_path =
      "cdf_" + resource_name(resource) + ".csv";
  analysis::export_cdf(cdf).save(csv_path);
  std::printf("curve points exported to %s\n", csv_path.c_str());
  return 0;
}

}  // namespace uucs::bench
