#pragma once

/// Shared helpers for the figure/table reproduction benches. Each bench is a
/// standalone binary that reruns the controlled study (seeded, virtual time)
/// and prints the paper's published numbers next to the reproduced ones.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/metrics.hpp"
#include "study/controlled_study.hpp"
#include "util/strings.hpp"

namespace uucs::bench {

/// Session-engine worker count from a `--jobs N|auto` flag; "auto" or 0
/// (the default) means one worker per hardware thread. Any value is
/// bit-identical.
inline std::size_t parse_jobs(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--jobs") {
      const std::string v = argv[i + 1];
      return v == "auto" ? 0 : std::strtoul(v.c_str(), nullptr, 10);
    }
  }
  return 0;
}

/// One calibration + controlled study per process, reused by every section
/// of a bench binary.
inline const study::ControlledStudyOutput& default_study() {
  static const study::ControlledStudyOutput out = [] {
    study::ControlledStudyConfig config;
    return study::run_controlled_study(config);
  }();
  return out;
}

/// A larger population for analyses that need statistical power (the paper
/// notes its own skill results are "preliminary"; the scaled run shows the
/// same machinery with tighter estimates).
inline const study::ControlledStudyOutput& scaled_study(std::size_t participants) {
  static std::size_t cached_n = 0;
  static study::ControlledStudyOutput out;
  if (cached_n != participants) {
    study::ControlledStudyConfig config;
    config.participants = participants;
    config.seed = 777;
    out = study::run_controlled_study(config, default_study().params);
    cached_n = participants;
  }
  return out;
}

inline std::string fmt(double v, int decimals = 2) {
  return strprintf("%.*f", decimals, v);
}

inline std::string fmt_opt(const std::optional<double>& v, int decimals = 2) {
  return v ? fmt(*v, decimals) : "*";
}

inline std::string fmt_ca(const std::optional<stats::MeanCi>& ci) {
  if (!ci) return "*";
  return strprintf("%.2f (%.2f,%.2f)", ci->mean, ci->lo, ci->hi);
}

inline void heading(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace uucs::bench
