#pragma once

/// Shared body for the Fig 14/15/16 benches: one 4x3 grid of a per-cell
/// metric (plus totals) with "sim/paper" cells.

#include <cstdio>
#include <functional>

#include "common.hpp"
#include "study/paper_constants.hpp"
#include "util/table.hpp"

namespace uucs::bench {

/// Renders the task x resource grid; `cell_text(metrics, paper)` formats one
/// cell, `total_text` the per-resource totals row.
inline void print_metric_grid(
    const char* title,
    const std::function<std::string(const analysis::CellMetrics&,
                                    const study::PaperCell&)>& cell_text) {
  const auto& study_out = default_study();
  heading(title);
  TextTable t;
  t.set_header({"", "CPU", "Memory", "Disk"});
  for (sim::Task task : sim::kAllTasks) {
    std::vector<std::string> row{sim::task_display_name(task)};
    for (Resource r : kStudyResources) {
      const auto m =
          analysis::compute_cell(study_out.results, sim::task_name(task), r);
      row.push_back(cell_text(m, study::paper_cell(task, r)));
    }
    t.add_row(std::move(row));
  }
  t.add_rule();
  std::vector<std::string> total{"Total"};
  for (Resource r : kStudyResources) {
    const auto m = analysis::metrics_from_cdf(
        analysis::aggregate_cdf(study_out.results, r));
    total.push_back(cell_text(m, study::paper_total(r)));
  }
  t.add_row(std::move(total));
  std::printf("%s", t.render().c_str());
}

}  // namespace uucs::bench
