/// The full distributed loop over real TCP on localhost: a UUCS server
/// thread serving the wire protocol, and a client that registers, hot-syncs
/// a growing random sample of testcases, executes one of them with the real
/// exercisers (scaled down to two seconds), and uploads the result — the
/// complete §2 architecture in one process.

#include <cstdio>
#include <thread>

#include "client/client.hpp"
#include "client/run_executor.hpp"
#include "server/net.hpp"
#include "testcase/suite.hpp"
#include "util/logging.hpp"

int main() {
  using namespace uucs;
  Logger::instance().set_level(LogLevel::kWarn);

  // --- server side ---------------------------------------------------------
  UucsServer server(2004, /*sample_batch=*/4);
  Rng suite_rng(7);
  for (int i = 0; i < 10; ++i) {
    // Short, gentle testcases so the live run stays quick.
    server.add_testcase(
        make_ramp_testcase(Resource::kCpu, 0.5 + 0.1 * i, 2.0, 10.0));
  }
  TcpListener listener(0);
  std::thread server_thread([&] {
    while (auto conn = listener.accept()) {
      serve_channel(server, *conn);
    }
  });
  std::printf("server listening on 127.0.0.1:%u with %zu testcases\n",
              listener.port(), server.testcases().size());

  // --- client side ---------------------------------------------------------
  auto channel = TcpChannel::connect("127.0.0.1", listener.port());
  RemoteServerApi api(*channel);

  UucsClient client(HostSpec::detect());
  client.ensure_registered(api);
  std::printf("client registered as %s\n", client.guid().to_string().c_str());

  std::printf("hot sync #1: %zu new testcases\n", client.hot_sync(api));
  const std::size_t second_batch = client.hot_sync(api);
  std::printf("hot sync #2: %zu new testcases (local store now %zu)\n",
              second_batch, client.testcases().size());

  // Local random choice + live execution of one downloaded testcase.
  const auto id = client.choose_testcase_id(client.rng());
  const Testcase& testcase = client.testcases().get(*id);
  std::printf("executing %s with the real exercisers...\n", testcase.id().c_str());

  RealClock clock;
  ExerciserConfig config;
  config.subinterval_s = 0.01;
  ExerciserSet exercisers(clock, config);
  ProgrammaticFeedback feedback;  // nobody presses it in this demo
  RunExecutor executor(clock, exercisers, feedback);
  RunRecord run = executor.execute(testcase, client.next_run_id(), "demo");
  std::printf("run finished: %s after %.1f s\n",
              run.discomforted ? "discomfort" : "exhausted", run.offset_s);

  client.record_result(std::move(run));
  client.hot_sync(api);
  std::printf("result uploaded; server now holds %zu results\n",
              server.results().size());

  channel->close();
  listener.shutdown();
  server_thread.join();
  return 0;
}
