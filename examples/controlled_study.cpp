/// Reruns the paper's §3 controlled study end to end (in virtual time, with
/// the calibrated synthetic population) and writes every analysis artifact:
/// the run log, the per-cell metric grid, and the aggregated CDFs.
///
/// Usage: controlled_study [--participants N] [--seed S] [--jobs J] [--out DIR]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/breakdown.hpp"
#include "analysis/export.hpp"
#include "study/controlled_study.hpp"
#include "util/fs.hpp"
#include "util/strings.hpp"

namespace {

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: controlled_study [--participants N] [--seed S] "
               "[--jobs J] [--out DIR]\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace uucs;
  study::ControlledStudyConfig config;
  std::string out_dir = "controlled_study_out";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (++i >= argc) usage();
      return argv[i];
    };
    if (arg == "--participants") {
      config.participants = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--seed") {
      config.seed = std::stoull(next());
    } else if (arg == "--jobs") {
      config.jobs = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--out") {
      out_dir = next();
    } else {
      usage();
    }
  }

  std::printf("calibrating population from the paper's published statistics...\n");
  const auto output = study::run_controlled_study(config);
  std::printf("ran %zu testcase runs for %zu participants (seed %llu)\n",
              output.results.size(), output.users.size(),
              static_cast<unsigned long long>(config.seed));
  std::printf("%s", output.engine.summary().render().c_str());

  const auto table = analysis::compute_breakdown_table(output.results);
  std::printf("blank-testcase discomfort probability overall: %.2f\n",
              table.total.blank_discomfort_probability());

  make_dirs(out_dir);
  output.results.save(out_dir + "/results.txt");
  analysis::export_runs(output.results).save(out_dir + "/runs.csv");
  analysis::export_metric_grid(output.results).save(out_dir + "/metrics.csv");
  for (Resource r : kStudyResources) {
    analysis::export_cdf(analysis::aggregate_cdf(output.results, r))
        .save(out_dir + "/cdf_" + resource_name(r) + ".csv");
  }
  std::printf("wrote results.txt, runs.csv, metrics.csv and per-resource CDFs "
              "under %s/\n",
              out_dir.c_str());

  // Console summary: the metric grid (row 0 is the CSV header).
  const Csv grid = analysis::export_metric_grid(output.results);
  for (std::size_t i = 1; i < grid.row_count(); ++i) {
    const auto& row = grid.row(i);
    std::printf("%-11s %-7s df=%-4s ex=%-4s fd=%-6s c05=%-6s ca=%s\n",
                row[0].c_str(), row[1].c_str(), row[2].c_str(), row[3].c_str(),
                row[4].c_str(), row[5].c_str(), row[6].c_str());
  }
  return 0;
}
