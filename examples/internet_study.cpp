/// Simulates the §4 Internet-wide study: a heterogeneous fleet of clients
/// registering with a UUCS server, hot-syncing growing random samples of a
/// 2000+ testcase suite, executing testcases at Poisson arrivals while
/// their users work, and uploading the results. The server's stores are
/// written out as the same text files a real deployment would keep.
///
/// Usage: internet_study [--clients N] [--days D] [--seed S] [--jobs J]
///        [--out DIR]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "study/internet_study.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace {

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: internet_study [--clients N] [--days D] [--seed S] "
               "[--jobs J] [--out DIR]\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace uucs;
  // Registration chatter for a whole fleet would drown the summary.
  Logger::instance().set_level(LogLevel::kWarn);
  study::InternetStudyConfig config;
  std::string out_dir = "internet_study_out";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (++i >= argc) usage();
      return argv[i];
    };
    if (arg == "--clients") {
      config.clients = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--days") {
      config.duration_s = std::stod(next()) * 24 * 3600;
    } else if (arg == "--seed") {
      config.seed = std::stoull(next());
    } else if (arg == "--jobs") {
      config.jobs = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--out") {
      out_dir = next();
    } else {
      usage();
    }
  }

  std::printf("simulating %zu clients over %.1f days...\n", config.clients,
              config.duration_s / 86400.0);
  const auto out = study::run_internet_study(config);
  std::printf("%s", out.engine.summary().render().c_str());
  std::printf("clients registered: %zu\n", out.server->client_count());
  std::printf("runs executed:      %zu\n", out.total_runs);
  std::printf("hot syncs:          %zu\n", out.total_syncs);
  std::printf("distinct testcases: %zu of %zu\n", out.distinct_testcases_run,
              out.server->testcases().size());

  out.server->save(out_dir);
  std::printf("server stores (testcases.txt, results.txt, registrations.txt) "
              "written under %s/\n",
              out_dir.c_str());
  return 0;
}
