/// The live UUCS client experience on this machine: plays a testcase with
/// the REAL resource exercisers while you work, watching for the discomfort
/// hot-key — here `kill -USR1 <pid>` instead of the paper's F11/tray icon —
/// and prints the run record (termination cause, offset, last five
/// contention levels, load samples) exactly as the client would upload it.
///
/// Usage: live_borrow [--resource cpu|memory|disk] [--shape ramp|step|blank]
///                    [--level X] [--duration SECONDS]
///
/// Defaults are deliberately gentle: a 10-second CPU ramp to level 1.0.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "client/run_executor.hpp"
#include "testcase/suite.hpp"
#include "util/strings.hpp"

namespace {

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: live_borrow [--resource cpu|memory|disk] "
               "[--shape ramp|step|blank] [--level X] [--duration S]\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace uucs;
  Resource resource = Resource::kCpu;
  std::string shape = "ramp";
  double level = 1.0;
  double duration = 10.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (++i >= argc) usage();
      return argv[i];
    };
    if (arg == "--resource") {
      resource = parse_resource(next());
    } else if (arg == "--shape") {
      shape = next();
    } else if (arg == "--level") {
      level = std::stod(next());
    } else if (arg == "--duration") {
      duration = std::stod(next());
    } else {
      usage();
    }
  }

  Testcase testcase("live");
  if (shape == "ramp") {
    testcase = make_ramp_testcase(resource, level, duration, 10.0);
  } else if (shape == "step") {
    testcase = make_step_testcase(resource, level, duration, duration / 3.0, 10.0);
  } else if (shape == "blank") {
    testcase = make_blank_testcase(duration);
  } else {
    usage();
  }

  std::printf("playing %s for %.0f s — press the discomfort hot-key with:\n",
              testcase.description().c_str(), testcase.duration());
  std::printf("    kill -USR1 %d\n", ::getpid());

  RealClock clock;
  ExerciserConfig config;
  config.subinterval_s = 0.01;
  // Modest live defaults; a deployment build would size the disk file at
  // 2x RAM and the memory pool at the full physical memory, like the paper.
  config.memory_pool_bytes = 256u << 20;
  config.disk_file_bytes = 128u << 20;
  ExerciserSet exercisers(clock, config);
  SignalFeedback feedback;
  ProcSampler sampler;
  LoadRecorder recorder(clock, sampler, 1.0);
  RunExecutor executor(clock, exercisers, feedback, &recorder);

  const RunRecord run = executor.execute(testcase, "live/0", "console");
  std::printf("\n%s", kv_serialize({run.to_record()}).c_str());
  std::printf("run %s after %.1f s\n",
              run.discomforted ? "stopped by discomfort feedback" : "exhausted",
              run.offset_s);
  return 0;
}
