/// Testcase tooling (the paper's Fig 2 "testcase creation tools"): generates
/// the paper-scale Internet suite — 2000+ testcases, predominantly M/M/1 and
/// M/G/1 traces — and writes it as the text store a server would load, plus
/// a summary of the catalog composition.
///
/// Usage: make_testcases [--out FILE] [--seed S] [--small]

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "testcase/suite.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace uucs;
  std::string out = "testcases.txt";
  std::uint64_t seed = 1;
  SuiteSpec spec;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out = argv[++i];
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::stoull(argv[++i]);
    } else if (arg == "--small") {
      spec.steps_per_resource = 6;
      spec.ramps_per_resource = 6;
      spec.sines_per_resource = 3;
      spec.saws_per_resource = 3;
      spec.expexp_per_resource = 12;
      spec.exppar_per_resource = 12;
      spec.blanks = 4;
    } else {
      std::fprintf(stderr, "usage: make_testcases [--out FILE] [--seed S] [--small]\n");
      return 2;
    }
  }

  Rng rng(seed);
  const TestcaseStore store = generate_internet_suite(spec, rng);

  std::map<std::string, std::size_t> kinds;
  for (const auto& id : store.ids()) {
    // ids look like "inet-cpu-expexp-0042" or "blank-...".
    const auto parts = split(id, '-');
    kinds[parts.size() >= 3 ? parts[2] : parts[0]]++;
  }
  std::printf("generated %zu testcases:\n", store.size());
  for (const auto& [kind, count] : kinds) {
    std::printf("  %-8s %zu\n", kind.c_str(), count);
  }

  store.save(out);
  std::printf("suite written to %s\n", out.c_str());

  // Round-trip check: the file a server or client would load.
  const TestcaseStore loaded = TestcaseStore::load(out);
  std::printf("reloaded %zu testcases from disk — codec round trip OK\n",
              loaded.size());
  return 0;
}
