/// What does resource borrowing *feel* like? For each task this example
/// maps the Fig 8 CPU ramp through the app-degradation model and prints the
/// perceived response latency over the two minutes of the testcase — the
/// mechanistic layer the synthetic users press their discomfort key on.
/// Word barely moves off the 100 ms baseline at contention Quake users
/// find unbearable.

#include <cstdio>

#include "sim/trace.hpp"
#include "study/paper_constants.hpp"

int main() {
  using namespace uucs;
  const sim::HostModel host(HostSpec::paper_study_machine());

  for (sim::Task task : sim::kAllTasks) {
    const sim::AppModel app(sim::AppProfile::for_task(task), host);
    const double xmax = study::ramp_max(task, Resource::kCpu);
    const auto f = make_ramp(xmax, study::kRunDuration);
    const auto trace = sim::degradation_trace(app, Resource::kCpu, f, 1.0);

    std::printf("\n=== %s: CPU ramp to %.1f over 120 s ===\n",
                sim::task_display_name(task).c_str(), xmax);
    std::printf("  t(s)  contention  perceived latency\n");
    for (std::size_t i = 0; i < trace.degradation.size(); i += 20) {
      const double latency =
          sim::degradation_to_latency_ms(trace.degradation[i]);
      const int bar = static_cast<int>(std::min(60.0, latency / 25.0));
      std::printf("  %4zu  %10.2f  %7.0f ms |%s\n", i, trace.contention[i],
                  latency, std::string(static_cast<std::size_t>(bar), '#').c_str());
    }
    std::printf("  peak: %.0f ms at contention %.2f\n",
                sim::degradation_to_latency_ms(trace.peak_degradation),
                trace.contention.back());
  }
  std::printf("\n(100 ms baseline = the instantaneous-feel budget from the "
              "HCI literature the paper cites)\n");
  return 0;
}
