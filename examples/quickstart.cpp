/// Quickstart: the smallest end-to-end tour of the library.
///
///  1. Build a testcase (a CPU ramp) with the exercise-function generators.
///  2. Simulate a synthetic user running it during a Quake session on the
///     paper's study machine, and read the outcome.
///  3. Play two seconds of real CPU borrowing on THIS machine with the live
///     exerciser and measure the slowdown an equal-priority thread sees.
///
/// Run time: a few seconds; no files are left behind.

#include <cstdio>

#include "exerciser/probe.hpp"
#include "sim/user_model.hpp"
#include "study/population.hpp"
#include "testcase/suite.hpp"

int main() {
  using namespace uucs;

  // --- 1. a testcase: ramp CPU contention 0 -> 2.0 over 120 s ------------
  const Testcase testcase = make_ramp_testcase(Resource::kCpu, 2.0, 120.0);
  std::printf("testcase %s: %s, duration %.0f s, max level %.1f\n",
              testcase.id().c_str(), testcase.description().c_str(),
              testcase.duration(), testcase.max_level(Resource::kCpu));

  // --- 2. one simulated run ----------------------------------------------
  // Draw a user from the population calibrated against the paper's
  // published statistics, then run the testcase in virtual time while the
  // user "plays Quake".
  const study::PopulationParams params = study::calibrate_population();
  Rng rng(42);
  const sim::UserProfile user = study::draw_user(params, rng, "demo-user");
  std::printf("\ndemo user: quake skill '%s', CPU-while-gaming threshold %.2f\n",
              sim::skill_rating_name(user.rating(sim::SkillCategory::kQuake)).c_str(),
              user.threshold(sim::Task::kQuake, Resource::kCpu));

  const sim::HostModel host(HostSpec::paper_study_machine());
  sim::RunSimulator simulator(
      host, {params.noise_rates[0], params.noise_rates[1], params.noise_rates[2],
             params.noise_rates[3]});
  const RunRecord run =
      simulator.simulate_record(user, sim::Task::kQuake, testcase, rng, "demo/0");
  if (run.discomforted) {
    std::printf("simulated run: user pressed the discomfort key %.1f s in, at "
                "contention %.2f\n",
                run.offset_s, run.level_at_feedback(Resource::kCpu).value_or(0.0));
  } else {
    std::printf("simulated run: testcase exhausted without feedback\n");
  }

  // --- 3. two seconds of real borrowing ----------------------------------
  RealClock clock;
  ExerciserConfig config;
  config.subinterval_s = 0.01;
  auto exerciser = make_cpu_exerciser(clock, config);
  const double window = 0.5;
  const double base = cpu_probe_rate(clock, window);
  const double contended = probe_rate_under_contention(
      *exerciser, 1.0, window, clock, [&] { return cpu_probe_rate(clock, window); });
  std::printf("\nlive CPU exerciser at contention 1.0 on this machine:\n");
  std::printf("  probe rate alone:      %.3g units/s\n", base);
  std::printf("  probe rate contended:  %.3g units/s (expected ~%.3g = 1/(1+1))\n",
              contended, base / 2.0);
  return 0;
}
