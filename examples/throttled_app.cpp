/// §5 end to end: a background "grid" application that throttles its own
/// borrowing off the comfort study. It
///
///  1. runs the controlled study (virtual time) and distills the results
///     into a ComfortProfile (the paper's CDFs, Figs 10-12),
///  2. asks the profile how much CPU it may take under a 5% annoyance
///     budget while the user browses ("Know what the user is doing"),
///  3. actually borrows that much CPU on THIS machine for a few seconds
///     with the real exerciser, demonstrating the fine-grained throttle,
///  4. simulates a discomfort press and shows the adaptive policy backing
///     off and recovering — the feedback-driven scheduling the paper lists
///     as future work.

#include <cstdio>

#include "core/policy_eval.hpp"
#include "exerciser/exerciser.hpp"
#include "study/controlled_study.hpp"

int main() {
  using namespace uucs;

  // 1. study -> profile.
  std::printf("running the comfort study (virtual time)...\n");
  study::ControlledStudyConfig study_config;
  const auto study_out = study::run_controlled_study(study_config);
  const auto profile = core::ComfortProfile::from_results(study_out.results);

  // 2. ask the throttle.
  core::AdaptiveThrottle throttle(profile, /*budget=*/0.05);
  core::BorrowContext ctx;
  ctx.task = "ie";
  ctx.user_active = true;
  ctx.now_s = 0.0;
  const double cpu_allowed = throttle.allowed_contention(Resource::kCpu, ctx);
  const double disk_allowed = throttle.allowed_contention(Resource::kDisk, ctx);
  std::printf("budget 5%% while the user browses: CPU contention <= %.2f, "
              "disk <= %.2f\n",
              cpu_allowed, disk_allowed);
  std::printf("(expected fraction of users discomforted at that CPU level: "
              "%.3f)\n",
              profile.discomfort_fraction(Resource::kCpu, cpu_allowed, "ie"));

  // 3. borrow for real, briefly.
  RealClock clock;
  ExerciserConfig exerciser_config;
  exerciser_config.subinterval_s = 0.01;
  auto exerciser = make_cpu_exerciser(clock, exerciser_config);
  std::printf("borrowing CPU at contention %.2f for 2 s with the real "
              "exerciser...\n",
              cpu_allowed);
  exerciser->run(make_constant(std::max(cpu_allowed, 0.05), 2.0, 10.0));
  std::printf("done.\n");

  // 4. feedback-driven backoff.
  std::printf("\nuser presses the discomfort key -> adaptive backoff:\n");
  throttle.on_feedback(Resource::kCpu, ctx);
  for (double t : {0.0, 600.0, 1800.0, 7200.0}) {
    ctx.now_s = t;
    std::printf("  t=%5.0f s: allowed CPU contention %.2f\n", t,
                throttle.allowed_contention(Resource::kCpu, ctx));
  }
  return 0;
}
