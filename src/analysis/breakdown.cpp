#include "analysis/breakdown.hpp"

#include "analysis/metrics.hpp"

namespace uucs::analysis {

double RunBreakdown::blank_discomfort_probability() const {
  const std::size_t blanks = blank_discomforted + blank_exhausted;
  return blanks == 0
             ? 0.0
             : static_cast<double>(blank_discomforted) / static_cast<double>(blanks);
}

void RunBreakdown::add(const RunBreakdown& other) {
  nonblank_discomforted += other.nonblank_discomforted;
  nonblank_exhausted += other.nonblank_exhausted;
  blank_discomforted += other.blank_discomforted;
  blank_exhausted += other.blank_exhausted;
}

RunBreakdown compute_breakdown(const uucs::ResultStore& results,
                               const std::string& task, BreakdownScope scope) {
  RunBreakdown b;
  for (const auto* run : results.filter(task)) {
    if (is_blank_run(*run)) {
      ++(run->discomforted ? b.blank_discomforted : b.blank_exhausted);
    } else {
      if (scope == BreakdownScope::kCpuAndBlank &&
          run_resource(*run) != uucs::Resource::kCpu) {
        continue;
      }
      ++(run->discomforted ? b.nonblank_discomforted : b.nonblank_exhausted);
    }
  }
  return b;
}

BreakdownTable compute_breakdown_table(const uucs::ResultStore& results,
                                       BreakdownScope scope) {
  BreakdownTable table;
  for (uucs::sim::Task t : uucs::sim::kAllTasks) {
    const auto i = static_cast<std::size_t>(t);
    table.per_task[i] = compute_breakdown(results, uucs::sim::task_name(t), scope);
    table.total.add(table.per_task[i]);
  }
  return table;
}

}  // namespace uucs::analysis
