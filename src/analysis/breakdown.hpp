#pragma once

#include <array>
#include <string>

#include "sim/task.hpp"
#include "testcase/run_record.hpp"

namespace uucs::analysis {

/// Fig 9's breakdown of runs for one task (or the study total): counts by
/// {blank, non-blank} x {discomforted, exhausted}, plus the probability of
/// discomfort from a blank testcase (the *noise floor*).
struct RunBreakdown {
  std::size_t nonblank_discomforted = 0;
  std::size_t nonblank_exhausted = 0;
  std::size_t blank_discomforted = 0;
  std::size_t blank_exhausted = 0;

  std::size_t total() const {
    return nonblank_discomforted + nonblank_exhausted + blank_discomforted +
           blank_exhausted;
  }

  /// P(discomfort | blank testcase); 0 when no blank runs exist.
  double blank_discomfort_probability() const;

  void add(const RunBreakdown& other);
};

/// Which runs enter the breakdown. The paper's Fig 9 per-task counts work
/// out to ~2 CPU runs plus ~2 blank runs per user per task — i.e. the
/// published table covers the CPU testcases and the blanks, not the disk
/// and memory runs — so kCpuAndBlank reproduces the figure and kAllRuns
/// gives the complete picture.
enum class BreakdownScope { kCpuAndBlank, kAllRuns };

/// Computes the breakdown over runs for `task` ("" = all tasks).
RunBreakdown compute_breakdown(const uucs::ResultStore& results,
                               const std::string& task,
                               BreakdownScope scope = BreakdownScope::kCpuAndBlank);

/// Per-task breakdowns in paper order plus the total row.
struct BreakdownTable {
  std::array<RunBreakdown, uucs::sim::kTaskCount> per_task;
  RunBreakdown total;
};
BreakdownTable compute_breakdown_table(
    const uucs::ResultStore& results,
    BreakdownScope scope = BreakdownScope::kCpuAndBlank);

}  // namespace uucs::analysis
