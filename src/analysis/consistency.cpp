#include "analysis/consistency.hpp"

#include <map>

#include "analysis/metrics.hpp"
#include "stats/correlation.hpp"
#include "stats/summary.hpp"

namespace uucs::analysis {

ConsistencyReport user_consistency(const uucs::ResultStore& results) {
  // Per-(task, resource) mean discomfort level, for normalization.
  std::map<std::pair<std::string, uucs::Resource>, std::vector<double>> cell_levels;
  // Per-user normalized scores, split into CPU vs non-CPU resources.
  struct UserScores {
    std::vector<double> cpu;
    std::vector<double> other;
  };
  std::map<std::string, UserScores> users;

  // Spontaneous (noise-floor) presses carry no tolerance information and
  // mask the correlation; simulated records flag them, so drop those.
  auto usable = [](const uucs::RunRecord& run) {
    return run.discomforted && !run.user_id.empty() &&
           run.meta("noise_triggered", "false") != "true";
  };

  for (const auto& run : results.records()) {
    if (!usable(run)) continue;
    const auto r = run_resource(run);
    if (!r || !is_ramp_run(run, *r)) continue;
    const auto level = run.level_at_feedback(*r);
    if (!level) continue;
    cell_levels[{run.task, *r}].push_back(*level);
  }

  std::map<std::pair<std::string, uucs::Resource>, double> cell_mean;
  for (const auto& [key, levels] : cell_levels) {
    cell_mean[key] = uucs::stats::mean_of(levels);
  }

  for (const auto& run : results.records()) {
    if (!usable(run)) continue;
    const auto r = run_resource(run);
    if (!r || !is_ramp_run(run, *r)) continue;
    const auto level = run.level_at_feedback(*r);
    if (!level) continue;
    const double mean = cell_mean[{run.task, *r}];
    if (mean <= 0) continue;
    const double normalized = *level / mean;
    auto& scores = users[run.user_id];
    (*r == uucs::Resource::kCpu ? scores.cpu : scores.other).push_back(normalized);
  }

  std::vector<double> cpu_scores, other_scores;
  for (const auto& [user, scores] : users) {
    if (scores.cpu.empty() || scores.other.empty()) continue;
    cpu_scores.push_back(uucs::stats::mean_of(scores.cpu));
    other_scores.push_back(uucs::stats::mean_of(scores.other));
  }

  ConsistencyReport report;
  report.users = cpu_scores.size();
  if (report.users >= 8) {
    report.spearman = uucs::stats::spearman_correlation(cpu_scores, other_scores);
    report.valid = true;
  }
  return report;
}

}  // namespace uucs::analysis
