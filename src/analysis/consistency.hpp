#pragma once

#include <optional>

#include "testcase/run_record.hpp"

namespace uucs::analysis {

/// Within-user consistency: do users who tolerate little on one resource
/// also tolerate little on the others? The population model induces this
/// through its shared-sensitivity loading (DESIGN.md §4); this statistic
/// measures it from run records so the ablation bench can show it vanish
/// when the loading is disabled.
///
/// Method: for each user and resource, average the user's discomfort
/// levels from ramp runs, normalized by the per-(task,resource) mean so
/// tasks with different ramp scales are comparable; then Spearman-correlate
/// the per-user CPU score against the per-user disk+memory score across
/// users with both.
struct ConsistencyReport {
  double spearman = 0.0;   ///< cross-resource rank correlation of tolerance
  std::size_t users = 0;   ///< users contributing to the correlation
  bool valid = false;      ///< false when fewer than 8 users qualify
};

ConsistencyReport user_consistency(const uucs::ResultStore& results);

}  // namespace uucs::analysis
