#include "analysis/dynamics.hpp"

#include <map>

#include "analysis/metrics.hpp"
#include "stats/summary.hpp"

namespace uucs::analysis {

RampStepComparison compare_ramp_vs_step(const uucs::ResultStore& results,
                                        uucs::sim::Task task, uucs::Resource r) {
  // Collect each user's discomfort levels per shape (a user may have run
  // the same shape more than once; average their levels).
  std::map<std::string, std::vector<double>> ramp_levels;
  std::map<std::string, std::vector<double>> step_levels;
  for (const auto* run : results.filter(uucs::sim::task_name(task))) {
    if (!run->discomforted) continue;
    const auto level = run->level_at_feedback(r);
    if (!level) continue;
    if (is_ramp_run(*run, r)) {
      ramp_levels[run->user_id].push_back(*level);
    } else if (is_step_run(*run, r)) {
      step_levels[run->user_id].push_back(*level);
    }
  }

  std::vector<double> diffs;
  std::size_t higher = 0;
  for (const auto& [user, ramps] : ramp_levels) {
    const auto it = step_levels.find(user);
    if (it == step_levels.end()) continue;
    const double ramp = uucs::stats::mean_of(ramps);
    const double step = uucs::stats::mean_of(it->second);
    diffs.push_back(ramp - step);
    if (ramp > step) ++higher;
  }

  RampStepComparison cmp;
  cmp.pairs = diffs.size();
  if (!diffs.empty()) {
    cmp.frac_ramp_higher = static_cast<double>(higher) / static_cast<double>(diffs.size());
    cmp.mean_difference = uucs::stats::mean_of(diffs);
    cmp.ttest = uucs::stats::one_sample_t_test(diffs, 0.0);
  }
  return cmp;
}

}  // namespace uucs::analysis
