#pragma once

#include <string>
#include <vector>

#include "sim/task.hpp"
#include "stats/ttest.hpp"
#include "testcase/run_record.hpp"

namespace uucs::analysis {

/// §3.3.5's "frog in the pot" analysis: pair each user's ramp and step runs
/// for one (task, resource) and test whether users tolerate higher
/// contention when it arrives as a slow ramp than as a quick step.
struct RampStepComparison {
  std::size_t pairs = 0;            ///< users with a discomfort level in both
  double frac_ramp_higher = 0.0;    ///< fraction of pairs with ramp > step
  double mean_difference = 0.0;     ///< mean(ramp level - step level)
  uucs::stats::TTestResult ttest;   ///< paired differences vs zero
};

/// Builds the comparison over `results` for (task, r). A user contributes
/// one pair per (ramp discomfort level, step discomfort level); users who
/// exhausted either run type are excluded, as the paper's metric needs an
/// observed level on both sides.
RampStepComparison compare_ramp_vs_step(const uucs::ResultStore& results,
                                        uucs::sim::Task task, uucs::Resource r);

}  // namespace uucs::analysis
