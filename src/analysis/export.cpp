#include "analysis/export.hpp"

#include "util/strings.hpp"

namespace uucs::analysis {

uucs::Csv export_cdf(const uucs::stats::DiscomfortCdf& cdf) {
  uucs::Csv csv;
  csv.add_row({"level", "cumulative_fraction"});
  for (const auto& [x, f] : cdf.curve_points()) {
    csv.add_row({uucs::strprintf("%.10g", x), uucs::strprintf("%.10g", f)});
  }
  return csv;
}

uucs::Csv export_metric_grid(const uucs::ResultStore& results) {
  uucs::Csv csv;
  csv.add_row({"task", "resource", "df_count", "ex_count", "fd", "c05", "ca",
               "ca_lo", "ca_hi"});
  auto add = [&](const std::string& task_label, const std::string& task_filter,
                 uucs::Resource r) {
    const CellMetrics m = compute_cell(results, task_filter, r);
    csv.add_row({task_label, uucs::resource_name(r), std::to_string(m.df_count),
                 std::to_string(m.ex_count), uucs::strprintf("%.4f", m.fd),
                 m.c05 ? uucs::strprintf("%.4f", *m.c05) : "*",
                 m.ca ? uucs::strprintf("%.4f", m.ca->mean) : "*",
                 m.ca ? uucs::strprintf("%.4f", m.ca->lo) : "*",
                 m.ca ? uucs::strprintf("%.4f", m.ca->hi) : "*"});
  };
  for (uucs::sim::Task t : uucs::sim::kAllTasks) {
    for (uucs::Resource r : uucs::kStudyResources) {
      add(uucs::sim::task_display_name(t), uucs::sim::task_name(t), r);
    }
  }
  for (uucs::Resource r : uucs::kStudyResources) add("Total", "", r);
  return csv;
}

uucs::Csv export_runs(const uucs::ResultStore& results) {
  uucs::Csv csv;
  csv.add_row({"run_id", "user_id", "testcase_id", "task", "discomforted",
               "offset_s", "resource", "level_at_feedback"});
  for (const auto& run : results.records()) {
    const auto r = run_resource(run);
    const auto level = r ? run.level_at_feedback(*r) : std::nullopt;
    csv.add_row({run.run_id, run.user_id, run.testcase_id, run.task,
                 run.discomforted ? "1" : "0", uucs::strprintf("%.4f", run.offset_s),
                 r ? uucs::resource_name(*r) : "",
                 level ? uucs::strprintf("%.6g", *level) : ""});
  }
  return csv;
}

}  // namespace uucs::analysis
