#pragma once

#include <string>

#include "analysis/metrics.hpp"
#include "util/csv.hpp"

namespace uucs::analysis {

/// Export helpers — the "set of tools ... for importing testcase results
/// into a database" and feeding external analysis (Fig 2). Everything is
/// CSV so any plotting stack can regenerate the figures.

/// CDF curve points (level, cumulative fraction) with a header row.
uucs::Csv export_cdf(const uucs::stats::DiscomfortCdf& cdf);

/// The full per-cell metric grid (task x resource rows, fd/c05/ca columns).
uucs::Csv export_metric_grid(const uucs::ResultStore& results);

/// Raw run-record dump (one row per run) for ad-hoc queries.
uucs::Csv export_runs(const uucs::ResultStore& results);

}  // namespace uucs::analysis
