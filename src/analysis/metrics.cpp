#include "analysis/metrics.hpp"

#include "util/rng.hpp"
#include "util/strings.hpp"

namespace uucs::analysis {

std::optional<uucs::Resource> run_resource(const uucs::RunRecord& run) {
  if (run.last_levels.size() != 1) return std::nullopt;
  return uucs::parse_resource(run.last_levels.begin()->first);
}

bool is_blank_run(const uucs::RunRecord& run) {
  return uucs::starts_with(run.testcase_id, "blank");
}

bool is_ramp_run(const uucs::RunRecord& run, uucs::Resource r) {
  // Substring (not prefix) so the Internet suite's "inet-cpu-ramp-0042"
  // ids classify like the controlled study's "cpu-ramp-x2-t120".
  return run.testcase_id.find(uucs::resource_name(r) + "-ramp") !=
         std::string::npos;
}

bool is_step_run(const uucs::RunRecord& run, uucs::Resource r) {
  return run.testcase_id.find(uucs::resource_name(r) + "-step") !=
         std::string::npos;
}

uucs::stats::DiscomfortCdf build_discomfort_cdf(
    const std::vector<const uucs::RunRecord*>& runs, uucs::Resource r) {
  uucs::stats::DiscomfortCdf cdf;
  for (const auto* run : runs) {
    const auto level = run->level_at_feedback(r);
    if (!level) continue;
    if (run->discomforted) {
      cdf.add_discomfort(*level);
    } else {
      cdf.add_exhausted();
    }
  }
  return cdf;
}

CellMetrics metrics_from_cdf(const uucs::stats::DiscomfortCdf& cdf) {
  CellMetrics m;
  m.df_count = cdf.discomfort_count();
  m.ex_count = cdf.exhausted_count();
  m.fd = cdf.fraction_discomforted();
  m.c05 = cdf.level_at_fraction(0.05);
  m.ca = cdf.mean_discomfort_level(0.95);
  return m;
}

std::vector<const uucs::RunRecord*> select_ramp_runs(const uucs::ResultStore& results,
                                                     const std::string& task,
                                                     uucs::Resource r) {
  std::vector<const uucs::RunRecord*> out;
  for (const auto* run : results.filter(task)) {
    // Host-faulted runs (degraded/failed/hung/aborted) did not deliver
    // their contention schedule faithfully; mixing them into the comfort
    // estimates would blur "the user was discomforted" with "the host was
    // sick". Healthy records carry no outcome key, so this is free for the
    // simulated studies.
    if (run->host_fault()) continue;
    if (is_ramp_run(*run, r)) out.push_back(run);
  }
  return out;
}

CellMetrics compute_cell(const uucs::ResultStore& results, const std::string& task,
                         uucs::Resource r) {
  return metrics_from_cdf(build_discomfort_cdf(select_ramp_runs(results, task, r), r));
}

uucs::stats::DiscomfortCdf aggregate_cdf(const uucs::ResultStore& results,
                                         uucs::Resource r) {
  return build_discomfort_cdf(select_ramp_runs(results, "", r), r);
}

uucs::stats::KaplanMeier build_km(const std::vector<const uucs::RunRecord*>& runs,
                                  uucs::Resource r) {
  uucs::stats::KaplanMeier km;
  for (const auto* run : runs) {
    const auto level = run->level_at_feedback(r);
    if (!level) continue;
    if (run->discomforted) {
      km.add_event(*level);
    } else {
      km.add_censored(*level);
    }
  }
  return km;
}

uucs::stats::KaplanMeier aggregate_km(const uucs::ResultStore& results,
                                      uucs::Resource r) {
  return build_km(select_ramp_runs(results, "", r), r);
}

LevelCi bootstrap_level_ci(const uucs::stats::DiscomfortCdf& cdf, double q,
                           double confidence, std::size_t resamples,
                           std::uint64_t seed) {
  LevelCi out;
  const auto total = cdf.run_count();
  if (total == 0) return out;
  const auto& levels = cdf.discomfort_levels();

  const auto point = cdf.level_at_fraction(q);
  if (point) out.estimate = *point;

  uucs::Rng rng(seed);
  std::vector<double> replicates;
  replicates.reserve(resamples);
  for (std::size_t rep = 0; rep < resamples; ++rep) {
    uucs::stats::DiscomfortCdf sample;
    for (std::size_t i = 0; i < total; ++i) {
      const auto pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(total) - 1));
      if (pick < levels.size()) {
        sample.add_discomfort(levels[pick]);
      } else {
        sample.add_exhausted();
      }
    }
    const auto level = sample.level_at_fraction(q);
    if (level) replicates.push_back(*level);
  }
  out.coverage = static_cast<double>(replicates.size()) /
                 static_cast<double>(resamples);
  if (replicates.size() < 10 || !point) return out;
  const double alpha = 1.0 - confidence;
  out.lo = uucs::stats::quantile(replicates, alpha / 2.0);
  out.hi = uucs::stats::quantile(replicates, 1.0 - alpha / 2.0);
  out.valid = out.coverage > 0.9;
  return out;
}

}  // namespace uucs::analysis
