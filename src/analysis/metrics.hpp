#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sim/task.hpp"
#include "stats/ecdf.hpp"
#include "stats/kaplan_meier.hpp"
#include "testcase/run_record.hpp"

namespace uucs::analysis {

/// The single resource a run exercised; nullopt for blank or multi-resource
/// runs (the controlled study uses single-resource testcases only).
std::optional<uucs::Resource> run_resource(const uucs::RunRecord& run);

/// True if the run executed a blank testcase.
bool is_blank_run(const uucs::RunRecord& run);

/// True if the run's testcase was a ramp / step on `r` (id naming scheme
/// "<resource>-ramp-..." / "<resource>-step-...").
bool is_ramp_run(const uucs::RunRecord& run, uucs::Resource r);
bool is_step_run(const uucs::RunRecord& run, uucs::Resource r);

/// Builds the paper's discomfort CDF from runs: each discomforted run
/// contributes its contention level at feedback, each exhausted run is
/// censored. Runs without a level for `r` are skipped.
uucs::stats::DiscomfortCdf build_discomfort_cdf(
    const std::vector<const uucs::RunRecord*>& runs, uucs::Resource r);

/// The paper's three per-cell metrics (§3.3.1): f_d, c_0.05 and c_a.
struct CellMetrics {
  std::size_t df_count = 0;
  std::size_t ex_count = 0;
  double fd = 0.0;                                ///< Fig 14
  std::optional<double> c05;                      ///< Fig 15 ('*' when absent)
  std::optional<uucs::stats::MeanCi> ca;          ///< Fig 16 with 95% CI
};

CellMetrics metrics_from_cdf(const uucs::stats::DiscomfortCdf& cdf);

/// Ramp runs for (task, resource) drawn from a result set; `task` empty
/// selects all tasks (the aggregated Figs 10-12).
std::vector<const uucs::RunRecord*> select_ramp_runs(const uucs::ResultStore& results,
                                                     const std::string& task,
                                                     uucs::Resource r);

/// Per-cell metrics for (task, resource) over ramp runs.
CellMetrics compute_cell(const uucs::ResultStore& results, const std::string& task,
                         uucs::Resource r);

/// Aggregated (all-task) CDF for `r` over ramp runs — Figs 10-12.
uucs::stats::DiscomfortCdf aggregate_cdf(const uucs::ResultStore& results,
                                         uucs::Resource r);

/// Kaplan–Meier estimator over the same runs: discomforted runs are events
/// at their feedback level; exhausted runs are right-censored at the last
/// level they reached. This corrects the differential-censoring bias of the
/// naive aggregate CDF when tasks explore different ramp maxima (Word's CPU
/// ramp reaches 7.0 while Quake's stops at 1.3) — see `bench_km_estimator`.
uucs::stats::KaplanMeier build_km(const std::vector<const uucs::RunRecord*>& runs,
                                  uucs::Resource r);

/// Aggregated (all-task) KM estimator for `r` over ramp runs.
uucs::stats::KaplanMeier aggregate_km(const uucs::ResultStore& results,
                                      uucs::Resource r);

/// Percentile-bootstrap confidence interval for a CDF level metric such as
/// c_0.05: runs (discomfort levels + censored count) are resampled with
/// replacement and the level recomputed per replicate. `coverage` reports
/// the fraction of replicates where the level existed (fd >= q); the
/// interval is valid when that fraction is high.
struct LevelCi {
  double estimate = 0.0;
  double lo = 0.0;
  double hi = 0.0;
  double coverage = 0.0;
  bool valid = false;
};
LevelCi bootstrap_level_ci(const uucs::stats::DiscomfortCdf& cdf, double q = 0.05,
                           double confidence = 0.95, std::size_t resamples = 1000,
                           std::uint64_t seed = 17);

}  // namespace uucs::analysis
