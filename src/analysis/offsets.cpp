#include "analysis/offsets.hpp"

namespace uucs::analysis {

std::vector<double> discomfort_offsets(const uucs::ResultStore& results,
                                       const std::string& task,
                                       const std::string& testcase_prefix) {
  std::vector<double> out;
  for (const auto* run : results.filter(task, testcase_prefix)) {
    if (run->discomforted) out.push_back(run->offset_s);
  }
  return out;
}

std::optional<OffsetSummary> summarize_offsets(const uucs::ResultStore& results,
                                               const std::string& task,
                                               const std::string& testcase_prefix) {
  const auto offsets = discomfort_offsets(results, task, testcase_prefix);
  if (offsets.empty()) return std::nullopt;
  OffsetSummary s;
  s.n = offsets.size();
  s.mean_ci = uucs::stats::mean_confidence_interval(offsets);
  s.q25 = uucs::stats::quantile(offsets, 0.25);
  s.median = uucs::stats::quantile(offsets, 0.5);
  s.q75 = uucs::stats::quantile(offsets, 0.75);
  return s;
}

}  // namespace uucs::analysis
