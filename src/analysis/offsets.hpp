#pragma once

#include <optional>
#include <string>
#include <vector>

#include "stats/summary.hpp"
#include "testcase/run_record.hpp"

namespace uucs::analysis {

/// Time-dynamics view of the run records: the paper stores "the time offset
/// into the testcase at which irritation or exhaustion was reported" (§2.3);
/// these helpers summarize it.

/// Offsets (seconds into the testcase) of discomfort reports for runs
/// matching `task` ("" = all) and, optionally, testcase prefix.
std::vector<double> discomfort_offsets(const uucs::ResultStore& results,
                                       const std::string& task,
                                       const std::string& testcase_prefix = "");

/// Summary of the time to discomfort: mean with CI, plus quartiles.
struct OffsetSummary {
  std::size_t n = 0;
  uucs::stats::MeanCi mean_ci;
  double q25 = 0.0;
  double median = 0.0;
  double q75 = 0.0;
};
std::optional<OffsetSummary> summarize_offsets(const uucs::ResultStore& results,
                                               const std::string& task,
                                               const std::string& testcase_prefix = "");

}  // namespace uucs::analysis
