#include "analysis/sensitivity.hpp"

#include "util/error.hpp"

namespace uucs::analysis {

const std::string& sensitivity_name(Sensitivity s) {
  static const std::string kNames[3] = {"L", "M", "H"};
  return kNames[static_cast<std::size_t>(s)];
}

double sensitivity_pressure(const CellMetrics& m) {
  if (!m.ca || m.ca->mean <= 0) return 0.0;
  return m.fd / m.ca->mean;
}

Sensitivity sensitivity_grade(const CellMetrics& m) {
  const double pressure = sensitivity_pressure(m);
  if (pressure < 0.30) return Sensitivity::kLow;
  if (pressure < 0.85) return Sensitivity::kMedium;
  return Sensitivity::kHigh;
}

}  // namespace uucs::analysis
