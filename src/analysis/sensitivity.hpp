#pragma once

#include <string>

#include "analysis/metrics.hpp"

namespace uucs::analysis {

/// Fig 13's Low/Medium/High sensitivity grades. The paper calls its grid an
/// "overall judgement"; this reproduces it with a documented, mechanical
/// heuristic (see sensitivity_grade) so the grading is at least consistent.
enum class Sensitivity { kLow, kMedium, kHigh };

const std::string& sensitivity_name(Sensitivity s);  // "L"/"M"/"H"

/// Heuristic grade for a cell: the *discomfort pressure* fd / c_a — how
/// often borrowing causes discomfort per unit of tolerated contention.
/// Cells with no discomfort grade Low. Thresholds: pressure < 0.30 -> Low,
/// < 0.85 -> Medium, else High.
Sensitivity sensitivity_grade(const CellMetrics& m);

/// The pressure score itself (0 when no discomfort was observed).
double sensitivity_pressure(const CellMetrics& m);

}  // namespace uucs::analysis
