#include "analysis/skill_report.hpp"

#include <algorithm>

#include "analysis/metrics.hpp"

namespace uucs::analysis {

std::vector<double> discomfort_levels_by_rating(const uucs::ResultStore& results,
                                                uucs::sim::Task task, uucs::Resource r,
                                                uucs::sim::SkillCategory category,
                                                uucs::sim::SkillRating rating) {
  const std::string key = "skill." + uucs::sim::skill_category_name(category);
  const std::string want = uucs::sim::skill_rating_name(rating);
  std::vector<double> out;
  for (const auto* run :
       select_ramp_runs(results, uucs::sim::task_name(task), r)) {
    if (!run->discomforted) continue;
    if (run->meta(key) != want) continue;
    const auto level = run->level_at_feedback(r);
    if (level) out.push_back(*level);
  }
  return out;
}

std::vector<SkillDifference> significant_skill_differences(
    const uucs::ResultStore& results, double alpha, std::size_t min_group_size) {
  std::vector<SkillDifference> rows;
  using uucs::sim::SkillRating;
  const std::pair<SkillRating, SkillRating> pairs[] = {
      {SkillRating::kPower, SkillRating::kTypical},
      {SkillRating::kTypical, SkillRating::kBeginner},
  };
  for (uucs::sim::Task task : uucs::sim::kAllTasks) {
    for (uucs::Resource r : uucs::kStudyResources) {
      for (std::size_t c = 0; c < uucs::sim::kSkillCategoryCount; ++c) {
        const auto category = static_cast<uucs::sim::SkillCategory>(c);
        for (const auto& [hi, lo] : pairs) {
          const auto a = discomfort_levels_by_rating(results, task, r, category, hi);
          const auto b = discomfort_levels_by_rating(results, task, r, category, lo);
          if (a.size() < min_group_size || b.size() < min_group_size) continue;
          const auto t = uucs::stats::welch_t_test(b, a);
          if (!t.valid || t.p_two_sided >= alpha) continue;
          SkillDifference row;
          row.task = task;
          row.resource = r;
          row.category = category;
          row.group_a = hi;
          row.group_b = lo;
          row.p = t.p_two_sided;
          row.diff = t.difference;  // mean(lower-rated) - mean(higher-rated)
          row.n_a = a.size();
          row.n_b = b.size();
          rows.push_back(row);
        }
      }
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const SkillDifference& x, const SkillDifference& y) { return x.p < y.p; });
  return rows;
}

}  // namespace uucs::analysis
