#pragma once

#include <string>
#include <vector>

#include "sim/user_model.hpp"
#include "stats/ttest.hpp"
#include "testcase/run_record.hpp"

namespace uucs::analysis {

/// One row of the Fig 17 table: a significant difference in mean discomfort
/// contention level between two adjacent self-rating groups for one
/// (task, resource, rating-category) combination.
struct SkillDifference {
  uucs::sim::Task task;
  uucs::Resource resource;
  uucs::sim::SkillCategory category;
  uucs::sim::SkillRating group_a;  ///< e.g. Power
  uucs::sim::SkillRating group_b;  ///< e.g. Typical
  double p = 1.0;                  ///< Welch two-sided p-value
  double diff = 0.0;               ///< mean(b) - mean(a): how much MORE the
                                   ///< lower-rated group tolerates
  std::size_t n_a = 0;
  std::size_t n_b = 0;
};

/// Discomfort contention levels from `results` ramp runs for (task, r),
/// restricted to runs whose user self-rated `rating` in `category`.
std::vector<double> discomfort_levels_by_rating(const uucs::ResultStore& results,
                                                uucs::sim::Task task, uucs::Resource r,
                                                uucs::sim::SkillCategory category,
                                                uucs::sim::SkillRating rating);

/// Runs unpaired Welch t-tests for every (task, resource, category) and
/// both adjacent rating pairs (Power vs Typical, Typical vs Beginner),
/// keeping rows with p < `alpha` — the paper's Fig 17 procedure (§3.3.4).
std::vector<SkillDifference> significant_skill_differences(
    const uucs::ResultStore& results, double alpha = 0.05,
    std::size_t min_group_size = 5);

}  // namespace uucs::analysis
