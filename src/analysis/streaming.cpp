#include "analysis/streaming.hpp"

#include <algorithm>
#include <cmath>

#include "stats/special.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace uucs::analysis {

namespace {

constexpr std::uint8_t kBlankBit = 0x80;

std::size_t offset_bin(double offset_s) {
  if (!(offset_s >= 0)) return 0;
  const auto b = static_cast<std::size_t>(offset_s /
                                          StudyAccumulator::kOffsetBinWidth);
  return std::min(b, StudyAccumulator::kOffsetBins);  // last slot = overflow
}

std::string serialize_level_map(const std::map<double, std::uint64_t>& m) {
  std::string out;
  for (const auto& [level, count] : m) {
    if (!out.empty()) out.push_back(',');
    out += strprintf("%a:%llu", level, static_cast<unsigned long long>(count));
  }
  return out;
}

std::string serialize_bins(const std::vector<std::uint64_t>& bins) {
  std::string out;
  for (std::size_t i = 0; i < bins.size(); ++i) {
    if (bins[i] == 0) continue;
    if (!out.empty()) out.push_back(',');
    out += strprintf("%zu:%llu", i, static_cast<unsigned long long>(bins[i]));
  }
  return out;
}

}  // namespace

void StudyAccumulator::CellTally::merge(const CellTally& other) {
  for (const auto& [level, count] : other.events) events[level] += count;
  for (const auto& [level, count] : other.censored) censored[level] += count;
}

StudyAccumulator::TaskTally::TaskTally()
    : offset_bins(StudyAccumulator::kOffsetBins + 1, 0) {}

void StudyAccumulator::TaskTally::merge(const TaskTally& other) {
  blank_df += other.blank_df;
  blank_ex += other.blank_ex;
  cpu_df += other.cpu_df;
  cpu_ex += other.cpu_ex;
  other_df += other.other_df;
  other_ex += other.other_ex;
  offset_sum.merge(other.offset_sum);
  offset_sumsq.merge(other.offset_sumsq);
  for (std::size_t i = 0; i < offset_bins.size(); ++i) {
    offset_bins[i] += other.offset_bins[i];
  }
  for (std::size_t i = 0; i < cells.size(); ++i) cells[i].merge(other.cells[i]);
}

StudyAccumulator::StudyAccumulator(StringInterner& pool) : pool_(&pool) {
  ids_.run_outcome = pool.intern("run.outcome");
  ids_.ok = pool.intern("ok");
  for (std::size_t i = 0; i < kStudyResources.size(); ++i) {
    ids_.study_resources[i] = pool.intern(resource_name(kStudyResources[i]));
  }
  ids_.cpu_name = pool.intern(resource_name(Resource::kCpu));
  for (std::size_t i = 0; i < sim::kTaskCount; ++i) {
    ids_.task_names[i] = pool.intern(sim::task_name(static_cast<sim::Task>(i)));
  }
}

std::uint8_t StudyAccumulator::testcase_class(const std::string& testcase_id) {
  std::uint8_t cls = 0;
  if (starts_with(testcase_id, "blank")) cls |= kBlankBit;
  for (std::size_t i = 0; i < kStudyResources.size(); ++i) {
    // Substring (not prefix) match, exactly like analysis::is_ramp_run.
    if (testcase_id.find(resource_name(kStudyResources[i]) + "-ramp") !=
        std::string::npos) {
      cls |= static_cast<std::uint8_t>(1u << i);
    }
  }
  return cls;
}

void StudyAccumulator::add(const RunRecord& rec) {
  Classified c;
  for (std::size_t i = 0; i < sim::kTaskCount; ++i) {
    if (rec.task == sim::task_name(static_cast<sim::Task>(i))) {
      c.task_index = static_cast<int>(i);
      break;
    }
  }
  const std::uint8_t cls = testcase_class(rec.testcase_id);
  c.blank = (cls & kBlankBit) != 0;
  c.ramp_mask = cls & 0x7f;
  c.host_fault = rec.host_fault();
  c.single_cpu = rec.last_levels.size() == 1 &&
                 rec.last_levels.begin()->first == resource_name(Resource::kCpu);
  c.discomforted = rec.discomforted;
  c.offset_s = rec.offset_s;
  for (std::size_t i = 0; i < kStudyResources.size(); ++i) {
    c.levels[i] = rec.level_at_feedback(kStudyResources[i]);
  }
  add_classified(c);
}

void StudyAccumulator::add(const FlatRunRecord& rec) {
  const FlatIds& ids = ids_;
  Classified c;
  {
    const auto it = task_index_.find(rec.task);
    if (it != task_index_.end()) {
      c.task_index = it->second;
    } else {
      c.task_index = -1;
      for (std::size_t i = 0; i < sim::kTaskCount; ++i) {
        if (rec.task == ids.task_names[i]) {
          c.task_index = static_cast<int>(i);
          break;
        }
      }
      task_index_.emplace(rec.task, c.task_index);
    }
  }
  std::uint8_t cls;
  {
    const auto it = tc_class_.find(rec.testcase_id);
    if (it != tc_class_.end()) {
      cls = it->second;
    } else {
      cls = testcase_class(pool_->str(rec.testcase_id));
      tc_class_.emplace(rec.testcase_id, cls);
    }
  }
  c.blank = (cls & kBlankBit) != 0;
  c.ramp_mask = cls & 0x7f;
  const std::uint32_t outcome = rec.meta_value(ids.run_outcome);
  c.host_fault = outcome != StringInterner::kEmptyId && outcome != ids.ok;
  std::size_t level_entries = rec.extra_levels.size();
  for (std::size_t i = 0; i < kResourceCount; ++i) {
    if (rec.levels[i].present) ++level_entries;
  }
  c.single_cpu =
      level_entries == 1 && rec.trail(Resource::kCpu).present;
  c.discomforted = rec.discomforted;
  c.offset_s = rec.offset_s;
  for (std::size_t i = 0; i < kStudyResources.size(); ++i) {
    const FlatRunRecord::LevelTrail& t = rec.trail(kStudyResources[i]);
    if (t.present) {
      if (t.n > 0) c.levels[i] = t.v[t.n - 1];
    } else {
      for (const auto& [key, values] : rec.extra_levels) {
        if (key == ids.study_resources[i] && !values.empty()) {
          c.levels[i] = values.back();
          break;
        }
      }
    }
  }
  add_classified(c);
}

void StudyAccumulator::add_classified(const Classified& c) {
  ++runs_;
  if (c.host_fault) ++host_faulted_;
  if (c.task_index < 0) return;
  TaskTally& t = tasks_[static_cast<std::size_t>(c.task_index)];
  // Breakdown tallies (all runs, like compute_breakdown).
  if (c.blank) {
    ++(c.discomforted ? t.blank_df : t.blank_ex);
  } else if (c.single_cpu) {
    ++(c.discomforted ? t.cpu_df : t.cpu_ex);
  } else {
    ++(c.discomforted ? t.other_df : t.other_ex);
  }
  // Discomfort offsets (all discomforted runs, like discomfort_offsets).
  if (c.discomforted) {
    t.offset_sum.add(c.offset_s);
    t.offset_sumsq.add(c.offset_s * c.offset_s);
    ++t.offset_bins[offset_bin(c.offset_s)];
  }
  // Comfort cells (ramp runs with a level, excluding host faults, like
  // select_ramp_runs + build_discomfort_cdf).
  if (c.host_fault) return;
  for (std::size_t i = 0; i < kStudyResources.size(); ++i) {
    if ((c.ramp_mask & (1u << i)) == 0 || !c.levels[i]) continue;
    CellTally& cell = t.cells[i];
    if (c.discomforted) {
      ++cell.events[*c.levels[i]];
    } else {
      ++cell.censored[*c.levels[i]];
    }
  }
}

void StudyAccumulator::merge(const StudyAccumulator& other) {
  runs_ += other.runs_;
  host_faulted_ += other.host_faulted_;
  for (std::size_t i = 0; i < tasks_.size(); ++i) tasks_[i].merge(other.tasks_[i]);
}

RunBreakdown StudyAccumulator::breakdown(std::size_t task_index,
                                         BreakdownScope scope) const {
  UUCS_CHECK_MSG(task_index < tasks_.size(), "task index out of range");
  const TaskTally& t = tasks_[task_index];
  RunBreakdown b;
  b.blank_discomforted = t.blank_df;
  b.blank_exhausted = t.blank_ex;
  b.nonblank_discomforted = t.cpu_df;
  b.nonblank_exhausted = t.cpu_ex;
  if (scope == BreakdownScope::kAllRuns) {
    b.nonblank_discomforted += t.other_df;
    b.nonblank_exhausted += t.other_ex;
  }
  return b;
}

RunBreakdown StudyAccumulator::breakdown_total(BreakdownScope scope) const {
  RunBreakdown total;
  for (std::size_t i = 0; i < tasks_.size(); ++i) total.add(breakdown(i, scope));
  return total;
}

CellMetrics StudyAccumulator::cell(std::size_t task_index,
                                   std::size_t resource_index) const {
  UUCS_CHECK_MSG(resource_index < 3, "resource index out of range");
  UUCS_CHECK_MSG(task_index <= kAllTasks, "task index out of range");
  CellTally merged;
  if (task_index == kAllTasks) {
    for (const TaskTally& t : tasks_) merged.merge(t.cells[resource_index]);
  } else {
    merged = tasks_[task_index].cells[resource_index];
  }

  CellMetrics m;
  for (const auto& [level, count] : merged.events) m.df_count += count;
  for (const auto& [level, count] : merged.censored) m.ex_count += count;
  const std::uint64_t total = m.df_count + m.ex_count;
  m.fd = total == 0 ? 0.0
                    : static_cast<double>(m.df_count) /
                          static_cast<double>(total);

  // c_0.05, exactly as DiscomfortCdf::level_at_fraction(0.05): the k-th
  // smallest discomfort level, read off the exact per-level counts.
  if (total > 0) {
    const auto need = static_cast<std::uint64_t>(
        std::ceil(0.05 * static_cast<double>(total) - 1e-12));
    if (need == 0) {
      if (!merged.events.empty()) m.c05 = merged.events.begin()->first;
    } else if (need <= m.df_count) {
      std::uint64_t seen = 0;
      for (const auto& [level, count] : merged.events) {
        seen += count;
        if (seen >= need) {
          m.c05 = level;
          break;
        }
      }
    }
  }

  // c_a: Student-t interval from the exact level histogram, evaluated in
  // sorted-level order (deterministic; matches mean_confidence_interval up
  // to summation rounding).
  if (m.df_count > 0) {
    const double n = static_cast<double>(m.df_count);
    double sum = 0.0;
    for (const auto& [level, count] : merged.events) {
      sum += level * static_cast<double>(count);
    }
    stats::MeanCi ci;
    ci.n = m.df_count;
    ci.mean = sum / n;
    if (m.df_count < 2) {
      ci.lo = ci.hi = ci.mean;
    } else {
      double m2 = 0.0;
      for (const auto& [level, count] : merged.events) {
        const double d = level - ci.mean;
        m2 += d * d * static_cast<double>(count);
      }
      const double stddev = std::sqrt(m2 / (n - 1.0));
      const double tcrit = stats::student_t_quantile(0.975, n - 1.0);
      const double half = tcrit * stddev / std::sqrt(n);
      ci.lo = ci.mean - half;
      ci.hi = ci.mean + half;
    }
    m.ca = ci;
  }
  return m;
}

stats::KaplanMeier StudyAccumulator::aggregate_km(
    std::size_t resource_index) const {
  UUCS_CHECK_MSG(resource_index < 3, "resource index out of range");
  CellTally merged;
  for (const TaskTally& t : tasks_) merged.merge(t.cells[resource_index]);
  stats::KaplanMeier km;
  for (const auto& [level, count] : merged.events) {
    for (std::uint64_t i = 0; i < count; ++i) km.add_event(level);
  }
  for (const auto& [level, count] : merged.censored) {
    for (std::uint64_t i = 0; i < count; ++i) km.add_censored(level);
  }
  return km;
}

std::optional<OffsetSummary> StudyAccumulator::offsets(
    std::size_t task_index) const {
  UUCS_CHECK_MSG(task_index <= kAllTasks, "task index out of range");
  ExactSum sum, sumsq;
  std::vector<std::uint64_t> bins(kOffsetBins + 1, 0);
  const auto fold = [&](const TaskTally& t) {
    sum.merge(t.offset_sum);
    sumsq.merge(t.offset_sumsq);
    for (std::size_t i = 0; i < bins.size(); ++i) bins[i] += t.offset_bins[i];
  };
  if (task_index == kAllTasks) {
    for (const TaskTally& t : tasks_) fold(t);
  } else {
    fold(tasks_[task_index]);
  }
  const std::uint64_t n = sum.count();
  if (n == 0) return std::nullopt;

  OffsetSummary s;
  s.n = n;
  const double dn = static_cast<double>(n);
  const double total = sum.round();
  s.mean_ci.n = n;
  s.mean_ci.mean = total / dn;
  if (n < 2) {
    s.mean_ci.lo = s.mean_ci.hi = s.mean_ci.mean;
  } else {
    const double var = std::max(
        0.0, (sumsq.round() - total * total / dn) / (dn - 1.0));
    const double tcrit = stats::student_t_quantile(0.975, dn - 1.0);
    const double half = tcrit * std::sqrt(var / dn);
    s.mean_ci.lo = s.mean_ci.mean - half;
    s.mean_ci.hi = s.mean_ci.mean + half;
  }
  // Binned quantiles: stats::quantile's type-7 interpolation between the
  // two straddling order statistics, with each order statistic replaced by
  // the midpoint of its bin (the overflow bin reports its lower edge), so
  // the result stays within half a kOffsetBinWidth of the sample quantile.
  const auto bin_value = [&](std::uint64_t rank) {  // 1-based order statistic
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < bins.size(); ++b) {
      seen += bins[b];
      if (seen >= rank) {
        return b == kOffsetBins
                   ? static_cast<double>(kOffsetBins) * kOffsetBinWidth
                   : (static_cast<double>(b) + 0.5) * kOffsetBinWidth;
      }
    }
    return static_cast<double>(kOffsetBins) * kOffsetBinWidth;
  };
  const auto binned_quantile = [&](double q) {
    const double pos = q * (dn - 1.0);
    const auto i = static_cast<std::uint64_t>(pos);
    if (i + 1 >= n) return bin_value(n);
    const double frac = pos - static_cast<double>(i);
    return bin_value(i + 1) * (1.0 - frac) + bin_value(i + 2) * frac;
  };
  s.q25 = binned_quantile(0.25);
  s.median = binned_quantile(0.5);
  s.q75 = binned_quantile(0.75);
  return s;
}

std::vector<KvRecord> StudyAccumulator::to_records() const {
  std::vector<KvRecord> out;
  out.reserve(1 + tasks_.size() * 4);
  KvRecord head("aggregate");
  head.set("version", "1");
  head.set("runs", std::to_string(runs_));
  head.set("host_faulted", std::to_string(host_faulted_));
  out.push_back(std::move(head));
  for (std::size_t ti = 0; ti < tasks_.size(); ++ti) {
    const TaskTally& t = tasks_[ti];
    KvRecord rec("aggregate-task");
    rec.set("task", sim::task_name(static_cast<sim::Task>(ti)));
    rec.set("blank_df", std::to_string(t.blank_df));
    rec.set("blank_ex", std::to_string(t.blank_ex));
    rec.set("cpu_df", std::to_string(t.cpu_df));
    rec.set("cpu_ex", std::to_string(t.cpu_ex));
    rec.set("other_df", std::to_string(t.other_df));
    rec.set("other_ex", std::to_string(t.other_ex));
    rec.set("offsets_n", std::to_string(t.offset_sum.count()));
    rec.set("offset_sum", strprintf("%a", t.offset_sum.round()));
    rec.set("offset_sumsq", strprintf("%a", t.offset_sumsq.round()));
    rec.set("offset_bins", serialize_bins(t.offset_bins));
    out.push_back(std::move(rec));
    for (std::size_t ri = 0; ri < t.cells.size(); ++ri) {
      const CellTally& cell = t.cells[ri];
      if (cell.events.empty() && cell.censored.empty()) continue;
      KvRecord crec("aggregate-cell");
      crec.set("task", sim::task_name(static_cast<sim::Task>(ti)));
      crec.set("resource", resource_name(kStudyResources[ri]));
      crec.set("events", serialize_level_map(cell.events));
      crec.set("censored", serialize_level_map(cell.censored));
      out.push_back(std::move(crec));
    }
  }
  return out;
}

std::string StudyAccumulator::serialize() const {
  return kv_serialize(to_records());
}

TextTable StudyAccumulator::summary() const {
  TextTable t;
  t.set_header({"aggregate metric", "value"});
  t.add_row({"runs", std::to_string(runs_)});
  t.add_row({"host-faulted runs", std::to_string(host_faulted_)});
  const RunBreakdown all = breakdown_total(BreakdownScope::kAllRuns);
  t.add_row({"discomforted (non-blank)",
             std::to_string(all.nonblank_discomforted)});
  t.add_row({"exhausted (non-blank)", std::to_string(all.nonblank_exhausted)});
  t.add_row({"noise floor P(df|blank)",
             strprintf("%.4f", all.blank_discomfort_probability())});
  for (std::size_t ri = 0; ri < kStudyResources.size(); ++ri) {
    const CellMetrics m = cell(kAllTasks, ri);
    const std::string name = resource_name(kStudyResources[ri]);
    t.add_row({name + " f_d", strprintf("%.3f", m.fd)});
    t.add_row({name + " c_0.05",
               m.c05 ? strprintf("%.3f", *m.c05) : std::string("*")});
    t.add_row({name + " c_a",
               m.ca ? strprintf("%.3f (%.3f,%.3f)", m.ca->mean, m.ca->lo,
                                m.ca->hi)
                    : std::string("*")});
  }
  if (const auto off = offsets(kAllTasks)) {
    t.add_row({"discomfort offsets n", std::to_string(off->n)});
    t.add_row({"offset mean (s)", strprintf("%.2f", off->mean_ci.mean)});
    t.add_row({"offset median (s)", strprintf("%.2f", off->median)});
  }
  return t;
}

}  // namespace uucs::analysis
