#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/breakdown.hpp"
#include "analysis/metrics.hpp"
#include "analysis/offsets.hpp"
#include "sim/task.hpp"
#include "stats/kaplan_meier.hpp"
#include "testcase/run_record.hpp"
#include "testcase/run_record_flat.hpp"
#include "util/exact_sum.hpp"
#include "util/kvtext.hpp"
#include "util/table.hpp"

namespace uucs::analysis {

/// Order-independent streaming aggregation of a study's run records —
/// everything the analysis layer derives from a ResultStore, in O(1) space
/// per run (DESIGN.md §10).
///
/// Each engine worker owns one accumulator and absorbs runs in whatever
/// order the scheduler hands them out; after the engine drains, the
/// per-worker accumulators merge. The state is chosen so that the merged
/// result is an exact, associative, commutative function of the *multiset*
/// of runs — never of their order:
///
///  - classification tallies (breakdown cells, df/ex counts) are integers,
///  - discomfort/censoring levels go into exact per-level count maps
///    (distinct levels are bounded by the testcase suite, not by run
///    count), reproducing c_0.05, f_d and the Kaplan–Meier inputs exactly,
///  - discomfort-offset sums use util::ExactSum superaccumulators (exact
///    ⇒ order-free), with a fixed-bin histogram for binned quantiles.
///
/// Hence a streaming run with any worker count serializes byte-identically
/// to a sequential in-memory pass over the same records — the equivalence
/// tests compare serialize() output, and round-tripped doubles to the last
/// ulp.
///
/// Classification mirrors src/analysis exactly: blank = testcase_id
/// starting "blank"; ramp on r = id containing "<resource>-ramp"
/// (substring, so Internet-suite ids classify too); host-faulted runs
/// (meta run.outcome != "ok") are excluded from comfort cells like
/// select_ramp_runs() does; runs whose task string is not one of the four
/// study tasks count toward runs() only.
class StudyAccumulator {
 public:
  /// Binned-quantile resolution for discomfort offsets: offsets are
  /// continuous (per-user reaction delays), so unlike levels they cannot
  /// be counted exactly per distinct value. [0, 1024) s in 1/8 s bins,
  /// plus an overflow bin.
  static constexpr std::size_t kOffsetBins = 8192;
  static constexpr double kOffsetBinWidth = 0.125;

  /// `pool` is the string pool the absorbed FlatRunRecords were interned
  /// against — the worker-local pool on sharded drivers, the process-wide
  /// one by default. The accumulator resolves flat ids only against this
  /// pool (classification caches, well-known key ids); its own state and
  /// serialize() output carry no ids at all, which is why accumulators
  /// built over *different* pools still merge exactly (DESIGN.md §11).
  explicit StudyAccumulator(StringInterner& pool = StringInterner::global());

  /// Absorbs one run (the map-based and flat representations tally
  /// identically; the flat overload is the hot path).
  void add(const RunRecord& rec);
  void add(const FlatRunRecord& rec);

  /// Exact merge: *this becomes the accumulator of both input multisets.
  void merge(const StudyAccumulator& other);

  std::uint64_t runs() const { return runs_; }
  std::uint64_t host_faulted() const { return host_faulted_; }

  /// Fig 9 breakdown for one task (index into sim::kAllTasks) or, via
  /// breakdown_total(), the study total.
  RunBreakdown breakdown(std::size_t task_index, BreakdownScope scope) const;
  RunBreakdown breakdown_total(BreakdownScope scope) const;

  /// §3.3.1 cell metrics over ramp runs for (task, study resource);
  /// task_index == kAllTasks aggregates across tasks (Figs 10-12).
  /// f_d and c_0.05 are exact (per-level counts); c_a's mean/CI are
  /// derived from the exact level histogram (same Student-t formula as
  /// stats::mean_confidence_interval, evaluated in sorted-level order).
  static constexpr std::size_t kAllTasks = sim::kTaskCount;
  CellMetrics cell(std::size_t task_index, std::size_t resource_index) const;

  /// Kaplan–Meier estimator inputs reconstructed from the exact level
  /// maps — identical to analysis::aggregate_km over the same records.
  stats::KaplanMeier aggregate_km(std::size_t resource_index) const;

  /// Discomfort-offset summary (mean/CI exact via ExactSum; quartiles
  /// binned at kOffsetBinWidth); nullopt when no discomfort was seen.
  std::optional<OffsetSummary> offsets(std::size_t task_index) const;

  /// Lossless dump of the exact state: integer tallies, hexfloat level
  /// keys and exact sums. Two accumulators over the same run multiset
  /// serialize byte-identically regardless of add/merge order.
  std::vector<KvRecord> to_records() const;
  std::string serialize() const;

  /// Human-readable digest (breakdown, per-resource cells, offsets).
  TextTable summary() const;

 private:
  struct CellTally {
    std::map<double, std::uint64_t> events;    ///< discomfort level → count
    std::map<double, std::uint64_t> censored;  ///< exhaustion level → count
    void merge(const CellTally& other);
  };

  struct TaskTally {
    // Breakdown counters; both BreakdownScopes derive from these.
    std::uint64_t blank_df = 0, blank_ex = 0;
    std::uint64_t cpu_df = 0, cpu_ex = 0;      ///< non-blank, single cpu level
    std::uint64_t other_df = 0, other_ex = 0;  ///< remaining non-blank
    // Discomfort offsets: exact sums + binned histogram (see kOffsetBins).
    ExactSum offset_sum, offset_sumsq;
    std::vector<std::uint64_t> offset_bins;  ///< kOffsetBins + overflow
    std::array<CellTally, 3> cells;          ///< per study resource
    TaskTally();
    void merge(const TaskTally& other);
  };

  /// Everything add() needs, extracted uniformly from either record shape.
  struct Classified {
    int task_index = -1;                ///< -1: not a study task
    bool blank = false;
    std::uint8_t ramp_mask = 0;         ///< bit i: ramp on kStudyResources[i]
    bool host_fault = false;
    bool single_cpu = false;            ///< run_resource == cpu
    bool discomforted = false;
    double offset_s = 0.0;
    std::array<std::optional<double>, 3> levels;  ///< level_at_feedback per study resource
  };
  void add_classified(const Classified& c);
  std::uint8_t testcase_class(const std::string& testcase_id);

  /// Ids of the well-known strings the flat add() path compares against,
  /// interned into pool_ at construction.
  struct FlatIds {
    std::uint32_t run_outcome = 0;
    std::uint32_t ok = 0;
    std::array<std::uint32_t, 3> study_resources{};  ///< canonical names
    std::uint32_t cpu_name = 0;
    std::array<std::uint32_t, sim::kTaskCount> task_names{};
  };

  StringInterner* pool_;  ///< the pool flat-record ids resolve against
  FlatIds ids_;
  std::uint64_t runs_ = 0;
  std::uint64_t host_faulted_ = 0;
  std::array<TaskTally, sim::kTaskCount> tasks_;

  // Flat-path caches: interned id → classification, built lazily per
  // accumulator (no locks; workers never share an accumulator).
  std::unordered_map<std::uint32_t, std::uint8_t> tc_class_;  ///< bit 7: blank
  std::unordered_map<std::uint32_t, int> task_index_;
};

}  // namespace uucs::analysis
