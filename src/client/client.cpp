#include "client/client.hpp"

#include <unordered_set>

#include "util/error.hpp"
#include "util/fs.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace uucs {

namespace {

bool has_prefix(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

}  // namespace

UucsClient::UucsClient(HostSpec host, const ClientConfig& config)
    : host_(std::move(host)), config_(config), rng_(config.seed) {
  UUCS_CHECK_MSG(config_.sync_interval_s > 0, "sync interval must be positive");
  UUCS_CHECK_MSG(config_.mean_run_interarrival_s > 0,
                 "run interarrival mean must be positive");
}

void UucsClient::ensure_registered(ServerApi& server) {
  if (registered()) return;
  if (reg_nonce_.empty()) {
    // Idempotency key for registration retries. Minted from a *copy* of the
    // scheduling RNG so the stream itself is untouched (deterministic
    // studies stay bit-identical); uniqueness rides on the per-client seed,
    // which the studies draw from the population stream and the live binary
    // takes from process entropy. The hostname is mixed in as a tiebreak.
    Rng probe = rng_;
    reg_nonce_ = strprintf("%s-%016llx%016llx", host_.hostname.c_str(),
                           static_cast<unsigned long long>(probe()),
                           static_cast<unsigned long long>(probe()));
  }
  guid_ = server.register_client(host_, reg_nonce_);
  if (journal_) journal_->append("guid " + guid_.to_string());
  log_info("client", "registered as " + guid_.to_string());
}

void UucsClient::note_run_start(const std::string& run_id,
                                const std::string& testcase_id) {
  UUCS_CHECK_MSG(!run_id.empty(), "run-start marker needs a run id");
  if (journal_) journal_->append("start " + run_id + " " + testcase_id);
  open_runs_[run_id] = testcase_id;
}

void UucsClient::record_result(RunRecord rec) {
  rec.client_guid = guid_.to_string();
  if (journal_) journal_->append(kv_serialize({rec.to_record()}));
  open_runs_.erase(rec.run_id);
  pending_results_.add(std::move(rec));
}

std::size_t UucsClient::hot_sync(ServerApi& server) {
  ensure_registered(server);
  SyncRequest request;
  request.guid = guid_;
  request.protocol_version = static_cast<std::uint32_t>(
      config_.protocol_version < 1 ? 1 : config_.protocol_version);
  request.sync_seq = sync_seq_ + 1;
  request.known_testcase_ids = testcases_.ids();
  // Copies, not a drain: pending records stay queued until the server acks
  // their run_ids, so a failure anywhere below leaves nothing to restore.
  request.results = pending_results_.records();
  // Journal the seq advance *before* the server can observe it: if we crash
  // after the request leaves, replay restores a value >= anything the
  // server saw, keeping the sequence client-monotone across crashes.
  if (journal_) {
    journal_->append(strprintf("seq %llu",
                               static_cast<unsigned long long>(request.sync_seq)));
  }
  const SyncResponse response = server.hot_sync(request);
  sync_seq_ = request.sync_seq;
  last_server_protocol_ = response.protocol_version;
  if (response.protocol_version >= 2) {
    last_server_generation_ = response.server_generation;
  }
  if (!request.results.empty()) {
    pending_results_.remove_ids(response.stored_run_ids);
    // Records without a run_id cannot be acked individually; they keep the
    // old upload-and-clear semantics (they were all in this request).
    auto rest = pending_results_.drain();
    for (auto& r : rest) {
      if (!r.run_id.empty()) pending_results_.add(std::move(r));
    }
    if (journal_ && !response.stored_run_ids.empty()) {
      std::vector<std::string> acks;
      acks.reserve(response.stored_run_ids.size());
      for (const auto& id : response.stored_run_ids) acks.push_back("ack " + id);
      journal_->append_batch(acks);
      compact_journal_if_needed();
    }
  }
  for (auto& tc : response.new_testcases) testcases_.add(std::move(tc));
  return response.new_testcases.size();
}

void UucsClient::bump_serial_from_run_id(const std::string& run_id) {
  const auto slash = run_id.rfind('/');
  if (slash == std::string::npos) return;
  const auto n = parse_int(run_id.substr(slash + 1));
  if (n && *n >= 0 && static_cast<std::uint64_t>(*n) >= run_serial_) {
    run_serial_ = static_cast<std::uint64_t>(*n) + 1;
  }
}

void UucsClient::replay_journal_entry(const std::string& entry) {
  if (has_prefix(entry, "ack ")) {
    const std::string id = entry.substr(4);
    pending_results_.remove_ids({id});
    open_runs_.erase(id);
    bump_serial_from_run_id(id);
    return;
  }
  if (has_prefix(entry, "start ")) {
    const std::string rest = entry.substr(6);
    const auto space = rest.find(' ');
    if (space == std::string::npos || space == 0) {
      throw ParseError("client journal: malformed start marker '" +
                       entry.substr(0, 32) + "'");
    }
    const std::string run_id = rest.substr(0, space);
    open_runs_[run_id] = rest.substr(space + 1);
    bump_serial_from_run_id(run_id);
    return;
  }
  if (has_prefix(entry, "guid ")) {
    guid_ = Guid::parse(entry.substr(5));
    return;
  }
  if (has_prefix(entry, "serial ")) {
    const auto n = parse_int(entry.substr(7));
    if (n && *n >= 0 && static_cast<std::uint64_t>(*n) > run_serial_) {
      run_serial_ = static_cast<std::uint64_t>(*n);
    }
    return;
  }
  if (has_prefix(entry, "seq ")) {
    const auto n = parse_int(entry.substr(4));
    if (n && *n >= 0 && static_cast<std::uint64_t>(*n) > sync_seq_) {
      sync_seq_ = static_cast<std::uint64_t>(*n);
    }
    return;
  }
  const auto records = kv_parse(entry);
  if (records.empty() || records.front().type() != "run") {
    throw ParseError("client journal: unrecognized entry '" +
                     entry.substr(0, 32) + "'");
  }
  RunRecord rec = RunRecord::from_record(records.front());
  bump_serial_from_run_id(rec.run_id);
  if (!rec.run_id.empty()) open_runs_.erase(rec.run_id);
  // A record journaled twice (e.g. replay after partial compaction) must
  // not queue twice.
  if (!rec.run_id.empty()) {
    for (const auto& existing : pending_results_.records()) {
      if (existing.run_id == rec.run_id) return;
    }
  }
  pending_results_.add(std::move(rec));
}

std::size_t UucsClient::attach_journal(const std::string& path) {
  UUCS_CHECK_MSG(journal_ == nullptr, "client journal already attached");
  journal_ = std::make_unique<Journal>(Journal::open(path));
  const auto& entries = journal_->entries();
  for (const auto& entry : entries) replay_journal_entry(entry);
  const std::size_t replayed = entries.size();
  // Every start marker still open after replay is a run the previous
  // process never finished: the crash happened mid-run. Synthesize a typed
  // "aborted" record so the run surfaces to the server instead of
  // vanishing, and journal it so the synthesis itself is crash-durable.
  if (!open_runs_.empty()) {
    std::vector<std::string> journaled;
    for (const auto& [run_id, testcase_id] : open_runs_) {
      RunRecord rec;
      rec.run_id = run_id;
      rec.client_guid = guid_.is_nil() ? "" : guid_.to_string();
      rec.testcase_id = testcase_id;
      rec.discomforted = false;
      rec.offset_s = 0.0;
      rec.metadata["run.outcome"] = "aborted";
      rec.metadata["run.error"] = "client died mid-run; replayed from journal";
      journaled.push_back(kv_serialize({rec.to_record()}));
      pending_results_.add(std::move(rec));
      log_warn("client", "run " + run_id + " was open at crash; recorded as aborted");
    }
    open_runs_.clear();
    journal_->append_batch(journaled);
  }
  if (journal_->recovery().dropped_bytes > 0) {
    log_warn("client",
             strprintf("journal %s: dropped %zu torn bytes at tail", path.c_str(),
                       journal_->recovery().dropped_bytes));
  }
  return replayed;
}

std::vector<std::string> UucsClient::journal_keep_entries() const {
  std::vector<std::string> keep;
  keep.push_back(strprintf("serial %llu",
                           static_cast<unsigned long long>(run_serial_)));
  if (sync_seq_ > 0) {
    keep.push_back(strprintf("seq %llu",
                             static_cast<unsigned long long>(sync_seq_)));
  }
  if (registered()) keep.push_back("guid " + guid_.to_string());
  // Open starts survive compaction: a crash after a mid-run compaction must
  // still replay the run as aborted.
  for (const auto& [run_id, testcase_id] : open_runs_) {
    keep.push_back("start " + run_id + " " + testcase_id);
  }
  for (const auto& r : pending_results_.records()) {
    keep.push_back(kv_serialize({r.to_record()}));
  }
  return keep;
}

void UucsClient::compact_journal_if_needed() {
  if (!journal_ || journal_->size_bytes() < config_.journal_compact_bytes) return;
  journal_->compact(journal_keep_entries());
}

std::optional<std::string> UucsClient::choose_testcase_id(Rng& rng) const {
  return testcases_.random_id(rng);
}

double UucsClient::next_run_delay(Rng& rng) const {
  return rng.exponential(config_.mean_run_interarrival_s);
}

std::string UucsClient::next_run_id() {
  return strprintf("%s/%llu", guid_.to_string().c_str(),
                   static_cast<unsigned long long>(run_serial_++));
}

void UucsClient::save(const std::string& dir) const {
  make_dirs(dir);
  testcases_.save(dir + "/testcases.txt");
  pending_results_.save(dir + "/pending_results.txt");
  KvRecord rec("client");
  rec.set("guid", guid_.is_nil() ? "" : guid_.to_string());
  rec.set_int("run_serial", static_cast<std::int64_t>(run_serial_));
  rec.set_int("sync_seq", static_cast<std::int64_t>(sync_seq_));
  std::vector<KvRecord> records{rec, host_.to_record()};
  kv_save_file(dir + "/client.txt", records);
  // The snapshot files are written atomically + durably, so shrinking the
  // journal afterwards never leaves acked state protected by neither.
  if (journal_) journal_->compact(journal_keep_entries());
}

UucsClient UucsClient::load(const std::string& dir, const ClientConfig& config) {
  const auto records = kv_load_file(dir + "/client.txt");
  if (records.size() < 2 || records[0].type() != "client") {
    throw ParseError(dir + "/client.txt: expected [client] + [host] records");
  }
  UucsClient client(HostSpec::from_record(records[1]), config);
  const std::string guid = records[0].get_or("guid", "");
  if (!guid.empty()) client.guid_ = Guid::parse(guid);
  client.run_serial_ =
      static_cast<std::uint64_t>(records[0].get_int_or("run_serial", 0));
  client.sync_seq_ =
      static_cast<std::uint64_t>(records[0].get_int_or("sync_seq", 0));
  client.testcases_ = TestcaseStore::load(dir + "/testcases.txt");
  client.pending_results_ = ResultStore::load(dir + "/pending_results.txt");
  return client;
}

}  // namespace uucs
