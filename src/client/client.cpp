#include "client/client.hpp"

#include "util/error.hpp"
#include "util/fs.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace uucs {

UucsClient::UucsClient(HostSpec host, const ClientConfig& config)
    : host_(std::move(host)), config_(config), rng_(config.seed) {
  UUCS_CHECK_MSG(config_.sync_interval_s > 0, "sync interval must be positive");
  UUCS_CHECK_MSG(config_.mean_run_interarrival_s > 0,
                 "run interarrival mean must be positive");
}

void UucsClient::ensure_registered(ServerApi& server) {
  if (registered()) return;
  guid_ = server.register_client(host_);
  log_info("client", "registered as " + guid_.to_string());
}

void UucsClient::record_result(RunRecord rec) {
  rec.client_guid = guid_.to_string();
  pending_results_.add(std::move(rec));
}

std::size_t UucsClient::hot_sync(ServerApi& server) {
  ensure_registered(server);
  SyncRequest request;
  request.guid = guid_;
  request.known_testcase_ids = testcases_.ids();
  request.results = pending_results_.drain();
  SyncResponse response;
  try {
    response = server.hot_sync(request);
  } catch (...) {
    // The sync failed: keep the results for the next attempt (the client
    // must operate disconnected, §2).
    for (auto& r : request.results) pending_results_.add(std::move(r));
    throw;
  }
  for (auto& tc : response.new_testcases) testcases_.add(std::move(tc));
  return response.new_testcases.size();
}

std::optional<std::string> UucsClient::choose_testcase_id(Rng& rng) const {
  return testcases_.random_id(rng);
}

double UucsClient::next_run_delay(Rng& rng) const {
  return rng.exponential(config_.mean_run_interarrival_s);
}

std::string UucsClient::next_run_id() {
  return strprintf("%s/%llu", guid_.to_string().c_str(),
                   static_cast<unsigned long long>(run_serial_++));
}

void UucsClient::save(const std::string& dir) const {
  make_dirs(dir);
  testcases_.save(dir + "/testcases.txt");
  pending_results_.save(dir + "/pending_results.txt");
  KvRecord rec("client");
  rec.set("guid", guid_.is_nil() ? "" : guid_.to_string());
  rec.set_int("run_serial", static_cast<std::int64_t>(run_serial_));
  std::vector<KvRecord> records{rec, host_.to_record()};
  kv_save_file(dir + "/client.txt", records);
}

UucsClient UucsClient::load(const std::string& dir, const ClientConfig& config) {
  const auto records = kv_load_file(dir + "/client.txt");
  if (records.size() < 2 || records[0].type() != "client") {
    throw ParseError(dir + "/client.txt: expected [client] + [host] records");
  }
  UucsClient client(HostSpec::from_record(records[1]), config);
  const std::string guid = records[0].get_or("guid", "");
  if (!guid.empty()) client.guid_ = Guid::parse(guid);
  client.run_serial_ =
      static_cast<std::uint64_t>(records[0].get_int_or("run_serial", 0));
  client.testcases_ = TestcaseStore::load(dir + "/testcases.txt");
  client.pending_results_ = ResultStore::load(dir + "/pending_results.txt");
  return client;
}

}  // namespace uucs
