#pragma once

#include <memory>
#include <optional>
#include <string>

#include "server/protocol.hpp"
#include "testcase/run_record.hpp"
#include "testcase/store.hpp"
#include "util/guid.hpp"
#include "util/journal.hpp"
#include "util/rng.hpp"

namespace uucs {

/// Client policy knobs (§2: hot syncing at user-defined intervals, local
/// random choice of testcases, Poisson arrivals of testcase execution),
/// plus the transport fault-tolerance knobs used by the live client binary
/// (the simulators drive in-process channels and ignore them).
struct ClientConfig {
  double sync_interval_s = 3600.0;       ///< desired time between hot syncs
  double mean_run_interarrival_s = 900.0;///< Poisson mean between runs
  std::uint64_t seed = 7;

  double connect_timeout_s = 10.0;  ///< TCP connect deadline (0 = block)
  double io_timeout_s = 30.0;       ///< per-message read/write deadline (0 = block)
  std::size_t sync_max_attempts = 5;///< tries per sync/register operation
  double retry_base_delay_s = 0.5;  ///< backoff floor between attempts
  double retry_max_delay_s = 30.0;  ///< backoff ceiling between attempts
  std::size_t journal_compact_bytes = 256 * 1024;  ///< compact journal past this
  /// Highest wire protocol version this client speaks (protocol.hpp). The
  /// transport may negotiate it down; mixed-fleet tests pin "old" clients
  /// to 1.
  int protocol_version = kProtocolVersionMax;
};

/// The UUCS client's state machine minus the live exercising: testcase and
/// result stores, registration, hot sync, random testcase choice and
/// Poisson arrival times. The client can operate disconnected from the
/// server using its local stores (§2); the live client binary couples this
/// with RunExecutor, and the Internet-study simulator drives it in virtual
/// time with simulated runs.
///
/// Uploads are exactly-once: every record carries a unique run_id, the
/// server acks the ids it holds (new or duplicate), and the client clears
/// exactly the acked records — so a retried sync whose response was lost
/// neither loses nor double-stores a record. With a journal attached
/// (attach_journal), recorded results and received acks are additionally
/// fsync'd to an append-only log, so a crash between syncs loses nothing.
class UucsClient {
 public:
  UucsClient(HostSpec host, const ClientConfig& config = {});

  const HostSpec& host() const { return host_; }
  const Guid& guid() const { return guid_; }
  bool registered() const { return !guid_.is_nil(); }
  const ClientConfig& config() const { return config_; }

  /// Local stores.
  const TestcaseStore& testcases() const { return testcases_; }
  TestcaseStore& mutable_testcases() { return testcases_; }
  const ResultStore& pending_results() const { return pending_results_; }

  /// Registers with the server if not registered yet (first run, §2).
  void ensure_registered(ServerApi& server);

  /// Journals a run-start marker before the exercisers begin: if the
  /// process dies mid-run, attach_journal replays the open marker into a
  /// synthesized "aborted" RunRecord, so even runs the client never saw
  /// finish surface to the server with a typed outcome instead of vanishing.
  void note_run_start(const std::string& run_id, const std::string& testcase_id);

  /// Runs started (note_run_start) but not yet recorded or acked.
  std::size_t open_run_count() const { return open_runs_.size(); }

  /// Records a finished run for upload at the next sync; journaled first
  /// when a journal is attached. Closes the run's start marker.
  void record_result(RunRecord rec);

  /// One hot sync: uploads pending results, downloads fresh testcases into
  /// the local store. Returns the number of testcases received. Registers
  /// first if needed. Pending results are kept until the server acks their
  /// run_ids; on any failure every record stays queued for the next attempt.
  std::size_t hot_sync(ServerApi& server);

  /// Server generation observed on the most recent hot sync (0 until a v2
  /// server answers one). A bump between two syncs means a live takeover
  /// happened under this client.
  std::uint64_t last_server_generation() const { return last_server_generation_; }

  /// Protocol version of the most recent sync response (1 until a sync).
  std::uint32_t last_server_protocol() const { return last_server_protocol_; }

  /// Monotone sequence number stamped on each sync request (the server
  /// keeps the high-water mark per client). With a journal attached the
  /// advance is journaled before the request is sent, so monotonicity
  /// holds across a crash + journal replay as well.
  std::uint64_t sync_seq() const { return sync_seq_; }

  /// Opens (creating if absent) the crash-durability journal at `path`,
  /// replays any surviving entries into the in-memory state, and keeps it
  /// attached so record_result / hot_sync append to it. Returns the number
  /// of entries replayed.
  std::size_t attach_journal(const std::string& path);
  bool has_journal() const { return journal_ != nullptr; }

  /// Local random choice of the next testcase to run; nullopt if the local
  /// store is empty.
  std::optional<std::string> choose_testcase_id(Rng& rng) const;

  /// Draws the Poisson interarrival delay before the next run.
  double next_run_delay(Rng& rng) const;

  /// Time between hot syncs.
  double sync_interval_s() const { return config_.sync_interval_s; }

  /// Client-private RNG (seeded from config) for scheduling decisions.
  Rng& rng() { return rng_; }

  /// Persists local state (testcases.txt, pending_results.txt, client.txt)
  /// under `dir`, and restores it. With a journal attached, save() also
  /// compacts the journal (the snapshot now carries the state).
  void save(const std::string& dir) const;
  static UucsClient load(const std::string& dir, const ClientConfig& config = {});

 private:
  void replay_journal_entry(const std::string& entry);
  void bump_serial_from_run_id(const std::string& run_id);
  std::vector<std::string> journal_keep_entries() const;
  void compact_journal_if_needed();

  HostSpec host_;
  ClientConfig config_;
  Guid guid_;
  TestcaseStore testcases_;
  ResultStore pending_results_;
  Rng rng_;
  std::map<std::string, std::string> open_runs_;  ///< run_id -> testcase_id
  std::uint64_t run_serial_ = 0;
  std::uint64_t sync_seq_ = 0;
  std::uint64_t last_server_generation_ = 0;
  std::uint32_t last_server_protocol_ = 1;
  std::string reg_nonce_;  ///< idempotency key for this client's registration
  std::unique_ptr<Journal> journal_;

 public:
  /// Builds a unique run id "guid/serial" for the next run.
  std::string next_run_id();
};

}  // namespace uucs
