#pragma once

#include <optional>
#include <string>

#include "server/protocol.hpp"
#include "testcase/run_record.hpp"
#include "testcase/store.hpp"
#include "util/guid.hpp"
#include "util/rng.hpp"

namespace uucs {

/// Client policy knobs (§2: hot syncing at user-defined intervals, local
/// random choice of testcases, Poisson arrivals of testcase execution).
struct ClientConfig {
  double sync_interval_s = 3600.0;       ///< desired time between hot syncs
  double mean_run_interarrival_s = 900.0;///< Poisson mean between runs
  std::uint64_t seed = 7;
};

/// The UUCS client's state machine minus the live exercising: testcase and
/// result stores, registration, hot sync, random testcase choice and
/// Poisson arrival times. The client can operate disconnected from the
/// server using its local stores (§2); the live client binary couples this
/// with RunExecutor, and the Internet-study simulator drives it in virtual
/// time with simulated runs.
class UucsClient {
 public:
  UucsClient(HostSpec host, const ClientConfig& config = {});

  const HostSpec& host() const { return host_; }
  const Guid& guid() const { return guid_; }
  bool registered() const { return !guid_.is_nil(); }

  /// Local stores.
  const TestcaseStore& testcases() const { return testcases_; }
  TestcaseStore& mutable_testcases() { return testcases_; }
  const ResultStore& pending_results() const { return pending_results_; }

  /// Registers with the server if not registered yet (first run, §2).
  void ensure_registered(ServerApi& server);

  /// Records a finished run for upload at the next sync.
  void record_result(RunRecord rec);

  /// One hot sync: uploads pending results, downloads fresh testcases into
  /// the local store. Returns the number of testcases received. Registers
  /// first if needed.
  std::size_t hot_sync(ServerApi& server);

  /// Local random choice of the next testcase to run; nullopt if the local
  /// store is empty.
  std::optional<std::string> choose_testcase_id(Rng& rng) const;

  /// Draws the Poisson interarrival delay before the next run.
  double next_run_delay(Rng& rng) const;

  /// Time between hot syncs.
  double sync_interval_s() const { return config_.sync_interval_s; }

  /// Client-private RNG (seeded from config) for scheduling decisions.
  Rng& rng() { return rng_; }

  /// Persists local state (testcases.txt, pending_results.txt, client.txt)
  /// under `dir`, and restores it.
  void save(const std::string& dir) const;
  static UucsClient load(const std::string& dir, const ClientConfig& config = {});

 private:
  HostSpec host_;
  ClientConfig config_;
  Guid guid_;
  TestcaseStore testcases_;
  ResultStore pending_results_;
  Rng rng_;
  std::uint64_t run_serial_ = 0;

 public:
  /// Builds a unique run id "guid/serial" for the next run.
  std::string next_run_id();
};

}  // namespace uucs
