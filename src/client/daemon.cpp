#include "client/daemon.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace uucs {

ClientDaemon::ClientDaemon(Clock& clock, UucsClient& client, ServerApi& server,
                           RunExecutor& executor, std::string task_name)
    : clock_(clock),
      client_(client),
      server_(server),
      executor_(executor),
      task_name_(std::move(task_name)) {}

bool ClientDaemon::sleep_interruptibly(double seconds) {
  const double deadline = clock_.now() + seconds;
  while (clock_.now() < deadline) {
    if (stop_.load(std::memory_order_relaxed)) return false;
    clock_.sleep(std::min(0.05, deadline - clock_.now()));
  }
  return !stop_.load(std::memory_order_relaxed);
}

void ClientDaemon::try_sync() {
  try {
    const std::size_t fresh = client_.hot_sync(server_);
    syncs_.fetch_add(1, std::memory_order_relaxed);
    sync_failures_.store(0, std::memory_order_relaxed);
    if (on_event_) {
      on_event_({Event::Kind::kSync,
                 strprintf("%zu new testcases, store %zu", fresh,
                           client_.testcases().size())});
    }
  } catch (const std::exception& e) {
    // Disconnected operation (§2): results stay queued; try again later,
    // backing off so a dead server is not hammered.
    sync_failures_.fetch_add(1, std::memory_order_relaxed);
    log_warn("daemon", std::string("hot sync failed: ") + e.what());
  }
}

double ClientDaemon::next_sync_delay() const {
  const double base = client_.sync_interval_s();
  const double factor = static_cast<double>(
      1u << std::min<std::size_t>(sync_failures_.load(std::memory_order_relaxed), 3));
  return base * factor;
}

std::size_t ClientDaemon::run(double duration_s) {
  stop_.store(false, std::memory_order_relaxed);
  const double start = clock_.now();
  const bool bounded = duration_s > 0;

  try_sync();
  double next_sync = clock_.now() + next_sync_delay();

  while (!stop_.load(std::memory_order_relaxed)) {
    if (bounded && clock_.now() - start >= duration_s) break;

    // Poisson interarrival before the next run, clipped to the deadline.
    double delay = client_.next_run_delay(client_.rng());
    if (bounded) {
      delay = std::min(delay, std::max(0.0, duration_s - (clock_.now() - start)));
    }
    if (!sleep_interruptibly(delay)) break;
    if (bounded && clock_.now() - start >= duration_s) break;

    if (clock_.now() >= next_sync) {
      try_sync();
      next_sync = clock_.now() + next_sync_delay();
    }

    const auto id = client_.choose_testcase_id(client_.rng());
    if (!id) {
      // Empty store: wait for a sync to deliver testcases.
      continue;
    }
    const Testcase& tc = client_.testcases().get(*id);
    const std::string run_id = client_.next_run_id();
    // Journal the start before the exercisers touch anything: a crash
    // between here and record_result replays the run as "aborted".
    client_.note_run_start(run_id, tc.id());
    RunRecord rec = executor_.execute(tc, run_id, task_name_);
    client_.record_result(std::move(rec));
    runs_.fetch_add(1, std::memory_order_relaxed);
    if (on_event_) on_event_({Event::Kind::kRun, *id});
  }

  // Final sync so completed runs are not stranded locally.
  if (!client_.pending_results().empty()) try_sync();
  return runs_.load(std::memory_order_relaxed);
}

}  // namespace uucs
