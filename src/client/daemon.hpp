#pragma once

#include <atomic>
#include <functional>

#include "client/client.hpp"
#include "client/run_executor.hpp"

namespace uucs {

/// The deployable client loop (§2): registers, then alternates between
/// Poisson-timed testcase executions (local random choice from the local
/// store) and periodic hot syncs, until stopped or a deadline passes. This
/// is what the Internet-study client binary runs; the simulator reproduces
/// the same behavior in virtual time.
class ClientDaemon {
 public:
  /// Progress callback: invoked after every completed run and sync so an
  /// embedding UI (tray icon, log) can observe the daemon.
  struct Event {
    enum class Kind { kRun, kSync } kind;
    std::string detail;  ///< testcase id or "n testcases, m results"
  };
  using EventCallback = std::function<void(const Event&)>;

  /// All references must outlive the daemon. `task_name` labels the runs'
  /// context (a real deployment would detect the foreground application).
  ClientDaemon(Clock& clock, UucsClient& client, ServerApi& server,
               RunExecutor& executor, std::string task_name = "");

  void set_event_callback(EventCallback cb) { on_event_ = std::move(cb); }

  /// Runs the loop for up to `duration_s` seconds (infinite if <= 0),
  /// blocking. Returns the number of testcase runs executed.
  std::size_t run(double duration_s);

  /// Requests a stop from any thread; run() returns within one poll slice
  /// plus the current testcase (which is stopped via the executor's
  /// exerciser set by the embedding application if needed).
  void stop() { stop_.store(true, std::memory_order_relaxed); }

  std::size_t runs_completed() const { return runs_.load(std::memory_order_relaxed); }
  std::size_t syncs_completed() const { return syncs_.load(std::memory_order_relaxed); }

  /// Consecutive failed sync attempts (drives exponential backoff; resets
  /// to zero on success). Readable from any thread while run() is live.
  std::size_t sync_failures() const {
    return sync_failures_.load(std::memory_order_relaxed);
  }

 private:
  bool sleep_interruptibly(double seconds);
  void try_sync();
  /// Interval until the next sync attempt, doubling per consecutive
  /// failure up to 8x the configured interval.
  double next_sync_delay() const;

  Clock& clock_;
  UucsClient& client_;
  ServerApi& server_;
  RunExecutor& executor_;
  std::string task_name_;
  EventCallback on_event_;
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> runs_{0};
  std::atomic<std::size_t> syncs_{0};
  std::atomic<std::size_t> sync_failures_{0};
};

}  // namespace uucs
