#include "client/feedback.hpp"

#include <csignal>

#include "util/error.hpp"

namespace uucs {

namespace {

std::atomic<bool> g_signal_pending{false};
std::atomic<bool> g_signal_installed{false};

void on_feedback_signal(int) { g_signal_pending.store(true, std::memory_order_relaxed); }

}  // namespace

SignalFeedback::SignalFeedback(int signum) : signum_(signum) {
  bool expected = false;
  UUCS_CHECK_MSG(g_signal_installed.compare_exchange_strong(expected, true),
                 "only one SignalFeedback may exist per process");
  struct sigaction sa{};
  sa.sa_handler = on_feedback_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  if (sigaction(signum_, &sa, nullptr) != 0) {
    g_signal_installed.store(false);
    throw SystemError("sigaction failed");
  }
  g_signal_pending.store(false, std::memory_order_relaxed);
}

SignalFeedback::~SignalFeedback() {
  std::signal(signum_, SIG_DFL);
  g_signal_installed.store(false);
}

bool SignalFeedback::pending() const {
  return g_signal_pending.load(std::memory_order_relaxed);
}

void SignalFeedback::reset() { g_signal_pending.store(false, std::memory_order_relaxed); }

}  // namespace uucs
