#pragma once

#include <atomic>
#include <memory>

namespace uucs {

/// Source of user discomfort feedback. In the paper a high-priority GUI
/// thread watches for tray-icon clicks or the F11 hot-key (§2.3, §2.4);
/// here the run executor polls a FeedbackSource every subinterval and stops
/// all exercisers immediately when feedback is seen.
class FeedbackSource {
 public:
  virtual ~FeedbackSource() = default;

  /// True if the user has expressed discomfort since the last reset.
  virtual bool pending() const = 0;

  /// Clears any pending feedback (called at run start).
  virtual void reset() = 0;
};

/// Feedback triggered from code — used by tests, the simulator glue, and
/// any embedding application that has its own input handling.
class ProgrammaticFeedback final : public FeedbackSource {
 public:
  void trigger() { pending_.store(true, std::memory_order_relaxed); }
  bool pending() const override { return pending_.load(std::memory_order_relaxed); }
  void reset() override { pending_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> pending_{false};
};

/// Feedback from a POSIX signal (default SIGUSR1): the headless-Linux
/// stand-in for the paper's hot-key. Install at most one per process.
class SignalFeedback final : public FeedbackSource {
 public:
  explicit SignalFeedback(int signum = 10 /*SIGUSR1*/);
  ~SignalFeedback() override;

  SignalFeedback(const SignalFeedback&) = delete;
  SignalFeedback& operator=(const SignalFeedback&) = delete;

  bool pending() const override;
  void reset() override;

 private:
  int signum_;
};

}  // namespace uucs
