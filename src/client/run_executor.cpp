#include "client/run_executor.hpp"

#include <thread>

#include "monitor/sampler.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace uucs {

RunExecutor::RunExecutor(Clock& clock, ExerciserSet& exercisers,
                         FeedbackSource& feedback, LoadRecorder* recorder,
                         double poll_interval_s)
    : clock_(clock),
      exercisers_(exercisers),
      feedback_(feedback),
      recorder_(recorder),
      poll_interval_s_(poll_interval_s) {
  UUCS_CHECK_MSG(poll_interval_s_ > 0, "poll interval must be positive");
}

RunRecord RunExecutor::execute(const Testcase& tc, const std::string& run_id,
                               const std::string& task, const std::string& user_id) {
  feedback_.reset();
  if (recorder_) {
    recorder_->clear();
    recorder_->start();
  }

  const double start = clock_.now();
  std::atomic<bool> run_done{false};
  ExerciserSet::RunOutcome outcome;
  std::thread runner([&] {
    outcome = exercisers_.run(tc);
    run_done.store(true, std::memory_order_release);
  });

  // The feedback watcher: §2.3's "high priority GUI thread watches for
  // clicks or hot-key strokes ... the exercisers are immediately stopped".
  bool discomforted = false;
  while (!run_done.load(std::memory_order_acquire)) {
    if (feedback_.pending()) {
      discomforted = true;
      exercisers_.stop();
      break;
    }
    clock_.sleep(poll_interval_s_);
  }
  runner.join();
  const double offset = std::min(clock_.now() - start, tc.duration());

  if (recorder_) recorder_->stop();

  RunRecord rec;
  rec.run_id = run_id;
  rec.user_id = user_id;
  rec.testcase_id = tc.id();
  rec.task = task;
  rec.discomforted = discomforted;
  rec.offset_s = discomforted ? offset : tc.duration();
  for (Resource r : tc.resources()) {
    const ExerciseFunction* f = tc.function(r);
    UUCS_CHECK(f != nullptr);
    rec.set_last_levels(r, f->last_values_before(rec.offset_s));
  }
  rec.metadata["testcase.description"] = tc.description();
  // Contextual process snapshot (§2.3 stores "system processes
  // information" with each run): the count plus a bounded name sample.
  const auto processes = snapshot_processes(4096);
  rec.metadata["processes.count"] = std::to_string(processes.size());
  std::string names;
  for (std::size_t i = 0; i < processes.size() && i < 8; ++i) {
    if (!names.empty()) names += ",";
    names += processes[i].name;
  }
  rec.metadata["processes.sample"] = names;
  if (recorder_) {
    const KvRecord load = recorder_->to_record();
    for (const auto& key : load.keys()) {
      rec.metadata["load." + key] = load.get(key);
    }
  }
  return rec;
}

}  // namespace uucs
