#include "client/run_executor.hpp"

#include <thread>

#include "monitor/sampler.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace uucs {

RunExecutor::RunExecutor(Clock& clock, ExerciserSet& exercisers,
                         FeedbackSource& feedback, LoadRecorder* recorder,
                         double poll_interval_s)
    : clock_(clock),
      exercisers_(exercisers),
      feedback_(feedback),
      recorder_(recorder),
      poll_interval_s_(poll_interval_s) {
  UUCS_CHECK_MSG(poll_interval_s_ > 0, "poll interval must be positive");
}

RunRecord RunExecutor::execute(const Testcase& tc, const std::string& run_id,
                               const std::string& task, const std::string& user_id) {
  feedback_.reset();
  if (recorder_) {
    recorder_->clear();
    recorder_->start();
  }

  const double start = clock_.now();
  std::atomic<bool> run_done{false};
  ExerciserSet::RunOutcome outcome;
  std::string run_error;
  std::thread runner([&] {
    // Second exception barrier: run() can throw before any worker starts
    // (e.g. the disk volume has no room to borrow at all). Letting that
    // escape this thread would be std::terminate.
    try {
      outcome = exercisers_.run(tc);
    } catch (const std::exception& e) {
      run_error = e.what();
      outcome.elapsed_s = std::min(clock_.now() - start, tc.duration());
    } catch (...) {
      run_error = "unknown exception";
      outcome.elapsed_s = std::min(clock_.now() - start, tc.duration());
    }
    run_done.store(true, std::memory_order_release);
  });

  // The feedback watcher: §2.3's "high priority GUI thread watches for
  // clicks or hot-key strokes ... the exercisers are immediately stopped".
  // The loop is bounded by the supervisor's own deadline (duration + grace
  // + stop bound, with slack): past it the watcher stops the set once more
  // defensively and merely waits for the runner, rather than polling
  // feedback forever for a run that can no longer end normally.
  const ExerciserConfig& ecfg = exercisers_.config();
  const double watcher_deadline =
      start + tc.duration() + ecfg.watchdog_grace_s + 2.0 * ecfg.stop_bound_s + 1.0;
  bool discomforted = false;
  bool past_deadline = false;
  while (!run_done.load(std::memory_order_acquire)) {
    if (!past_deadline && feedback_.pending()) {
      discomforted = true;
      exercisers_.stop();
      break;
    }
    if (!past_deadline && clock_.now() >= watcher_deadline) {
      past_deadline = true;
      exercisers_.stop();
    }
    clock_.sleep(poll_interval_s_);
  }
  runner.join();
  const double offset = std::min(clock_.now() - start, tc.duration());

  if (recorder_) recorder_->stop();

  RunRecord rec;
  rec.run_id = run_id;
  rec.user_id = user_id;
  rec.testcase_id = tc.id();
  rec.task = task;
  rec.discomforted = discomforted;
  rec.offset_s = discomforted ? offset : tc.duration();
  for (Resource r : tc.resources()) {
    const ExerciseFunction* f = tc.function(r);
    UUCS_CHECK(f != nullptr);
    rec.set_last_levels(r, f->last_values_before(rec.offset_s));
  }
  rec.metadata["testcase.description"] = tc.description();
  // Typed run outcome (host-safety): only written when something actually
  // went wrong, so healthy runs serialize exactly as they always have.
  ResourceOutcome worst = outcome.worst();
  if (!run_error.empty() && resource_outcome_severity(ResourceOutcome::kFailed) >
                                resource_outcome_severity(worst)) {
    worst = ResourceOutcome::kFailed;
  }
  if (worst != ResourceOutcome::kOk || outcome.watchdog_fired) {
    rec.metadata["run.outcome"] = resource_outcome_name(worst);
    if (outcome.watchdog_fired) rec.metadata["run.watchdog"] = "1";
    if (!run_error.empty()) rec.metadata["run.error"] = run_error;
    for (const auto& [r, report] : outcome.reports) {
      if (report.outcome == ResourceOutcome::kOk) continue;
      const std::string key = "outcome." + resource_name(r);
      rec.metadata[key] = resource_outcome_name(report.outcome);
      if (!report.detail.empty()) rec.metadata[key + ".detail"] = report.detail;
      if (report.degraded_events > 0) {
        rec.metadata[key + ".events"] = std::to_string(report.degraded_events);
      }
    }
  }
  // Contextual process snapshot (§2.3 stores "system processes
  // information" with each run): the count plus a bounded name sample.
  const auto processes = snapshot_processes(4096);
  rec.metadata["processes.count"] = std::to_string(processes.size());
  std::string names;
  for (std::size_t i = 0; i < processes.size() && i < 8; ++i) {
    if (!names.empty()) names += ",";
    names += processes[i].name;
  }
  rec.metadata["processes.sample"] = names;
  if (recorder_) {
    const KvRecord load = recorder_->to_record();
    for (const auto& key : load.keys()) {
      rec.metadata["load." + key] = load.get(key);
    }
  }
  return rec;
}

}  // namespace uucs
