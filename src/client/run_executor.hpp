#pragma once

#include <string>

#include "client/feedback.hpp"
#include "exerciser/exerciser_set.hpp"
#include "monitor/recorder.hpp"
#include "testcase/run_record.hpp"

namespace uucs {

/// Executes one testcase run on the live machine (§2.3): starts the
/// exercisers, watches for feedback, stops everything immediately when the
/// user reacts, and assembles the RunRecord — termination cause, time
/// offset, last five contention values per exercise function, and the load
/// measurements if a recorder is attached.
class RunExecutor {
 public:
  /// `recorder` may be null (no load capture). All references must outlive
  /// the executor.
  RunExecutor(Clock& clock, ExerciserSet& exercisers, FeedbackSource& feedback,
              LoadRecorder* recorder = nullptr, double poll_interval_s = 0.02);

  /// Runs `tc` to feedback or exhaustion. Blocking.
  RunRecord execute(const Testcase& tc, const std::string& run_id,
                    const std::string& task = "", const std::string& user_id = "");

 private:
  Clock& clock_;
  ExerciserSet& exercisers_;
  FeedbackSource& feedback_;
  LoadRecorder* recorder_;
  double poll_interval_s_;
};

}  // namespace uucs
