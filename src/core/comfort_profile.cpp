#include "core/comfort_profile.hpp"

#include "analysis/metrics.hpp"
#include "util/error.hpp"

namespace uucs::core {

ComfortProfile ComfortProfile::from_results(const ResultStore& results) {
  ComfortProfile profile;
  for (Resource r : kStudyResources) {
    profile.curves_[Key{"", r}] = analysis::aggregate_cdf(results, r);
    for (sim::Task task : sim::kAllTasks) {
      const std::string name = sim::task_name(task);
      auto cdf = analysis::build_discomfort_cdf(
          analysis::select_ramp_runs(results, name, r), r);
      if (cdf.run_count() > 0) {
        profile.curves_[Key{name, r}] = std::move(cdf);
      }
    }
  }
  return profile;
}

const stats::DiscomfortCdf* ComfortProfile::find(const std::string& task,
                                                 Resource r) const {
  auto it = curves_.find(Key{task, r});
  if (it == curves_.end() && !task.empty()) {
    // Unknown context: fall back to the aggregated curve.
    it = curves_.find(Key{"", r});
  }
  return it == curves_.end() ? nullptr : &it->second;
}

double ComfortProfile::max_contention(Resource r, double budget,
                                      const std::string& task) const {
  UUCS_CHECK_MSG(budget >= 0 && budget <= 1, "budget must be a fraction");
  const stats::DiscomfortCdf* cdf = find(task, r);
  if (!cdf || cdf->run_count() == 0) return 0.0;  // no data: borrow nothing
  const auto points = cdf->curve_points();
  if (points.empty()) {
    // No discomfort observed anywhere in the explored range: the whole
    // range is within budget, but we have no level scale — be conservative
    // and report nothing (callers with a "never" cell should use the
    // testcase maxima they explored).
    return 0.0;
  }
  double allowed = 0.0;
  for (const auto& [level, fraction] : points) {
    // Evaluate the CDF at the level itself: the leading anchor point
    // carries fraction 0 for the region *below* the first observation and
    // must not make that observation look safe.
    if (cdf->fraction_at(level) <= budget) {
      allowed = level;
    } else {
      break;
    }
  }
  return allowed;
}

double ComfortProfile::discomfort_fraction(Resource r, double level,
                                           const std::string& task) const {
  UUCS_CHECK_MSG(level >= 0, "level must be >= 0");
  const stats::DiscomfortCdf* cdf = find(task, r);
  if (!cdf || cdf->run_count() == 0) return 1.0;  // unknown: assume the worst
  return cdf->fraction_at(level);
}

bool ComfortProfile::has_context(const std::string& task, Resource r) const {
  return curves_.count(Key{task, r}) != 0;
}

std::vector<KvRecord> ComfortProfile::to_records() const {
  std::vector<KvRecord> records;
  records.reserve(curves_.size());
  for (const auto& [key, cdf] : curves_) {
    KvRecord rec("comfort-curve");
    rec.set("task", key.task);
    rec.set("resource", resource_name(key.resource));
    rec.set_doubles("levels", cdf.discomfort_levels());
    rec.set_int("exhausted", static_cast<std::int64_t>(cdf.exhausted_count()));
    records.push_back(std::move(rec));
  }
  return records;
}

ComfortProfile ComfortProfile::from_records(const std::vector<KvRecord>& records) {
  ComfortProfile profile;
  for (const auto& rec : records) {
    if (rec.type() != "comfort-curve") {
      throw ParseError("expected [comfort-curve], got [" + rec.type() + "]");
    }
    stats::DiscomfortCdf cdf;
    for (double level : rec.get_doubles("levels")) cdf.add_discomfort(level);
    const auto exhausted = rec.get_int("exhausted");
    if (exhausted < 0) throw ParseError("negative exhausted count");
    for (std::int64_t i = 0; i < exhausted; ++i) cdf.add_exhausted();
    profile.curves_[Key{rec.get("task"), parse_resource(rec.get("resource"))}] =
        std::move(cdf);
  }
  return profile;
}

}  // namespace uucs::core
