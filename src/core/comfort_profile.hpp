#pragma once

#include <map>
#include <optional>
#include <string>

#include "stats/ecdf.hpp"
#include "testcase/run_record.hpp"

namespace uucs::core {

/// The distilled product of a comfort study: for each resource (and
/// optionally each user context), the discomfort CDF as a contention →
/// cumulative-discomfort-fraction curve. This is what the paper tells
/// implementors to exploit: "Exploit our CDFs (Figures 10-12) to set the
/// throttle according to the percentage of users you are willing to
/// affect" (§5).
class ComfortProfile {
 public:
  /// Builds the profile from study results: aggregated per resource, plus
  /// per-(task, resource) curves for context-aware throttling ("Know what
  /// the user is doing", §5).
  static ComfortProfile from_results(const ResultStore& results);

  /// Contention level on `r` that keeps the expected fraction of
  /// discomforted users at or below `budget` (e.g. 0.05 for the paper's
  /// c_0.05). `task` empty = aggregated curve. Returns 0 when even the
  /// smallest observed discomfort level exceeds the budget, and the largest
  /// observed level when the budget is never reached in range (the
  /// censored region — the study saw fewer reactions than the budget
  /// allows even at its maximum).
  double max_contention(Resource r, double budget, const std::string& task = "") const;

  /// Expected discomforted fraction at contention `level`.
  double discomfort_fraction(Resource r, double level,
                             const std::string& task = "") const;

  /// True if a per-task curve exists for (task, r).
  bool has_context(const std::string& task, Resource r) const;

  /// Number of stored curves (aggregated + per-task).
  std::size_t curve_count() const { return curves_.size(); }

  /// Serializes every curve ([comfort-curve] records with level/fraction
  /// lists) and restores them, so deployments can ship profiles as text.
  std::vector<KvRecord> to_records() const;
  static ComfortProfile from_records(const std::vector<KvRecord>& records);

 private:
  struct Key {
    std::string task;  // "" = aggregated
    Resource resource;
    bool operator<(const Key& o) const {
      if (task != o.task) return task < o.task;
      return resource < o.resource;
    }
  };
  const stats::DiscomfortCdf* find(const std::string& task, Resource r) const;

  std::map<Key, stats::DiscomfortCdf> curves_;
};

}  // namespace uucs::core
