#include "core/policy_eval.hpp"

#include <cmath>

#include "sim/simulation.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/rng_streams.hpp"
#include "util/strings.hpp"

namespace uucs::core {

double PolicyEvalResult::total_borrowed() const {
  double sum = 0;
  for (double b : borrowed_contention_s) sum += b;
  return sum;
}

std::size_t PolicyEvalResult::total_events() const {
  std::size_t sum = 0;
  for (auto e : discomfort_events) sum += e;
  return sum;
}

double PolicyEvalResult::events_per_hour() const {
  return user_hours > 0 ? static_cast<double>(total_events()) / user_hours : 0.0;
}

namespace {

std::size_t resource_slot(Resource r) {
  switch (r) {
    case Resource::kCpu:
      return 0;
    case Resource::kMemory:
      return 1;
    case Resource::kDisk:
      return 2;
    case Resource::kNetwork:
      break;
  }
  throw Error("network is not evaluated");
}

/// Per-session partial sums, merged into the result in session order.
struct SessionTotals {
  std::array<double, 3> borrowed{};
  std::array<std::size_t, 3> events{};
};

/// One (user, task) session as a discrete-event tick chain: the body of an
/// engine job, driven by the job's own sim::Simulation. Each dt slice is a
/// self-rescheduling run-start event; a discomfort press stays inline in
/// its tick (the policy's on_feedback must land before the next resource
/// check of the same slice) and is recorded as a feedback trace note.
/// `start_s` keeps the continuous policy clock the sequential harness
/// exposed (session k starts at k * session_s).
SessionTotals run_policy_session(ThrottlePolicy& policy,
                                 const sim::UserProfile& user, sim::Task task,
                                 double start_s, const PolicyEvalConfig& config,
                                 Rng& rng, sim::Simulation& sim) {
  SessionTotals totals;

  // Presence trace: alternating active/away periods.
  bool active = true;
  double phase_left = rng.exponential(config.mean_active_s);

  std::array<double, 3> press_block{};   // next time a press is allowed
  std::array<double, 3> paused_until{};  // borrowing pause after press

  // The tick carries its own accumulated `t` (not sim.now() arithmetic) so
  // the floating-point sequence 0, dt, 2·dt… is bit-identical to the
  // historical `for (t += dt)` loop.
  std::function<void(double)> tick = [&](double t) {
    const double now = start_s + t;
    phase_left -= config.dt_s;
    if (phase_left <= 0) {
      active = !active;
      phase_left =
          rng.exponential(active ? config.mean_active_s : config.mean_away_s);
    }
    BorrowContext ctx;
    ctx.task = sim::task_name(task);
    ctx.user_active = active;
    ctx.now_s = now;

    for (Resource r : kStudyResources) {
      const auto slot = resource_slot(r);
      if (now < paused_until[slot]) continue;  // backed off after a press
      const double c = policy.allowed_contention(r, ctx);
      if (c <= 0) continue;
      totals.borrowed[slot] += c * config.dt_s;
      if (!active) continue;  // nobody there to be annoyed
      const double threshold = user.threshold(task, r);
      if (std::isfinite(threshold) && c >= threshold &&
          now >= press_block[slot]) {
        ++totals.events[slot];
        policy.on_feedback(r, ctx);
        sim.note(sim::EventClass::kFeedback,
                 sim.tracing()
                     ? strprintf("press %s task=%s", resource_name(r).c_str(),
                                 ctx.task.c_str())
                     : std::string());
        press_block[slot] = now + config.feedback_cooldown_s;
        paused_until[slot] = now + config.pause_after_feedback_s;
      }
    }

    const double t_next = t + config.dt_s;
    if (t_next < config.session_s) {
      sim.schedule_at(t_next, sim::EventClass::kRunStart,
                      sim.tracing() ? strprintf("tick t=%.1f", t_next)
                                    : std::string(),
                      [&tick, t_next] { tick(t_next); });
    }
  };
  if (config.session_s > 0) {
    sim.schedule_at(0.0, sim::EventClass::kRunStart,
                    sim.tracing() ? std::string("tick t=0.0") : std::string(),
                    [&tick] { tick(0.0); });
  }
  sim.run_all();
  return totals;
}

}  // namespace

PolicyEvalResult evaluate_policy(ThrottlePolicy& policy,
                                 const std::vector<sim::UserProfile>& users,
                                 const PolicyEvalConfig& config) {
  UUCS_CHECK_MSG(config.dt_s > 0 && config.session_s > config.dt_s, "eval config");
  PolicyEvalResult result;
  result.policy = policy.name();

  // Per-session streams fork from the root in session order before any job
  // runs; each job gets its own policy clone, so sessions are independent
  // and the engine may execute them on any thread.
  Rng root(config.seed);
  struct Session {
    const sim::UserProfile* user;
    sim::Task task;
    double start_s;
    Rng rng;
  };
  std::vector<Session> sessions;
  sessions.reserve(users.size() * sim::kAllTasks.size());
  for (std::size_t ui = 0; ui < users.size(); ++ui) {
    for (sim::Task task : sim::kAllTasks) {
      Session s{&users[ui], task,
                static_cast<double>(sessions.size()) * config.session_s,
                root.fork(streams::policy_session(
                    ui, static_cast<std::size_t>(task)))};
      sessions.push_back(std::move(s));
    }
  }

  engine::SessionEngine eng(engine::EngineConfig{config.jobs, config.trace});
  std::vector<SessionTotals> shards = eng.map<SessionTotals>(
      sessions.size(), [&](engine::JobContext& ctx) {
        Session& s = sessions[ctx.index()];
        std::unique_ptr<ThrottlePolicy> local = policy.clone();
        SessionTotals totals =
            run_policy_session(*local, *s.user, s.task, s.start_s, config,
                               s.rng, ctx.simulation());
        ctx.count_runs();  // one dt-stepped session per job
        return totals;
      });

  // Deterministic merge in session order.
  for (const SessionTotals& totals : shards) {
    for (std::size_t slot = 0; slot < 3; ++slot) {
      result.borrowed_contention_s[slot] += totals.borrowed[slot];
      result.discomfort_events[slot] += totals.events[slot];
    }
    result.user_hours += config.session_s / 3600.0;
  }
  result.engine = eng.stats();
  if (config.trace) result.trace = eng.merged_trace();
  return result;
}

}  // namespace uucs::core
