#include "core/policy_eval.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace uucs::core {

double PolicyEvalResult::total_borrowed() const {
  double sum = 0;
  for (double b : borrowed_contention_s) sum += b;
  return sum;
}

std::size_t PolicyEvalResult::total_events() const {
  std::size_t sum = 0;
  for (auto e : discomfort_events) sum += e;
  return sum;
}

double PolicyEvalResult::events_per_hour() const {
  return user_hours > 0 ? static_cast<double>(total_events()) / user_hours : 0.0;
}

namespace {

std::size_t resource_slot(Resource r) {
  switch (r) {
    case Resource::kCpu:
      return 0;
    case Resource::kMemory:
      return 1;
    case Resource::kDisk:
      return 2;
    case Resource::kNetwork:
      break;
  }
  throw Error("network is not evaluated");
}

}  // namespace

PolicyEvalResult evaluate_policy(ThrottlePolicy& policy,
                                 const std::vector<sim::UserProfile>& users,
                                 const PolicyEvalConfig& config) {
  UUCS_CHECK_MSG(config.dt_s > 0 && config.session_s > config.dt_s, "eval config");
  PolicyEvalResult result;
  result.policy = policy.name();

  Rng root(config.seed);
  double global_now = 0.0;  // policies see continuous time across sessions

  for (std::size_t ui = 0; ui < users.size(); ++ui) {
    const sim::UserProfile& user = users[ui];
    for (sim::Task task : sim::kAllTasks) {
      Rng rng = root.fork(ui * 16 + static_cast<std::size_t>(task));

      // Presence trace: alternating active/away periods.
      bool active = true;
      double phase_left = rng.exponential(config.mean_active_s);

      std::array<double, 3> press_block{};     // next time a press is allowed
      std::array<double, 3> paused_until{};    // borrowing pause after press

      for (double t = 0; t < config.session_s; t += config.dt_s) {
        const double now = global_now + t;
        phase_left -= config.dt_s;
        if (phase_left <= 0) {
          active = !active;
          phase_left = rng.exponential(active ? config.mean_active_s
                                              : config.mean_away_s);
        }
        BorrowContext ctx;
        ctx.task = sim::task_name(task);
        ctx.user_active = active;
        ctx.now_s = now;

        for (Resource r : kStudyResources) {
          const auto slot = resource_slot(r);
          if (now < paused_until[slot]) continue;  // backed off after a press
          const double c = policy.allowed_contention(r, ctx);
          if (c <= 0) continue;
          result.borrowed_contention_s[slot] += c * config.dt_s;
          if (!active) continue;  // nobody there to be annoyed
          const double threshold = user.threshold(task, r);
          if (std::isfinite(threshold) && c >= threshold &&
              now >= press_block[slot]) {
            ++result.discomfort_events[slot];
            policy.on_feedback(r, ctx);
            press_block[slot] = now + config.feedback_cooldown_s;
            paused_until[slot] = now + config.pause_after_feedback_s;
          }
        }
      }
      global_now += config.session_s;
      result.user_hours += config.session_s / 3600.0;
    }
  }
  return result;
}

}  // namespace uucs::core
