#pragma once

#include <array>
#include <vector>

#include "core/throttle.hpp"
#include "engine/session_engine.hpp"
#include "sim/user_model.hpp"

namespace uucs::core {

/// Configuration for the throttle-policy evaluation harness: a background
/// application borrows as much as its policy allows while synthetic users
/// (from the calibrated study population) work through sessions, stepping
/// the world in `dt_s` slices.
struct PolicyEvalConfig {
  double session_s = 2.0 * 3600;   ///< one session per (user, task)
  double dt_s = 1.0;
  double mean_active_s = 1500.0;   ///< user presence burst length
  double mean_away_s = 300.0;      ///< user away (screensaver) length
  double feedback_cooldown_s = 120.0;  ///< min spacing between presses
  double pause_after_feedback_s = 60.0;///< borrowing stops after a press
  std::uint64_t seed = 31337;

  /// SessionEngine worker threads (0 = hardware concurrency). Each
  /// (user, task) session runs as one job against its own clone of the
  /// policy; shard results merge in session order, so any value is
  /// deterministic for one seed.
  std::size_t jobs = 0;

  /// Record every simulation event (policy ticks, feedback presses) into
  /// PolicyEvalResult::trace, merged in session order. Observability
  /// only — never changes results. Expect ~session_s/dt_s events per
  /// session.
  bool trace = false;
};

/// What a policy achieved over the evaluation.
struct PolicyEvalResult {
  std::string policy;
  /// Contention-seconds borrowed per resource (cpu, memory, disk order).
  std::array<double, 3> borrowed_contention_s{};
  /// Discomfort presses per resource.
  std::array<std::size_t, 3> discomfort_events{};
  double user_hours = 0.0;  ///< total simulated session time
  engine::EngineStats engine;  ///< session-engine instrumentation
  sim::EventTrace trace;       ///< fired events, when config.trace was set

  double total_borrowed() const;
  std::size_t total_events() const;
  /// Discomfort presses per simulated user-hour — the annoyance rate.
  double events_per_hour() const;
};

/// Runs `policy` against every (user, task) session. The activity traces
/// and user draws depend only on `config.seed`, so different policies face
/// identical conditions and results are directly comparable. Each session
/// evaluates an independent clone of `policy` (sessions are different
/// users, so adaptive state never carried meaningfully between them), which
/// is what lets sessions execute as parallel SessionEngine jobs.
PolicyEvalResult evaluate_policy(ThrottlePolicy& policy,
                                 const std::vector<sim::UserProfile>& users,
                                 const PolicyEvalConfig& config = {});

}  // namespace uucs::core
