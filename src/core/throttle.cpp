#include "core/throttle.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace uucs::core {

ConservativePolicy::ConservativePolicy(double away_contention)
    : away_contention_(away_contention) {
  UUCS_CHECK_MSG(away_contention_ >= 0, "contention must be >= 0");
}

double ConservativePolicy::allowed_contention(Resource, const BorrowContext& ctx) {
  return ctx.user_active ? 0.0 : away_contention_;
}

void ConservativePolicy::on_feedback(Resource, const BorrowContext&) {
  // Nothing to adapt: the policy already never borrows while the user is
  // present (feedback can only come from the user returning mid-burst).
}

CdfThrottle::CdfThrottle(ComfortProfile profile, double budget,
                         double away_contention)
    : profile_(std::move(profile)),
      budget_(budget),
      away_contention_(away_contention) {
  UUCS_CHECK_MSG(budget_ > 0 && budget_ < 1, "budget must be in (0,1)");
  UUCS_CHECK_MSG(away_contention_ >= 0, "contention must be >= 0");
}

double CdfThrottle::allowed_contention(Resource r, const BorrowContext& ctx) {
  if (!ctx.user_active) return away_contention_;
  return profile_.max_contention(r, budget_, ctx.task);
}

void CdfThrottle::on_feedback(Resource, const BorrowContext&) {
  // Static policy: the budget already prices in this fraction of events.
}

std::string CdfThrottle::name() const {
  return strprintf("cdf@%g%%", budget_ * 100.0);
}

AdaptiveThrottle::AdaptiveThrottle(ComfortProfile profile, double budget,
                                   double away_contention, double recovery_s,
                                   double backoff_factor)
    : profile_(std::move(profile)),
      budget_(budget),
      away_contention_(away_contention),
      recovery_s_(recovery_s),
      backoff_factor_(backoff_factor) {
  UUCS_CHECK_MSG(budget_ > 0 && budget_ < 1, "budget must be in (0,1)");
  UUCS_CHECK_MSG(recovery_s_ > 0, "recovery time must be positive");
  UUCS_CHECK_MSG(backoff_factor_ > 0 && backoff_factor_ < 1,
                 "backoff factor must be in (0,1)");
}

AdaptiveThrottle::State& AdaptiveThrottle::state(Resource r, const std::string& task) {
  return states_[{task, r}];
}

void AdaptiveThrottle::decay(State& s, double now_s) {
  // Exponential recovery of the multiplier toward 1.
  const double dt = std::max(0.0, now_s - s.last_update_s);
  const double gap = 1.0 - s.multiplier;
  s.multiplier = 1.0 - gap * std::exp(-dt / recovery_s_);
  s.last_update_s = now_s;
}

double AdaptiveThrottle::allowed_contention(Resource r, const BorrowContext& ctx) {
  if (!ctx.user_active) return away_contention_;
  State& s = state(r, ctx.task);
  decay(s, ctx.now_s);
  return profile_.max_contention(r, budget_, ctx.task) * s.multiplier;
}

void AdaptiveThrottle::on_feedback(Resource r, const BorrowContext& ctx) {
  State& s = state(r, ctx.task);
  decay(s, ctx.now_s);
  s.multiplier *= backoff_factor_;
}

double AdaptiveThrottle::cap_multiplier(Resource r, const std::string& task) const {
  const auto it = states_.find({task, r});
  return it == states_.end() ? 1.0 : it->second.multiplier;
}

}  // namespace uucs::core
