#pragma once

#include <memory>
#include <string>

#include "core/comfort_profile.hpp"

namespace uucs::core {

/// What the borrowing application knows about the moment it is borrowing in.
struct BorrowContext {
  std::string task;          ///< foreground context name ("" = unknown)
  bool user_active = true;   ///< false when the user is away (screensaver)
  double now_s = 0.0;        ///< monotonic time, for recovery dynamics
};

/// A borrowing throttle (§5: "Build a throttle. Your system can benefit
/// from being able to control its borrowing at a fine granularity").
/// Implementations return the contention the background application may
/// apply right now, and are told when the user expresses discomfort.
class ThrottlePolicy {
 public:
  virtual ~ThrottlePolicy() = default;

  /// Maximum contention allowed on `r` under `ctx`.
  virtual double allowed_contention(Resource r, const BorrowContext& ctx) = 0;

  /// The user expressed discomfort while this policy was borrowing.
  virtual void on_feedback(Resource r, const BorrowContext& ctx) = 0;

  /// Human-readable policy name for reports.
  virtual std::string name() const = 0;

  /// Deep copy carrying the policy's current adaptive state. The policy
  /// evaluation harness clones the policy once per (user, task) session so
  /// independent sessions can run as parallel SessionEngine jobs.
  virtual std::unique_ptr<ThrottlePolicy> clone() const = 0;
};

/// The conservative baseline the paper attributes to Condor, Sprite and
/// SETI@home: "execute only when they are quite sure the user is away".
/// Borrows `away_contention` when the user is inactive, nothing otherwise.
class ConservativePolicy final : public ThrottlePolicy {
 public:
  explicit ConservativePolicy(double away_contention = 1.0);

  double allowed_contention(Resource r, const BorrowContext& ctx) override;
  void on_feedback(Resource r, const BorrowContext& ctx) override;
  std::string name() const override { return "conservative"; }
  std::unique_ptr<ThrottlePolicy> clone() const override {
    return std::make_unique<ConservativePolicy>(*this);
  }

 private:
  double away_contention_;
};

/// The CDF-driven throttle of §5: borrow up to the study-derived contention
/// that keeps the expected discomforted-user fraction within `budget`,
/// using the per-context curve when the foreground task is known ("Know
/// what the user is doing") and the aggregated curve otherwise. When the
/// user is away it borrows `away_contention` like the baseline.
class CdfThrottle final : public ThrottlePolicy {
 public:
  CdfThrottle(ComfortProfile profile, double budget = 0.05,
              double away_contention = 4.0);

  double allowed_contention(Resource r, const BorrowContext& ctx) override;
  void on_feedback(Resource r, const BorrowContext& ctx) override;
  std::string name() const override;
  std::unique_ptr<ThrottlePolicy> clone() const override {
    return std::make_unique<CdfThrottle>(*this);
  }

  const ComfortProfile& profile() const { return profile_; }

 private:
  ComfortProfile profile_;
  double budget_;
  double away_contention_;
};

/// The feedback-driven throttle the paper leaves as future work ("We are
/// currently exploring how to use user feedback directly in the scheduling
/// of these frameworks"). Starts from the CDF setting; every discomfort
/// press halves the per-(context, resource) cap (multiplicative decrease)
/// and the cap recovers exponentially toward the CDF setting with time
/// constant `recovery_s` — an AIMD-style control loop on user comfort.
class AdaptiveThrottle final : public ThrottlePolicy {
 public:
  AdaptiveThrottle(ComfortProfile profile, double budget = 0.05,
                   double away_contention = 4.0, double recovery_s = 1800.0,
                   double backoff_factor = 0.5);

  double allowed_contention(Resource r, const BorrowContext& ctx) override;
  void on_feedback(Resource r, const BorrowContext& ctx) override;
  std::string name() const override { return "adaptive"; }
  std::unique_ptr<ThrottlePolicy> clone() const override {
    return std::make_unique<AdaptiveThrottle>(*this);
  }

  /// Current cap multiplier in (0, 1] for diagnostics.
  double cap_multiplier(Resource r, const std::string& task) const;

 private:
  struct State {
    double multiplier = 1.0;
    double last_update_s = 0.0;
  };
  State& state(Resource r, const std::string& task);
  void decay(State& s, double now_s);

  ComfortProfile profile_;
  double budget_;
  double away_contention_;
  double recovery_s_;
  double backoff_factor_;
  std::map<std::pair<std::string, Resource>, State> states_;
};

}  // namespace uucs::core
