#include "engine/session_engine.hpp"

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <ctime>
#include <exception>
#include <mutex>
#include <thread>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace uucs::engine {

namespace {

double process_cpu_seconds() {
  timespec ts{};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

std::size_t peak_rss_bytes() {
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  // ru_maxrss is KiB on Linux.
  return static_cast<std::size_t>(ru.ru_maxrss) * 1024;
}

}  // namespace

std::size_t effective_jobs(std::size_t jobs) {
  if (jobs > 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void WorkerStats::merge(const WorkerStats& other) {
  jobs_executed += other.jobs_executed;
  runs_simulated += other.runs_simulated;
  arena_bytes = std::max(arena_bytes, other.arena_bytes);
  interner_size = std::max(interner_size, other.interner_size);
}

void EngineStats::merge(const EngineStats& other) {
  workers = std::max(workers, other.workers);
  jobs_executed += other.jobs_executed;
  runs_simulated += other.runs_simulated;
  wall_s += other.wall_s;
  cpu_s += other.cpu_s;
  merge_s += other.merge_s;
  max_rss_bytes = std::max(max_rss_bytes, other.max_rss_bytes);
  for (const WorkerStats& w : other.per_worker) {
    if (w.slot >= per_worker.size()) per_worker.resize(w.slot + 1);
    per_worker[w.slot].slot = w.slot;
    per_worker[w.slot].merge(w);
  }
}

TextTable EngineStats::summary() const {
  TextTable t;
  t.set_header({"engine metric", "value"});
  t.add_row({"workers", std::to_string(workers)});
  t.add_row({"session jobs", std::to_string(jobs_executed)});
  t.add_row({"runs simulated", std::to_string(runs_simulated)});
  t.add_row({"wall time (s)", strprintf("%.3f", wall_s)});
  t.add_row({"cpu time (s)", strprintf("%.3f", cpu_s)});
  if (merge_s > 0) t.add_row({"merge time (s)", strprintf("%.3f", merge_s)});
  t.add_row({"sessions/s", strprintf("%.1f", jobs_per_s())});
  t.add_row({"runs/s", strprintf("%.1f", runs_per_s())});
  if (max_rss_bytes > 0) {
    t.add_row({"max rss (MiB)",
               strprintf("%.1f", static_cast<double>(max_rss_bytes) /
                                     (1024.0 * 1024.0))});
  }
  if (workers > 0 && wall_s > 0) {
    t.add_row({"parallel efficiency",
               strprintf("%.2f", cpu_s / (wall_s * static_cast<double>(workers)))});
  }
  return t;
}

TextTable EngineStats::worker_summary() const {
  TextTable t;
  t.set_header({"worker", "jobs", "runs", "arena (KiB)", "interner strings"});
  for (const WorkerStats& w : per_worker) {
    t.add_row({std::to_string(w.slot), std::to_string(w.jobs_executed),
               std::to_string(w.runs_simulated),
               strprintf("%.1f", static_cast<double>(w.arena_bytes) / 1024.0),
               std::to_string(w.interner_size)});
  }
  return t;
}

std::vector<SessionJob> make_user_session_jobs(
    const std::vector<sim::UserProfile>& users, Rng& root,
    std::uint64_t (*stream_of)(std::size_t)) {
  std::vector<SessionJob> jobs;
  jobs.reserve(users.size());
  for (std::size_t ui = 0; ui < users.size(); ++ui) {
    SessionJob job;
    job.index = ui;
    job.user = &users[ui];
    job.tasks.assign(sim::kAllTasks.begin(), sim::kAllTasks.end());
    job.rng = root.fork(stream_of(ui));
    jobs.push_back(std::move(job));
  }
  return jobs;
}

sim::Simulation& JobContext::simulation() {
  if (!sim_) sim_ = &engine_.slot_simulation(worker_slot_);
  return *sim_;
}

StringInterner& JobContext::interner() {
  return engine_.slots_[worker_slot_]->interner;
}

void JobContext::count_runs(std::size_t n) {
  engine_.slots_[worker_slot_]->runs += n;
}

sim::EventTrace SessionEngine::merged_trace() const {
  sim::EventTrace merged;
  for (const sim::EventTrace& t : job_traces_) merged.append(t);
  return merged;
}

SessionEngine::SessionEngine(EngineConfig config)
    : config_(config), workers_(effective_jobs(config.jobs)) {
  stats_.workers = workers_;
  slots_.reserve(workers_);
  for (std::size_t s = 0; s < workers_; ++s) {
    slots_.push_back(std::make_unique<WorkerSlot>());
  }
}

SessionEngine::~SessionEngine() = default;

sim::Simulation& SessionEngine::slot_simulation(std::size_t slot) {
  WorkerSlot& w = *slots_[slot];
  if (!w.sim) {
    sim::SimulationConfig config;
    config.trace = config_.trace;
    w.sim = std::make_unique<sim::Simulation>(config);
  } else {
    w.sim->reset();
  }
  return *w.sim;
}

void SessionEngine::refresh_worker_stats() {
  stats_.per_worker.resize(workers_);
  for (std::size_t s = 0; s < workers_; ++s) {
    const WorkerSlot& w = *slots_[s];
    WorkerStats& ws = stats_.per_worker[s];
    ws.slot = s;
    ws.jobs_executed = w.jobs;
    ws.runs_simulated = w.runs;
    ws.arena_bytes =
        w.sim ? w.sim->queue().arena().footprint_bytes() : 0;
    ws.interner_size = w.interner.size();
  }
}

void SessionEngine::run_tasks(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& task) {
  const auto wall_start = std::chrono::steady_clock::now();
  const double cpu_start = process_cpu_seconds();
  std::size_t runs_start = 0;
  for (const auto& slot : slots_) runs_start += slot->runs;

  // Static contiguous partitions: slot s runs jobs [begin_s, begin_s + len_s)
  // where the first n % workers slots take one extra job. Deterministic
  // (job→slot is a pure function of n and workers), cache-friendly
  // (neighboring jobs usually mean neighboring users in one population
  // vector), and free of any shared hand-out counter in the job loop.
  const std::size_t base = n / workers_;
  const std::size_t extra = n % workers_;
  const auto partition_begin = [&](std::size_t slot) {
    return slot * base + std::min(slot, extra);
  };

  if (workers_ == 1) {
    for (std::size_t i = 0; i < n; ++i) {
      task(i, 0);
      ++slots_[0]->jobs;
    }
  } else {
    if (!pool_) pool_ = std::make_unique<ThreadPool>(workers_);
    std::mutex error_mu;
    std::exception_ptr first_error;
    std::vector<std::function<void()>> partitions;
    partitions.reserve(workers_);
    for (std::size_t slot = 0; slot < workers_; ++slot) {
      const std::size_t begin = partition_begin(slot);
      const std::size_t end = partition_begin(slot + 1);
      partitions.push_back([&, slot, begin, end] {
        WorkerSlot& ws = *slots_[slot];
        for (std::size_t i = begin; i < end; ++i) {
          try {
            task(i, slot);
          } catch (...) {
            std::lock_guard<std::mutex> lock(error_mu);
            if (!first_error) first_error = std::current_exception();
          }
          ++ws.jobs;
        }
      });
    }
    pool_->submit_bulk(partitions);
    pool_->wait_idle();
    if (first_error) std::rethrow_exception(first_error);
  }

  stats_.jobs_executed += n;
  std::size_t runs_now = 0;
  for (const auto& slot : slots_) runs_now += slot->runs;
  stats_.runs_simulated += runs_now - runs_start;
  stats_.wall_s += std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - wall_start)
                       .count();
  stats_.cpu_s += process_cpu_seconds() - cpu_start;
  stats_.max_rss_bytes = std::max(stats_.max_rss_bytes, peak_rss_bytes());
  refresh_worker_stats();
}

}  // namespace uucs::engine
