#include "engine/session_engine.hpp"

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <ctime>
#include <exception>
#include <mutex>
#include <thread>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace uucs::engine {

namespace {

double process_cpu_seconds() {
  timespec ts{};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

std::size_t peak_rss_bytes() {
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  // ru_maxrss is KiB on Linux.
  return static_cast<std::size_t>(ru.ru_maxrss) * 1024;
}

}  // namespace

std::size_t effective_jobs(std::size_t jobs) {
  if (jobs > 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void EngineStats::merge(const EngineStats& other) {
  workers = std::max(workers, other.workers);
  jobs_executed += other.jobs_executed;
  runs_simulated += other.runs_simulated;
  wall_s += other.wall_s;
  cpu_s += other.cpu_s;
  max_rss_bytes = std::max(max_rss_bytes, other.max_rss_bytes);
}

TextTable EngineStats::summary() const {
  TextTable t;
  t.set_header({"engine metric", "value"});
  t.add_row({"workers", std::to_string(workers)});
  t.add_row({"session jobs", std::to_string(jobs_executed)});
  t.add_row({"runs simulated", std::to_string(runs_simulated)});
  t.add_row({"wall time (s)", strprintf("%.3f", wall_s)});
  t.add_row({"cpu time (s)", strprintf("%.3f", cpu_s)});
  t.add_row({"sessions/s", strprintf("%.1f", jobs_per_s())});
  t.add_row({"runs/s", strprintf("%.1f", runs_per_s())});
  if (max_rss_bytes > 0) {
    t.add_row({"max rss (MiB)",
               strprintf("%.1f", static_cast<double>(max_rss_bytes) /
                                     (1024.0 * 1024.0))});
  }
  if (workers > 0 && wall_s > 0) {
    t.add_row({"parallel efficiency",
               strprintf("%.2f", cpu_s / (wall_s * static_cast<double>(workers)))});
  }
  return t;
}

std::vector<SessionJob> make_user_session_jobs(
    const std::vector<sim::UserProfile>& users, Rng& root,
    std::uint64_t (*stream_of)(std::size_t)) {
  std::vector<SessionJob> jobs;
  jobs.reserve(users.size());
  for (std::size_t ui = 0; ui < users.size(); ++ui) {
    SessionJob job;
    job.index = ui;
    job.user = &users[ui];
    job.tasks.assign(sim::kAllTasks.begin(), sim::kAllTasks.end());
    job.rng = root.fork(stream_of(ui));
    jobs.push_back(std::move(job));
  }
  return jobs;
}

sim::Simulation& JobContext::simulation() {
  if (!sim_) {
    sim::SimulationConfig config;
    config.trace = engine_.config_.trace;
    sim_ = std::make_unique<sim::Simulation>(config);
  }
  return *sim_;
}

void JobContext::count_runs(std::size_t n) {
  engine_.runs_.fetch_add(n, std::memory_order_relaxed);
}

sim::EventTrace SessionEngine::merged_trace() const {
  sim::EventTrace merged;
  for (const sim::EventTrace& t : job_traces_) merged.append(t);
  return merged;
}

SessionEngine::SessionEngine(EngineConfig config)
    : config_(config), workers_(effective_jobs(config.jobs)) {
  stats_.workers = workers_;
}

SessionEngine::~SessionEngine() = default;

void SessionEngine::run_tasks(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& task) {
  const auto wall_start = std::chrono::steady_clock::now();
  const double cpu_start = process_cpu_seconds();
  const std::size_t runs_start = runs_.load(std::memory_order_relaxed);

  if (workers_ == 1) {
    for (std::size_t i = 0; i < n; ++i) task(i, 0);
  } else {
    if (!pool_) pool_ = std::make_unique<ThreadPool>(workers_);
    std::mutex error_mu;
    std::exception_ptr first_error;
    // One self-striding closure per worker: jobs are handed out through a
    // shared atomic counter, so pool traffic is O(workers), not O(jobs) —
    // per-job submit() lock contention dominated the old fan-out (see
    // BM_ThreadPoolDispatch vs BM_ThreadPoolDispatchBulk).
    std::atomic<std::size_t> next{0};
    std::vector<std::function<void()>> strides;
    strides.reserve(workers_);
    for (std::size_t slot = 0; slot < workers_; ++slot) {
      strides.push_back([&, slot] {
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= n) return;
          try {
            task(i, slot);
          } catch (...) {
            std::lock_guard<std::mutex> lock(error_mu);
            if (!first_error) first_error = std::current_exception();
          }
        }
      });
    }
    pool_->submit_bulk(strides);
    pool_->wait_idle();
    if (first_error) std::rethrow_exception(first_error);
  }

  stats_.jobs_executed += n;
  stats_.runs_simulated +=
      runs_.load(std::memory_order_relaxed) - runs_start;
  stats_.wall_s += std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - wall_start)
                       .count();
  stats_.cpu_s += process_cpu_seconds() - cpu_start;
  stats_.max_rss_bytes = std::max(stats_.max_rss_bytes, peak_rss_bytes());
}

}  // namespace uucs::engine
