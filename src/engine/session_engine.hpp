#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/simulation.hpp"
#include "sim/user_model.hpp"
#include "util/interner.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace uucs::engine {

/// Resolves a `jobs` knob: 0 means "one worker per hardware thread".
std::size_t effective_jobs(std::size_t jobs);

/// Engine knobs shared by every driver that simulates sessions.
struct EngineConfig {
  /// Worker threads. 0 = hardware concurrency, 1 = run inline on the
  /// caller's thread (the exact sequential path).
  std::size_t jobs = 0;

  /// When true, each job's Simulation records an EventTrace of every fired
  /// event; traces are collected per job and merged in job order (see
  /// job_traces()/merged_trace()). Tracing never changes simulation
  /// output — only observability.
  bool trace = false;
};

/// Per-worker instrumentation: how much work one slot did and how big its
/// thread-local structures grew. Counters are summed across phases; the
/// size fields are gauges (last/peak observation wins). Deterministic for a
/// given (n_jobs, workers) because job→slot assignment is a static
/// contiguous partition, not a work-stealing race.
struct WorkerStats {
  std::size_t slot = 0;
  std::size_t jobs_executed = 0;
  std::size_t runs_simulated = 0;
  std::size_t arena_bytes = 0;     ///< recycled Simulation arena footprint
  std::size_t interner_size = 0;   ///< strings in the worker-local pool

  void merge(const WorkerStats& other);
};

/// Lightweight instrumentation the engine gathers per run: future PRs track
/// scaling with these numbers (see BENCH_engine.json for the baseline).
struct EngineStats {
  std::size_t workers = 0;         ///< threads used by the last map()
  std::size_t jobs_executed = 0;   ///< session jobs completed
  std::size_t runs_simulated = 0;  ///< individual runs reported by jobs
  double wall_s = 0.0;             ///< wall-clock time inside map()
  double cpu_s = 0.0;              ///< process CPU time inside map()
  double merge_s = 0.0;            ///< driver-reported shard merge time
  std::size_t max_rss_bytes = 0;   ///< peak process RSS sampled after map()
  std::vector<WorkerStats> per_worker;  ///< one entry per slot, slot order

  double jobs_per_s() const { return wall_s > 0 ? jobs_executed / wall_s : 0.0; }
  double runs_per_s() const { return wall_s > 0 ? runs_simulated / wall_s : 0.0; }

  /// Accumulates another phase's numbers (workers = max of the two;
  /// per-worker entries merged by slot).
  void merge(const EngineStats& other);

  /// Two-column metric/value table for console reports.
  TextTable summary() const;

  /// Per-worker breakdown (slot, jobs, runs, arena bytes, interner size)
  /// for `uucsctl study --verbose`; empty table when no workers reported.
  TextTable worker_summary() const;
};

/// The unit of work the engine schedules: one synthetic user working
/// through a sequence of task sessions, with a pre-forked Rng stream. Jobs
/// are independent by construction — the stream is forked from the driver's
/// root before any job runs (see util/rng_streams.hpp for the contract) —
/// so they can execute on any worker in any order.
struct SessionJob {
  std::size_t index = 0;               ///< global job index; the merge key
  const sim::UserProfile* user = nullptr;
  std::vector<sim::Task> tasks;        ///< task sessions, in session order
  Rng rng;                             ///< this job's private stream
};

/// Builds one SessionJob per user covering all four tasks, forking
/// `stream_of(user_index)` from `root` in ascending user order — the same
/// fork sequence a hand-rolled sequential driver performs, so outputs stay
/// bit-identical to the historical per-user loops.
std::vector<SessionJob> make_user_session_jobs(
    const std::vector<sim::UserProfile>& users, Rng& root,
    std::uint64_t (*stream_of)(std::size_t));

class SessionEngine;

/// Passed to each job while it runs.
class JobContext {
 public:
  JobContext(std::size_t index, SessionEngine& engine,
             std::size_t worker_slot = 0)
      : index_(index), worker_slot_(worker_slot), engine_(engine) {}

  std::size_t index() const { return index_; }

  /// Which worker (0..workers()-1) is running this job. Stable for the
  /// job's whole lifetime, so drivers can keep per-worker state (e.g. one
  /// streaming StudyAccumulator per slot) without any locking: a slot is
  /// only ever touched by the thread that owns it. Inline execution uses
  /// slot 0. Job→slot assignment is a static contiguous partition — slot s
  /// runs a contiguous block of job indices — so it is a pure function of
  /// (n_jobs, workers); still, only order-independent per-slot state
  /// (exact accumulators) should rely on which jobs share a slot.
  std::size_t worker_slot() const { return worker_slot_; }

  /// This job's discrete-event simulation context, created lazily with the
  /// engine's trace setting. The Simulation object is owned by the worker
  /// slot and recycled across the slot's jobs (reset() before each reuse),
  /// so a million-job study builds exactly workers() simulations and their
  /// arenas stay warm; semantically each job still gets a fresh context.
  sim::Simulation& simulation();

  /// The worker slot's private string pool. Unsynchronized — only the
  /// owning thread may touch it — which is the whole point: flat-record
  /// interning on the per-run hot path takes no lock. Ids are local to
  /// this pool; resolve them against the same pool (see DESIGN.md §11).
  StringInterner& interner();

  /// Reports simulated runs for the engine's throughput instrumentation.
  /// Slot-local counter — no atomics on the hot path.
  void count_runs(std::size_t n = 1);

  /// The job's trace (empty when tracing is off or no simulation was
  /// created). Called by the engine after the job body returns.
  sim::EventTrace take_trace() {
    return sim_ ? sim_->take_trace() : sim::EventTrace{};
  }

 private:
  std::size_t index_;
  std::size_t worker_slot_;
  SessionEngine& engine_;
  sim::Simulation* sim_ = nullptr;  ///< slot-owned; cached after first use
};

/// Deterministic parallel session executor shared by the controlled study,
/// the Internet study, the policy-evaluation harness and the heavy benches.
///
/// Determinism contract: `map` returns results indexed by job, regardless
/// of which worker ran which job or in what order they finished. Drivers
/// merge shard results in ascending job index, so a run with `jobs = N` is
/// bit-identical to the sequential run with the same seed. The other half
/// of the contract is RNG stream pre-forking — see util/rng_streams.hpp.
///
/// Sharding: jobs are dealt to workers as static contiguous partitions
/// (slot s runs jobs [s·n/W, (s+1)·n/W) up to remainder spread), so
/// neighboring jobs — usually neighboring users in one population vector —
/// stay on one core, and per-slot state (simulation arena, interner,
/// accumulators) sees a deterministic job subset. Each worker owns a
/// cache-line-aligned slot; the job loop touches no shared mutable state,
/// so the steady-state hot path acquires no mutex and bounces no line.
class SessionEngine {
 public:
  explicit SessionEngine(EngineConfig config = {});
  ~SessionEngine();

  SessionEngine(const SessionEngine&) = delete;
  SessionEngine& operator=(const SessionEngine&) = delete;

  std::size_t workers() const { return workers_; }

  /// Runs `fn(ctx)` for job indices 0..n_jobs-1 across the worker pool and
  /// returns the results in job-index order. `fn` must be safe to call
  /// concurrently from multiple threads (share only immutable state; keep
  /// mutable state inside the job or the worker slot). The first exception
  /// thrown by any job is rethrown here after all jobs finish. With
  /// workers() == 1 the jobs run inline, in order, on the caller's thread.
  template <typename R, typename Fn>
  std::vector<R> map(std::size_t n_jobs, Fn&& fn) {
    if (config_.trace) job_traces_.assign(n_jobs, {});
    std::vector<R> results(n_jobs);
    run_tasks(n_jobs, [&](std::size_t i, std::size_t slot) {
      JobContext ctx(i, *this, slot);
      results[i] = fn(ctx);
      // Each job writes only its own pre-sized slot; no synchronization
      // needed beyond run_tasks' completion barrier.
      if (config_.trace) job_traces_[i] = ctx.take_trace();
    });
    return results;
  }

  /// Per-job event traces from the last map() (empty unless
  /// EngineConfig::trace was set), indexed by job.
  const std::vector<sim::EventTrace>& job_traces() const { return job_traces_; }

  /// All job traces concatenated in ascending job index — the
  /// deterministic merge order every driver uses for results too.
  sim::EventTrace merged_trace() const;

  /// Instrumentation accumulated over every map() on this engine,
  /// including the per-worker breakdown.
  const EngineStats& stats() const { return stats_; }

  /// Adds driver-measured shard-merge seconds to stats().merge_s.
  void add_merge_time(double seconds) { stats_.merge_s += seconds; }

 private:
  friend class JobContext;

  /// Everything one worker thread owns. Aligned to a cache line and held
  /// behind a unique_ptr so neighboring slots never share a line (the
  /// per-job counters are the only fields written at job granularity).
  struct alignas(64) WorkerSlot {
    StringInterner interner;                ///< unsynchronized, thread-local
    std::unique_ptr<sim::Simulation> sim;   ///< recycled across the slot's jobs
    std::size_t jobs = 0;                   ///< lifetime jobs executed
    std::size_t runs = 0;                   ///< lifetime runs reported
  };

  /// Runs task(i, worker_slot) for i in 0..n-1, dealing static contiguous
  /// partitions: one closure per worker via ThreadPool::submit_bulk —
  /// O(workers) pool traffic and no shared hand-out counter.
  void run_tasks(std::size_t n,
                 const std::function<void(std::size_t, std::size_t)>& task);

  /// The slot's recycled Simulation: created on first use, reset() on
  /// every subsequent job. Called only from the slot's owning thread.
  sim::Simulation& slot_simulation(std::size_t slot);

  /// Folds the slots' lifetime counters and gauges into stats_.per_worker.
  void refresh_worker_stats();

  EngineConfig config_;
  std::size_t workers_ = 1;
  std::unique_ptr<ThreadPool> pool_;  ///< created lazily on first parallel map
  std::vector<std::unique_ptr<WorkerSlot>> slots_;  ///< one per worker, fixed
  EngineStats stats_;
  std::vector<sim::EventTrace> job_traces_;
};

}  // namespace uucs::engine
