#include "exerciser/calibration.hpp"

#include "util/error.hpp"

namespace uucs {

namespace {
// Block size between clock checks: large enough that the clock read is
// amortized, small enough that deadlines are hit within microseconds.
constexpr int kUnitsPerBlock = 64;
}  // namespace

std::uint64_t cpu_work_unit(std::uint64_t x) {
  // SplitMix64-style mixing: serial data dependence defeats vectorization
  // and constant folding while exercising the integer pipeline.
  for (int i = 0; i < 16; ++i) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    x ^= x >> 31;
  }
  return x;
}

CpuCalibration CpuCalibration::measure(Clock& clock, double measure_s) {
  UUCS_CHECK_MSG(measure_s > 0, "calibration window must be positive");
  const double start = clock.now();
  const std::uint64_t units = spin_until(clock, start + measure_s);
  const double elapsed = clock.now() - start;
  CpuCalibration cal;
  cal.units_per_second = static_cast<double>(units) / elapsed;
  return cal;
}

std::uint64_t CpuCalibration::spin_until(Clock& clock, double deadline) {
  std::uint64_t units = 0;
  std::uint64_t sink = 0x2545f4914f6cdd1dULL;
  while (clock.now() < deadline) {
    for (int i = 0; i < kUnitsPerBlock; ++i) sink = cpu_work_unit(sink);
    units += kUnitsPerBlock;
  }
  // Consume `sink` so the work cannot be optimized away.
  asm volatile("" : : "r"(sink));
  return units;
}

}  // namespace uucs
