#pragma once

#include <cstdint>

#include "util/clock.hpp"

namespace uucs {

/// One unit of synthetic CPU work (a short integer-arithmetic kernel the
/// optimizer cannot elide). Returns a value that must be consumed.
std::uint64_t cpu_work_unit(std::uint64_t x);

/// Busy-wait calibration for the CPU exerciser (§2.2: "carefully calibrated
/// busy-wait loops", with subinterval durations "computed by calibration").
struct CpuCalibration {
  /// Work units executed per second by one uncontended thread.
  double units_per_second = 0.0;

  /// Measures units_per_second over `measure_s` seconds of wall time.
  static CpuCalibration measure(Clock& clock, double measure_s = 0.1);

  /// Spins executing work units until clock.now() >= deadline; returns the
  /// number of units executed (the probe uses this to measure slowdown).
  static std::uint64_t spin_until(Clock& clock, double deadline);
};

}  // namespace uucs
