#include <memory>

#include "exerciser/calibration.hpp"
#include "exerciser/exerciser.hpp"
#include "exerciser/playback.hpp"

namespace uucs {

namespace {

/// CPU exerciser (§2.2): time-based playback of the exercise function using
/// busy-wait subintervals. A contention of c means floor(c) fully-busy
/// threads plus one thread busy with probability frac(c), so an
/// equal-priority competing thread runs at 1/(1+c) of full speed.
class CpuExerciser final : public ResourceExerciser {
 public:
  CpuExerciser(Clock& clock, const ExerciserConfig& cfg)
      : engine_(clock, cfg, [&clock](double deadline, unsigned /*worker*/) {
          CpuCalibration::spin_until(clock, deadline);
        }) {}

  Resource resource() const override { return Resource::kCpu; }
  double run(const ExerciseFunction& f) override { return engine_.run(f); }
  void stop() override { engine_.stop(); }
  void reset() override { engine_.reset(); }

 private:
  PlaybackEngine engine_;
};

}  // namespace

std::unique_ptr<ResourceExerciser> make_cpu_exerciser(Clock& clock,
                                                      const ExerciserConfig& cfg) {
  return std::make_unique<CpuExerciser>(clock, cfg);
}

}  // namespace uucs
