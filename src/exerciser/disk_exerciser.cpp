#include <fcntl.h>
#include <sys/statvfs.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "exerciser/exerciser.hpp"
#include "exerciser/failpoints.hpp"
#include "exerciser/playback.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace uucs {

namespace {

constexpr std::size_t kMinFileBytes = 1u << 20;

/// RAII file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { close_now(); }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Fd& operator=(Fd&& o) noexcept {
    if (this != &o) {
      close_now();
      fd_ = o.fd_;
      o.fd_ = -1;
    }
    return *this;
  }
  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

 private:
  void close_now() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }
  int fd_ = -1;
};

/// Disk exerciser (§2.2): identical playback structure to the CPU
/// exerciser, but the busy operation is a random seek in a large backing
/// file followed by a write of a random amount of data, forced write-through
/// (O_SYNC) so contention reaches the device rather than the buffer cache.
/// The paper sizes the file at 2x physical memory for the same reason; the
/// configured size is a knob so small build hosts can run it.
///
/// Host-safety: the exerciser is a guest on someone's machine, so it
///  * reclaims scratch files leaked by dead clients before creating its own;
///  * checks free space first and shrinks the backing file (a degradation,
///    not an error) to preserve cfg.disk_min_free_bytes for the host;
///  * unlinks the backing file right after opening it (cfg.unlink_scratch)
///    so even SIGKILL cannot leak disk space;
///  * absorbs ENOSPC/EIO on individual writes with a growing backoff
///    instead of crashing the run — the run completes kDegraded.
/// Other write errors still throw (surfaced as kFailed by the supervisor).
class DiskExerciser final : public ResourceExerciser {
 public:
  DiskExerciser(Clock& clock, const ExerciserConfig& cfg)
      : clock_(clock),
        cfg_(cfg),
        engine_(clock, cfg,
                [this](double deadline, unsigned worker) { busy(deadline, worker); }) {
  }

  ~DiskExerciser() override {
    for (auto& f : files_) f = Fd();
    if (!path_.empty() && !unlinked_) ::unlink(path_.c_str());
  }

  Resource resource() const override { return Resource::kDisk; }

  double run(const ExerciseFunction& f) override {
    ensure_file();
    return engine_.run(f);
  }

  void stop() override { engine_.stop(); }

  void reset() override {
    engine_.reset();
    std::lock_guard<std::mutex> lock(deg_mu_);
    degradation_ = {};
    if (file_shrunk_) {
      // The shrunk file persists across runs; keep reporting it.
      degradation_.events = 1;
      degradation_.detail = shrink_detail_;
    }
  }

  Degradation degradation() const override {
    std::lock_guard<std::mutex> lock(deg_mu_);
    return degradation_;
  }

  /// Total bytes written so far (observable progress for tests/probes).
  std::uint64_t bytes_written() const {
    return bytes_written_.load(std::memory_order_relaxed);
  }

 private:
  void note_degradation(const std::string& detail) {
    std::lock_guard<std::mutex> lock(deg_mu_);
    ++degradation_.events;
    degradation_.detail = detail;
  }

  /// Free bytes on the volume holding `dir`; nullopt if statvfs fails.
  static std::optional<std::uint64_t> free_bytes(const std::string& dir) {
    struct statvfs vfs;
    if (::statvfs(dir.c_str(), &vfs) != 0) return std::nullopt;
    return static_cast<std::uint64_t>(vfs.f_bavail) *
           static_cast<std::uint64_t>(vfs.f_frsize);
  }

  void ensure_file() {
    std::lock_guard<std::mutex> lock(mu_);
    if (!path_.empty()) return;

    reclaim_stale_scratch_files(cfg_.disk_dir);

    // Size the file to what the volume can spare: the host keeps at least
    // disk_min_free_bytes at all times. Shrinking is a degradation the run
    // reports; an unusably small allowance is an error.
    std::size_t want = cfg_.disk_file_bytes;
    if (const auto free = free_bytes(cfg_.disk_dir)) {
      const std::uint64_t reserve = cfg_.disk_min_free_bytes;
      const std::uint64_t sparable = *free > reserve ? *free - reserve : 0;
      if (sparable < want) {
        want = static_cast<std::size_t>(sparable);
      }
    }
    want = std::max(want, std::min(cfg_.disk_file_bytes, kMinFileBytes));

    std::string path = cfg_.disk_dir + "/uucs-disk-exerciser-" +
                       std::to_string(::getpid()) + ".dat";
    Fd create(::open(path.c_str(), O_CREAT | O_RDWR | O_TRUNC, 0600));
    if (!create.valid()) {
      throw SystemError("create " + path + ": " + std::strerror(errno));
    }
    // ENOSPC while materializing the file also shrinks it, down to the
    // 1 MiB floor; anything less means the volume genuinely has no room
    // for borrowing and the run must fail rather than fill the disk.
    while (::ftruncate(create.get(), static_cast<off_t>(want)) != 0) {
      if (errno == ENOSPC && want / 2 >= kMinFileBytes) {
        want /= 2;
        continue;
      }
      const int saved = errno;
      ::unlink(path.c_str());
      throw SystemError("ftruncate " + path + ": " + std::strerror(saved));
    }
    if (want < cfg_.disk_file_bytes) {
      file_shrunk_ = true;
      shrink_detail_ = strprintf("backing file shrunk to %zu bytes to preserve host free space",
                                 want);
      note_degradation(shrink_detail_);
    }
    // One write-through descriptor per worker so workers do not serialize on
    // a shared file offset.
    files_.resize(cfg_.max_threads);
    for (auto& fd : files_) {
      fd = Fd(::open(path.c_str(), O_RDWR | O_SYNC));
      if (!fd.valid()) {
        const int saved = errno;
        ::unlink(path.c_str());
        files_.clear();
        throw SystemError("open " + path + ": " + std::strerror(saved));
      }
    }
    if (cfg_.unlink_scratch) {
      // With the descriptors open the kernel keeps the blocks alive; the
      // name disappears now, so no crash — even SIGKILL — can leak scratch.
      unlinked_ = ::unlink(path.c_str()) == 0;
    }
    file_bytes_ = want;
    path_ = std::move(path);
  }

  /// Sleeps up to `seconds` in subinterval slices, returning early at the
  /// deadline or on stop, so backoff never blunts stop-responsiveness.
  void backoff_sleep(double seconds, double deadline) {
    const double until = std::min(clock_.now() + seconds, deadline);
    while (!engine_.stop_requested()) {
      const double now = clock_.now();
      if (now >= until) break;
      clock_.sleep(std::min(cfg_.subinterval_s, until - now));
    }
  }

  void busy(double deadline, unsigned worker) {
    thread_local Rng rng(cfg_.seed ^ (0x9e37ULL * (worker + 1)));
    std::vector<char> buf(cfg_.disk_max_write_bytes);
    const int fd = files_[worker % files_.size()].get();
    const std::size_t write_cap = std::min(cfg_.disk_max_write_bytes, file_bytes_);
    unsigned consecutive_errors = 0;
    while (clock_.now() < deadline && !engine_.stop_requested()) {
      const auto max_off = static_cast<std::int64_t>(file_bytes_ - write_cap);
      const auto off = rng.uniform_int(0, std::max<std::int64_t>(max_off, 0));
      const auto len = static_cast<std::size_t>(
          rng.uniform_int(512, static_cast<std::int64_t>(write_cap)));
      buf[0] = static_cast<char>(rng());

      int injected = 0;
      if (cfg_.failpoints) {
        const HostFaultAction action = cfg_.failpoints->on_disk_write();
        switch (action.kind) {
          case HostFaultKind::kSlowIo:
            // A realistically blocked syscall: sleeps whole, not sliced, so
            // the stall is exactly what the watchdog has to bound.
            clock_.sleep(action.delay_s);
            break;
          case HostFaultKind::kEnospc:
            injected = ENOSPC;
            break;
          case HostFaultKind::kEio:
            injected = EIO;
            break;
          default:
            break;
        }
      }

      ssize_t n;
      if (injected != 0) {
        n = -1;
        errno = injected;
      } else {
        n = ::pwrite(fd, buf.data(), len, static_cast<off_t>(off));
      }
      if (n < 0) {
        if (errno == ENOSPC || errno == EIO) {
          // Transient host trouble: back off (growing, capped) and keep
          // playing. The run completes degraded instead of crashing.
          const int saved = errno;
          ++consecutive_errors;
          note_degradation(strprintf("pwrite: %s (%u consecutive)",
                                     std::strerror(saved), consecutive_errors));
          const double backoff =
              cfg_.subinterval_s * static_cast<double>(1u << std::min(consecutive_errors, 5u));
          backoff_sleep(backoff, deadline);
          continue;
        }
        throw SystemError(strprintf("pwrite %s: %s", path_.c_str(), std::strerror(errno)));
      }
      consecutive_errors = 0;
      bytes_written_.fetch_add(static_cast<std::uint64_t>(n), std::memory_order_relaxed);
    }
  }

  Clock& clock_;
  ExerciserConfig cfg_;
  PlaybackEngine engine_;
  std::mutex mu_;
  std::string path_;
  std::vector<Fd> files_;
  std::size_t file_bytes_ = 0;
  bool unlinked_ = false;
  bool file_shrunk_ = false;
  std::string shrink_detail_;
  std::atomic<std::uint64_t> bytes_written_{0};
  mutable std::mutex deg_mu_;
  Degradation degradation_;
};

}  // namespace

std::unique_ptr<ResourceExerciser> make_disk_exerciser(Clock& clock,
                                                       const ExerciserConfig& cfg) {
  return std::make_unique<DiskExerciser>(clock, cfg);
}

}  // namespace uucs
