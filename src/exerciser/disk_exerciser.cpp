#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "exerciser/exerciser.hpp"
#include "exerciser/playback.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace uucs {

namespace {

/// RAII file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { close_now(); }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Fd& operator=(Fd&& o) noexcept {
    if (this != &o) {
      close_now();
      fd_ = o.fd_;
      o.fd_ = -1;
    }
    return *this;
  }
  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

 private:
  void close_now() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }
  int fd_ = -1;
};

/// Disk exerciser (§2.2): identical playback structure to the CPU
/// exerciser, but the busy operation is a random seek in a large backing
/// file followed by a write of a random amount of data, forced write-through
/// (O_SYNC) so contention reaches the device rather than the buffer cache.
/// The paper sizes the file at 2x physical memory for the same reason; the
/// configured size is a knob so small build hosts can run it.
class DiskExerciser final : public ResourceExerciser {
 public:
  DiskExerciser(Clock& clock, const ExerciserConfig& cfg)
      : clock_(clock),
        cfg_(cfg),
        engine_(clock, cfg,
                [this](double deadline, unsigned worker) { busy(deadline, worker); }) {
    UUCS_CHECK_MSG(cfg_.disk_file_bytes >= (1u << 20), "disk file must be >= 1 MiB");
    UUCS_CHECK_MSG(cfg_.disk_max_write_bytes >= 512, "write size must be >= 512");
  }

  ~DiskExerciser() override {
    for (auto& f : files_) f = Fd();
    if (!path_.empty()) ::unlink(path_.c_str());
  }

  Resource resource() const override { return Resource::kDisk; }

  double run(const ExerciseFunction& f) override {
    ensure_file();
    return engine_.run(f);
  }

  void stop() override { engine_.stop(); }
  void reset() override { engine_.reset(); }

  /// Total bytes written so far (observable progress for tests/probes).
  std::uint64_t bytes_written() const {
    return bytes_written_.load(std::memory_order_relaxed);
  }

 private:
  void ensure_file() {
    std::lock_guard<std::mutex> lock(mu_);
    if (!path_.empty()) return;
    std::string path = cfg_.disk_dir + "/uucs-disk-exerciser-" +
                       std::to_string(::getpid()) + ".dat";
    Fd create(::open(path.c_str(), O_CREAT | O_RDWR | O_TRUNC, 0600));
    if (!create.valid()) {
      throw SystemError("create " + path + ": " + std::strerror(errno));
    }
    if (::ftruncate(create.get(), static_cast<off_t>(cfg_.disk_file_bytes)) != 0) {
      throw SystemError("ftruncate " + path + ": " + std::strerror(errno));
    }
    // One write-through descriptor per worker so workers do not serialize on
    // a shared file offset.
    files_.resize(cfg_.max_threads);
    for (auto& fd : files_) {
      fd = Fd(::open(path.c_str(), O_RDWR | O_SYNC));
      if (!fd.valid()) {
        throw SystemError("open " + path + ": " + std::strerror(errno));
      }
    }
    path_ = std::move(path);
  }

  void busy(double deadline, unsigned worker) {
    thread_local Rng rng(cfg_.seed ^ (0x9e37ULL * (worker + 1)));
    std::vector<char> buf(cfg_.disk_max_write_bytes);
    const int fd = files_[worker % files_.size()].get();
    while (clock_.now() < deadline && !engine_.stop_requested()) {
      const auto max_off =
          static_cast<std::int64_t>(cfg_.disk_file_bytes - cfg_.disk_max_write_bytes);
      const auto off = rng.uniform_int(0, std::max<std::int64_t>(max_off, 0));
      const auto len = static_cast<std::size_t>(
          rng.uniform_int(512, static_cast<std::int64_t>(cfg_.disk_max_write_bytes)));
      buf[0] = static_cast<char>(rng());
      const ssize_t n = ::pwrite(fd, buf.data(), len, static_cast<off_t>(off));
      if (n < 0) {
        throw SystemError(strprintf("pwrite %s: %s", path_.c_str(), std::strerror(errno)));
      }
      bytes_written_.fetch_add(static_cast<std::uint64_t>(n), std::memory_order_relaxed);
    }
  }

  Clock& clock_;
  ExerciserConfig cfg_;
  PlaybackEngine engine_;
  std::mutex mu_;
  std::string path_;
  std::vector<Fd> files_;
  std::atomic<std::uint64_t> bytes_written_{0};
};

}  // namespace

std::unique_ptr<ResourceExerciser> make_disk_exerciser(Clock& clock,
                                                       const ExerciserConfig& cfg) {
  return std::make_unique<DiskExerciser>(clock, cfg);
}

}  // namespace uucs
