#include "exerciser/exerciser.hpp"

#include <signal.h>
#include <unistd.h>

#include <cerrno>

#include "util/error.hpp"
#include "util/fs.hpp"
#include "util/strings.hpp"

namespace uucs {

void ExerciserConfig::validate() const {
  if (!(subinterval_s > 0)) {
    throw ConfigError("subinterval_s must be positive");
  }
  if (max_threads == 0) {
    throw ConfigError("max_threads must be at least 1");
  }
  if (memory_pool_bytes < 4096) {
    throw ConfigError("memory_pool_bytes must hold at least one 4096-byte page");
  }
  if (!(memory_headroom_frac >= 0.0 && memory_headroom_frac < 1.0)) {
    throw ConfigError("memory_headroom_frac must be in [0, 1)");
  }
  if (!(pressure_check_interval_s > 0)) {
    throw ConfigError("pressure_check_interval_s must be positive");
  }
  if (disk_file_bytes < (1u << 20)) {
    throw ConfigError("disk_file_bytes must be >= 1 MiB");
  }
  if (disk_max_write_bytes < 512) {
    throw ConfigError("disk_max_write_bytes must be >= 512");
  }
  if (disk_max_write_bytes > disk_file_bytes) {
    // Used to silently clamp every write offset to 0; now it is a loud error.
    throw ConfigError("disk_max_write_bytes must not exceed disk_file_bytes");
  }
  if (disk_dir.empty()) {
    throw ConfigError("disk_dir must not be empty");
  }
  if (!(watchdog_grace_s >= 0)) {
    throw ConfigError("watchdog_grace_s must be >= 0");
  }
  if (!(stop_bound_s > 0)) {
    throw ConfigError("stop_bound_s must be positive");
  }
}

namespace {
bool has_suffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}
}  // namespace

std::size_t reclaim_stale_scratch_files(const std::string& dir) {
  static const std::string kPrefix = "uucs-disk-exerciser-";
  static const std::string kSuffix = ".dat";
  std::vector<std::string> names;
  try {
    names = list_files(dir);
  } catch (const Error&) {
    return 0;  // unreadable dir: nothing to reclaim
  }
  std::size_t reclaimed = 0;
  for (const auto& name : names) {
    if (!starts_with(name, kPrefix) || !has_suffix(name, kSuffix)) continue;
    const std::string pid_str =
        name.substr(kPrefix.size(), name.size() - kPrefix.size() - kSuffix.size());
    const auto pid = parse_int(pid_str);
    if (!pid || *pid <= 0) continue;
    if (static_cast<pid_t>(*pid) == ::getpid()) continue;
    // kill(pid, 0) probes existence without signaling. ESRCH means the
    // owner is gone and its scratch file is leaked; EPERM means it exists
    // under another uid — leave it alone.
    if (::kill(static_cast<pid_t>(*pid), 0) == 0 || errno != ESRCH) continue;
    if (::unlink((dir + "/" + name).c_str()) == 0) ++reclaimed;
  }
  return reclaimed;
}

}  // namespace uucs
