#pragma once

#include <atomic>
#include <memory>
#include <string>

#include "testcase/exercise_function.hpp"
#include "testcase/resource.hpp"
#include "util/clock.hpp"

namespace uucs {

class HostFailpoints;

/// Tuning knobs shared by the real resource exercisers.
struct ExerciserConfig {
  /// Length of one busy-or-sleep subinterval (§2.2: "each larger than the
  /// scheduling resolution of the machine").
  double subinterval_s = 0.01;

  /// Memory exerciser: size of the allocated page pool. The paper uses the
  /// machine's full physical memory; the default here is deliberately small
  /// so library consumers must opt in to full-memory borrowing.
  std::size_t memory_pool_bytes = 64ull << 20;

  /// Memory exerciser: the fraction of physical (or cgroup-limited) memory
  /// that must stay available to the host. The pool is capped at startup to
  /// respect the floor, and the touched working set shrinks while the
  /// pressure probe reports availability below it — borrowing politely
  /// degrades instead of OOMing the machine it is a guest on.
  double memory_headroom_frac = 0.05;

  /// Memory exerciser: seconds between pressure-probe checks during a run.
  double pressure_check_interval_s = 0.05;

  /// Disk exerciser: backing file size. The paper uses 2x physical memory
  /// to defeat the buffer cache; capped by default for small build hosts.
  std::size_t disk_file_bytes = 64ull << 20;

  /// Disk exerciser: directory for the backing file.
  std::string disk_dir = "/tmp";

  /// Disk exerciser: maximum bytes per random write.
  std::size_t disk_max_write_bytes = 256ull << 10;

  /// Disk exerciser: free space on the backing volume is never drawn below
  /// this; the backing file shrinks (a degradation, not an error) to fit.
  std::size_t disk_min_free_bytes = 64ull << 20;

  /// Disk exerciser: unlink the backing file right after opening it so a
  /// SIGKILL can never leak scratch space (the kernel reclaims it when the
  /// last descriptor closes). Disable for filesystems that refuse writes
  /// to unlinked files, or to inspect the file while a run is live.
  bool unlink_scratch = true;

  /// Maximum concurrent worker threads per exerciser (contention is capped
  /// at this value; the paper verifies CPU to level 10 and disk to 7).
  unsigned max_threads = 16;

  /// Seed for the stochastic fractional-duty decisions.
  std::uint64_t seed = 0x5eed;

  /// Watchdog: slack past the testcase duration before a run is forcibly
  /// stopped (absorbs slow-IO stalls without failing healthy runs).
  double watchdog_grace_s = 2.0;

  /// Watchdog: once a stop is in flight (user feedback or the watchdog
  /// itself), workers must finish within this bound or the run is marked
  /// hung and the stragglers abandoned. This is the documented limit on
  /// the §2.3 "stop immediately" promise.
  double stop_bound_s = 1.0;

  /// Deterministic host-fault injection (ENOSPC/EIO/slow-IO into disk
  /// writes, fake readings into the memory-pressure probe). Null — the
  /// default — means not even the armed-check is paid on the hot paths.
  std::shared_ptr<HostFailpoints> failpoints;

  /// Validates every knob; throws ConfigError naming the offending field.
  /// All exerciser constructors call this, so a bad config fails loudly at
  /// construction instead of misbehaving mid-run (e.g. disk_max_write_bytes
  /// >= disk_file_bytes used to silently clamp every write to offset 0).
  void validate() const;
};

/// A resource exerciser (§2.2): applies the contention described by an
/// exercise function to one resource, in real time, until the function is
/// exhausted or `stop()` is called (the paper stops exercisers immediately
/// when the user expresses discomfort).
///
/// run() blocks; call it from a dedicated thread when exercising several
/// resources at once (see ExerciserSet). Implementations run their workers
/// at normal priority, like the paper's.
class ResourceExerciser {
 public:
  virtual ~ResourceExerciser() = default;

  /// Which resource this exerciser borrows.
  virtual Resource resource() const = 0;

  /// Plays `f` from t=0 until exhaustion or stop(). Returns the number of
  /// seconds of the function actually played.
  virtual double run(const ExerciseFunction& f) = 0;

  /// Requests an immediate stop; safe to call from any thread. run()
  /// returns within roughly one subinterval.
  virtual void stop() = 0;

  /// Resets the stop flag (and the degradation summary) so the exerciser
  /// can run again.
  virtual void reset() = 0;

  /// Recoverable host faults absorbed during the last run(): ENOSPC/EIO
  /// backoffs, pressure shrinks, a shrunk backing file. A nonzero count
  /// means the run completed *degraded* — it kept its schedule as well as
  /// the hostile host allowed, without harming it.
  struct Degradation {
    std::size_t events = 0;
    std::string detail;  ///< last/most significant fault, human-readable
  };
  virtual Degradation degradation() const { return {}; }
};

/// Creates the real CPU exerciser (calibrated busy-wait playback).
std::unique_ptr<ResourceExerciser> make_cpu_exerciser(Clock& clock,
                                                      const ExerciserConfig& cfg = {});

/// Creates the real memory exerciser (touched-page pool).
std::unique_ptr<ResourceExerciser> make_memory_exerciser(Clock& clock,
                                                         const ExerciserConfig& cfg = {});

/// Creates the real disk exerciser (random seek + synced write).
std::unique_ptr<ResourceExerciser> make_disk_exerciser(Clock& clock,
                                                       const ExerciserConfig& cfg = {});

/// Unlinks scratch files (uucs-disk-exerciser-<pid>.dat) in `dir` whose
/// owning PID is dead — the leftovers of clients killed before they could
/// clean up. Returns how many files were reclaimed. Called by the disk
/// exerciser at startup; exposed for tools and tests.
std::size_t reclaim_stale_scratch_files(const std::string& dir);

}  // namespace uucs
