#pragma once

#include <atomic>
#include <memory>
#include <string>

#include "testcase/exercise_function.hpp"
#include "testcase/resource.hpp"
#include "util/clock.hpp"

namespace uucs {

/// Tuning knobs shared by the real resource exercisers.
struct ExerciserConfig {
  /// Length of one busy-or-sleep subinterval (§2.2: "each larger than the
  /// scheduling resolution of the machine").
  double subinterval_s = 0.01;

  /// Memory exerciser: size of the allocated page pool. The paper uses the
  /// machine's full physical memory; the default here is deliberately small
  /// so library consumers must opt in to full-memory borrowing.
  std::size_t memory_pool_bytes = 64ull << 20;

  /// Disk exerciser: backing file size. The paper uses 2x physical memory
  /// to defeat the buffer cache; capped by default for small build hosts.
  std::size_t disk_file_bytes = 64ull << 20;

  /// Disk exerciser: directory for the backing file.
  std::string disk_dir = "/tmp";

  /// Disk exerciser: maximum bytes per random write.
  std::size_t disk_max_write_bytes = 256ull << 10;

  /// Maximum concurrent worker threads per exerciser (contention is capped
  /// at this value; the paper verifies CPU to level 10 and disk to 7).
  unsigned max_threads = 16;

  /// Seed for the stochastic fractional-duty decisions.
  std::uint64_t seed = 0x5eed;
};

/// A resource exerciser (§2.2): applies the contention described by an
/// exercise function to one resource, in real time, until the function is
/// exhausted or `stop()` is called (the paper stops exercisers immediately
/// when the user expresses discomfort).
///
/// run() blocks; call it from a dedicated thread when exercising several
/// resources at once (see ExerciserSet). Implementations run their workers
/// at normal priority, like the paper's.
class ResourceExerciser {
 public:
  virtual ~ResourceExerciser() = default;

  /// Which resource this exerciser borrows.
  virtual Resource resource() const = 0;

  /// Plays `f` from t=0 until exhaustion or stop(). Returns the number of
  /// seconds of the function actually played.
  virtual double run(const ExerciseFunction& f) = 0;

  /// Requests an immediate stop; safe to call from any thread. run()
  /// returns within roughly one subinterval.
  virtual void stop() = 0;

  /// Resets the stop flag so the exerciser can run again.
  virtual void reset() = 0;
};

/// Creates the real CPU exerciser (calibrated busy-wait playback).
std::unique_ptr<ResourceExerciser> make_cpu_exerciser(Clock& clock,
                                                      const ExerciserConfig& cfg = {});

/// Creates the real memory exerciser (touched-page pool).
std::unique_ptr<ResourceExerciser> make_memory_exerciser(Clock& clock,
                                                         const ExerciserConfig& cfg = {});

/// Creates the real disk exerciser (random seek + synced write).
std::unique_ptr<ResourceExerciser> make_disk_exerciser(Clock& clock,
                                                       const ExerciserConfig& cfg = {});

}  // namespace uucs
