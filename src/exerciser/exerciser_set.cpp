#include "exerciser/exerciser_set.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace uucs {

ExerciserSet::ExerciserSet(Clock& clock, const ExerciserConfig& cfg)
    : clock_(clock), cfg_(cfg) {
  cfg_.validate();
  exercisers_[Resource::kCpu] = make_cpu_exerciser(clock_, cfg_);
  exercisers_[Resource::kMemory] = make_memory_exerciser(clock_, cfg_);
  exercisers_[Resource::kDisk] = make_disk_exerciser(clock_, cfg_);
}

ExerciserSet::~ExerciserSet() {
  // Blocking backstop: a hung worker holds a reference to its exerciser,
  // so it must finish before the set (and the exercisers) may die.
  for (auto& a : abandoned_) {
    if (a.thread.joinable()) a.thread.join();
  }
}

void ExerciserSet::set_exerciser(Resource r, std::unique_ptr<ResourceExerciser> ex) {
  UUCS_CHECK(ex != nullptr);
  UUCS_CHECK_MSG(ex->resource() == r, "exerciser resource mismatch");
  exercisers_[r] = std::move(ex);
}

ResourceExerciser& ExerciserSet::exerciser(Resource r) {
  const auto it = exercisers_.find(r);
  UUCS_CHECK_MSG(it != exercisers_.end(), "no exerciser for " + resource_name(r));
  return *it->second;
}

ExerciserSet::RunOutcome ExerciserSet::run(const Testcase& tc) {
  stop_.store(false, std::memory_order_relaxed);
  reap_abandoned();

  const double start = clock_.now();

  if (tc.is_blank()) {
    // Nothing to exercise: wait out the duration in slices so stop() is
    // honored within one subinterval.
    RunOutcome outcome;
    const double end = start + tc.duration();
    while (clock_.now() < end && !stop_.load(std::memory_order_relaxed)) {
      clock_.sleep(std::min(cfg_.subinterval_s, end - clock_.now()));
    }
    outcome.stopped_early = stop_.load(std::memory_order_relaxed);
    outcome.elapsed_s = std::min(clock_.now() - start, tc.duration());
    return outcome;
  }

  // A resource whose previous worker is still wedged cannot safely run
  // again (the old thread still owns the exerciser's internals); it is
  // reported hung up front and skipped.
  std::vector<RunSupervisor::Worker> workers;
  std::map<Resource, ResourceReport> still_wedged;
  for (Resource r : tc.resources()) {
    const ExerciseFunction* f = tc.function(r);
    UUCS_CHECK(f != nullptr);
    const auto it = exercisers_.find(r);
    UUCS_CHECK_MSG(it != exercisers_.end(), "no exerciser for " + resource_name(r));
    const bool wedged = std::any_of(
        abandoned_.begin(), abandoned_.end(),
        [r](const RunSupervisor::Abandoned& a) { return a.resource == r; });
    if (wedged) {
      ResourceReport report;
      report.outcome = ResourceOutcome::kHung;
      report.detail = "previous worker still wedged";
      still_wedged[r] = std::move(report);
      continue;
    }
    it->second->reset();
    workers.push_back({r, it->second, f});
  }

  RunSupervisor supervisor(clock_, cfg_.watchdog_grace_s, cfg_.stop_bound_s,
                           cfg_.subinterval_s);
  RunOutcome outcome = supervisor.supervise(workers, tc.duration(), stop_, abandoned_);
  for (auto& [r, report] : still_wedged) {
    outcome.hung = true;
    outcome.reports[r] = std::move(report);
  }
  return outcome;
}

void ExerciserSet::stop() {
  stop_.store(true, std::memory_order_relaxed);
  for (auto& [r, ex] : exercisers_) ex->stop();
}

std::size_t ExerciserSet::reap_abandoned() { return RunSupervisor::reap(abandoned_); }

}  // namespace uucs
