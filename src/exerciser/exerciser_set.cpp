#include "exerciser/exerciser_set.hpp"

#include <algorithm>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace uucs {

ExerciserSet::ExerciserSet(Clock& clock, const ExerciserConfig& cfg)
    : clock_(clock), cfg_(cfg) {
  exercisers_[Resource::kCpu] = make_cpu_exerciser(clock_, cfg_);
  exercisers_[Resource::kMemory] = make_memory_exerciser(clock_, cfg_);
  exercisers_[Resource::kDisk] = make_disk_exerciser(clock_, cfg_);
}

void ExerciserSet::set_exerciser(Resource r, std::unique_ptr<ResourceExerciser> ex) {
  UUCS_CHECK(ex != nullptr);
  UUCS_CHECK_MSG(ex->resource() == r, "exerciser resource mismatch");
  exercisers_[r] = std::move(ex);
}

ResourceExerciser& ExerciserSet::exerciser(Resource r) {
  const auto it = exercisers_.find(r);
  UUCS_CHECK_MSG(it != exercisers_.end(), "no exerciser for " + resource_name(r));
  return *it->second;
}

ExerciserSet::RunOutcome ExerciserSet::run(const Testcase& tc) {
  stop_.store(false, std::memory_order_relaxed);
  for (auto& [r, ex] : exercisers_) ex->reset();

  const double start = clock_.now();
  RunOutcome outcome;

  if (tc.is_blank()) {
    // Nothing to exercise: wait out the duration in slices so stop() is
    // honored within one subinterval.
    const double end = start + tc.duration();
    while (clock_.now() < end && !stop_.load(std::memory_order_relaxed)) {
      clock_.sleep(std::min(cfg_.subinterval_s, end - clock_.now()));
    }
  } else {
    std::vector<std::thread> threads;
    for (Resource r : tc.resources()) {
      const ExerciseFunction* f = tc.function(r);
      UUCS_CHECK(f != nullptr);
      threads.emplace_back(
          [ex = &exerciser(r), f] { ex->run(*f); });
    }
    for (auto& th : threads) th.join();
  }

  outcome.stopped_early = stop_.load(std::memory_order_relaxed);
  outcome.elapsed_s = std::min(clock_.now() - start, tc.duration());
  return outcome;
}

void ExerciserSet::stop() {
  stop_.store(true, std::memory_order_relaxed);
  for (auto& [r, ex] : exercisers_) ex->stop();
}

}  // namespace uucs
