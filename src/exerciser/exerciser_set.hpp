#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "exerciser/exerciser.hpp"
#include "exerciser/supervisor.hpp"
#include "testcase/testcase.hpp"

namespace uucs {

/// Runs all the exercisers a testcase needs, simultaneously and
/// synchronized, and stops every one of them immediately when asked —
/// the §2.3 execution model ("the appropriate exercisers are started,
/// passed their exercise functions, synchronized, and then let run"; on
/// feedback "the exercisers are immediately stopped and their resources
/// released").
///
/// Every run is supervised (see RunSupervisor): worker exceptions become
/// typed kFailed reports instead of std::terminate, a watchdog bounds the
/// run to duration + watchdog_grace_s, and a worker that misses the
/// stop_bound_s responsiveness bound is reported kHung and abandoned to a
/// reap list rather than wedging the caller.
class ExerciserSet {
 public:
  /// Creates the set with the real exercisers for the given clock/config.
  /// Throws ConfigError if `cfg` is invalid.
  ExerciserSet(Clock& clock, const ExerciserConfig& cfg = {});

  /// Joins any abandoned workers still running — the blocking backstop
  /// that keeps a wedged worker from outliving the exercisers it uses.
  ~ExerciserSet();

  ExerciserSet(const ExerciserSet&) = delete;
  ExerciserSet& operator=(const ExerciserSet&) = delete;

  /// Injects a custom exerciser (simulated or instrumented) for `r`,
  /// replacing the default real one.
  void set_exerciser(Resource r, std::unique_ptr<ResourceExerciser> ex);

  /// Access to the exerciser for a resource (never null for study resources).
  ResourceExerciser& exerciser(Resource r);

  /// Outcome of a run; carries the legacy stopped_early / elapsed_s shape
  /// plus the typed per-resource reports.
  using RunOutcome = SupervisedOutcome;

  /// Plays every exercise function in `tc` in parallel, blocking until all
  /// finish, stop() is called, or the watchdog tears the run down. Blank
  /// testcases just wait out the duration (in subinterval slices so stop()
  /// stays responsive). A resource whose worker is still wedged from a
  /// previous run is reported kHung without starting a new worker.
  RunOutcome run(const Testcase& tc);

  /// Stops a run in progress; safe from any thread (e.g. a feedback
  /// watcher). Also wakes a blank-testcase wait.
  void stop();

  /// Joins abandoned workers that have since finished; returns how many
  /// are still wedged.
  std::size_t reap_abandoned();

  /// Workers currently abandoned (hung and not yet reaped).
  std::size_t abandoned_count() const { return abandoned_.size(); }

  const ExerciserConfig& config() const { return cfg_; }

 private:
  Clock& clock_;
  ExerciserConfig cfg_;
  std::map<Resource, std::shared_ptr<ResourceExerciser>> exercisers_;
  std::vector<RunSupervisor::Abandoned> abandoned_;
  std::atomic<bool> stop_{false};
};

}  // namespace uucs
