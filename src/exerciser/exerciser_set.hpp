#pragma once

#include <functional>
#include <map>
#include <memory>

#include "exerciser/exerciser.hpp"
#include "testcase/testcase.hpp"

namespace uucs {

/// Runs all the exercisers a testcase needs, simultaneously and
/// synchronized, and stops every one of them immediately when asked —
/// the §2.3 execution model ("the appropriate exercisers are started,
/// passed their exercise functions, synchronized, and then let run"; on
/// feedback "the exercisers are immediately stopped and their resources
/// released").
class ExerciserSet {
 public:
  /// Creates the set with the real exercisers for the given clock/config.
  ExerciserSet(Clock& clock, const ExerciserConfig& cfg = {});

  /// Injects a custom exerciser (simulated or instrumented) for `r`,
  /// replacing the default real one.
  void set_exerciser(Resource r, std::unique_ptr<ResourceExerciser> ex);

  /// Access to the exerciser for a resource (never null for study resources).
  ResourceExerciser& exerciser(Resource r);

  /// Outcome of a run.
  struct RunOutcome {
    bool stopped_early = false;  ///< stop() arrived before exhaustion
    double elapsed_s = 0.0;      ///< seconds of the testcase actually played
  };

  /// Plays every exercise function in `tc` in parallel, blocking until all
  /// finish or stop() is called. Blank testcases just wait out the duration
  /// (in subinterval slices so stop() stays responsive).
  RunOutcome run(const Testcase& tc);

  /// Stops a run in progress; safe from any thread (e.g. a feedback
  /// watcher). Also wakes a blank-testcase wait.
  void stop();

 private:
  Clock& clock_;
  ExerciserConfig cfg_;
  std::map<Resource, std::unique_ptr<ResourceExerciser>> exercisers_;
  std::atomic<bool> stop_{false};
};

}  // namespace uucs
