#include "exerciser/failpoints.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace uucs {

std::string host_fault_kind_name(HostFaultKind kind) {
  switch (kind) {
    case HostFaultKind::kNone: return "none";
    case HostFaultKind::kEnospc: return "enospc";
    case HostFaultKind::kEio: return "eio";
    case HostFaultKind::kSlowIo: return "slowio";
    case HostFaultKind::kMemPressure: return "pressure";
  }
  return "unknown";
}

HostFaultProfile HostFaultProfile::hostile() {
  HostFaultProfile p;
  p.enospc = 0.10;
  p.eio = 0.04;
  p.slow_io = 0.04;
  p.mem_pressure = 0.10;
  p.slow_io_s = 0.02;
  p.pressure_available_frac = 0.02;
  return p;
}

HostFaultSchedule HostFaultSchedule::none() { return HostFaultSchedule(); }

HostFaultSchedule HostFaultSchedule::scripted(std::vector<HostFaultAction> actions) {
  HostFaultSchedule s;
  s.script_ = std::move(actions);
  return s;
}

HostFaultSchedule HostFaultSchedule::seeded(std::uint64_t seed,
                                            HostFaultProfile profile) {
  HostFaultSchedule s;
  s.seeded_ = true;
  s.rng_ = Rng(seed);
  s.profile_ = profile;
  return s;
}

HostFaultAction HostFaultSchedule::next() {
  const std::size_t op = ops_++;
  if (!seeded_) {
    if (op < script_.size()) return script_[op];
    return HostFaultAction{};
  }
  // One uniform draw per operation keeps the sequence a pure function of
  // (seed, operation count), independent of which fault fires.
  const double u = rng_.uniform();
  double edge = profile_.enospc;
  if (u < edge) return {HostFaultKind::kEnospc, 0.0, 1.0};
  edge += profile_.eio;
  if (u < edge) return {HostFaultKind::kEio, 0.0, 1.0};
  edge += profile_.slow_io;
  if (u < edge) return {HostFaultKind::kSlowIo, profile_.slow_io_s, 1.0};
  edge += profile_.mem_pressure;
  if (u < edge) {
    return {HostFaultKind::kMemPressure, 0.0, profile_.pressure_available_frac};
  }
  return HostFaultAction{};
}

HostFaultSchedule parse_host_fault_schedule(const std::string& spec) {
  std::vector<HostFaultAction> actions;
  for (const auto& part : split(trim(spec), ',')) {
    if (trim(part).empty()) continue;
    const auto fields = split(trim(part), ':');
    if (fields.size() != 2) {
      throw ParseError("host fault schedule entry '" + std::string(part) +
                       "' is not OP:KIND");
    }
    const auto op = parse_int(fields[0]);
    if (!op || *op < 0) {
      throw ParseError("bad host fault operation index '" + fields[0] + "'");
    }
    HostFaultAction action;
    std::string kind = fields[1];
    std::optional<double> value;
    const auto eq = kind.find('=');
    if (eq != std::string::npos) {
      value = parse_double(kind.substr(eq + 1));
      if (!value || *value < 0) {
        throw ParseError("bad host fault value '" + kind.substr(eq + 1) + "'");
      }
      kind = kind.substr(0, eq);
    }
    if (kind == "enospc") {
      action.kind = HostFaultKind::kEnospc;
    } else if (kind == "eio") {
      action.kind = HostFaultKind::kEio;
    } else if (kind == "slowio") {
      action.kind = HostFaultKind::kSlowIo;
      action.delay_s = value.value_or(0.02);
    } else if (kind == "pressure") {
      action.kind = HostFaultKind::kMemPressure;
      action.available_frac = value.value_or(0.02);
      if (action.available_frac > 1.0) {
        throw ParseError("pressure fraction must be <= 1");
      }
    } else {
      throw ParseError("unknown host fault kind '" + kind + "'");
    }
    const auto index = static_cast<std::size_t>(*op);
    if (actions.size() <= index) actions.resize(index + 1);
    actions[index] = action;
  }
  return HostFaultSchedule::scripted(std::move(actions));
}

void HostFailpoints::arm(HostFaultSchedule schedule) {
  std::lock_guard<std::mutex> lock(mu_);
  schedule_ = std::move(schedule);
  armed_.store(true, std::memory_order_release);
}

void HostFailpoints::disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.store(false, std::memory_order_release);
}

HostFaultAction HostFailpoints::on_disk_write() {
  if (!armed_.load(std::memory_order_relaxed)) return {};
  std::lock_guard<std::mutex> lock(mu_);
  if (!armed_.load(std::memory_order_relaxed)) return {};
  ++stats_.disk_checks;
  HostFaultAction action = schedule_.next();
  switch (action.kind) {
    case HostFaultKind::kEnospc: ++stats_.enospc; break;
    case HostFaultKind::kEio: ++stats_.eio; break;
    case HostFaultKind::kSlowIo: ++stats_.slow_io; break;
    case HostFaultKind::kMemPressure:
      // Not applicable at this site; the draw is consumed but passes clean.
      action = {};
      break;
    case HostFaultKind::kNone: break;
  }
  return action;
}

std::optional<double> HostFailpoints::on_memory_probe() {
  if (!armed_.load(std::memory_order_relaxed)) return std::nullopt;
  std::lock_guard<std::mutex> lock(mu_);
  if (!armed_.load(std::memory_order_relaxed)) return std::nullopt;
  ++stats_.mem_checks;
  const HostFaultAction action = schedule_.next();
  if (action.kind != HostFaultKind::kMemPressure) return std::nullopt;
  ++stats_.mem_pressure;
  return action.available_frac;
}

HostFailpoints::Stats HostFailpoints::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace uucs
