#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace uucs {

/// What a host failpoint may inject into one exerciser operation. This is
/// the host-edge mirror of server/fault_injection's FaultKind: where that
/// layer corrupts the network between client and server, this one makes the
/// *machine under the exercisers* hostile — a full disk, a dying device, an
/// overloaded I/O path, a memory-starved host — so the chaos-host suite can
/// drive the real exercisers through hostile-host histories reproducible
/// from one seed.
enum class HostFaultKind {
  kNone,         ///< pass through untouched
  kEnospc,       ///< disk write: fail with ENOSPC (volume filled up)
  kEio,          ///< disk write: fail with EIO (device error)
  kSlowIo,       ///< disk write: block in the "syscall" for delay_s first
  kMemPressure,  ///< memory probe: report available_frac instead of truth
};

std::string host_fault_kind_name(HostFaultKind kind);

struct HostFaultAction {
  HostFaultKind kind = HostFaultKind::kNone;
  double delay_s = 0.0;         ///< kSlowIo: how long the write blocks
  double available_frac = 1.0;  ///< kMemPressure: faked available fraction
};

/// Per-operation fault probabilities for a seeded schedule.
struct HostFaultProfile {
  double enospc = 0.0;
  double eio = 0.0;
  double slow_io = 0.0;
  double mem_pressure = 0.0;
  double slow_io_s = 0.02;              ///< how long kSlowIo blocks
  double pressure_available_frac = 0.02;///< what kMemPressure reports

  /// The chaos-host mix: every run of a few hundred disk writes sees
  /// ENOSPC streaks, occasional device errors and I/O stalls, and the
  /// memory probe periodically reports a nearly-exhausted host.
  static HostFaultProfile hostile();
};

/// Deterministic source of HostFaultActions, one per consulted operation.
/// Scripted (exact replay of an explicit list) or seeded (drawn from a
/// HostFaultProfile — same seed, same fault history). Mirrors
/// server/fault_injection's FaultSchedule.
class HostFaultSchedule {
 public:
  /// No faults, ever.
  static HostFaultSchedule none();

  /// `actions[i]` applies to the i-th consulted operation; operations past
  /// the end of the script run clean.
  static HostFaultSchedule scripted(std::vector<HostFaultAction> actions);

  /// Draws each operation's action from `profile` using an Rng seeded with
  /// `seed`.
  static HostFaultSchedule seeded(std::uint64_t seed, HostFaultProfile profile);

  /// The action for the next consulted operation.
  HostFaultAction next();

  /// Operations consumed so far.
  std::size_t ops() const { return ops_; }

 private:
  HostFaultSchedule() = default;
  std::vector<HostFaultAction> script_;
  bool seeded_ = false;
  Rng rng_{0};
  HostFaultProfile profile_;
  std::size_t ops_ = 0;
};

/// Parses a scripted schedule from "OP:KIND[,OP:KIND...]" where OP is the
/// 0-based operation index and KIND is enospc | eio | slowio[=SECONDS] |
/// pressure[=AVAILABLE_FRAC]. Example: "0:enospc,3:slowio=0.05,5:pressure=0.01".
/// Throws ParseError on malformed specs.
HostFaultSchedule parse_host_fault_schedule(const std::string& spec);

/// The armed failpoint registry the exercisers consult. One instance is
/// shared (via ExerciserConfig::failpoints) by every exerciser of a set;
/// the disk exerciser consults on_disk_write() before each pwrite and the
/// memory exerciser consults on_memory_probe() at each pressure check.
///
/// The guard is designed to be ~free when nothing is armed: the hot-path
/// check is a single relaxed atomic load (see BM_HostFailpointGuard); the
/// schedule mutex is taken only while armed. Exercisers whose config has no
/// failpoints pointer skip even that load.
///
/// A schedule is consumed operation by operation across all consulting
/// sites; kinds that do not apply to a site (e.g. kMemPressure drawn at the
/// disk-write site) pass through clean, so one seed remains one complete
/// fault history regardless of how sites interleave.
class HostFailpoints {
 public:
  struct Stats {
    std::size_t disk_checks = 0;  ///< on_disk_write consultations while armed
    std::size_t mem_checks = 0;   ///< on_memory_probe consultations while armed
    std::size_t enospc = 0;
    std::size_t eio = 0;
    std::size_t slow_io = 0;
    std::size_t mem_pressure = 0;
    std::size_t injected() const { return enospc + eio + slow_io + mem_pressure; }
  };

  /// Arms `schedule`; replaces any previous one. Safe from any thread.
  void arm(HostFaultSchedule schedule);

  /// Disarms; subsequent consultations are clean.
  void disarm();

  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Disk-write site: the action to apply before the next write. Returns
  /// kNone (without consuming a schedule op) when disarmed; mem-pressure
  /// draws also surface as kNone here.
  HostFaultAction on_disk_write();

  /// Memory-probe site: the faked available fraction to report, or nullopt
  /// to use the real reading. Non-memory draws surface as nullopt.
  std::optional<double> on_memory_probe();

  Stats stats() const;

 private:
  std::atomic<bool> armed_{false};
  mutable std::mutex mu_;
  HostFaultSchedule schedule_ = HostFaultSchedule::none();
  Stats stats_;
};

}  // namespace uucs
