#include <sys/mman.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <memory>
#include <mutex>

#include "exerciser/exerciser.hpp"
#include "exerciser/failpoints.hpp"
#include "monitor/sampler.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace uucs {

namespace {

constexpr std::size_t kPageSize = 4096;

/// RAII anonymous mapping. Pages materialize (count toward the resident
/// set) only when first touched, so the exerciser's working set really is
/// the fraction it touches — matching §2.2's semantics, where contention is
/// "the fraction of physical memory it should attempt to allocate" into its
/// working set.
class PagePool {
 public:
  explicit PagePool(std::size_t bytes) : bytes_(bytes) {
    base_ = ::mmap(nullptr, bytes_, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (base_ == MAP_FAILED) {
      throw SystemError("mmap of memory pool failed");
    }
  }
  ~PagePool() {
    if (base_ != MAP_FAILED) ::munmap(base_, bytes_);
  }
  PagePool(const PagePool&) = delete;
  PagePool& operator=(const PagePool&) = delete;

  char* page(std::size_t index) {
    return static_cast<char*>(base_) + index * kPageSize;
  }
  std::size_t page_count() const { return bytes_ / kPageSize; }

 private:
  std::size_t bytes_;
  void* base_ = MAP_FAILED;
};

/// Memory exerciser (§2.2): keeps a pool of allocated pages equal to the
/// configured size and touches the fraction of it named by the current
/// contention level at high frequency, inflating its working set to that
/// fraction of the pool. Contention is clamped to 1.0 — the paper avoids
/// higher levels because they cause immediate thrashing.
///
/// Host-safety: the host keeps a memory_headroom_frac floor of its memory
/// (physical or cgroup-limited) at all times. The pool is capped at run
/// start so creating it cannot violate the floor, and a periodic pressure
/// probe (every pressure_check_interval_s) halves the touched working set
/// while availability sits below the floor — borrowing degrades instead of
/// pushing the host into swap or OOM. Each shrink is a degradation event.
class MemoryExerciser final : public ResourceExerciser {
 public:
  MemoryExerciser(Clock& clock, const ExerciserConfig& cfg)
      : clock_(clock), cfg_(cfg) {
    cfg_.validate();
  }

  Resource resource() const override { return Resource::kMemory; }

  double run(const ExerciseFunction& f) override {
    if (f.empty()) return 0.0;

    // Cap the pool so even a full-contention run leaves the headroom floor
    // untouched. The probe reads the real host (or the armed failpoint).
    std::size_t pool_bytes = cfg_.memory_pool_bytes;
    if (const auto p = probe()) {
      const auto headroom =
          static_cast<std::uint64_t>(cfg_.memory_headroom_frac *
                                     static_cast<double>(p->total_bytes));
      const std::uint64_t borrowable =
          p->available_bytes > headroom ? p->available_bytes - headroom : 0;
      if (borrowable < pool_bytes) {
        pool_bytes = std::max<std::size_t>(
            (static_cast<std::size_t>(borrowable) / kPageSize) * kPageSize, kPageSize);
        note_degradation(strprintf("pool capped to %zu bytes by host headroom floor",
                                   pool_bytes));
      }
    }

    // The pool lives only for the run, so a stopped exerciser releases its
    // borrowed memory immediately, as the paper requires.
    PagePool pool(pool_bytes);
    const std::size_t pages = pool.page_count();
    std::size_t ceiling = pages;  // shrinks under pressure, recovers when clear
    const double start = clock_.now();
    const double duration = f.duration();
    double next_check = start + cfg_.pressure_check_interval_s;
    std::size_t cursor = 0;
    std::uint64_t stamp = 1;
    while (!stop_.load(std::memory_order_relaxed)) {
      const double now = clock_.now();
      const double t = now - start;
      if (t >= duration) break;

      if (now >= next_check) {
        next_check = now + cfg_.pressure_check_interval_s;
        if (const auto p = probe()) {
          if (p->available_frac() < cfg_.memory_headroom_frac) {
            const std::size_t shrunk = std::max<std::size_t>(ceiling / 2, 1);
            if (shrunk < ceiling) {
              ceiling = shrunk;
              note_degradation(strprintf(
                  "host memory pressure (%.1f%% available): working set shrunk to %zu pages",
                  p->available_frac() * 100.0, ceiling));
            }
          } else {
            ceiling = pages;
          }
        }
      }

      const double c = std::min(f.level_at(t), 1.0);
      const auto touch_pages = std::min<std::size_t>(
          static_cast<std::size_t>(c * static_cast<double>(pages)), ceiling);
      if (touch_pages == 0) {
        clock_.sleep(cfg_.subinterval_s);
        continue;
      }
      // Touch one sweep of the borrowed region (bounded per iteration so the
      // stop flag and the function level are re-checked promptly).
      const std::size_t burst = std::min<std::size_t>(touch_pages, 4096);
      for (std::size_t i = 0; i < burst; ++i) {
        cursor = (cursor + 1) % touch_pages;
        std::memcpy(pool.page(cursor), &stamp, sizeof(stamp));
        ++stamp;
      }
      touched_bytes_.fetch_add(burst * kPageSize, std::memory_order_relaxed);
    }
    return std::min(clock_.now() - start, duration);
  }

  void stop() override { stop_.store(true, std::memory_order_relaxed); }

  void reset() override {
    stop_.store(false, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(deg_mu_);
    degradation_ = {};
  }

  Degradation degradation() const override {
    std::lock_guard<std::mutex> lock(deg_mu_);
    return degradation_;
  }

  /// Total bytes written across runs (observable progress for tests).
  std::uint64_t touched_bytes() const {
    return touched_bytes_.load(std::memory_order_relaxed);
  }

 private:
  /// One pressure reading: the real host numbers, with an armed failpoint
  /// overriding the available fraction (keeping the real total so byte
  /// arithmetic stays meaningful).
  std::optional<MemoryPressure> probe() {
    auto p = read_memory_pressure();
    if (cfg_.failpoints) {
      if (const auto frac = cfg_.failpoints->on_memory_probe()) {
        if (!p) {
          p = MemoryPressure{};
          p->total_bytes = cfg_.memory_pool_bytes * 4;
        }
        p->available_bytes = static_cast<std::uint64_t>(
            *frac * static_cast<double>(p->total_bytes));
      }
    }
    return p;
  }

  void note_degradation(const std::string& detail) {
    std::lock_guard<std::mutex> lock(deg_mu_);
    ++degradation_.events;
    degradation_.detail = detail;
  }

  Clock& clock_;
  ExerciserConfig cfg_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> touched_bytes_{0};
  mutable std::mutex deg_mu_;
  Degradation degradation_;
};

}  // namespace

std::unique_ptr<ResourceExerciser> make_memory_exerciser(Clock& clock,
                                                         const ExerciserConfig& cfg) {
  return std::make_unique<MemoryExerciser>(clock, cfg);
}

}  // namespace uucs
