#include <sys/mman.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <memory>

#include "exerciser/exerciser.hpp"
#include "util/error.hpp"

namespace uucs {

namespace {

constexpr std::size_t kPageSize = 4096;

/// RAII anonymous mapping. Pages materialize (count toward the resident
/// set) only when first touched, so the exerciser's working set really is
/// the fraction it touches — matching §2.2's semantics, where contention is
/// "the fraction of physical memory it should attempt to allocate" into its
/// working set.
class PagePool {
 public:
  explicit PagePool(std::size_t bytes) : bytes_(bytes) {
    base_ = ::mmap(nullptr, bytes_, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (base_ == MAP_FAILED) {
      throw SystemError("mmap of memory pool failed");
    }
  }
  ~PagePool() {
    if (base_ != MAP_FAILED) ::munmap(base_, bytes_);
  }
  PagePool(const PagePool&) = delete;
  PagePool& operator=(const PagePool&) = delete;

  char* page(std::size_t index) {
    return static_cast<char*>(base_) + index * kPageSize;
  }
  std::size_t page_count() const { return bytes_ / kPageSize; }

 private:
  std::size_t bytes_;
  void* base_ = MAP_FAILED;
};

/// Memory exerciser (§2.2): keeps a pool of allocated pages equal to the
/// configured size and touches the fraction of it named by the current
/// contention level at high frequency, inflating its working set to that
/// fraction of the pool. Contention is clamped to 1.0 — the paper avoids
/// higher levels because they cause immediate thrashing.
class MemoryExerciser final : public ResourceExerciser {
 public:
  MemoryExerciser(Clock& clock, const ExerciserConfig& cfg)
      : clock_(clock), cfg_(cfg) {
    UUCS_CHECK_MSG(cfg_.memory_pool_bytes >= kPageSize, "pool must hold a page");
  }

  Resource resource() const override { return Resource::kMemory; }

  double run(const ExerciseFunction& f) override {
    if (f.empty()) return 0.0;
    // The pool lives only for the run, so a stopped exerciser releases its
    // borrowed memory immediately, as the paper requires.
    PagePool pool(cfg_.memory_pool_bytes);
    const std::size_t pages = pool.page_count();
    const double start = clock_.now();
    const double duration = f.duration();
    std::size_t cursor = 0;
    std::uint64_t stamp = 1;
    while (!stop_.load(std::memory_order_relaxed)) {
      const double t = clock_.now() - start;
      if (t >= duration) break;
      const double c = std::min(f.level_at(t), 1.0);
      const auto touch_pages =
          static_cast<std::size_t>(c * static_cast<double>(pages));
      if (touch_pages == 0) {
        clock_.sleep(cfg_.subinterval_s);
        continue;
      }
      // Touch one sweep of the borrowed region (bounded per iteration so the
      // stop flag and the function level are re-checked promptly).
      const std::size_t burst = std::min<std::size_t>(touch_pages, 4096);
      for (std::size_t i = 0; i < burst; ++i) {
        cursor = (cursor + 1) % touch_pages;
        std::memcpy(pool.page(cursor), &stamp, sizeof(stamp));
        ++stamp;
      }
      touched_bytes_.fetch_add(burst * kPageSize, std::memory_order_relaxed);
    }
    return std::min(clock_.now() - start, duration);
  }

  void stop() override { stop_.store(true, std::memory_order_relaxed); }
  void reset() override { stop_.store(false, std::memory_order_relaxed); }

  /// Total bytes written across runs (observable progress for tests).
  std::uint64_t touched_bytes() const {
    return touched_bytes_.load(std::memory_order_relaxed);
  }

 private:
  Clock& clock_;
  ExerciserConfig cfg_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> touched_bytes_{0};
};

}  // namespace

std::unique_ptr<ResourceExerciser> make_memory_exerciser(Clock& clock,
                                                         const ExerciserConfig& cfg) {
  return std::make_unique<MemoryExerciser>(clock, cfg);
}

}  // namespace uucs
