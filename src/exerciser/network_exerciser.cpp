#include "exerciser/network_exerciser.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <vector>

#include "util/error.hpp"

namespace uucs {

namespace {
constexpr std::size_t kDatagramBytes = 1400;  // typical MTU payload
}

NetworkExerciser::NetworkExerciser(Clock& clock, const ExerciserConfig& cfg,
                                   double link_bps)
    : clock_(clock), cfg_(cfg), link_bps_(link_bps) {
  cfg_.validate();
  UUCS_CHECK_MSG(link_bps_ > 0, "link speed must be positive");

  // The sink: a bound UDP socket whose queue we let overflow (we never read
  // it) — datagrams are dropped by the kernel after traversing the stack.
  sink_fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (sink_fd_ < 0) throw SystemError(std::string("socket: ") + std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // kernel-assigned
  if (::bind(sink_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(sink_fd_);
    throw SystemError(std::string("bind: ") + std::strerror(err));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(sink_fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const int err = errno;
    ::close(sink_fd_);
    throw SystemError(std::string("getsockname: ") + std::strerror(err));
  }

  send_fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (send_fd_ < 0) {
    const int err = errno;
    ::close(sink_fd_);
    throw SystemError(std::string("socket: ") + std::strerror(err));
  }
  if (::connect(send_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(sink_fd_);
    ::close(send_fd_);
    throw SystemError(std::string("connect: ") + std::strerror(err));
  }
}

NetworkExerciser::~NetworkExerciser() {
  if (send_fd_ >= 0) ::close(send_fd_);
  if (sink_fd_ >= 0) ::close(sink_fd_);
}

void NetworkExerciser::send_budget(double budget_bytes) {
  static const std::vector<char> payload(kDatagramBytes, 'n');
  double sent = 0;
  while (sent < budget_bytes && !stop_.load(std::memory_order_relaxed)) {
    const double remaining = budget_bytes - sent;
    // Sub-byte remainders would truncate to a zero-length datagram and
    // make no progress; the budget is spent.
    if (remaining < 1.0) break;
    const auto n =
        static_cast<std::size_t>(std::min<double>(kDatagramBytes, remaining));
    const ssize_t rc = ::send(send_fd_, payload.data(), n, 0);
    if (rc < 0) {
      if (errno == EINTR) continue;
      // A full socket buffer (ENOBUFS/EAGAIN) means the loopback is
      // saturated — the budget is effectively spent.
      break;
    }
    sent += static_cast<double>(rc);
    bytes_sent_.fetch_add(static_cast<std::uint64_t>(rc),
                          std::memory_order_relaxed);
  }
}

double NetworkExerciser::run(const ExerciseFunction& f) {
  if (f.empty()) return 0.0;
  const double start = clock_.now();
  const double duration = f.duration();
  while (!stop_.load(std::memory_order_relaxed)) {
    const double now = clock_.now();
    const double t = now - start;
    if (t >= duration) break;
    const double c = std::min(1.0, f.level_at(t));
    const double slice = std::min(cfg_.subinterval_s, duration - t);
    if (c > 0) send_budget(c * link_bps_ / 8.0 * slice);
    const double spent = clock_.now() - now;
    if (spent < slice) clock_.sleep(slice - spent);
  }
  return std::min(clock_.now() - start, duration);
}

void NetworkExerciser::stop() { stop_.store(true, std::memory_order_relaxed); }

void NetworkExerciser::reset() { stop_.store(false, std::memory_order_relaxed); }

std::unique_ptr<NetworkExerciser> make_network_exerciser(Clock& clock,
                                                         const ExerciserConfig& cfg,
                                                         double link_bps) {
  return std::make_unique<NetworkExerciser>(clock, cfg, link_bps);
}

}  // namespace uucs
