#pragma once

#include <atomic>
#include <memory>

#include "exerciser/exerciser.hpp"
#include "exerciser/playback.hpp"

namespace uucs {

/// The network exerciser the paper built but excluded from its studies
/// because network borrowing "create[s] a significant impact beyond the
/// client machine" (§2.2). This implementation honors that concern by
/// construction: it shapes UDP traffic to a sink socket it opens on
/// 127.0.0.1, so the load never leaves the host while still exercising the
/// full send path.
///
/// Contention is the fraction of the configured link bandwidth to consume
/// (clamped to 1): per subinterval the exerciser sends
/// c * link_bps / 8 * subinterval bytes, then sleeps out the remainder —
/// a token-bucket shaper driven by the standard playback clockwork.
class NetworkExerciser final : public ResourceExerciser {
 public:
  /// `link_bps`: the nominal link speed contention is measured against
  /// (the paper's study machines had 100 Mbit/s Ethernet).
  NetworkExerciser(Clock& clock, const ExerciserConfig& cfg,
                   double link_bps = 100e6);
  ~NetworkExerciser() override;

  Resource resource() const override { return Resource::kNetwork; }
  double run(const ExerciseFunction& f) override;
  void stop() override;
  void reset() override;

  double link_bps() const { return link_bps_; }

  /// Bytes pushed through the loopback so far (for tests and probes).
  std::uint64_t bytes_sent() const {
    return bytes_sent_.load(std::memory_order_relaxed);
  }

 private:
  void send_budget(double budget_bytes);

  Clock& clock_;
  ExerciserConfig cfg_;
  double link_bps_;
  int send_fd_ = -1;
  int sink_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> bytes_sent_{0};
};

/// Factory matching the other exercisers.
std::unique_ptr<NetworkExerciser> make_network_exerciser(
    Clock& clock, const ExerciserConfig& cfg = {}, double link_bps = 100e6);

}  // namespace uucs
