#include "exerciser/playback.hpp"

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace uucs {

PlaybackEngine::PlaybackEngine(Clock& clock, const ExerciserConfig& cfg, BusyFn busy)
    : clock_(clock), cfg_(cfg), busy_(std::move(busy)) {
  UUCS_CHECK_MSG(cfg_.subinterval_s > 0, "subinterval must be positive");
  UUCS_CHECK_MSG(cfg_.max_threads > 0, "need at least one worker thread");
  UUCS_CHECK(busy_ != nullptr);
}

double PlaybackEngine::run(const ExerciseFunction& f) {
  if (f.empty()) return 0.0;
  const unsigned workers = std::min<unsigned>(
      cfg_.max_threads,
      static_cast<unsigned>(std::max(1.0, std::ceil(f.max_level()))));

  const double start = clock_.now();
  const double duration = f.duration();
  // The current target level, updated by worker 0 as playback advances.
  std::atomic<double> level{f.level_at(0.0)};
  std::atomic<bool> done{false};

  auto worker_loop = [&](unsigned k) {
    Rng rng(cfg_.seed + k);
    while (!done.load(std::memory_order_relaxed) && !stop_requested()) {
      const double now = clock_.now();
      const double t = now - start;
      if (t >= duration) break;
      if (k == 0) level.store(f.level_at(t), std::memory_order_relaxed);
      const double c = level.load(std::memory_order_relaxed);
      const double duty = std::clamp(c - static_cast<double>(k), 0.0, 1.0);
      const double deadline = std::min(now + cfg_.subinterval_s, start + duration);
      if (duty >= 1.0 || (duty > 0.0 && rng.uniform() < duty)) {
        busy_(deadline, k);
      } else {
        clock_.sleep(deadline - now);
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (unsigned k = 1; k < workers; ++k) {
    threads.emplace_back(worker_loop, k);
  }
  worker_loop(0);
  done.store(true, std::memory_order_relaxed);
  for (auto& th : threads) th.join();
  return std::min(clock_.now() - start, duration);
}

}  // namespace uucs
