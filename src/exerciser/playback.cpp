#include "exerciser/playback.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace uucs {

PlaybackEngine::PlaybackEngine(Clock& clock, const ExerciserConfig& cfg, BusyFn busy)
    : clock_(clock), cfg_(cfg), busy_(std::move(busy)) {
  cfg_.validate();
  UUCS_CHECK(busy_ != nullptr);
}

double PlaybackEngine::run(const ExerciseFunction& f) {
  if (f.empty()) return 0.0;
  const unsigned workers = std::min<unsigned>(
      cfg_.max_threads,
      static_cast<unsigned>(std::max(1.0, std::ceil(f.max_level()))));

  const double start = clock_.now();
  const double duration = f.duration();
  // The current target level, updated by worker 0 as playback advances.
  std::atomic<double> level{f.level_at(0.0)};
  std::atomic<bool> done{false};

  // A busy callback that throws (e.g. a disk write failing with an errno we
  // do not absorb) must not escape a detached worker loop — that would be
  // std::terminate. The first exception is captured, playback winds down,
  // and run() rethrows it to its caller.
  std::mutex error_mu;
  std::exception_ptr first_error;
  auto worker_loop = [&](unsigned k) {
    Rng rng(cfg_.seed + k);
    try {
      while (!done.load(std::memory_order_relaxed) && !stop_requested()) {
        const double now = clock_.now();
        const double t = now - start;
        if (t >= duration) break;
        if (k == 0) level.store(f.level_at(t), std::memory_order_relaxed);
        const double c = level.load(std::memory_order_relaxed);
        const double duty = std::clamp(c - static_cast<double>(k), 0.0, 1.0);
        const double deadline = std::min(now + cfg_.subinterval_s, start + duration);
        if (duty >= 1.0 || (duty > 0.0 && rng.uniform() < duty)) {
          busy_(deadline, k);
        } else {
          clock_.sleep(deadline - now);
        }
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mu);
      if (!first_error) first_error = std::current_exception();
      done.store(true, std::memory_order_relaxed);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (unsigned k = 1; k < workers; ++k) {
    threads.emplace_back(worker_loop, k);
  }
  worker_loop(0);
  done.store(true, std::memory_order_relaxed);
  for (auto& th : threads) th.join();
  if (first_error) std::rethrow_exception(first_error);
  return std::min(clock_.now() - start, duration);
}

}  // namespace uucs
