#pragma once

#include <atomic>
#include <functional>

#include "exerciser/exerciser.hpp"

namespace uucs {

/// Shared time-based playback engine for the CPU and disk exercisers, which
/// the paper notes "operate nearly identically" (§2.2).
///
/// Playback walks the exercise function in real time. Worker thread k
/// derives its duty cycle from the current contention level c:
///
///   duty(k) = clamp(c - k, 0, 1)
///
/// so floor(c) threads run fully busy subintervals and one thread runs busy
/// subintervals with probability frac(c), calling sleep otherwise — the
/// stochastic borrowing that emulates a fluid model. The `busy_until`
/// callback performs resource-specific busy work (spinning for CPU, random
/// synced writes for disk) until the given deadline.
class PlaybackEngine {
 public:
  /// busy_until(deadline, worker_index): perform busy work until
  /// clock.now() >= deadline. Must return promptly at the deadline.
  using BusyFn = std::function<void(double deadline, unsigned worker)>;

  PlaybackEngine(Clock& clock, const ExerciserConfig& cfg, BusyFn busy);

  /// Plays `f`; blocks until exhaustion or stop(). Returns seconds played.
  double run(const ExerciseFunction& f);

  /// Requests an immediate stop from any thread.
  void stop() { stop_.store(true, std::memory_order_relaxed); }

  /// Clears the stop flag for reuse.
  void reset() { stop_.store(false, std::memory_order_relaxed); }

  bool stop_requested() const { return stop_.load(std::memory_order_relaxed); }

 private:
  Clock& clock_;
  ExerciserConfig cfg_;
  BusyFn busy_;
  std::atomic<bool> stop_{false};
};

}  // namespace uucs
