#include "exerciser/probe.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>
#include <vector>

#include "exerciser/calibration.hpp"
#include "testcase/exercise_function.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace uucs {

double cpu_probe_rate(Clock& clock, double window_s) {
  UUCS_CHECK_MSG(window_s > 0, "probe window must be positive");
  const double start = clock.now();
  const std::uint64_t units = CpuCalibration::spin_until(clock, start + window_s);
  return static_cast<double>(units) / (clock.now() - start);
}

double disk_probe_rate(Clock& clock, double window_s, const std::string& dir,
                       std::size_t file_bytes, std::size_t write_bytes) {
  UUCS_CHECK_MSG(window_s > 0, "probe window must be positive");
  UUCS_CHECK_MSG(file_bytes > write_bytes, "file must exceed write size");
  const std::string path = dir + "/uucs-disk-probe-" + std::to_string(::getpid()) + ".dat";
  const int fd = ::open(path.c_str(), O_CREAT | O_RDWR | O_TRUNC | O_SYNC, 0600);
  if (fd < 0) throw SystemError("open " + path + ": " + std::strerror(errno));
  if (::ftruncate(fd, static_cast<off_t>(file_bytes)) != 0) {
    ::close(fd);
    ::unlink(path.c_str());
    throw SystemError("ftruncate " + path + ": " + std::strerror(errno));
  }
  std::vector<char> buf(write_bytes, 'p');
  Rng rng(0xd15c);
  const double start = clock.now();
  std::uint64_t ops = 0;
  while (clock.now() < start + window_s) {
    const auto off = rng.uniform_int(
        0, static_cast<std::int64_t>(file_bytes - write_bytes));
    if (::pwrite(fd, buf.data(), write_bytes, static_cast<off_t>(off)) < 0) {
      ::close(fd);
      ::unlink(path.c_str());
      throw SystemError("pwrite " + path + ": " + std::strerror(errno));
    }
    ++ops;
  }
  const double elapsed = clock.now() - start;
  ::close(fd);
  ::unlink(path.c_str());
  return static_cast<double>(ops) / elapsed;
}

double probe_rate_under_contention(ResourceExerciser& exerciser, double level,
                                   double window_s, Clock& clock,
                                   const std::function<double()>& probe) {
  UUCS_CHECK(probe != nullptr);
  exerciser.reset();
  // Run the exerciser well past the probe window so contention is steady
  // for the whole measurement.
  const ExerciseFunction constant = make_constant(level, window_s * 4 + 1.0, 1.0);
  std::thread runner([&] { exerciser.run(constant); });
  // Give the exerciser one subinterval to spin up.
  clock.sleep(0.05);
  double rate = 0.0;
  try {
    rate = probe();
  } catch (...) {
    exerciser.stop();
    runner.join();
    throw;
  }
  exerciser.stop();
  runner.join();
  return rate;
}

}  // namespace uucs
