#pragma once

#include <functional>
#include <string>

#include "exerciser/exerciser.hpp"

namespace uucs {

/// Measurement probes for verifying exerciser fidelity. The paper validates
/// the CPU exerciser to contention 10 and the disk exerciser to 7 by
/// checking that an equal-priority competing thread slows to 1/(1+c) of its
/// uncontended rate (§2.2). These helpers reproduce that experiment.

/// Rate achieved by one busy probe thread over `window_s` seconds with
/// nothing else running: CPU work units per second.
double cpu_probe_rate(Clock& clock, double window_s);

/// Rate achieved by a disk probe (synced random writes into its own file
/// under `dir`): write operations per second.
double disk_probe_rate(Clock& clock, double window_s, const std::string& dir,
                       std::size_t file_bytes, std::size_t write_bytes);

/// Runs `exerciser` on a constant-level function while concurrently running
/// `probe` (which must return the probe's achieved rate), then stops the
/// exerciser. Returns the probe's contended rate. The expected value is
/// uncontended_rate / (1 + level) on an otherwise idle single-CPU host.
double probe_rate_under_contention(ResourceExerciser& exerciser, double level,
                                   double window_s, Clock& clock,
                                   const std::function<double()>& probe);

}  // namespace uucs
