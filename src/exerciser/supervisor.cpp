#include "exerciser/supervisor.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace uucs {

namespace {

/// Shared state one worker thread writes and the supervisor reads. The
/// report is published before `done` flips (release/acquire), so a joined
/// or observed-done slot always carries a complete report.
struct Slot {
  ResourceReport report;
  std::shared_ptr<std::atomic<bool>> done = std::make_shared<std::atomic<bool>>(false);
};

}  // namespace

std::string resource_outcome_name(ResourceOutcome outcome) {
  switch (outcome) {
    case ResourceOutcome::kOk: return "ok";
    case ResourceOutcome::kDegraded: return "degraded";
    case ResourceOutcome::kFailed: return "failed";
    case ResourceOutcome::kHung: return "hung";
    case ResourceOutcome::kAborted: return "aborted";
  }
  return "unknown";
}

std::optional<ResourceOutcome> parse_resource_outcome(const std::string& name) {
  if (name == "ok") return ResourceOutcome::kOk;
  if (name == "degraded") return ResourceOutcome::kDegraded;
  if (name == "failed") return ResourceOutcome::kFailed;
  if (name == "hung") return ResourceOutcome::kHung;
  if (name == "aborted") return ResourceOutcome::kAborted;
  return std::nullopt;
}

int resource_outcome_severity(ResourceOutcome o) {
  switch (o) {
    case ResourceOutcome::kOk: return 0;
    case ResourceOutcome::kDegraded: return 1;
    case ResourceOutcome::kAborted: return 2;
    case ResourceOutcome::kFailed: return 3;
    case ResourceOutcome::kHung: return 4;
  }
  return 0;
}

ResourceOutcome SupervisedOutcome::worst() const {
  ResourceOutcome w = ResourceOutcome::kOk;
  for (const auto& [r, report] : reports) {
    if (resource_outcome_severity(report.outcome) > resource_outcome_severity(w)) {
      w = report.outcome;
    }
  }
  return w;
}

RunSupervisor::RunSupervisor(Clock& clock, double grace_s, double stop_bound_s,
                             double poll_interval_s)
    : clock_(clock),
      grace_s_(grace_s),
      stop_bound_s_(stop_bound_s),
      poll_interval_s_(poll_interval_s) {
  UUCS_CHECK_MSG(grace_s_ >= 0, "watchdog grace must be >= 0");
  UUCS_CHECK_MSG(stop_bound_s_ > 0, "stop bound must be positive");
  UUCS_CHECK_MSG(poll_interval_s_ > 0, "watchdog poll must be positive");
}

SupervisedOutcome RunSupervisor::supervise(const std::vector<Worker>& workers,
                                           double duration,
                                           const std::atomic<bool>& external_stop,
                                           std::vector<Abandoned>& abandoned) {
  const double start = clock_.now();
  SupervisedOutcome outcome;

  std::vector<std::shared_ptr<Slot>> slots;
  std::vector<std::thread> threads;
  slots.reserve(workers.size());
  threads.reserve(workers.size());
  for (const Worker& w : workers) {
    auto slot = std::make_shared<Slot>();
    slots.push_back(slot);
    // The exception barrier: whatever a worker throws — a SystemError from
    // a failed pwrite, an mmap failure, a library bug — becomes a typed
    // report. An uncaught exception here would be std::terminate.
    threads.emplace_back([slot, ex = w.exerciser, f = w.function] {
      ResourceReport report;
      try {
        report.played_s = ex->run(*f);
        const auto deg = ex->degradation();
        report.degraded_events = deg.events;
        if (deg.events > 0) {
          report.outcome = ResourceOutcome::kDegraded;
          report.detail = deg.detail;
        }
      } catch (const std::exception& e) {
        report.outcome = ResourceOutcome::kFailed;
        report.detail = e.what();
      } catch (...) {
        report.outcome = ResourceOutcome::kFailed;
        report.detail = "unknown exception";
      }
      slot->report = std::move(report);
      slot->done->store(true, std::memory_order_release);
    });
  }

  // The watchdog: polls until every worker is done, the stop bound is
  // blown, or the run deadline passes (then it initiates the stop itself).
  const double deadline = start + duration + grace_s_;
  std::optional<double> stop_at;
  auto all_done = [&] {
    return std::all_of(slots.begin(), slots.end(), [](const auto& s) {
      return s->done->load(std::memory_order_acquire);
    });
  };
  bool hung = false;
  while (!all_done()) {
    const double now = clock_.now();
    if (!stop_at && external_stop.load(std::memory_order_relaxed)) {
      stop_at = now;
    }
    if (!stop_at && now >= deadline) {
      outcome.watchdog_fired = true;
      for (const Worker& w : workers) w.exerciser->stop();
      stop_at = now;
    }
    if (stop_at && now - *stop_at >= stop_bound_s_) {
      hung = !all_done();
      break;
    }
    clock_.sleep(poll_interval_s_);
  }

  for (std::size_t i = 0; i < workers.size(); ++i) {
    if (slots[i]->done->load(std::memory_order_acquire)) {
      threads[i].join();
      outcome.reports[workers[i].resource] = slots[i]->report;
    } else {
      // Missed the stop bound: the worker cannot be killed, so it is
      // parked with a keep-alive exerciser reference and reaped later.
      ResourceReport report;
      report.outcome = ResourceOutcome::kHung;
      report.played_s = std::min(clock_.now() - start, duration);
      report.detail = "stop() not honored within bound";
      outcome.reports[workers[i].resource] = std::move(report);
      abandoned.push_back({workers[i].resource, workers[i].exerciser,
                           slots[i]->done, std::move(threads[i])});
    }
  }

  outcome.hung = hung;
  outcome.stopped_early = external_stop.load(std::memory_order_relaxed);
  outcome.elapsed_s = std::min(clock_.now() - start, duration);
  return outcome;
}

std::size_t RunSupervisor::reap(std::vector<Abandoned>& abandoned) {
  std::size_t wedged = 0;
  auto it = abandoned.begin();
  while (it != abandoned.end()) {
    if (it->done->load(std::memory_order_acquire)) {
      it->thread.join();
      it = abandoned.erase(it);
    } else {
      ++wedged;
      ++it;
    }
  }
  return wedged;
}

}  // namespace uucs
