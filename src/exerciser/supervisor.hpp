#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "exerciser/exerciser.hpp"

namespace uucs {

/// How one resource's exerciser worker ended. The paper's client borrows
/// resources on end-user machines (§2.2–2.3); a hostile host (full disk,
/// dying device, memory-starved box) must degrade the borrowing, never
/// crash the process or wedge a run — and the analysis pipeline must be
/// able to tell "the user was discomforted" from "the host faulted".
enum class ResourceOutcome {
  kOk,        ///< ran to exhaustion or a honored stop, no faults absorbed
  kDegraded,  ///< completed, but absorbed recoverable host faults
  kFailed,    ///< the worker threw; captured by the exception barrier
  kHung,      ///< missed the stop-responsiveness bound; worker abandoned
  kAborted,   ///< the process died mid-run (seen only via journal replay)
};

std::string resource_outcome_name(ResourceOutcome outcome);
std::optional<ResourceOutcome> parse_resource_outcome(const std::string& name);

/// Severity order used by worst(): ok < degraded < aborted < failed < hung.
int resource_outcome_severity(ResourceOutcome outcome);

/// Per-resource verdict assembled by the supervisor.
struct ResourceReport {
  ResourceOutcome outcome = ResourceOutcome::kOk;
  double played_s = 0.0;            ///< seconds of the function played
  std::size_t degraded_events = 0;  ///< recoverable faults absorbed
  std::string detail;               ///< human-readable cause when not ok
};

/// Outcome of one supervised run across all exercised resources. Extends
/// the old ExerciserSet::RunOutcome shape (stopped_early / elapsed_s keep
/// their exact former semantics) with the typed per-resource verdicts.
struct SupervisedOutcome {
  bool stopped_early = false;   ///< an external stop() arrived before exhaustion
  double elapsed_s = 0.0;       ///< seconds of the testcase actually played
  bool watchdog_fired = false;  ///< the run overran duration + grace
  bool hung = false;            ///< some worker missed the stop bound
  std::map<Resource, ResourceReport> reports;

  /// The most severe per-resource outcome (ok < degraded < failed < hung);
  /// kOk for a blank run with no reports.
  ResourceOutcome worst() const;
};

/// Supervises the worker threads of one exerciser run:
///
///  * every worker runs behind an exception barrier — a thrown
///    SystemError (ENOSPC, EIO, mmap failure, ...) becomes a kFailed
///    report instead of std::terminate tearing down the host process;
///  * a watchdog bounds the whole run to duration + grace_s — if workers
///    are still going past that (e.g. injected slow-IO), it stops them;
///  * once a stop is in flight (external stop() or the watchdog), workers
///    must finish within stop_bound_s or the run is marked hung, the
///    stragglers are abandoned to a reap list, and supervise() returns —
///    the §2.3 "stop immediately" promise degrades to "return promptly
///    and tell the truth about the worker you could not stop".
///
/// Abandoned workers cannot be killed (no such thing for std::thread);
/// they are parked with their keep-alive exerciser reference and joined
/// when they eventually return — reap() opportunistically, or the owning
/// ExerciserSet's destructor as the final (blocking) backstop.
class RunSupervisor {
 public:
  struct Worker {
    Resource resource;
    std::shared_ptr<ResourceExerciser> exerciser;
    const ExerciseFunction* function = nullptr;
  };

  /// One parked worker that missed the stop bound. Holds the exerciser
  /// alive so the still-running thread never dangles.
  struct Abandoned {
    Resource resource;
    std::shared_ptr<ResourceExerciser> exerciser;
    std::shared_ptr<std::atomic<bool>> done;
    std::thread thread;
  };

  /// grace_s: slack past the testcase duration before the watchdog stops
  /// the run. stop_bound_s: how long a stop may take to be honored.
  /// poll_interval_s: watchdog poll resolution.
  RunSupervisor(Clock& clock, double grace_s, double stop_bound_s,
                double poll_interval_s);

  /// Runs every worker to completion, stop, or watchdog teardown.
  /// `external_stop` is the owner's stop flag (the owner also stops the
  /// exercisers; the supervisor only times the bound from it). Stragglers
  /// are appended to `abandoned`.
  SupervisedOutcome supervise(const std::vector<Worker>& workers, double duration,
                              const std::atomic<bool>& external_stop,
                              std::vector<Abandoned>& abandoned);

  /// Joins every abandoned worker that has since finished; returns how
  /// many are still wedged.
  static std::size_t reap(std::vector<Abandoned>& abandoned);

 private:
  Clock& clock_;
  double grace_s_;
  double stop_bound_s_;
  double poll_interval_s_;
};

}  // namespace uucs
