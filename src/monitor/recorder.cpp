#include "monitor/recorder.hpp"

#include "util/error.hpp"

namespace uucs {

LoadRecorder::LoadRecorder(Clock& clock, LoadSampler& sampler, double interval_s)
    : clock_(clock), sampler_(sampler), interval_s_(interval_s) {
  UUCS_CHECK_MSG(interval_s_ > 0, "sampling interval must be positive");
  start_time_ = clock_.now();
}

LoadRecorder::~LoadRecorder() { stop(); }

void LoadRecorder::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  start_time_ = clock_.now();
  thread_ = std::thread([this] { run_loop(); });
}

void LoadRecorder::stop() {
  if (!running_.exchange(false)) return;
  if (thread_.joinable()) thread_.join();
}

void LoadRecorder::run_loop() {
  while (running_.load(std::memory_order_relaxed)) {
    tick();
    clock_.sleep(interval_s_);
  }
}

void LoadRecorder::tick() {
  const LoadSample s = sampler_.sample(clock_.now() - start_time_);
  std::lock_guard<std::mutex> lock(mu_);
  samples_.push_back(s);
}

std::vector<LoadSample> LoadRecorder::samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_;
}

void LoadRecorder::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  samples_.clear();
}

KvRecord LoadRecorder::to_record() const {
  std::vector<LoadSample> snap = samples();
  std::vector<double> t, cpu, mem, disk;
  t.reserve(snap.size());
  for (const auto& s : snap) {
    t.push_back(s.t);
    cpu.push_back(s.cpu_busy_frac);
    mem.push_back(s.mem_used_frac);
    disk.push_back(s.disk_bytes_per_s);
  }
  KvRecord rec("load");
  rec.set_doubles("t", t);
  rec.set_doubles("cpu", cpu);
  rec.set_doubles("mem", mem);
  rec.set_doubles("disk", disk);
  return rec;
}

}  // namespace uucs
