#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "monitor/sampler.hpp"
#include "util/clock.hpp"
#include "util/kvtext.hpp"

namespace uucs {

/// Records load samples for the duration of a testcase run (§2.3). Driven
/// either by a background thread against a real clock (start/stop) or
/// manually (tick) when the simulator owns time.
class LoadRecorder {
 public:
  /// `sampler` must outlive the recorder.
  LoadRecorder(Clock& clock, LoadSampler& sampler, double interval_s = 1.0);
  ~LoadRecorder();

  LoadRecorder(const LoadRecorder&) = delete;
  LoadRecorder& operator=(const LoadRecorder&) = delete;

  /// Starts background sampling (real-clock mode). No-op if running.
  void start();

  /// Stops background sampling and joins the thread.
  void stop();

  /// Takes one sample now (manual mode; also usable while stopped).
  void tick();

  /// Samples collected so far (copy; safe while running).
  std::vector<LoadSample> samples() const;

  /// Clears collected samples (for reuse across runs).
  void clear();

  /// Serializes samples into a [load] record (t/cpu/mem/disk value lists).
  KvRecord to_record() const;

 private:
  void run_loop();

  Clock& clock_;
  LoadSampler& sampler_;
  double interval_s_;
  double start_time_ = 0.0;
  mutable std::mutex mu_;
  std::vector<LoadSample> samples_;
  std::atomic<bool> running_{false};
  std::thread thread_;
};

}  // namespace uucs
