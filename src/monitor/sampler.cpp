#include "monitor/sampler.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/strings.hpp"

namespace uucs {

namespace {

/// Parses /proc/stat's first line into (idle, total) jiffies.
std::optional<std::pair<std::uint64_t, std::uint64_t>> read_cpu_times() {
  std::ifstream f("/proc/stat");
  std::string line;
  if (!std::getline(f, line) || !starts_with(line, "cpu ")) return std::nullopt;
  const auto fields = split_ws(line);
  // cpu user nice system idle iowait irq softirq steal ...
  if (fields.size() < 5) return std::nullopt;
  std::uint64_t total = 0;
  std::uint64_t idle = 0;
  for (std::size_t i = 1; i < fields.size(); ++i) {
    const auto v = parse_int(fields[i]);
    if (!v) return std::nullopt;
    total += static_cast<std::uint64_t>(*v);
    if (i == 4 || i == 5) idle += static_cast<std::uint64_t>(*v);  // idle+iowait
  }
  return std::make_pair(idle, total);
}

/// Fraction of physical memory in use (1 - MemAvailable/MemTotal).
double read_mem_used_frac() {
  std::ifstream f("/proc/meminfo");
  std::string line;
  double total = 0, avail = 0;
  while (std::getline(f, line)) {
    const auto fields = split_ws(line);
    if (fields.size() < 2) continue;
    if (fields[0] == "MemTotal:") total = parse_double(fields[1]).value_or(0);
    if (fields[0] == "MemAvailable:") avail = parse_double(fields[1]).value_or(0);
  }
  if (total <= 0) return 0.0;
  return std::clamp(1.0 - avail / total, 0.0, 1.0);
}

/// Total sectors read+written across physical block devices.
std::uint64_t read_disk_sectors() {
  std::ifstream f("/proc/diskstats");
  std::string line;
  std::uint64_t sectors = 0;
  while (std::getline(f, line)) {
    const auto fields = split_ws(line);
    // major minor name reads .. sectors_read(6) .. writes .. sectors_written(10)
    if (fields.size() < 11) continue;
    const std::string& name = fields[2];
    // Skip partitions (trailing digit on sdX / vdX) and loop/ram devices to
    // avoid double counting.
    if (starts_with(name, "loop") || starts_with(name, "ram")) continue;
    if (!name.empty() && std::isdigit(static_cast<unsigned char>(name.back())) &&
        !starts_with(name, "nvme") && !starts_with(name, "mmcblk")) {
      continue;
    }
    sectors += static_cast<std::uint64_t>(parse_int(fields[5]).value_or(0));
    sectors += static_cast<std::uint64_t>(parse_int(fields[9]).value_or(0));
  }
  return sectors;
}

}  // namespace

ProcSampler::ProcSampler() = default;

LoadSample ProcSampler::sample(double t) {
  LoadSample s;
  s.t = t;
  s.mem_used_frac = read_mem_used_frac();

  if (const auto cpu = read_cpu_times()) {
    if (prev_cpu_ && cpu->second > prev_cpu_->total) {
      const double didle = static_cast<double>(cpu->first - prev_cpu_->idle);
      const double dtotal = static_cast<double>(cpu->second - prev_cpu_->total);
      s.cpu_busy_frac = std::clamp(1.0 - didle / dtotal, 0.0, 1.0);
    }
    prev_cpu_ = CpuTimes{cpu->first, cpu->second};
  }

  const std::uint64_t sectors = read_disk_sectors();
  if (prev_disk_sectors_ && prev_t_ && t > *prev_t_) {
    const double dsect = static_cast<double>(sectors - *prev_disk_sectors_);
    s.disk_bytes_per_s = dsect * 512.0 / (t - *prev_t_);
  }
  prev_disk_sectors_ = sectors;
  prev_t_ = t;
  return s;
}

std::optional<MemoryPressure> read_memory_pressure() {
  std::ifstream f("/proc/meminfo");
  std::string line;
  std::uint64_t total_kb = 0, avail_kb = 0;
  bool have_total = false, have_avail = false;
  while (std::getline(f, line)) {
    const auto fields = split_ws(line);
    if (fields.size() < 2) continue;
    if (fields[0] == "MemTotal:") {
      if (const auto v = parse_int(fields[1]); v && *v >= 0) {
        total_kb = static_cast<std::uint64_t>(*v);
        have_total = true;
      }
    } else if (fields[0] == "MemAvailable:") {
      if (const auto v = parse_int(fields[1]); v && *v >= 0) {
        avail_kb = static_cast<std::uint64_t>(*v);
        have_avail = true;
      }
    }
  }
  if (!have_total || !have_avail || total_kb == 0) return std::nullopt;

  MemoryPressure p;
  p.total_bytes = total_kb * 1024;
  p.available_bytes = avail_kb * 1024;

  // cgroup v2: if this process is confined below physical RAM, the cgroup
  // ceiling is the one borrowing must respect. Best-effort — absent files
  // (cgroup v1, non-container host) just leave the meminfo numbers.
  std::ifstream max_f("/sys/fs/cgroup/memory.max");
  std::ifstream cur_f("/sys/fs/cgroup/memory.current");
  std::string max_s, cur_s;
  if (std::getline(max_f, max_s) && std::getline(cur_f, cur_s) &&
      trim(max_s) != "max") {
    const auto max_v = parse_int(trim(max_s));
    const auto cur_v = parse_int(trim(cur_s));
    if (max_v && cur_v && *max_v > 0 && *cur_v >= 0 &&
        static_cast<std::uint64_t>(*max_v) < p.total_bytes) {
      p.total_bytes = static_cast<std::uint64_t>(*max_v);
      const auto used = static_cast<std::uint64_t>(*cur_v);
      const std::uint64_t cg_avail = used < p.total_bytes ? p.total_bytes - used : 0;
      p.available_bytes = std::min(p.available_bytes, cg_avail);
      p.cgroup_limited = true;
    }
  }
  return p;
}

std::vector<ProcessInfo> snapshot_processes(std::size_t max_count) {
  std::vector<ProcessInfo> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator("/proc", ec)) {
    if (out.size() >= max_count) break;
    const std::string name = entry.path().filename().string();
    if (name.empty() || !std::all_of(name.begin(), name.end(), [](char c) {
          return std::isdigit(static_cast<unsigned char>(c));
        })) {
      continue;
    }
    std::ifstream comm(entry.path() / "comm");
    std::string pname;
    if (!std::getline(comm, pname)) continue;
    ProcessInfo info;
    info.pid = static_cast<int>(*parse_int(name));
    info.name = pname;
    out.push_back(std::move(info));
  }
  return out;
}

}  // namespace uucs
