#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace uucs {

/// One instantaneous load measurement. The paper's client stores "CPU,
/// memory and Disk load measurements for [the] entire duration of the
/// testcase" (§2.3).
struct LoadSample {
  double t = 0.0;                ///< seconds into the run
  double cpu_busy_frac = 0.0;    ///< non-idle CPU fraction in [0,1]
  double mem_used_frac = 0.0;    ///< in-use physical memory fraction in [0,1]
  double disk_bytes_per_s = 0.0; ///< read+write throughput
};

/// A process visible at sample time (pid + short name). Results include a
/// process snapshot for context (§2.3).
struct ProcessInfo {
  int pid = 0;
  std::string name;
};

/// Interface producing LoadSamples; the Linux /proc implementation is used
/// live, and the simulator provides a model-driven one.
class LoadSampler {
 public:
  virtual ~LoadSampler() = default;

  /// Takes a sample `t` seconds into the run. Implementations compute rates
  /// from deltas against the previous call.
  virtual LoadSample sample(double t) = 0;
};

/// /proc-backed sampler: /proc/stat for CPU, /proc/meminfo for memory,
/// /proc/diskstats for disk throughput. The first sample has zero rates
/// (no delta yet).
class ProcSampler final : public LoadSampler {
 public:
  ProcSampler();
  LoadSample sample(double t) override;

 private:
  struct CpuTimes {
    std::uint64_t idle = 0;
    std::uint64_t total = 0;
  };
  std::optional<CpuTimes> prev_cpu_;
  std::optional<std::uint64_t> prev_disk_sectors_;
  std::optional<double> prev_t_;
};

/// Lists currently running processes from /proc (pid directories with a
/// readable comm). Best-effort: unreadable entries are skipped.
std::vector<ProcessInfo> snapshot_processes(std::size_t max_count = 256);

/// How much memory the host can still give up without swapping or OOM.
/// Combines /proc/meminfo (MemTotal/MemAvailable) with the cgroup v2 memory
/// controller (memory.max / memory.current) when the process is confined —
/// inside a container the cgroup limit, not physical RAM, is what borrowing
/// must respect.
struct MemoryPressure {
  std::uint64_t total_bytes = 0;      ///< borrowing ceiling (RAM or cgroup max)
  std::uint64_t available_bytes = 0;  ///< what can still be taken
  bool cgroup_limited = false;        ///< a cgroup limit was the binding one

  double available_frac() const {
    return total_bytes == 0
               ? 1.0
               : static_cast<double>(available_bytes) / static_cast<double>(total_bytes);
  }
};

/// Reads the current memory pressure; nullopt if /proc/meminfo is absent or
/// unparsable (non-Linux). The memory exerciser uses this to cap its pool
/// and shrink its working set under host pressure.
std::optional<MemoryPressure> read_memory_pressure();

}  // namespace uucs
