#include "monitor/sysinfo.hpp"

#include <sys/statvfs.h>
#include <sys/utsname.h>
#include <unistd.h>

#include <fstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace uucs {

HostSpec HostSpec::detect() {
  HostSpec spec;

  char host[256] = {0};
  if (::gethostname(host, sizeof(host) - 1) == 0) spec.hostname = host;

  struct utsname uts{};
  if (::uname(&uts) == 0) {
    spec.os_name = std::string(uts.sysname) + " " + uts.release;
  }

  spec.cpu_count = static_cast<unsigned>(std::max(1L, ::sysconf(_SC_NPROCESSORS_ONLN)));
  const long pages = ::sysconf(_SC_PHYS_PAGES);
  const long page_size = ::sysconf(_SC_PAGESIZE);
  if (pages > 0 && page_size > 0) {
    spec.memory_bytes = static_cast<std::uint64_t>(pages) *
                        static_cast<std::uint64_t>(page_size);
  }

  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    const auto colon = line.find(':');
    if (colon == std::string::npos) continue;
    const std::string key{trim(line.substr(0, colon))};
    const std::string value{trim(line.substr(colon + 1))};
    if (key == "model name" && spec.cpu_model.empty()) spec.cpu_model = value;
    if (key == "cpu MHz" && spec.cpu_mhz == 0.0) {
      if (const auto v = parse_double(value)) spec.cpu_mhz = *v;
    }
  }

  struct statvfs vfs{};
  if (::statvfs("/", &vfs) == 0) {
    spec.disk_bytes = static_cast<std::uint64_t>(vfs.f_blocks) * vfs.f_frsize;
  }
  return spec;
}

HostSpec HostSpec::paper_study_machine() {
  HostSpec spec;
  spec.hostname = "uucs-study";
  spec.os_name = "Windows XP";
  spec.cpu_model = "2.0 GHz P4";
  spec.cpu_mhz = 2000.0;
  spec.cpu_count = 1;
  spec.memory_bytes = 512ull << 20;
  spec.disk_bytes = 80ull * 1000 * 1000 * 1000;
  spec.extra = "Dell Optiplex GX270, 17 in monitor, 100 Mbps Ethernet; "
               "Word 2002, Powerpoint 2002, IE 6, Quake III";
  return spec;
}

double HostSpec::power_index() const {
  // Simple clock*cores index relative to the 2.0 GHz single-core study box.
  const double mhz = cpu_mhz > 0 ? cpu_mhz : 2000.0;
  return (mhz / 2000.0) * static_cast<double>(cpu_count);
}

KvRecord HostSpec::to_record() const {
  KvRecord rec("host");
  rec.set("hostname", hostname);
  rec.set("os", os_name);
  rec.set("cpu_model", cpu_model);
  rec.set_double("cpu_mhz", cpu_mhz);
  rec.set_int("cpu_count", cpu_count);
  rec.set_int("memory_bytes", static_cast<std::int64_t>(memory_bytes));
  rec.set_int("disk_bytes", static_cast<std::int64_t>(disk_bytes));
  if (!extra.empty()) rec.set("extra", extra);
  return rec;
}

HostSpec HostSpec::from_record(const KvRecord& rec) {
  if (rec.type() != "host") {
    throw ParseError("expected [host] record, got [" + rec.type() + "]");
  }
  HostSpec spec;
  spec.hostname = rec.get_or("hostname", "");
  spec.os_name = rec.get_or("os", "");
  spec.cpu_model = rec.get_or("cpu_model", "");
  spec.cpu_mhz = rec.get_double_or("cpu_mhz", 0.0);
  spec.cpu_count = static_cast<unsigned>(rec.get_int_or("cpu_count", 1));
  spec.memory_bytes = static_cast<std::uint64_t>(rec.get_int_or("memory_bytes", 0));
  spec.disk_bytes = static_cast<std::uint64_t>(rec.get_int_or("disk_bytes", 0));
  spec.extra = rec.get_or("extra", "");
  return spec;
}

}  // namespace uucs
