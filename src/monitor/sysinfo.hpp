#pragma once

#include <cstdint>
#include <string>

#include "util/kvtext.hpp"

namespace uucs {

/// Hardware/software snapshot of a client machine. The paper's client sends
/// this "detailed snapshot of the hardware and software of the client
/// machine" to the server at registration (§2), and the analysis uses it to
/// study the effect of raw host power (question 6).
struct HostSpec {
  std::string hostname;
  std::string os_name;        ///< e.g. "Linux 6.1" or "Windows XP"
  std::string cpu_model;      ///< e.g. "2.0 GHz P4"
  double cpu_mhz = 0.0;
  unsigned cpu_count = 1;
  std::uint64_t memory_bytes = 0;
  std::uint64_t disk_bytes = 0;
  std::string extra;          ///< free-form (installed applications, display)

  /// Detects the current machine via /proc and uname.
  static HostSpec detect();

  /// The Dell Optiplex GX270 configuration from the paper's controlled
  /// study (Fig 7): 2.0 GHz P4, 512 MB, 80 GB, Windows XP.
  static HostSpec paper_study_machine();

  /// A relative raw-power index used by the simulator: 1.0 equals the
  /// paper's study machine; faster machines score higher.
  double power_index() const;

  KvRecord to_record() const;
  static HostSpec from_record(const KvRecord& rec);
};

}  // namespace uucs
