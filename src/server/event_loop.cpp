#include "server/event_loop.hpp"

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <ctime>
#include <future>

#include "util/error.hpp"
#include "util/logging.hpp"

namespace uucs {

namespace {

// epoll user-data tags for the two non-connection fds.
constexpr std::uint64_t kWakeTag = ~std::uint64_t{0};
constexpr std::uint64_t kListenerTag = ~std::uint64_t{0} - 1;

void set_fd_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw SystemError(std::string("fcntl O_NONBLOCK: ") + std::strerror(errno));
  }
}

std::uint64_t monotonic_ms() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000u +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1000000u;
}

TcpListener make_listener(const EventLoopServer::Config& config) {
  if (config.adopted_fd >= 0) {
    return TcpListener(TcpListener::AdoptFd{config.adopted_fd});
  }
  return TcpListener(config.port, config.listen_backlog);
}

}  // namespace

// ---------------------------------------------------------------------------
// FrameReader

void FrameReader::feed(const char* data, std::size_t n) {
  if (consumed_ == buffer_.size()) {
    // Everything handed out: restart at the front of the warm buffer. (This
    // also invalidates any outstanding next_view() view, which is exactly
    // the documented lifetime.)
    buffer_.clear();
    consumed_ = 0;
  } else if (consumed_ > 4096 && consumed_ > buffer_.size() / 2) {
    // Compact once the consumed prefix dominates, so long-lived connections
    // do not grow their buffer without bound.
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, n);
}

bool FrameReader::parse_frame(std::size_t& header_len, std::size_t& len) const {
  // Header: "UUCS <len>\n". Wait for the newline before judging the header —
  // except that anything longer than the longest legal header, or any byte
  // that contradicts the grammar, is malformed right now.
  const std::size_t avail = buffer_.size() - consumed_;
  const char* base = buffer_.data() + consumed_;
  static constexpr char kMagic[] = "UUCS ";
  static constexpr std::size_t kMagicLen = 5;
  static constexpr std::size_t kMaxHeader = 32;  // "UUCS " + digits + "\n"

  const std::size_t probe = std::min(avail, kMagicLen);
  if (std::memcmp(base, kMagic, probe) != 0) {
    throw ProtocolError("bad frame magic");
  }
  if (avail < kMagicLen) return false;

  const char* nl = static_cast<const char*>(
      std::memchr(base + kMagicLen, '\n', std::min(avail, kMaxHeader) - kMagicLen));
  if (nl == nullptr) {
    if (avail >= kMaxHeader) throw ProtocolError("frame header too long");
    return false;
  }

  len = 0;
  const char* p = base + kMagicLen;
  if (p == nl) throw ProtocolError("frame header missing length");
  for (; p != nl; ++p) {
    if (*p < '0' || *p > '9') throw ProtocolError("bad frame length");
    len = len * 10 + static_cast<std::size_t>(*p - '0');
    if (len > kMaxFrameBytes) throw ProtocolError("frame too large");
  }

  header_len = static_cast<std::size_t>(nl - base) + 1;
  return avail >= header_len + len;
}

bool FrameReader::next(std::string& payload) {
  std::size_t header_len = 0;
  std::size_t len = 0;
  if (!parse_frame(header_len, len)) return false;
  payload.assign(buffer_.data() + consumed_ + header_len, len);
  consumed_ += header_len + len;
  return true;
}

bool FrameReader::next_view(std::string_view& payload) {
  std::size_t header_len = 0;
  std::size_t len = 0;
  if (!parse_frame(header_len, len)) return false;
  payload = std::string_view(buffer_.data() + consumed_ + header_len, len);
  // The consumed prefix (including this frame) stays in the buffer until the
  // next feed() resets or compacts it — that keeps the view alive for the
  // dispatch that is about to run.
  consumed_ += header_len + len;
  return true;
}

// ---------------------------------------------------------------------------
// Responder

void EventLoopServer::Responder::send(std::string payload) const {
  if (server_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(server_->completions_mu_);
    server_->completions_.push_back({index_, generation_, std::move(payload)});
  }
  server_->wake();
}

void EventLoopServer::Responder::dismiss() const {
  if (server_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(server_->completions_mu_);
    server_->completions_.push_back({index_, generation_, std::nullopt});
  }
  server_->wake();
}

double EventLoopServer::Responder::queue_age_ms() const {
  if (server_ == nullptr) return 0.0;
  const std::uint64_t now = monotonic_ms();
  return now > enqueued_ms_ ? static_cast<double>(now - enqueued_ms_) : 0.0;
}

// ---------------------------------------------------------------------------
// EventLoopServer

EventLoopServer::EventLoopServer(Config config, Handler handler)
    : config_(config),
      handler_(std::move(handler)),
      listener_(make_listener(config)) {
  UUCS_CHECK_MSG(handler_ != nullptr, "event loop needs a handler");
  if (config_.workers == 0) config_.workers = 1;
  if (config_.max_connections == 0) config_.max_connections = 1;
  if (config_.max_pipeline == 0) config_.max_pipeline = 1;
  max_buffered_bytes_ = config_.max_buffered_bytes;

  epoll_fd_.reset(::epoll_create1(EPOLL_CLOEXEC));
  if (!epoll_fd_) throw SystemError(std::string("epoll_create1: ") + std::strerror(errno));
  wake_fd_.reset(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
  if (!wake_fd_) throw SystemError(std::string("eventfd: ") + std::strerror(errno));

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeTag;
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, wake_fd_.get(), &ev) != 0) {
    throw SystemError(std::string("epoll_ctl wake: ") + std::strerror(errno));
  }

  listener_.set_nonblocking(true);
  if (config_.start_paused) {
    accept_paused_ = true;
    accept_paused_flag_.store(true, std::memory_order_release);
  } else {
    arm_listener(true);
  }

  idle_ticks_ = config_.idle_timeout_s > 0.0
                    ? static_cast<std::uint64_t>(config_.idle_timeout_s * 1000.0 / kTickMs) + 1
                    : 0;
  if (idle_ticks_ > 0) {
    // One bucket per tick of the idle span: every connection hashed into the
    // bucket being expired is due exactly now, so expiry never rescans.
    wheel_.assign(static_cast<std::size_t>(idle_ticks_ + 1), npos);
    wheel_tick_ = monotonic_ms() / kTickMs;
  }

  // Workers never make the loop thread wait: the queue bound exceeds the
  // most requests that can ever be in flight (per-connection pipeline cap).
  const std::size_t queue_cap = config_.max_connections * config_.max_pipeline + 16;
  pool_ = std::make_unique<ThreadPool>(config_.workers, queue_cap);
  loop_thread_ = std::thread([this] { loop(); });
}

EventLoopServer::~EventLoopServer() { stop(); }

void EventLoopServer::stop() {
  if (stopping_.exchange(true)) return;  // first caller finishes the teardown
  wake();
  if (loop_thread_.joinable()) loop_thread_.join();
  listener_.shutdown();
  // Handlers still running may Responder::send() into completions_; the
  // entries are simply never drained. Joining the pool before the members
  // are destroyed keeps those sends safe.
  pool_.reset();
}

void EventLoopServer::wake() {
  const std::uint64_t one = 1;
  // A full eventfd counter still leaves the loop awake; ignore the result.
  [[maybe_unused]] const auto n = ::write(wake_fd_.get(), &one, sizeof(one));
}

bool EventLoopServer::run_on_loop(std::function<void()> fn) {
  std::shared_ptr<std::promise<void>> done;
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    if (!commands_closed_) {
      done = std::make_shared<std::promise<void>>();
      commands_.push_back([fn = std::move(fn), done]() mutable {
        fn();
        done->set_value();
      });
    }
  }
  if (!done) {
    // The loop thread has exited (or is exiting): nothing races with the
    // connection state any more, so the command can run right here.
    fn();
    return false;
  }
  wake();
  done->get_future().wait();
  return true;
}

void EventLoopServer::run_commands() {
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    batch.swap(commands_);
  }
  for (auto& fn : batch) fn();
}

void EventLoopServer::pause_accept() {
  run_on_loop([this] {
    accept_paused_ = true;
    accept_paused_flag_.store(true, std::memory_order_release);
    arm_listener(false);
  });
}

void EventLoopServer::resume_accept() {
  run_on_loop([this] {
    accept_paused_ = false;
    accept_paused_flag_.store(false, std::memory_order_release);
    // Resuming means "back to normal service" (the takeover rollback path):
    // future connections are no longer born into a wind-down. Connections
    // already draining finish flushing and close as promised.
    drain_mode_ = false;
    if (open_count_ < config_.max_connections) {
      arm_listener(true);
      // Connections that queued in the kernel backlog while paused never
      // re-trigger the level-triggered listener event; pull them in now.
      handle_accept();
    }
  });
}

bool EventLoopServer::accept_paused() const {
  return accept_paused_flag_.load(std::memory_order_acquire);
}

void EventLoopServer::set_max_buffered_bytes(std::size_t bytes) {
  run_on_loop([this, bytes] {
    max_buffered_bytes_ = bytes;
    apply_buffer_pressure();
  });
}

void EventLoopServer::update_buffer_accounting(std::size_t index) {
  Connection& c = conns_[index];
  const std::size_t share = c.open ? c.reader.buffered() + c.out_bytes : 0;
  buffered_total_ = buffered_total_ - c.accounted_bytes + share;
  c.accounted_bytes = share;
  apply_buffer_pressure();
}

void EventLoopServer::apply_buffer_pressure() {
  buffered_mirror_.store(buffered_total_, std::memory_order_relaxed);
  if (buffered_total_ > max_buffered_seen_.load(std::memory_order_relaxed)) {
    max_buffered_seen_.store(buffered_total_, std::memory_order_relaxed);
  }
  if (max_buffered_bytes_ == 0) {
    if (!buffer_pressure_) return;
  } else if (!buffer_pressure_) {
    if (buffered_total_ <= max_buffered_bytes_) return;
    // Over the cap: stop accepting and stop reading. Connections are paused
    // lazily (handle_readable parks whoever becomes readable next); accept
    // stops right here.
    buffer_pressure_ = true;
    if (listener_armed_) {
      arm_listener(false);
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.buffer_accept_pauses;
    }
    return;
  }
  // Under pressure: release it only below the low watermark (7/8), so the
  // boundary does not flap per event.
  if (max_buffered_bytes_ > 0 &&
      buffered_total_ > max_buffered_bytes_ - max_buffered_bytes_ / 8) {
    return;
  }
  buffer_pressure_ = false;
  for (const std::size_t idx : buffer_paused_) {
    Connection& c = conns_[idx];
    if (!c.open || !c.buffer_paused) continue;
    c.buffer_paused = false;
    update_epoll(idx);  // level-triggered epoll re-reports pending bytes
  }
  buffer_paused_.clear();
  if (!listener_armed_ && !accept_paused_ &&
      open_count_ < config_.max_connections &&
      !stopping_.load(std::memory_order_relaxed)) {
    arm_listener(true);
  }
}

void EventLoopServer::begin_drain() {
  run_on_loop([this] {
    // No early-out on an already-set flag: a second drain (e.g. a retried
    // takeover after a rollback) must sweep connections accepted since.
    drain_mode_ = true;
    for (std::size_t i = 0; i < conns_.size(); ++i) {
      Connection& c = conns_[i];
      if (!c.open || c.draining) continue;
      if (c.in_flight == 0 && c.out.empty()) {
        close_connection(i, /*timed_out=*/false);
      } else {
        c.draining = true;
        update_epoll(i);
      }
    }
  });
}

void EventLoopServer::close_all_connections() {
  run_on_loop([this] {
    for (std::size_t i = 0; i < conns_.size(); ++i) {
      if (conns_[i].open) close_connection(i, /*timed_out=*/false);
    }
  });
}

void EventLoopServer::wait_workers_idle() {
  if (pool_) pool_->wait_idle();
}

void EventLoopServer::retire_listener() {
  run_on_loop([this] {
    arm_listener(false);
    const int fd = listener_.release();
    if (fd >= 0) ::close(fd);
  });
}

void EventLoopServer::arm_listener(bool armed) {
  if (armed == listener_armed_) return;
  const int lfd = listener_.native_handle();
  if (lfd < 0) return;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerTag;
  const int op = armed ? EPOLL_CTL_ADD : EPOLL_CTL_DEL;
  if (::epoll_ctl(epoll_fd_.get(), op, lfd, &ev) != 0) {
    throw SystemError(std::string("epoll_ctl listener: ") + std::strerror(errno));
  }
  listener_armed_ = armed;
}

void EventLoopServer::update_epoll(std::size_t index) {
  Connection& c = conns_[index];
  epoll_event ev{};
  // A draining peer already signalled EOF; keeping EPOLLRDHUP armed would
  // re-report it (level-triggered) every wait and spin the loop.
  ev.events = c.draining ? (c.want_write ? EPOLLOUT : 0u)
                         : (((c.paused_read || c.buffer_paused) ? 0u : EPOLLIN) |
                            (c.want_write ? EPOLLOUT : 0u) | EPOLLRDHUP);
  ev.data.u64 = index;
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, c.fd.get(), &ev) != 0) {
    log_warn("event_loop", std::string("epoll_ctl mod: ") + std::strerror(errno));
  }
}

// --- timer wheel -----------------------------------------------------------

void EventLoopServer::wheel_link(std::size_t index) {
  Connection& c = conns_[index];
  const std::size_t bucket =
      static_cast<std::size_t>(c.idle_deadline_tick % wheel_.size());
  c.timer_bucket = bucket;
  c.timer_prev = npos;
  c.timer_next = wheel_[bucket];
  if (c.timer_next != npos) conns_[c.timer_next].timer_prev = index;
  wheel_[bucket] = index;
}

void EventLoopServer::wheel_unlink(std::size_t index) {
  Connection& c = conns_[index];
  if (c.timer_bucket == npos) return;
  if (c.timer_prev != npos) {
    conns_[c.timer_prev].timer_next = c.timer_next;
  } else {
    wheel_[c.timer_bucket] = c.timer_next;
  }
  if (c.timer_next != npos) conns_[c.timer_next].timer_prev = c.timer_prev;
  c.timer_bucket = c.timer_prev = c.timer_next = npos;
}

void EventLoopServer::touch_idle_deadline(std::size_t index) {
  if (idle_ticks_ == 0) return;
  wheel_unlink(index);
  conns_[index].idle_deadline_tick = monotonic_ms() / kTickMs + idle_ticks_;
  wheel_link(index);
}

void EventLoopServer::expire_idle(std::uint64_t now_tick) {
  if (idle_ticks_ == 0 || now_tick <= wheel_tick_) return;
  // Never walk more buckets than the wheel has: a stall longer than a full
  // rotation means one sweep of every bucket visits every connection anyway.
  std::uint64_t from = wheel_tick_ + 1;
  if (now_tick - from >= wheel_.size()) from = now_tick + 1 - wheel_.size();
  for (std::uint64_t t = from; t <= now_tick; ++t) {
    const std::size_t bucket = static_cast<std::size_t>(t % wheel_.size());
    std::size_t i = wheel_[bucket];
    while (i != npos) {
      // Capture the link first: closing unlinks the node. The deadline test
      // only matters after a stall, when a bucket can hold entries whose
      // tick has not come round yet.
      const std::size_t next = conns_[i].timer_next;
      if (conns_[i].idle_deadline_tick <= now_tick) {
        close_connection(i, /*timed_out=*/true);
      }
      i = next;
    }
  }
  wheel_tick_ = now_tick;
}

// --- connection lifecycle --------------------------------------------------

void EventLoopServer::handle_accept() {
  // A pause command in this same epoll batch wins over a listener event that
  // was already reported: newcomers stay in the kernel backlog.
  if (accept_paused_ || buffer_pressure_) return;
  while (open_count_ < config_.max_connections) {
    UniqueFd client = listener_.try_accept();
    if (!client) return;
    set_fd_nonblocking(client.get());

    std::size_t index;
    if (!free_slots_.empty()) {
      index = free_slots_.back();
      free_slots_.pop_back();
    } else {
      index = conns_.size();
      conns_.emplace_back();
    }
    Connection& c = conns_[index];
    c.reader = FrameReader();
    c.out.clear();
    c.out_offset = 0;
    c.out_bytes = 0;
    c.flush_queued = false;
    c.accounted_bytes = 0;
    c.in_flight = 0;
    c.want_write = false;
    c.paused_read = false;
    c.buffer_paused = false;
    c.draining = false;
    c.open = true;
    c.fd = std::move(client);

    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP;
    ev.data.u64 = index;
    if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, c.fd.get(), &ev) != 0) {
      log_warn("event_loop", std::string("epoll_ctl add: ") + std::strerror(errno));
      c.fd.reset();
      c.open = false;
      ++c.generation;
      free_slots_.push_back(index);
      continue;
    }
    ++open_count_;
    touch_idle_deadline(index);
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.accepted;
      stats_.open_connections = open_count_;
      if (open_count_ > stats_.max_open_connections) {
        stats_.max_open_connections = open_count_;
      }
    }
  }
  // At capacity: stop watching the listener so the kernel queues (and
  // eventually refuses) newcomers instead of the loop spinning on them.
  if (listener_armed_) {
    arm_listener(false);
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.accept_pauses;
  }
}

void EventLoopServer::close_connection(std::size_t index, bool timed_out) {
  Connection& c = conns_[index];
  if (!c.open) return;
  wheel_unlink(index);
  // Closing the fd removes it from the epoll set implicitly.
  c.fd.reset();
  c.open = false;
  ++c.generation;  // strands every outstanding Responder for this slot
  c.out.clear();
  c.out_offset = 0;
  c.out_bytes = 0;
  c.flush_queued = false;  // a stale dirty_conns_ entry finds it reset
  c.buffer_paused = false;
  c.reader = FrameReader();
  buffered_total_ -= c.accounted_bytes;
  c.accounted_bytes = 0;
  free_slots_.push_back(index);
  --open_count_;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.closed;
    if (timed_out) ++stats_.idle_timeouts;
    stats_.open_connections = open_count_;
  }
  if (open_count_ == 0) drained_cv_.notify_all();
  apply_buffer_pressure();  // a closed firehose may release the memory cap
  if (!listener_armed_ && !accept_paused_ && !buffer_pressure_ &&
      open_count_ < config_.max_connections &&
      !stopping_.load(std::memory_order_relaxed)) {
    arm_listener(true);
  }
}

void EventLoopServer::dispatch_frames(std::size_t index) {
  Connection& c = conns_[index];
  // A draining connection completes what was dispatched but takes no new
  // work: frames still sitting in the reassembly buffer are discarded when
  // the connection closes.
  if (c.draining) return;
  std::string payload;
  bool touched = false;
  try {
    while (c.in_flight < config_.max_pipeline && c.reader.next(payload)) {
      ++c.in_flight;
      inflight_.fetch_add(1, std::memory_order_relaxed);
      touched = true;
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.frames;
      }
      pool_->submit([this, handler = &handler_, payload = std::move(payload),
                     responder = Responder(this, index, c.generation,
                                           monotonic_ms())]() mutable {
        (*handler)(std::move(payload), responder);
      });
      payload.clear();
    }
  } catch (const std::exception& e) {
    log_warn("event_loop", "protocol error, closing connection: " + std::string(e.what()));
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.protocol_errors;
    }
    close_connection(index, /*timed_out=*/false);
    return;
  }
  // Only a *complete* frame refreshes the idle deadline: a slow-loris peer
  // dribbling single bytes keeps its original deadline and is reaped on
  // schedule no matter how often it makes the socket readable.
  if (touched) touch_idle_deadline(index);
  const bool full = c.in_flight >= config_.max_pipeline;
  if (full != c.paused_read) {
    c.paused_read = full;
    update_epoll(index);
  }
}

void EventLoopServer::handle_readable(std::size_t index) {
  Connection& c = conns_[index];
  if (c.draining) return;  // input is dead once the connection winds down
  if (buffer_pressure_ && !c.buffer_paused) {
    // Over the global memory cap: park this connection instead of reading.
    // Frames already reassembled still dispatch; the kernel socket buffer
    // holds the rest until responses drain the cap below its watermark.
    c.buffer_paused = true;
    buffer_paused_.push_back(index);
    update_epoll(index);
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.buffer_read_pauses;
    }
    dispatch_frames(index);
    return;
  }
  char buf[65536];
  // Bound the bytes taken per event so one firehose connection cannot
  // starve the rest of the loop.
  for (int rounds = 0; rounds < 4; ++rounds) {
    const ssize_t n = ::read(c.fd.get(), buf, sizeof(buf));
    if (n > 0) {
      c.reader.feed(buf, static_cast<std::size_t>(n));
      if (static_cast<std::size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) {
      // Peer half-closed. Anything already reassembled still gets served
      // (the client may be waiting on the response with its write side
      // shut); close once the pipeline drains.
      dispatch_frames(index);
      if (!c.open) return;
      if (c.in_flight == 0 && c.out.empty()) {
        close_connection(index, /*timed_out=*/false);
      } else if (!c.draining) {
        c.draining = true;
        update_epoll(index);
      }
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close_connection(index, /*timed_out=*/false);
    return;
  }
  dispatch_frames(index);
}

void EventLoopServer::queue_write(std::size_t index, std::string payload) {
  Connection& c = conns_[index];
  Connection::OutMsg msg;
  TcpChannel::frame_header_into(msg.header, payload.size());  // SSO, no alloc
  msg.payload = std::move(payload);
  c.out_bytes += msg.size();
  c.out.push_back(std::move(msg));
  if (!c.flush_queued) {
    c.flush_queued = true;
    dirty_conns_.push_back(index);
  }
}

void EventLoopServer::flush_writes(std::size_t index) {
  Connection& c = conns_[index];
  // Gather as many queued responses as fit into one vectored send: header
  // and payload of each message are separate iovecs, so a burst of
  // pipelined acks leaves in a single syscall with zero concatenation.
  while (!c.out.empty()) {
    static constexpr int kMaxIov = 64;
    iovec iov[kMaxIov];
    int iovcnt = 0;
    std::size_t skip = c.out_offset;  // progress into the front message
    for (const Connection::OutMsg& m : c.out) {
      if (iovcnt + 2 > kMaxIov) break;
      if (skip < m.header.size()) {
        iov[iovcnt].iov_base = const_cast<char*>(m.header.data()) + skip;
        iov[iovcnt].iov_len = m.header.size() - skip;
        ++iovcnt;
        skip = 0;
      } else {
        skip -= m.header.size();
      }
      if (skip < m.payload.size()) {
        iov[iovcnt].iov_base = const_cast<char*>(m.payload.data()) + skip;
        iov[iovcnt].iov_len = m.payload.size() - skip;
        ++iovcnt;
      }
      skip = 0;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<std::size_t>(iovcnt);
    const ssize_t n = ::sendmsg(c.fd.get(), &msg, MSG_NOSIGNAL);
    if (n > 0) {
      c.out_bytes -= static_cast<std::size_t>(n);
      c.out_offset += static_cast<std::size_t>(n);
      while (!c.out.empty() && c.out_offset >= c.out.front().size()) {
        c.out_offset -= c.out.front().size();
        c.out.pop_front();
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    close_connection(index, /*timed_out=*/false);
    return;
  }
  const bool want = !c.out.empty();
  if (want != c.want_write) {
    c.want_write = want;
    update_epoll(index);
  }
  if (c.draining && c.out.empty() && c.in_flight == 0) {
    close_connection(index, /*timed_out=*/false);
  }
}

void EventLoopServer::handle_writable(std::size_t index) { flush_writes(index); }

void EventLoopServer::drain_completions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    batch.swap(completions_);
  }
  for (auto& done : batch) {
    // Every completion — sent, dismissed, or stranded by a closed slot —
    // releases one global in-flight credit (incremented at dispatch).
    const std::size_t inflight = inflight_.load(std::memory_order_relaxed);
    if (inflight > 0) inflight_.store(inflight - 1, std::memory_order_relaxed);
    if (done.index >= conns_.size()) continue;
    Connection& c = conns_[done.index];
    if (!c.open || c.generation != done.generation) continue;  // slot recycled
    if (c.in_flight > 0) --c.in_flight;
    if (!done.payload) {
      // A dismiss(): the request slot is free again but nothing is written —
      // the shed client's read timeout is its backpressure signal.
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.dismissed;
    } else {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.responses;
      }
      // The payload string moves into the output queue unchanged (the frame
      // header rides alongside it); the socket write happens below, once
      // per connection, after the whole completion batch is enqueued.
      queue_write(done.index, std::move(*done.payload));
    }
    if (!c.draining && c.paused_read && c.in_flight < config_.max_pipeline) {
      c.paused_read = false;
      update_epoll(done.index);
      // Frames that arrived while the pipeline was full are still buffered.
      dispatch_frames(done.index);
    }
    if (c.open) update_buffer_accounting(done.index);
  }
  // One flush per dirty connection per wakeup: a pipelined burst of acks
  // coalesces into a single sendmsg instead of one send() per response.
  for (const std::size_t idx : dirty_conns_) {
    Connection& c = conns_[idx];
    if (!c.open || !c.flush_queued) continue;  // closed since queueing
    c.flush_queued = false;
    flush_writes(idx);
    if (conns_[idx].open) update_buffer_accounting(idx);
  }
  dirty_conns_.clear();
}

void EventLoopServer::loop() {
  std::vector<epoll_event> events(256);
  while (!stopping_.load(std::memory_order_acquire)) {
    int timeout_ms = -1;
    if (idle_ticks_ > 0) {
      const std::uint64_t now = monotonic_ms();
      const std::uint64_t next_tick_at = (now / kTickMs + 1) * kTickMs;
      timeout_ms = static_cast<int>(next_tick_at - now) + 1;
    }
    const int n = ::epoll_wait(epoll_fd_.get(), events.data(),
                               static_cast<int>(events.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      log_warn("event_loop", std::string("epoll_wait: ") + std::strerror(errno));
      break;
    }
    // Commands (pause/drain/retire) run before the batch's events so e.g. a
    // pause beats a listener event reported in the same epoll_wait.
    run_commands();
    for (int i = 0; i < n; ++i) {
      const std::uint64_t tag = events[i].data.u64;
      if (tag == kWakeTag) {
        std::uint64_t drained;
        while (::read(wake_fd_.get(), &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      if (tag == kListenerTag) {
        handle_accept();
        continue;
      }
      const auto index = static_cast<std::size_t>(tag);
      if (index >= conns_.size() || !conns_[index].open) continue;
      const std::uint32_t ev = events[i].events;
      if (ev & (EPOLLERR | EPOLLHUP)) {
        close_connection(index, /*timed_out=*/false);
        continue;
      }
      if (ev & EPOLLOUT) handle_writable(index);
      if (!conns_[index].open) continue;
      if (ev & (EPOLLIN | EPOLLRDHUP)) handle_readable(index);
      if (index < conns_.size() && conns_[index].open) {
        update_buffer_accounting(index);
      }
    }
    drain_completions();
    if (idle_ticks_ > 0) expire_idle(monotonic_ms() / kTickMs);
    if (n == static_cast<int>(events.size()) && events.size() < 4096) {
      events.resize(events.size() * 2);
    }
  }
  // Shutdown: tear every connection down on the loop thread, where all the
  // state lives.
  for (std::size_t i = 0; i < conns_.size(); ++i) {
    if (conns_[i].open) close_connection(i, /*timed_out=*/false);
  }
  arm_listener(false);
  // Close the command queue and run any stragglers, so a run_on_loop caller
  // blocked on its promise always completes (late callers execute inline).
  std::vector<std::function<void()>> leftovers;
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    commands_closed_ = true;
    leftovers.swap(commands_);
  }
  for (auto& fn : leftovers) fn();
}

EventLoopStats EventLoopServer::stats() const {
  EventLoopStats s;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    s = stats_;
  }
  // Loop-thread counters, mirrored through relaxed atomics.
  s.inflight = inflight_.load(std::memory_order_relaxed);
  s.buffered_bytes = buffered_mirror_.load(std::memory_order_relaxed);
  s.max_buffered_bytes_seen = max_buffered_seen_.load(std::memory_order_relaxed);
  return s;
}

bool EventLoopServer::wait_connections_drained(double timeout_s) const {
  std::unique_lock<std::mutex> lock(stats_mu_);
  const auto drained = [this] { return stats_.open_connections == 0; };
  if (timeout_s <= 0.0) {
    drained_cv_.wait(lock, drained);
    return true;
  }
  return drained_cv_.wait_for(
      lock, std::chrono::duration<double>(timeout_s), drained);
}

}  // namespace uucs
