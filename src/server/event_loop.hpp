#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "server/net.hpp"
#include "util/thread_pool.hpp"

namespace uucs {

/// Incremental reassembler for the "UUCS <len>\n<payload>" wire framing.
/// Feed it whatever bytes the socket produced — a byte at a time or a
/// megabyte — and it hands back each complete payload exactly once. The
/// frame grammar is identical to TcpChannel's blocking read(), so a client
/// cannot tell the event-loop server from the thread-per-connection one.
class FrameReader {
 public:
  /// Longest accepted payload; matches the blocking reader's 64 MiB cap.
  static constexpr std::size_t kMaxFrameBytes = 64u << 20;

  /// Appends raw socket bytes to the reassembly buffer.
  void feed(const char* data, std::size_t n);

  /// Extracts the next complete payload into `payload`. Returns true when a
  /// whole frame was consumed; false when more bytes are needed. Throws
  /// ProtocolError on a malformed header or oversized length — the
  /// connection is beyond repair at that point and must be closed.
  bool next(std::string& payload);

  /// Zero-copy variant: on true, `payload` is a view into the reassembly
  /// buffer. The view is valid only until the next feed()/next()/next_view()
  /// call — consumers that need the bytes past that point must copy (next()
  /// is exactly that copy). The ingest hot path peeks and parses straight
  /// out of this view, so a request never exists as a second string.
  bool next_view(std::string_view& payload);

  /// Bytes buffered but not yet returned (partial frame in flight).
  std::size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  /// Parses the frame at the consumed_ cursor. True: `header_len`/`len`
  /// describe it; false: incomplete. Throws on malformed headers.
  bool parse_frame(std::size_t& header_len, std::size_t& len) const;

  std::string buffer_;
  std::size_t consumed_ = 0;  ///< prefix of buffer_ already handed out
};

/// Counters the event loop exposes for benchmarks, tests and ops. Snapshot
/// via EventLoopServer::stats(); all fields are cumulative since start
/// except `open_connections`.
struct EventLoopStats {
  std::uint64_t accepted = 0;          ///< connections accepted
  std::uint64_t closed = 0;            ///< connections fully torn down
  std::uint64_t idle_timeouts = 0;     ///< closed by the timer wheel
  std::uint64_t frames = 0;            ///< complete requests reassembled
  std::uint64_t responses = 0;         ///< responses written out
  std::uint64_t dismissed = 0;         ///< requests released without a response
  std::uint64_t protocol_errors = 0;   ///< closed on malformed framing
  std::uint64_t accept_pauses = 0;     ///< times accept stopped at the cap
  std::uint64_t buffer_read_pauses = 0;  ///< reads paused by the memory cap
  std::uint64_t buffer_accept_pauses = 0;///< accept paused by the memory cap
  std::size_t open_connections = 0;    ///< currently open
  std::size_t max_open_connections = 0;///< high-water mark
  std::size_t inflight = 0;            ///< dispatched, not yet completed
  std::size_t buffered_bytes = 0;      ///< current global in+out buffer bytes
  std::size_t max_buffered_bytes_seen = 0;  ///< high-water mark
};

/// Non-blocking epoll server: one loop thread owns every socket (the
/// listener included), a fixed ThreadPool runs the request handler, and
/// responses come back to the loop over an eventfd-signalled completion
/// queue. This replaces the thread-per-connection accept loop — a million
/// idle clients cost a million sockets, not a million stacks (DESIGN.md
/// §13).
///
/// Responsibilities of the loop thread:
///  - accept (paused while at `max_connections`, resumed on close),
///  - read readiness: drain the socket, reassemble frames (FrameReader),
///    dispatch each complete frame to the worker pool,
///  - write readiness: flush the per-connection output buffer,
///  - idle expiry: a hashed timer wheel closes connections that have not
///    completed a frame within `idle_timeout_s` — a slow-loris peer
///    trickling one byte per poll never refreshes its deadline,
///  - completions: responses finished by workers (or by asynchronous
///    durability callbacks) are queued from any thread and written by the
///    loop.
///
/// The handler receives each request payload plus a Responder token; it may
/// reply inline (from the worker) or stash the token and reply later from
/// another thread (the group-commit durability callback does this). Tokens
/// are generation-checked, so a reply racing a closed-and-recycled fd is
/// dropped instead of answering the wrong client.
class EventLoopServer {
 public:
  struct Config {
    std::uint16_t port = 0;          ///< 0: pick a free port
    std::size_t workers = 2;         ///< request-handler threads
    std::size_t max_connections = 8192;  ///< accept pauses at this many open
    double idle_timeout_s = 30.0;    ///< close after this long without a frame
    std::size_t max_pipeline = 64;   ///< in-flight requests per connection
    int listen_backlog = 1024;
    /// Adopt this already-listening socket instead of binding a fresh one
    /// (-1: bind). The loop takes ownership. This is how a takeover target
    /// inherits the live listener its predecessor passed over SCM_RIGHTS.
    int adopted_fd = -1;
    /// Start with accept paused (resume_accept() arms it). A takeover
    /// target replays state and confirms the handoff before serving.
    bool start_paused = false;
    /// Global cap on buffered bytes across every connection (reassembly
    /// buffers + queued responses). Above it the loop pauses accept and
    /// stops reading from connections until buffers drain below 7/8 of the
    /// cap — memory stays bounded no matter how many peers firehose at
    /// once. 0 disables the cap. Adjustable at runtime via
    /// set_max_buffered_bytes() (the pressure monitor shrinks it).
    std::size_t max_buffered_bytes = 0;
  };

  /// A claim ticket for one request's response. Valid until used once;
  /// thread-safe; outliving the *connection* is safe — the reply is
  /// generation-checked and silently dropped when the slot was recycled.
  /// Responders must not outlive the EventLoopServer object itself.
  class Responder {
   public:
    Responder() = default;

    /// Queues `payload` as the framed response and wakes the loop. May be
    /// called from any thread, at most once per Responder.
    void send(std::string payload) const;

    /// Releases the request slot WITHOUT responding: the connection's
    /// pipeline credit and the server's in-flight count are returned, but
    /// no bytes are written — the peer's read times out. This is how the
    /// overload layer sheds pre-v3 clients (their retry timeout does the
    /// spreading a typed busy reply would). At most once per Responder,
    /// exclusive with send().
    void dismiss() const;

    /// Milliseconds this request has spent since the loop dispatched it to
    /// the worker pool — the queue age the admission deadline sheds on.
    double queue_age_ms() const;

    bool valid() const { return server_ != nullptr; }

   private:
    friend class EventLoopServer;
    Responder(EventLoopServer* server, std::size_t index, std::uint64_t generation,
              std::uint64_t enqueued_ms)
        : server_(server), index_(index), generation_(generation),
          enqueued_ms_(enqueued_ms) {}

    EventLoopServer* server_ = nullptr;
    std::size_t index_ = 0;        ///< slot in conns_
    std::uint64_t generation_ = 0; ///< guards against slot reuse
    std::uint64_t enqueued_ms_ = 0;///< dispatch timestamp (monotonic)
  };

  /// Handler for one complete request frame. Runs on a worker thread. Must
  /// eventually call `respond.send(...)` or `respond.dismiss()` exactly
  /// once (directly or from a completion callback); doing neither leaks the
  /// client's request (it will eventually idle out).
  using Handler = std::function<void(std::string payload, Responder respond)>;

  /// Binds and starts the loop + workers immediately.
  EventLoopServer(Config config, Handler handler);

  /// stop() + join.
  ~EventLoopServer();

  EventLoopServer(const EventLoopServer&) = delete;
  EventLoopServer& operator=(const EventLoopServer&) = delete;

  std::uint16_t port() const { return listener_.port(); }

  /// Stops accepting, closes every connection, drains the workers and joins
  /// the loop thread. Idempotent; safe from any thread except a worker.
  void stop();

  EventLoopStats stats() const;

  /// Blocks until `open_connections == 0` or the deadline passes (0: no
  /// deadline). For tests that want a quiesced server.
  bool wait_connections_drained(double timeout_s = 0.0) const;

  /// Stops accepting new connections until resume_accept(). Sticky: unlike
  /// the automatic pause at max_connections, closes do not re-arm the
  /// listener. The listening socket stays open, so newcomers queue in the
  /// kernel backlog instead of being refused — during a takeover they are
  /// served by whichever process accepts next. Blocks until the loop thread
  /// has applied it; no-op after stop().
  void pause_accept();

  /// Re-arms accept and leaves drain mode (the takeover rollback path):
  /// connections already winding down still close once flushed, but future
  /// accepts are served normally. Drains the kernel backlog immediately.
  void resume_accept();
  bool accept_paused() const;

  /// Enters drain mode: every connection finishes its in-flight requests,
  /// flushes its responses, and is then closed. Frames already buffered but
  /// not yet dispatched are discarded — a draining server rejects new work
  /// while completing what it accepted. New connections are unaffected
  /// (pause_accept() first for a full quiesce). Blocks until applied;
  /// combine with wait_connections_drained() for the full barrier.
  void begin_drain();

  /// Force-closes every open connection (stranding any in-flight responses).
  /// The quiesce path uses this after a drain deadline: a straggler must not
  /// be able to receive an ack after the final snapshot. Blocks until
  /// applied.
  void close_all_connections();

  /// Blocks until every request handler submitted to the worker pool has
  /// returned. With accept paused and all connections closed this is the
  /// "no more journal appends" barrier.
  void wait_workers_idle();

  /// Permanently detaches the listening socket from this loop and close(2)s
  /// our fd WITHOUT shutdown(2): a duplicate held by a takeover target (or
  /// any SCM_RIGHTS recipient) keeps the shared socket and its backlog
  /// alive. After this the loop only serves existing connections. Blocks
  /// until applied.
  void retire_listener();

  /// The listening socket's fd (for SCM_RIGHTS handoff); -1 after
  /// retire_listener().
  int listener_fd() const { return listener_.native_handle(); }

  /// Requests dispatched to the worker pool and not yet completed (sent or
  /// dismissed), across every connection. Lock-free — the admission check
  /// reads it on every request.
  std::size_t inflight() const { return inflight_.load(std::memory_order_relaxed); }

  /// Current global buffered bytes (reassembly + queued responses).
  std::size_t buffered_bytes() const {
    return buffered_mirror_.load(std::memory_order_relaxed);
  }

  /// Adjusts the global buffer cap at runtime (0 disables). The pressure
  /// monitor shrinks it when host memory runs short. Blocks until the loop
  /// thread has applied it.
  void set_max_buffered_bytes(std::size_t bytes);

 private:
  /// Per-connection state. Slots are recycled by index; `generation`
  /// increments on every reuse so stale Responders cannot touch a new
  /// connection.
  struct Connection {
    UniqueFd fd;
    std::uint64_t generation = 0;
    FrameReader reader;
    /// One queued response: frame header and payload kept separate so the
    /// payload string moves unchanged from the worker into the socket
    /// (writev sends both without ever concatenating them).
    struct OutMsg {
      std::string header;   ///< "UUCS <len>\n" (always fits SSO)
      std::string payload;
      std::size_t size() const { return header.size() + payload.size(); }
    };
    std::deque<OutMsg> out;           ///< responses awaiting write
    std::size_t out_offset = 0;       ///< bytes of out.front() already sent
    std::size_t out_bytes = 0;        ///< total unsent bytes across `out`
    bool flush_queued = false;        ///< in dirty_conns_ this wakeup
    std::size_t accounted_bytes = 0;  ///< this connection's share of the global total
    std::size_t in_flight = 0;        ///< dispatched, not yet responded
    bool want_write = false;          ///< EPOLLOUT currently armed
    bool paused_read = false;         ///< EPOLLIN unarmed (pipeline full)
    bool buffer_paused = false;       ///< EPOLLIN unarmed (global memory cap)
    bool open = false;
    bool draining = false;            ///< close after pending responses flush
    // Timer wheel intrusive list (slot index, or npos when unlinked).
    std::size_t timer_bucket = npos;
    std::size_t timer_prev = npos;
    std::size_t timer_next = npos;
    std::uint64_t idle_deadline_tick = 0;
  };

  struct Completion {
    std::size_t index;
    std::uint64_t generation;
    /// nullopt: a dismiss() — release the slot, write nothing.
    std::optional<std::string> payload;
  };

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  void loop();
  bool run_on_loop(std::function<void()> fn);
  void run_commands();
  void wake();
  void handle_accept();
  void handle_readable(std::size_t index);
  void handle_writable(std::size_t index);
  void dispatch_frames(std::size_t index);
  /// Enqueues `payload` (framing it with a separate header) and marks the
  /// connection dirty; the actual write happens once per wakeup in
  /// drain_completions so pipelined acks coalesce into one writev.
  void queue_write(std::size_t index, std::string payload);
  void flush_writes(std::size_t index);
  void close_connection(std::size_t index, bool timed_out);
  void drain_completions();
  void update_epoll(std::size_t index);
  void arm_listener(bool armed);
  /// Re-syncs `index`'s buffered-byte share into the global total and
  /// applies/releases memory-cap pressure (loop thread only).
  void update_buffer_accounting(std::size_t index);
  void apply_buffer_pressure();

  // Timer wheel (loop thread only).
  void wheel_link(std::size_t index);
  void wheel_unlink(std::size_t index);
  void touch_idle_deadline(std::size_t index);
  void expire_idle(std::uint64_t now_tick);

  Config config_;
  Handler handler_;
  TcpListener listener_;
  UniqueFd epoll_fd_;
  UniqueFd wake_fd_;  ///< eventfd: completions + stop requests

  std::vector<Connection> conns_;
  std::vector<std::size_t> free_slots_;
  std::size_t open_count_ = 0;
  bool listener_armed_ = false;
  bool accept_paused_ = false;  ///< sticky pause (loop thread only)
  std::atomic<bool> accept_paused_flag_{false};  ///< accept_paused() snapshot
  bool drain_mode_ = false;     ///< every connection is winding down

  // Global buffer accounting (loop thread only, mirrored for readers).
  std::size_t max_buffered_bytes_ = 0;   ///< 0: uncapped
  std::size_t buffered_total_ = 0;
  std::atomic<std::size_t> max_buffered_seen_{0};
  bool buffer_pressure_ = false;         ///< over the cap; reads+accept paused
  std::vector<std::size_t> buffer_paused_;  ///< connections paused by the cap
  std::atomic<std::size_t> buffered_mirror_{0};
  std::atomic<std::size_t> inflight_{0};  ///< updated on the loop thread only

  // Hashed timer wheel: one bucket per tick, chained by slot index.
  std::vector<std::size_t> wheel_;
  std::uint64_t wheel_tick_ = 0;   ///< last expired tick
  std::uint64_t idle_ticks_ = 0;   ///< idle timeout in ticks
  static constexpr std::uint64_t kTickMs = 100;

  /// Connections with responses queued this wakeup, flushed once each at
  /// the end of drain_completions (loop thread only).
  std::vector<std::size_t> dirty_conns_;

  std::mutex completions_mu_;
  std::vector<Completion> completions_;
  std::vector<std::function<void()>> commands_;  ///< run_on_loop queue
  bool commands_closed_ = false;  ///< loop exited; execute inline instead

  std::atomic<bool> stopping_{false};
  mutable std::mutex stats_mu_;
  EventLoopStats stats_;
  mutable std::condition_variable drained_cv_;

  std::unique_ptr<ThreadPool> pool_;
  std::thread loop_thread_;
};

}  // namespace uucs
