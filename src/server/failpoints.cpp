#include "server/failpoints.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace uucs {

std::string server_fault_kind_name(ServerFaultKind kind) {
  switch (kind) {
    case ServerFaultKind::kNone: return "none";
    case ServerFaultKind::kEnospc: return "enospc";
    case ServerFaultKind::kEio: return "eio";
    case ServerFaultKind::kSlowFsync: return "slow-fsync";
    case ServerFaultKind::kPressure: return "pressure";
  }
  return "unknown";
}

ServerFaultProfile ServerFaultProfile::hostile() {
  ServerFaultProfile p;
  p.enospc = 0.06;
  p.eio = 0.03;
  p.slow_fsync = 0.06;
  p.pressure = 0.10;
  p.slow_fsync_s = 0.02;
  p.pressure_available_frac = 0.02;
  return p;
}

ServerFaultSchedule ServerFaultSchedule::none() { return ServerFaultSchedule(); }

ServerFaultSchedule ServerFaultSchedule::scripted(
    std::vector<ServerFaultAction> actions) {
  ServerFaultSchedule s;
  s.script_ = std::move(actions);
  return s;
}

ServerFaultSchedule ServerFaultSchedule::seeded(std::uint64_t seed,
                                                ServerFaultProfile profile) {
  ServerFaultSchedule s;
  s.seeded_ = true;
  s.rng_ = Rng(seed);
  s.profile_ = profile;
  return s;
}

ServerFaultAction ServerFaultSchedule::next() {
  const std::size_t op = ops_++;
  if (!seeded_) {
    if (op < script_.size()) return script_[op];
    return ServerFaultAction{};
  }
  // One uniform draw per operation keeps the sequence a pure function of
  // (seed, operation count), independent of which fault fires.
  const double u = rng_.uniform();
  double edge = profile_.enospc;
  if (u < edge) return {ServerFaultKind::kEnospc, 0.0, 1.0};
  edge += profile_.eio;
  if (u < edge) return {ServerFaultKind::kEio, 0.0, 1.0};
  edge += profile_.slow_fsync;
  if (u < edge) return {ServerFaultKind::kSlowFsync, profile_.slow_fsync_s, 1.0};
  edge += profile_.pressure;
  if (u < edge) {
    return {ServerFaultKind::kPressure, 0.0, profile_.pressure_available_frac};
  }
  return ServerFaultAction{};
}

ServerFaultSchedule parse_server_fault_schedule(const std::string& spec) {
  std::vector<ServerFaultAction> actions;
  for (const auto& part : split(trim(spec), ',')) {
    if (trim(part).empty()) continue;
    const auto fields = split(trim(part), ':');
    if (fields.size() != 2) {
      throw ParseError("server fault schedule entry '" + std::string(part) +
                       "' is not OP:KIND");
    }
    const auto op = parse_int(fields[0]);
    if (!op || *op < 0) {
      throw ParseError("bad server fault operation index '" + fields[0] + "'");
    }
    ServerFaultAction action;
    std::string kind = fields[1];
    std::optional<double> value;
    const auto eq = kind.find('=');
    if (eq != std::string::npos) {
      value = parse_double(kind.substr(eq + 1));
      if (!value || *value < 0) {
        throw ParseError("bad server fault value '" + kind.substr(eq + 1) + "'");
      }
      kind = kind.substr(0, eq);
    }
    if (kind == "enospc") {
      action.kind = ServerFaultKind::kEnospc;
    } else if (kind == "eio") {
      action.kind = ServerFaultKind::kEio;
    } else if (kind == "slow-fsync") {
      action.kind = ServerFaultKind::kSlowFsync;
      action.delay_s = value.value_or(0.02);
    } else if (kind == "pressure") {
      action.kind = ServerFaultKind::kPressure;
      action.available_frac = value.value_or(0.02);
      if (action.available_frac > 1.0) {
        throw ParseError("pressure fraction must be <= 1");
      }
    } else {
      throw ParseError("unknown server fault kind '" + kind + "'");
    }
    const auto index = static_cast<std::size_t>(*op);
    if (actions.size() <= index) actions.resize(index + 1);
    actions[index] = action;
  }
  return ServerFaultSchedule::scripted(std::move(actions));
}

void ServerFailpoints::arm(ServerFaultSchedule schedule) {
  std::lock_guard<std::mutex> lock(mu_);
  schedule_ = std::move(schedule);
  armed_.store(true, std::memory_order_release);
}

void ServerFailpoints::disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.store(false, std::memory_order_release);
}

ServerFaultAction ServerFailpoints::on_journal_batch() {
  if (!armed_.load(std::memory_order_relaxed)) return {};
  std::lock_guard<std::mutex> lock(mu_);
  if (!armed_.load(std::memory_order_relaxed)) return {};
  ++stats_.batch_checks;
  ServerFaultAction action = schedule_.next();
  switch (action.kind) {
    case ServerFaultKind::kEnospc: ++stats_.enospc; break;
    case ServerFaultKind::kEio: ++stats_.eio; break;
    case ServerFaultKind::kSlowFsync: ++stats_.slow_fsync; break;
    case ServerFaultKind::kPressure:
      // Not applicable at this site; the draw is consumed but passes clean.
      action = {};
      break;
    case ServerFaultKind::kNone: break;
  }
  return action;
}

std::optional<double> ServerFailpoints::on_pressure_probe() {
  if (!armed_.load(std::memory_order_relaxed)) return std::nullopt;
  std::lock_guard<std::mutex> lock(mu_);
  if (!armed_.load(std::memory_order_relaxed)) return std::nullopt;
  ++stats_.probe_checks;
  const ServerFaultAction action = schedule_.next();
  if (action.kind != ServerFaultKind::kPressure) return std::nullopt;
  ++stats_.pressure;
  return action.available_frac;
}

ServerFailpoints::Stats ServerFailpoints::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace uucs
