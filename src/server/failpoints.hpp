#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace uucs {

/// The server-side resource faults the overload chaos suite injects. These
/// mirror exerciser/failpoints on the *server*: the journal disk filling up
/// (ENOSPC), a dying device (EIO), an fsync that takes forever (slow-fsync,
/// think a loaded spinning disk or a throttled cloud volume), and host
/// memory pressure reported by the PR 4 probe.
enum class ServerFaultKind : std::uint8_t {
  kNone = 0,
  kEnospc,     ///< journal append fails with "no space left on device"
  kEio,        ///< journal append fails with an I/O error
  kSlowFsync,  ///< journal batch fsync stalls for `delay_s`
  kPressure,   ///< pressure probe reports only `available_frac` memory free
};

std::string server_fault_kind_name(ServerFaultKind kind);

/// One consulted fault decision.
struct ServerFaultAction {
  ServerFaultKind kind = ServerFaultKind::kNone;
  double delay_s = 0.0;          ///< slow-fsync stall
  double available_frac = 1.0;   ///< pressure probe override
};

/// Per-operation fault probabilities for seeded schedules.
struct ServerFaultProfile {
  double enospc = 0.0;
  double eio = 0.0;
  double slow_fsync = 0.0;
  double pressure = 0.0;
  double slow_fsync_s = 0.02;
  double pressure_available_frac = 0.02;

  /// The chaos-overload suite's default: every fault class likely enough to
  /// fire many times across a run, none so hot the server never recovers.
  static ServerFaultProfile hostile();
};

/// When each fault fires: scripted (exact operation indices, deterministic
/// unit tests) or seeded (one uniform draw per consulted operation, a pure
/// function of (seed, operation count) — the chaos suite's mode).
class ServerFaultSchedule {
 public:
  static ServerFaultSchedule none();
  static ServerFaultSchedule scripted(std::vector<ServerFaultAction> actions);
  static ServerFaultSchedule seeded(std::uint64_t seed, ServerFaultProfile profile);

  ServerFaultAction next();

 private:
  ServerFaultSchedule() = default;
  bool seeded_ = false;
  std::vector<ServerFaultAction> script_;
  Rng rng_{0};
  ServerFaultProfile profile_;
  std::size_t ops_ = 0;
};

/// Parses "OP:KIND[,OP:KIND...]" where KIND is enospc | eio |
/// slow-fsync[=SECONDS] | pressure[=FRACTION]; OP is the 0-based index of
/// the consulted operation at the fault's site (journal batch attempts for
/// the disk kinds, probe reads for pressure). Throws ParseError on junk.
ServerFaultSchedule parse_server_fault_schedule(const std::string& spec);

/// Registry of server fault injection sites. Disarmed (the default and the
/// production state) every consult is one relaxed atomic load; armed, the
/// consulted site takes a lock and draws the schedule's next action.
///
/// Sites:
///  - on_journal_batch(): consulted once per group-commit batch attempt,
///    before the real write. ENOSPC/EIO mean "fail this batch as if the
///    disk did"; slow-fsync means "stall this long, then write for real".
///  - on_pressure_probe(): consulted once per pressure-monitor sample;
///    a pressure action overrides the probed available fraction.
class ServerFailpoints {
 public:
  struct Stats {
    std::uint64_t batch_checks = 0;
    std::uint64_t probe_checks = 0;
    std::uint64_t enospc = 0;
    std::uint64_t eio = 0;
    std::uint64_t slow_fsync = 0;
    std::uint64_t pressure = 0;
  };

  void arm(ServerFaultSchedule schedule);
  void disarm();

  ServerFaultAction on_journal_batch();
  std::optional<double> on_pressure_probe();

  Stats stats() const;

 private:
  mutable std::mutex mu_;
  std::atomic<bool> armed_{false};
  ServerFaultSchedule schedule_ = ServerFaultSchedule::none();
  Stats stats_;
};

}  // namespace uucs
