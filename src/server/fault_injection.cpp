#include "server/fault_injection.hpp"

#include <chrono>
#include <thread>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace uucs {

std::string fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kDrop: return "drop";
    case FaultKind::kDisconnect: return "disconnect";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kTruncate: return "truncate";
    case FaultKind::kGarbage: return "garbage";
  }
  return "unknown";
}

FaultProfile FaultProfile::moderate() {
  FaultProfile p;
  p.drop = 0.08;
  p.disconnect = 0.06;
  p.delay = 0.05;
  p.truncate = 0.04;
  p.garbage = 0.04;
  p.delay_s = 0.002;
  return p;
}

FaultSchedule FaultSchedule::none() { return FaultSchedule(); }

FaultSchedule FaultSchedule::scripted(std::vector<FaultAction> actions) {
  FaultSchedule s;
  s.script_ = std::move(actions);
  return s;
}

FaultSchedule FaultSchedule::seeded(std::uint64_t seed, FaultProfile profile) {
  FaultSchedule s;
  s.seeded_ = true;
  s.rng_ = Rng(seed);
  s.profile_ = profile;
  return s;
}

FaultAction FaultSchedule::next() {
  const std::size_t op = ops_++;
  if (!seeded_) {
    if (op < script_.size()) return script_[op];
    return FaultAction{};
  }
  // One uniform draw per operation keeps the sequence a pure function of
  // (seed, operation index history), independent of which fault fires.
  const double u = rng_.uniform();
  double edge = profile_.drop;
  if (u < edge) return {FaultKind::kDrop, 0.0};
  edge += profile_.disconnect;
  if (u < edge) return {FaultKind::kDisconnect, 0.0};
  edge += profile_.delay;
  if (u < edge) return {FaultKind::kDelay, profile_.delay_s};
  edge += profile_.truncate;
  if (u < edge) return {FaultKind::kTruncate, 0.0};
  edge += profile_.garbage;
  if (u < edge) return {FaultKind::kGarbage, 0.0};
  return FaultAction{};
}

FaultSchedule parse_fault_schedule(const std::string& spec) {
  std::vector<FaultAction> actions;
  for (const auto& part : split(trim(spec), ',')) {
    if (trim(part).empty()) continue;
    const auto fields = split(trim(part), ':');
    if (fields.size() != 2) {
      throw ParseError("fault schedule entry '" + std::string(part) +
                       "' is not OP:KIND");
    }
    const auto op = parse_int(fields[0]);
    if (!op || *op < 0) {
      throw ParseError("bad fault schedule operation index '" + fields[0] + "'");
    }
    FaultAction action;
    std::string kind = fields[1];
    const auto eq = kind.find('=');
    if (eq != std::string::npos) {
      const auto delay = parse_double(kind.substr(eq + 1));
      if (!delay || *delay < 0) {
        throw ParseError("bad fault delay '" + kind.substr(eq + 1) + "'");
      }
      action.delay_s = *delay;
      kind = kind.substr(0, eq);
    }
    if (kind == "drop") {
      action.kind = FaultKind::kDrop;
    } else if (kind == "disconnect") {
      action.kind = FaultKind::kDisconnect;
    } else if (kind == "delay") {
      action.kind = FaultKind::kDelay;
      if (action.delay_s <= 0) action.delay_s = 0.005;
    } else if (kind == "truncate") {
      action.kind = FaultKind::kTruncate;
    } else if (kind == "garbage") {
      action.kind = FaultKind::kGarbage;
    } else {
      throw ParseError("unknown fault kind '" + kind + "'");
    }
    const auto index = static_cast<std::size_t>(*op);
    if (actions.size() <= index) actions.resize(index + 1);
    actions[index] = action;
  }
  return FaultSchedule::scripted(std::move(actions));
}

FaultyChannel::FaultyChannel(std::unique_ptr<MessageChannel> inner,
                             std::shared_ptr<FaultSchedule> schedule, Stats* aggregate)
    : inner_(std::move(inner)), schedule_(std::move(schedule)), aggregate_(aggregate) {
  UUCS_CHECK_MSG(inner_ != nullptr, "FaultyChannel needs an inner channel");
  UUCS_CHECK_MSG(schedule_ != nullptr, "FaultyChannel needs a schedule");
  tcp_ = dynamic_cast<TcpChannel*>(inner_.get());
}

FaultyChannel::FaultyChannel(std::unique_ptr<TcpChannel> inner,
                             std::shared_ptr<FaultSchedule> schedule, Stats* aggregate)
    : FaultyChannel(std::unique_ptr<MessageChannel>(std::move(inner)),
                    std::move(schedule), aggregate) {}

FaultAction FaultyChannel::begin_op() {
  ++stats_.ops;
  if (aggregate_) ++aggregate_->ops;
  return schedule_->next();
}

void FaultyChannel::count(FaultKind kind) {
  auto bump = [kind](Stats& s) {
    switch (kind) {
      case FaultKind::kDrop: ++s.drops; break;
      case FaultKind::kDisconnect: ++s.disconnects; break;
      case FaultKind::kDelay: ++s.delays; break;
      case FaultKind::kTruncate: ++s.truncations; break;
      case FaultKind::kGarbage: ++s.garbage; break;
      case FaultKind::kNone: break;
    }
  };
  bump(stats_);
  if (aggregate_) bump(*aggregate_);
}

void FaultyChannel::poison(const char* what, FaultKind kind) {
  inner_->close();
  throw ProtocolError(std::string("fault injection: ") + fault_kind_name(kind) +
                      " during " + what);
}

void FaultyChannel::write(const std::string& message) {
  const FaultAction action = begin_op();
  count(action.kind);
  switch (action.kind) {
    case FaultKind::kNone:
      inner_->write(message);
      return;
    case FaultKind::kDrop:
      return;  // swallowed: the peer never sees it, the caller's read times out
    case FaultKind::kDisconnect:
      poison("write", action.kind);
    case FaultKind::kDelay:
      std::this_thread::sleep_for(std::chrono::duration<double>(action.delay_s));
      inner_->write(message);
      return;
    case FaultKind::kTruncate:
      if (tcp_) {
        // Header claims the full payload; deliver only half, then hang up —
        // the peer's read_all hits EOF mid-payload.
        const std::string framed = TcpChannel::frame(message);
        const std::size_t header = framed.size() - message.size();
        tcp_->write_bytes(framed.substr(0, header + message.size() / 2));
      }
      poison("write", action.kind);
    case FaultKind::kGarbage:
      if (tcp_) {
        tcp_->write_bytes("\x07gArBaGe bytes, not a UUCS frame\xff\xfe\n");
      }
      poison("write", action.kind);
  }
}

std::optional<std::string> FaultyChannel::read() {
  const FaultAction action = begin_op();
  count(action.kind);
  switch (action.kind) {
    case FaultKind::kNone:
      return inner_->read();
    case FaultKind::kDrop: {
      // Lose one incoming message (the classic "response vanished" fault),
      // then keep reading: with deadlines, the caller sees a TimeoutError.
      const auto lost = inner_->read();
      if (!lost) return std::nullopt;  // peer closed; nothing to lose
      return inner_->read();
    }
    case FaultKind::kDelay:
      std::this_thread::sleep_for(std::chrono::duration<double>(action.delay_s));
      return inner_->read();
    case FaultKind::kDisconnect:
    case FaultKind::kTruncate:
    case FaultKind::kGarbage:
      // Byte-level faults have no receive-side analogue at this layer;
      // they all collapse to "the connection died under the read".
      poison("read", action.kind);
  }
  return inner_->read();
}

void FaultyChannel::close() { inner_->close(); }

}  // namespace uucs
