#pragma once

#include <memory>
#include <string>
#include <vector>

#include "server/net.hpp"
#include "server/protocol.hpp"
#include "util/rng.hpp"

namespace uucs {

/// What a FaultyChannel may do to one channel operation.
enum class FaultKind {
  kNone,        ///< pass through untouched
  kDrop,        ///< write: swallow the message; read: discard one message
  kDisconnect,  ///< close the channel and fail the operation
  kDelay,       ///< sleep, then pass through
  kTruncate,    ///< write: send a frame shorter than its header claims, then close
  kGarbage,     ///< write: send unframed garbage bytes, then close
};

std::string fault_kind_name(FaultKind kind);

struct FaultAction {
  FaultKind kind = FaultKind::kNone;
  double delay_s = 0.0;  ///< used by kDelay
};

/// Per-operation fault probabilities for a seeded schedule.
struct FaultProfile {
  double drop = 0.0;
  double disconnect = 0.0;
  double delay = 0.0;
  double truncate = 0.0;
  double garbage = 0.0;
  double delay_s = 0.005;  ///< how long kDelay stalls

  /// The chaos-test mix: every sync has a realistic chance of at least one
  /// injected fault, while forward progress stays overwhelmingly likely.
  static FaultProfile moderate();
};

/// Deterministic source of FaultActions, one per channel operation. Either
/// scripted (an explicit per-operation list, exact replay) or seeded (drawn
/// from a FaultProfile with a private Rng — same seed, same fault sequence).
class FaultSchedule {
 public:
  /// No faults, ever.
  static FaultSchedule none();

  /// `actions[i]` applies to the i-th channel operation; operations past
  /// the end of the script run clean.
  static FaultSchedule scripted(std::vector<FaultAction> actions);

  /// Draws each operation's action from `profile` using an Rng seeded with
  /// `seed`.
  static FaultSchedule seeded(std::uint64_t seed, FaultProfile profile);

  /// The action for the next channel operation.
  FaultAction next();

  /// Operations consumed so far.
  std::size_t ops() const { return ops_; }

 private:
  FaultSchedule() = default;
  std::vector<FaultAction> script_;
  bool seeded_ = false;
  Rng rng_{0};
  FaultProfile profile_;
  std::size_t ops_ = 0;
};

/// Parses a scripted schedule from "OP:KIND[,OP:KIND...]" where OP is the
/// 0-based channel-operation index and KIND is drop | disconnect |
/// delay[=SECONDS] | truncate | garbage. Example: "1:drop,3:delay=0.05,
/// 4:disconnect". Throws ParseError on malformed specs.
FaultSchedule parse_fault_schedule(const std::string& spec);

/// MessageChannel decorator that injects faults from a FaultSchedule into
/// every operation — the deterministic stand-in for a hostile network.
/// Wrapping a TcpChannel enables frame-level faults (truncated frames,
/// garbage bytes on the wire); over any other channel those degrade to a
/// disconnect, which is the same failure class one layer up.
///
/// Injected failures surface as the errors the real network produces:
/// ProtocolError for torn exchanges, TimeoutError (from the inner
/// channel's deadlines) for swallowed messages — so retry layers cannot
/// tell injection from reality, which is the point.
class FaultyChannel final : public MessageChannel {
 public:
  struct Stats {
    std::size_t ops = 0;
    std::size_t drops = 0;
    std::size_t disconnects = 0;
    std::size_t delays = 0;
    std::size_t truncations = 0;
    std::size_t garbage = 0;
    std::size_t faults() const {
      return drops + disconnects + delays + truncations + garbage;
    }
  };

  /// The schedule is shared so a reconnecting factory can thread one fault
  /// sequence through successive channels. `aggregate` (optional, borrowed)
  /// accumulates stats across all channels sharing it.
  FaultyChannel(std::unique_ptr<MessageChannel> inner,
                std::shared_ptr<FaultSchedule> schedule, Stats* aggregate = nullptr);
  FaultyChannel(std::unique_ptr<TcpChannel> inner,
                std::shared_ptr<FaultSchedule> schedule, Stats* aggregate = nullptr);

  void write(const std::string& message) override;
  std::optional<std::string> read() override;
  void close() override;

  const Stats& stats() const { return stats_; }

 private:
  FaultAction begin_op();
  void count(FaultKind kind);
  [[noreturn]] void poison(const char* what, FaultKind kind);

  std::unique_ptr<MessageChannel> inner_;
  TcpChannel* tcp_ = nullptr;  ///< non-null when frame-level faults are possible
  std::shared_ptr<FaultSchedule> schedule_;
  Stats stats_;
  Stats* aggregate_ = nullptr;
};

}  // namespace uucs
