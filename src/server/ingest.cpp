#include "server/ingest.hpp"

#include <cerrno>

#include "server/protocol.hpp"
#include "util/error.hpp"
#include "util/kvtext.hpp"
#include "util/logging.hpp"

namespace uucs {

IngestServer::IngestServer(UucsServer& server, Config config, Clock* clock)
    : server_(server), config_(std::move(config)), clock_(clock) {
  if (server_.has_journal()) {
    GroupCommitJournal::Config commit = config_.commit;
    if (config_.failpoints != nullptr && !commit.fault_hook) {
      ServerFailpoints* fp = config_.failpoints;
      commit.fault_hook = [fp] {
        const ServerFaultAction action = fp->on_journal_batch();
        JournalFault fault;
        switch (action.kind) {
          case ServerFaultKind::kEnospc: fault.err = ENOSPC; break;
          case ServerFaultKind::kEio: fault.err = EIO; break;
          case ServerFaultKind::kSlowFsync: fault.stall_s = action.delay_s; break;
          default: break;
        }
        return fault;
      };
    }
    committer_ = std::make_unique<GroupCommitJournal>(*server_.mutable_journal(),
                                                      commit);
  }
  OverloadController::Config overload = config_.overload;
  if (overload.failpoints == nullptr) overload.failpoints = config_.failpoints;
  overload_ = std::make_unique<OverloadController>(overload);
  loop_ = std::make_unique<EventLoopServer>(
      config_.loop, [this](std::string payload, EventLoopServer::Responder respond) {
        handle_request(std::move(payload), std::move(respond));
      });
  overload_->start([this] { loop_->pause_accept(); },
                   [this] { loop_->resume_accept(); });
}

IngestServer::~IngestServer() { stop(); }

void IngestServer::stop() {
  if (stopped_.exchange(true)) return;
  // Pressure monitor first: it holds callbacks into the loop's accept gate.
  overload_->stop();
  // Loop first: joining its worker pool guarantees no handler is mid-flight,
  // so nothing appends to the committer after this line. The EventLoopServer
  // object stays alive (only stopped), which keeps the Responders held by
  // queued durability callbacks safe to fire — their sends land in a
  // completion queue nobody drains.
  loop_->stop();
  // Committer second: its destructor drains the backlog, so every queued
  // entry is on disk before shutdown even though the acks go nowhere.
  committer_.reset();
}

bool IngestServer::quiesce(double drain_timeout_s) {
  // Park the pressure monitor so a probe cannot re-open the accept gate
  // mid-drain (releases any pause the monitor itself held).
  overload_->set_suspended(true);
  loop_->pause_accept();
  loop_->begin_drain();
  const bool clean = loop_->wait_connections_drained(drain_timeout_s);
  if (!clean) {
    // A straggler that is still mid-request must not receive an ack after
    // the final snapshot: closing the connection strands its Responder (the
    // generation check drops the reply), so the client retries against
    // whoever serves next and dedup absorbs the replay.
    loop_->close_all_connections();
  }
  // With accept paused and every connection closed, nothing dispatches new
  // work; once the workers go idle, no code path can append to the journal.
  loop_->wait_workers_idle();
  if (committer_) committer_->flush();
  return clean;
}

void IngestServer::resume() {
  loop_->resume_accept();
  overload_->set_suspended(false);
}

GroupCommitJournal::Stats IngestServer::commit_stats() const {
  UUCS_CHECK_MSG(committer_ != nullptr, "no journal attached");
  return committer_->stats();
}

namespace {
const char* health_name(GroupCommitJournal::Health health) {
  switch (health) {
    case GroupCommitJournal::Health::kOk: return "ok";
    case GroupCommitJournal::Health::kDegraded: return "degraded";
    case GroupCommitJournal::Health::kBroken: return "broken";
  }
  return "unknown";
}
}  // namespace

std::string IngestServer::encode_stats_response() const {
  KvRecord rec("stats-response");
  rec.set_int("generation", static_cast<std::int64_t>(server_.generation()));
  rec.set_int("clients", static_cast<std::int64_t>(server_.client_count()));
  rec.set_int("snapshots", static_cast<std::int64_t>(snapshots_.load()));

  const EventLoopStats loop = loop_->stats();
  rec.set_int("loop.open_connections", static_cast<std::int64_t>(loop.open_connections));
  rec.set_int("loop.accepted", static_cast<std::int64_t>(loop.accepted));
  rec.set_int("loop.frames", static_cast<std::int64_t>(loop.frames));
  rec.set_int("loop.responses", static_cast<std::int64_t>(loop.responses));
  rec.set_int("loop.dismissed", static_cast<std::int64_t>(loop.dismissed));
  rec.set_int("loop.inflight", static_cast<std::int64_t>(loop.inflight));
  rec.set_int("loop.protocol_errors", static_cast<std::int64_t>(loop.protocol_errors));
  rec.set_int("loop.idle_timeouts", static_cast<std::int64_t>(loop.idle_timeouts));
  rec.set_int("loop.accept_pauses", static_cast<std::int64_t>(loop.accept_pauses));
  rec.set_int("loop.buffered_bytes", static_cast<std::int64_t>(loop.buffered_bytes));
  rec.set_int("loop.max_buffered_bytes", static_cast<std::int64_t>(loop.max_buffered_bytes_seen));
  rec.set_int("loop.buffer_read_pauses", static_cast<std::int64_t>(loop.buffer_read_pauses));
  rec.set_int("loop.buffer_accept_pauses", static_cast<std::int64_t>(loop.buffer_accept_pauses));

  const OverloadStats shed = overload_->stats();
  rec.set_int("shed.queue", static_cast<std::int64_t>(shed.shed_queue));
  rec.set_int("shed.deadline", static_cast<std::int64_t>(shed.shed_deadline));
  rec.set_int("shed.registrations", static_cast<std::int64_t>(shed.shed_registrations));
  rec.set_int("shed.degraded_rejects", static_cast<std::int64_t>(shed.degraded_rejects));
  rec.set_int("pressure.pauses", static_cast<std::int64_t>(shed.pressure_pauses));
  rec.set_int("pressure.resumes", static_cast<std::int64_t>(shed.pressure_resumes));
  rec.set_int("pressure.probes", static_cast<std::int64_t>(shed.probes));
  rec.set_double("pressure.available_frac", shed.last_available_frac);

  rec.set("journal.health", health_name(journal_health()));
  if (committer_) {
    const GroupCommitJournal::Stats commit = committer_->stats();
    rec.set_int("journal.entries", static_cast<std::int64_t>(commit.entries));
    rec.set_int("journal.batches", static_cast<std::int64_t>(commit.batches));
    rec.set_int("journal.largest_batch", static_cast<std::int64_t>(commit.largest_batch));
    rec.set_int("journal.failed_batches", static_cast<std::int64_t>(commit.failed_batches));
    rec.set_int("journal.rejected_appends", static_cast<std::int64_t>(commit.rejected_appends));
    rec.set_int("journal.degraded_spells", static_cast<std::int64_t>(commit.degraded_spells));
    rec.set_int("journal.recoveries", static_cast<std::int64_t>(commit.recoveries));
    rec.set_int("journal.parked_entries", static_cast<std::int64_t>(commit.parked_entries));
    rec.set_int("journal.slow_fsyncs", static_cast<std::int64_t>(commit.slow_fsyncs));
    rec.set_int("journal.widened_batches", static_cast<std::int64_t>(commit.widened_batches));
    rec.set_bool("journal.widened", committer_->widened());
  }
  return kv_serialize({rec});
}

void IngestServer::shed(const RequestPeek& peek,
                        EventLoopServer::Responder respond,
                        const std::string& kind, const std::string& message) {
  if (peek.protocol_version >= 3) {
    respond.send(encode_busy(kind, message, overload_->retry_after_ms()));
  } else {
    // Pre-v3 peers' wire bytes are pinned: no new reply shape. Dismissing
    // frees the slot; the client's read timeout is its backpressure signal
    // and its normal retry (with jitter) does the spreading.
    respond.dismiss();
  }
}

void IngestServer::handle_request(std::string payload,
                                  EventLoopServer::Responder respond) {
  const RequestPeek peek = peek_request(payload);
  if (peek.op == RequestPeek::Op::kStats) {
    // Always served, even overloaded — an operator must be able to look.
    respond.send(encode_stats_response());
    return;
  }
  const Admission verdict =
      overload_->admit(peek, respond.queue_age_ms(), loop_->inflight());
  if (verdict != Admission::kOk) {
    shed(peek, std::move(respond), "overload", "server overloaded; retry later");
    return;
  }
  const bool degraded =
      committer_ != nullptr &&
      committer_->health() != GroupCommitJournal::Health::kOk;
  if (degraded && peek.write_class) {
    // The journal cannot make new state durable, so nothing that would
    // create state may even be applied in memory. This also blocks
    // duplicate uploads (write-class by result_count), whose "already
    // stored" ack could otherwise reference state that is parked, not
    // durable.
    overload_->note_degraded_reject();
    shed(peek, std::move(respond), "degraded",
         "journal degraded; writes rejected");
    return;
  }
  DispatchResult result = dispatch_request_deferred(server_, payload, clock_);
  if (committer_ == nullptr) {
    respond.send(std::move(result.response));
    return;
  }
  if (degraded && result.journal_entries.empty()) {
    // Read-only during a degraded spell: nothing to make durable, and the
    // usual ordering barrier is moot because every ack it could overtake is
    // itself blocked (write-class is rejected above). Answer directly so
    // reads stay served while the disk heals.
    respond.send(std::move(result.response));
    return;
  }
  // With a journal, *every* response rides the committer — entries when the
  // request accepted state, an empty barrier otherwise — so no ack (not even
  // "duplicate, already stored") can overtake the fsync that makes the
  // state it refers to durable.
  const std::size_t new_entries = result.journal_entries.size();
  // Precompute the failure reply: the durability callback runs on the
  // commit thread, where building a v3 busy message is still cheap, but the
  // decision (typed reply vs silent dismiss) belongs here with the peek.
  std::string busy;
  if (peek.protocol_version >= 3) {
    busy = encode_busy("degraded", "journal degraded; entry not durable",
                       overload_->retry_after_ms());
  }
  committer_->append_async(
      std::move(result.journal_entries),
      [respond, response = std::move(result.response),
       busy = std::move(busy)](bool durable) mutable {
        if (durable) {
          respond.send(std::move(response));
        } else if (!busy.empty()) {
          // Never ack — the journal did not record the entries. A v3 client
          // gets a typed DEGRADED and retries after the hint; dedup absorbs
          // the replay once the disk heals.
          respond.send(std::move(busy));
        } else {
          // Pre-v3: release the slot silently; the client times out and
          // retries. Either way the request slot must not leak.
          respond.dismiss();
        }
      });
  if (new_entries > 0) maybe_snapshot(new_entries);
}

void IngestServer::maybe_snapshot(std::size_t new_entries) {
  if (config_.snapshot_every == 0 || config_.state_dir.empty()) return;
  const std::uint64_t total =
      entries_since_snapshot_.fetch_add(new_entries, std::memory_order_acq_rel) +
      new_entries;
  if (total < config_.snapshot_every) return;
  do_snapshot(/*force=*/false);
}

void IngestServer::snapshot_now() { do_snapshot(/*force=*/true); }

void IngestServer::do_snapshot(bool force) {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  if (committer_ && committer_->health() != GroupCommitJournal::Health::kOk) {
    // A snapshot compacts the journal from in-memory state, which would
    // silently promote parked (applied-but-never-acked) entries to durable.
    // Wait for recovery; the threshold fires again on the next accept.
    log_warn("ingest", "snapshot skipped: journal not healthy");
    return;
  }
  if (!force &&
      entries_since_snapshot_.load(std::memory_order_acquire) < config_.snapshot_every) {
    return;  // a racing worker already snapshotted this threshold
  }
  entries_since_snapshot_.store(0, std::memory_order_release);
  const std::string dir = config_.state_dir.empty() ? "." : config_.state_dir;
  try {
    if (committer_) {
      // save() compacts the journal, which is only safe with the commit
      // thread parked and no batch in flight.
      committer_->with_exclusive([&] { server_.save(dir); });
    } else {
      server_.save(dir);
    }
    snapshots_.fetch_add(1, std::memory_order_relaxed);
    log_info("ingest", "snapshot written to " + dir);
  } catch (const std::exception& e) {
    // Snapshot failure is not data loss — the journal still holds
    // everything — but it must be visible.
    log_error("ingest", "snapshot failed: " + std::string(e.what()));
  }
}

}  // namespace uucs
