#include "server/ingest.hpp"

#include "server/protocol.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace uucs {

IngestServer::IngestServer(UucsServer& server, Config config, Clock* clock)
    : server_(server), config_(std::move(config)), clock_(clock) {
  if (server_.has_journal()) {
    committer_ = std::make_unique<GroupCommitJournal>(*server_.mutable_journal(),
                                                      config_.commit);
  }
  loop_ = std::make_unique<EventLoopServer>(
      config_.loop, [this](std::string payload, EventLoopServer::Responder respond) {
        handle_request(std::move(payload), std::move(respond));
      });
}

IngestServer::~IngestServer() { stop(); }

void IngestServer::stop() {
  if (stopped_.exchange(true)) return;
  // Loop first: joining its worker pool guarantees no handler is mid-flight,
  // so nothing appends to the committer after this line. The EventLoopServer
  // object stays alive (only stopped), which keeps the Responders held by
  // queued durability callbacks safe to fire — their sends land in a
  // completion queue nobody drains.
  loop_->stop();
  // Committer second: its destructor drains the backlog, so every queued
  // entry is on disk before shutdown even though the acks go nowhere.
  committer_.reset();
}

bool IngestServer::quiesce(double drain_timeout_s) {
  loop_->pause_accept();
  loop_->begin_drain();
  const bool clean = loop_->wait_connections_drained(drain_timeout_s);
  if (!clean) {
    // A straggler that is still mid-request must not receive an ack after
    // the final snapshot: closing the connection strands its Responder (the
    // generation check drops the reply), so the client retries against
    // whoever serves next and dedup absorbs the replay.
    loop_->close_all_connections();
  }
  // With accept paused and every connection closed, nothing dispatches new
  // work; once the workers go idle, no code path can append to the journal.
  loop_->wait_workers_idle();
  if (committer_) committer_->flush();
  return clean;
}

void IngestServer::resume() { loop_->resume_accept(); }

GroupCommitJournal::Stats IngestServer::commit_stats() const {
  UUCS_CHECK_MSG(committer_ != nullptr, "no journal attached");
  return committer_->stats();
}

void IngestServer::handle_request(std::string payload,
                                  EventLoopServer::Responder respond) {
  DispatchResult result = dispatch_request_deferred(server_, payload, clock_);
  if (committer_ == nullptr) {
    respond.send(std::move(result.response));
    return;
  }
  // With a journal, *every* response rides the committer — entries when the
  // request accepted state, an empty barrier otherwise — so no ack (not even
  // "duplicate, already stored") can overtake the fsync that makes the
  // state it refers to durable.
  const std::size_t new_entries = result.journal_entries.size();
  committer_->append_async(
      std::move(result.journal_entries),
      [respond, response = std::move(result.response)](bool durable) mutable {
        if (durable) {
          respond.send(std::move(response));
        }
        // !durable: never ack. The journal did not record the entries, so
        // the client must time out and retry; dedup absorbs the replay.
      });
  if (new_entries > 0) maybe_snapshot(new_entries);
}

void IngestServer::maybe_snapshot(std::size_t new_entries) {
  if (config_.snapshot_every == 0 || config_.state_dir.empty()) return;
  const std::uint64_t total =
      entries_since_snapshot_.fetch_add(new_entries, std::memory_order_acq_rel) +
      new_entries;
  if (total < config_.snapshot_every) return;
  do_snapshot(/*force=*/false);
}

void IngestServer::snapshot_now() { do_snapshot(/*force=*/true); }

void IngestServer::do_snapshot(bool force) {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  if (!force &&
      entries_since_snapshot_.load(std::memory_order_acquire) < config_.snapshot_every) {
    return;  // a racing worker already snapshotted this threshold
  }
  entries_since_snapshot_.store(0, std::memory_order_release);
  const std::string dir = config_.state_dir.empty() ? "." : config_.state_dir;
  try {
    if (committer_) {
      // save() compacts the journal, which is only safe with the commit
      // thread parked and no batch in flight.
      committer_->with_exclusive([&] { server_.save(dir); });
    } else {
      server_.save(dir);
    }
    snapshots_.fetch_add(1, std::memory_order_relaxed);
    log_info("ingest", "snapshot written to " + dir);
  } catch (const std::exception& e) {
    // Snapshot failure is not data loss — the journal still holds
    // everything — but it must be visible.
    log_error("ingest", "snapshot failed: " + std::string(e.what()));
  }
}

}  // namespace uucs
