#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "server/event_loop.hpp"
#include "server/failpoints.hpp"
#include "server/overload.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "util/clock.hpp"
#include "util/journal.hpp"

namespace uucs {

/// The assembled ingest plane (DESIGN.md §13): an EventLoopServer accepting
/// the wire protocol, a worker pool dispatching requests against a (sharded)
/// UucsServer, and — when the server has a journal attached — a
/// GroupCommitJournal that coalesces every concurrent ack's durability into
/// one buffered write + one fsync.
///
/// Ack protocol: a request that accepted new state gets its response only
/// from the batch-durability callback; a request that accepted nothing
/// (read-only sync, duplicate upload, error) is routed through the committer
/// as an ordering barrier, so even an "already stored" ack cannot overtake
/// the fsync of the batch carrying the original entry. Without a journal,
/// responses leave as soon as the worker finishes.
///
/// Exactly-once is end-to-end unchanged from the blocking stack: clients
/// mint run_ids, the server dedups them, and nothing is acked before it is
/// durable — only the *batching* of the durability write is new.
class IngestServer {
 public:
  struct Config {
    EventLoopServer::Config loop;
    GroupCommitJournal::Config commit;
    /// Accepted journal entries between automatic snapshots (0: never).
    /// Snapshots run server.save(state_dir) inside the committer's
    /// exclusive section, then the journal restarts empty.
    std::size_t snapshot_every = 0;
    std::string state_dir;
    /// Admission control, load shedding, and the memory-pressure accept
    /// gate (DESIGN.md §15). Default-constructed = everything off.
    OverloadController::Config overload;
    /// Optional fault-injection registry (chaos runs). Not owned; wired
    /// into the journal's fault hook and the pressure probe.
    ServerFailpoints* failpoints = nullptr;
  };

  /// `server` must outlive this object; its journal (if any) must be
  /// attached before construction and not touched directly afterwards.
  IngestServer(UucsServer& server, Config config, Clock* clock = nullptr);
  ~IngestServer();

  IngestServer(const IngestServer&) = delete;
  IngestServer& operator=(const IngestServer&) = delete;

  std::uint16_t port() const { return loop_->port(); }

  /// Orderly shutdown: stop accepting, fail new appends, drain the
  /// committer so every in-flight ack resolves, then stop the loop.
  /// Idempotent.
  void stop();

  /// Snapshot on demand (same exclusive path as snapshot_every).
  void snapshot_now();

  /// Quiesces the ingest plane for a takeover or graceful exit: stops
  /// accepting (newcomers queue in the kernel backlog — the listening socket
  /// stays open), drains every connection, force-closes stragglers after
  /// `drain_timeout_s` (their un-acked requests are stranded, never acked,
  /// and will be retried + deduplicated), waits for the worker pool to go
  /// idle, then flushes the group-commit batch. After this returns no code
  /// path can append to the journal until resume(). Returns true when the
  /// drain completed without force-closing.
  bool quiesce(double drain_timeout_s);

  /// Rolls a quiesce back: resumes accepting (and serves the backlog that
  /// queued up meanwhile). The takeover controller calls this when the new
  /// process dies before confirming readiness.
  void resume();

  /// Blocks until everything queued at the group-commit journal is durable.
  /// No-op without a journal.
  void flush_commits() {
    if (committer_) committer_->flush();
  }

  EventLoopStats loop_stats() const { return loop_->stats(); }
  bool has_committer() const { return committer_ != nullptr; }
  GroupCommitJournal::Stats commit_stats() const;
  std::uint64_t snapshots_taken() const { return snapshots_.load(); }

  OverloadStats overload_stats() const { return overload_->stats(); }

  /// kOk when no journal is attached (nothing can degrade).
  GroupCommitJournal::Health journal_health() const {
    return committer_ ? committer_->health() : GroupCommitJournal::Health::kOk;
  }

  /// The [stats-response] message answering a [stats-request]: every loop,
  /// commit, and overload counter as one kv record. Also what
  /// `uucs_server --stats-interval` prints a digest of.
  std::string encode_stats_response() const;

  EventLoopServer& loop() { return *loop_; }

 private:
  void handle_request(std::string payload, EventLoopServer::Responder respond);
  void shed(const RequestPeek& peek, EventLoopServer::Responder respond,
            const std::string& kind, const std::string& message);
  void maybe_snapshot(std::size_t new_entries);
  void do_snapshot(bool force);

  UucsServer& server_;
  Config config_;
  Clock* clock_;
  std::unique_ptr<GroupCommitJournal> committer_;
  std::unique_ptr<OverloadController> overload_;
  std::atomic<std::uint64_t> entries_since_snapshot_{0};
  std::atomic<std::uint64_t> snapshots_{0};
  std::mutex snapshot_mu_;
  std::atomic<bool> stopped_{false};
  std::unique_ptr<EventLoopServer> loop_;  ///< last member: stops first
};

}  // namespace uucs
