#include "server/inproc.hpp"

namespace uucs {

/// One mailbox per direction; closing either end wakes both.
struct InProcChannelPair::Shared {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::string> to_a;
  std::deque<std::string> to_b;
  bool closed = false;
};

class InProcChannelPair::End final : public MessageChannel {
 public:
  End(std::shared_ptr<Shared> shared, bool is_a)
      : shared_(std::move(shared)), is_a_(is_a) {}

  void write(const std::string& message) override {
    std::lock_guard<std::mutex> lock(shared_->mu);
    if (shared_->closed) return;  // writes after close are dropped, like a socket
    (is_a_ ? shared_->to_b : shared_->to_a).push_back(message);
    shared_->cv.notify_all();
  }

  std::optional<std::string> read() override {
    std::unique_lock<std::mutex> lock(shared_->mu);
    auto& inbox = is_a_ ? shared_->to_a : shared_->to_b;
    shared_->cv.wait(lock, [&] { return !inbox.empty() || shared_->closed; });
    if (inbox.empty()) return std::nullopt;
    std::string msg = std::move(inbox.front());
    inbox.pop_front();
    return msg;
  }

  void close() override {
    std::lock_guard<std::mutex> lock(shared_->mu);
    shared_->closed = true;
    shared_->cv.notify_all();
  }

 private:
  std::shared_ptr<Shared> shared_;
  bool is_a_;
};

InProcChannelPair::InProcChannelPair()
    : shared_(std::make_shared<Shared>()),
      a_(std::make_unique<End>(shared_, true)),
      b_(std::make_unique<End>(shared_, false)) {}

InProcChannelPair::~InProcChannelPair() = default;

MessageChannel& InProcChannelPair::a() { return *a_; }
MessageChannel& InProcChannelPair::b() { return *b_; }

}  // namespace uucs
