#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>

#include "server/protocol.hpp"

namespace uucs {

/// A pair of connected in-process MessageChannels (like socketpair, but for
/// whole messages). Used by the Internet-study simulator to run hundreds of
/// client hot-syncs against one server object without real sockets, and by
/// tests to exercise the exact wire codec the TCP transport uses.
class InProcChannelPair {
 public:
  InProcChannelPair();

  ~InProcChannelPair();

  MessageChannel& a();
  MessageChannel& b();

 private:
  struct Shared;
  class End;
  std::shared_ptr<Shared> shared_;
  std::unique_ptr<End> a_;
  std::unique_ptr<End> b_;
};

}  // namespace uucs
