#include "server/net.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace uucs {

namespace {

constexpr std::size_t kMaxMessageBytes = 64ull << 20;

using SteadyClock = std::chrono::steady_clock;

/// Absolute deadline for a whole-message operation; nullopt blocks forever.
std::optional<SteadyClock::time_point> deadline_in(double seconds) {
  if (seconds <= 0) return std::nullopt;
  return SteadyClock::now() + std::chrono::duration_cast<SteadyClock::duration>(
                                  std::chrono::duration<double>(seconds));
}

/// Waits until `fd` is ready for `events`; throws TimeoutError when the
/// deadline passes first.
void wait_ready(int fd, short events, const SteadyClock::time_point& deadline,
                const char* what) {
  for (;;) {
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - SteadyClock::now());
    if (remaining.count() <= 0) {
      throw TimeoutError(std::string(what) + " deadline expired");
    }
    pollfd pfd{fd, events, 0};
    const int rc = ::poll(&pfd, 1, static_cast<int>(remaining.count()) + 1);
    if (rc > 0) return;  // ready (or error/hup — let recv/send report it)
    if (rc == 0) throw TimeoutError(std::string(what) + " deadline expired");
    if (errno == EINTR) continue;
    throw SystemError(std::string("poll: ") + std::strerror(errno));
  }
}

void write_all(int fd, const char* data, std::size_t len,
               const std::optional<SteadyClock::time_point>& deadline) {
  std::size_t off = 0;
  while (off < len) {
    if (deadline) wait_ready(fd, POLLOUT, *deadline, "send");
    const int flags = MSG_NOSIGNAL | (deadline ? MSG_DONTWAIT : 0);
    const ssize_t n = ::send(fd, data + off, len - off, flags);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (deadline && (errno == EAGAIN || errno == EWOULDBLOCK)) continue;
      if (errno == EPIPE || errno == ECONNRESET) {
        // The peer is gone, not the OS: classify as a (retryable) protocol
        // failure so retry layers reconnect instead of giving up.
        throw ProtocolError(std::string("peer closed connection during send (") +
                            std::strerror(errno) + ")");
      }
      throw SystemError(std::string("send: ") + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
}

/// Reads exactly `len` bytes; returns false on clean EOF at a boundary.
bool read_all(int fd, char* data, std::size_t len,
              const std::optional<SteadyClock::time_point>& deadline) {
  std::size_t off = 0;
  while (off < len) {
    if (deadline) wait_ready(fd, POLLIN, *deadline, "recv");
    const int flags = deadline ? MSG_DONTWAIT : 0;
    const ssize_t n = ::recv(fd, data + off, len - off, flags);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (deadline && (errno == EAGAIN || errno == EWOULDBLOCK)) continue;
      if (errno == ECONNRESET) {
        throw ProtocolError("peer reset connection during recv");
      }
      throw SystemError(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) {
      if (off == 0) return false;
      throw ProtocolError("connection closed mid-message");
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

void UniqueFd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

TcpChannel::TcpChannel(int fd, ChannelDeadlines deadlines)
    : fd_(fd), deadlines_(deadlines) {
  UUCS_CHECK_MSG(fd >= 0, "bad socket fd");
}

TcpChannel::~TcpChannel() { close(); }

std::unique_ptr<TcpChannel> TcpChannel::connect(const std::string& host,
                                                std::uint16_t port,
                                                ChannelDeadlines deadlines) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw SystemError(std::string("socket: ") + std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw SystemError("bad address " + host);
  }
  const std::string where = host + ":" + std::to_string(port);
  if (deadlines.connect_s > 0) {
    // Non-blocking connect + poll so a black-holed peer cannot hang us for
    // the kernel's multi-minute SYN timeout.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (rc != 0 && errno != EINPROGRESS) {
      const int err = errno;
      ::close(fd);
      throw SystemError("connect " + where + ": " + std::strerror(err));
    }
    if (rc != 0) {
      try {
        wait_ready(fd, POLLOUT, *deadline_in(deadlines.connect_s), "connect");
      } catch (...) {
        ::close(fd);
        throw;
      }
      int err = 0;
      socklen_t len = sizeof(err);
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
      if (err != 0) {
        ::close(fd);
        throw SystemError("connect " + where + ": " + std::strerror(err));
      }
    }
    ::fcntl(fd, F_SETFL, flags);
  } else if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    throw SystemError("connect " + where + ": " + std::strerror(err));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::make_unique<TcpChannel>(fd, deadlines);
}

void TcpChannel::frame_header_into(std::string& out, std::size_t payload_size) {
  char hdr[32];
  const int n = std::snprintf(hdr, sizeof(hdr), "UUCS %zu\n", payload_size);
  out.append(hdr, static_cast<std::size_t>(n));
}

std::string TcpChannel::frame(std::string_view payload) {
  std::string framed;
  framed.reserve(payload.size() + 16);
  frame_header_into(framed, payload.size());
  framed.append(payload);
  return framed;
}

void TcpChannel::write(const std::string& message) {
  UUCS_CHECK_MSG(message.size() <= kMaxMessageBytes, "message too large");
  const std::string framed = frame(message);
  write_all(fd_, framed.data(), framed.size(), deadline_in(deadlines_.write_s));
}

void TcpChannel::write_bytes(const std::string& bytes) {
  write_all(fd_, bytes.data(), bytes.size(), deadline_in(deadlines_.write_s));
}

std::optional<std::string> TcpChannel::read() {
  // One deadline covers the whole message, so a peer trickling bytes cannot
  // stretch a read indefinitely.
  const auto deadline = deadline_in(deadlines_.read_s);
  // Header: "UUCS <len>\n", read byte-by-byte until the newline (headers
  // are tiny; simplicity beats buffering here).
  std::string header;
  char c = 0;
  for (;;) {
    if (!read_all(fd_, &c, 1, deadline)) {
      if (header.empty()) return std::nullopt;
      throw ProtocolError("connection closed mid-header");
    }
    if (c == '\n') break;
    header += c;
    if (header.size() > 64) throw ProtocolError("oversized frame header");
  }
  const auto fields = split_ws(header);
  if (fields.size() != 2 || fields[0] != "UUCS") {
    throw ProtocolError("bad frame header '" + header + "'");
  }
  const auto len = parse_int(fields[1]);
  if (!len || *len < 0 || static_cast<std::size_t>(*len) > kMaxMessageBytes) {
    throw ProtocolError("bad frame length '" + fields[1] + "'");
  }
  std::string payload(static_cast<std::size_t>(*len), '\0');
  if (*len > 0 && !read_all(fd_, payload.data(), payload.size(), deadline)) {
    throw ProtocolError("connection closed mid-payload");
  }
  return payload;
}

void TcpChannel::shutdown_rw() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void TcpChannel::close() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

TcpListener::TcpListener(std::uint16_t port, int backlog) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd) throw SystemError(std::string("socket: ") + std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw SystemError(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(fd.get(), backlog) != 0) {
    throw SystemError(std::string("listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  fd_.store(fd.release(), std::memory_order_release);
}

TcpListener::TcpListener(AdoptFd adopted) {
  UniqueFd fd(adopted.fd);
  if (!fd) throw SystemError("adopting an invalid listener fd");
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    throw SystemError(std::string("getsockname on adopted listener: ") +
                      std::strerror(errno));
  }
  port_ = ntohs(addr.sin_port);
  fd_.store(fd.release(), std::memory_order_release);
}

TcpListener::~TcpListener() { shutdown(); }

int TcpListener::release() {
  return fd_.exchange(-1, std::memory_order_acq_rel);
}

void TcpListener::set_nonblocking(bool nonblocking) {
  const int lfd = fd_.load(std::memory_order_acquire);
  if (lfd < 0) return;
  const int flags = ::fcntl(lfd, F_GETFL, 0);
  if (flags < 0) throw SystemError(std::string("fcntl: ") + std::strerror(errno));
  const int want = nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(lfd, F_SETFL, want) != 0) {
    throw SystemError(std::string("fcntl: ") + std::strerror(errno));
  }
}

std::unique_ptr<TcpChannel> TcpListener::accept() {
  // Load once: shutdown() may swap fd_ to -1 concurrently; a stale fd is
  // fine (the close makes the blocked accept fail, and shutting_down_
  // turns that failure into a clean nullptr).
  const int lfd = fd_.load(std::memory_order_acquire);
  if (lfd < 0) return nullptr;
  for (;;) {
    // Guard the accepted fd immediately: everything between accept(2) and
    // the TcpChannel taking ownership (setsockopt, make_unique) can throw,
    // and an unguarded int would leak the socket.
    UniqueFd client(::accept(lfd, nullptr, nullptr));
    if (client) {
      const int one = 1;
      ::setsockopt(client.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      auto channel = std::make_unique<TcpChannel>(client.get());
      client.release();  // the channel owns it now
      return channel;
    }
    const int err = errno;
    if (err == EINTR && !shutting_down_.load(std::memory_order_acquire)) continue;
    if (shutting_down_.load(std::memory_order_acquire)) return nullptr;
    throw SystemError(std::string("accept: ") + std::strerror(err));
  }
}

UniqueFd TcpListener::try_accept() {
  const int lfd = fd_.load(std::memory_order_acquire);
  if (lfd < 0) return UniqueFd{};
  for (;;) {
    UniqueFd client(::accept(lfd, nullptr, nullptr));
    if (client) {
      const int one = 1;
      ::setsockopt(client.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return client;
    }
    const int err = errno;
    if (err == EINTR) continue;
    if (err == EAGAIN || err == EWOULDBLOCK || err == ECONNABORTED) {
      return UniqueFd{};
    }
    if (shutting_down_.load(std::memory_order_acquire)) return UniqueFd{};
    throw SystemError(std::string("accept: ") + std::strerror(err));
  }
}

void TcpListener::shutdown() {
  shutting_down_.store(true, std::memory_order_release);
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

}  // namespace uucs
