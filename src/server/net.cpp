#include "server/net.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace uucs {

namespace {

constexpr std::size_t kMaxMessageBytes = 64ull << 20;

void write_all(int fd, const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw SystemError(std::string("send: ") + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
}

/// Reads exactly `len` bytes; returns false on clean EOF at a boundary.
bool read_all(int fd, char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::recv(fd, data + off, len - off, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw SystemError(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) {
      if (off == 0) return false;
      throw ProtocolError("connection closed mid-message");
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

TcpChannel::TcpChannel(int fd) : fd_(fd) { UUCS_CHECK_MSG(fd >= 0, "bad socket fd"); }

TcpChannel::~TcpChannel() { close(); }

std::unique_ptr<TcpChannel> TcpChannel::connect(const std::string& host,
                                                std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw SystemError(std::string("socket: ") + std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw SystemError("bad address " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    throw SystemError("connect " + host + ":" + std::to_string(port) + ": " +
                      std::strerror(err));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::make_unique<TcpChannel>(fd);
}

void TcpChannel::write(const std::string& message) {
  UUCS_CHECK_MSG(message.size() <= kMaxMessageBytes, "message too large");
  const std::string header = strprintf("UUCS %zu\n", message.size());
  write_all(fd_, header.data(), header.size());
  write_all(fd_, message.data(), message.size());
}

std::optional<std::string> TcpChannel::read() {
  // Header: "UUCS <len>\n", read byte-by-byte until the newline (headers
  // are tiny; simplicity beats buffering here).
  std::string header;
  char c = 0;
  for (;;) {
    if (!read_all(fd_, &c, 1)) {
      if (header.empty()) return std::nullopt;
      throw ProtocolError("connection closed mid-header");
    }
    if (c == '\n') break;
    header += c;
    if (header.size() > 64) throw ProtocolError("oversized frame header");
  }
  const auto fields = split_ws(header);
  if (fields.size() != 2 || fields[0] != "UUCS") {
    throw ProtocolError("bad frame header '" + header + "'");
  }
  const auto len = parse_int(fields[1]);
  if (!len || *len < 0 || static_cast<std::size_t>(*len) > kMaxMessageBytes) {
    throw ProtocolError("bad frame length '" + fields[1] + "'");
  }
  std::string payload(static_cast<std::size_t>(*len), '\0');
  if (*len > 0 && !read_all(fd_, payload.data(), payload.size())) {
    throw ProtocolError("connection closed mid-payload");
  }
  return payload;
}

void TcpChannel::close() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

TcpListener::TcpListener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw SystemError(std::string("socket: ") + std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw SystemError(std::string("bind: ") + std::strerror(err));
  }
  if (::listen(fd_, 16) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw SystemError(std::string("listen: ") + std::strerror(err));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
}

TcpListener::~TcpListener() { shutdown(); }

std::unique_ptr<TcpChannel> TcpListener::accept() {
  if (fd_ < 0) return nullptr;
  for (;;) {
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client >= 0) {
      const int one = 1;
      ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return std::make_unique<TcpChannel>(client);
    }
    if (errno == EINTR) continue;
    return nullptr;  // listener shut down or fatal error
  }
}

void TcpListener::shutdown() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace uucs
