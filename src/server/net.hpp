#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "server/protocol.hpp"

namespace uucs {

/// Deadlines (seconds) for the blocking TCP operations. Zero means "block
/// forever" — the pre-fault-tolerance behavior, still the default so local
/// and test transports pay nothing for the feature.
struct ChannelDeadlines {
  double connect_s = 0.0;  ///< TcpChannel::connect
  double read_s = 0.0;     ///< whole-message receive
  double write_s = 0.0;    ///< whole-message send
};

/// MessageChannel over a connected TCP socket, with "UUCS <len>\n<payload>"
/// framing. Blocking (optionally up to a deadline); one instance per
/// connection, single reader + single writer thread at a time.
class TcpChannel final : public MessageChannel {
 public:
  /// Takes ownership of a connected socket fd.
  explicit TcpChannel(int fd, ChannelDeadlines deadlines = {});
  ~TcpChannel() override;

  TcpChannel(const TcpChannel&) = delete;
  TcpChannel& operator=(const TcpChannel&) = delete;

  /// Connects to host:port (IPv4, e.g. "127.0.0.1"); throws SystemError on
  /// failure and TimeoutError when `deadlines.connect_s` expires first.
  static std::unique_ptr<TcpChannel> connect(const std::string& host, std::uint16_t port,
                                             ChannelDeadlines deadlines = {});

  void set_deadlines(ChannelDeadlines deadlines) { deadlines_ = deadlines; }
  const ChannelDeadlines& deadlines() const { return deadlines_; }

  /// Throws TimeoutError if the peer does not drain us within write_s.
  void write(const std::string& message) override;

  /// Throws TimeoutError if a whole message does not arrive within read_s —
  /// a hung or stalled peer can no longer block the caller forever.
  std::optional<std::string> read() override;

  void close() override;

  /// Half-closes both directions without releasing the fd: a thread blocked
  /// in read()/write() on this channel unblocks with EOF / a peer-closed
  /// error. Unlike close(), this is safe to call from another thread while
  /// the channel is in use (the fd stays valid until close()).
  void shutdown_rw();

  /// The framed wire bytes write() would send for `payload`. Exposed so
  /// fault injection and tests can craft truncated or corrupt frames.
  static std::string frame(const std::string& payload);

  /// Sends raw bytes with no framing (fault injection / tests only).
  void write_bytes(const std::string& bytes);

 private:
  int fd_;
  ChannelDeadlines deadlines_;
};

/// Listening TCP socket bound to 127.0.0.1. Port 0 picks a free port; the
/// chosen port is available via port().
class TcpListener {
 public:
  explicit TcpListener(std::uint16_t port = 0);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  std::uint16_t port() const { return port_; }

  /// Blocks until a client connects; returns nullptr only after an
  /// intentional shutdown(). A real accept(2) failure throws SystemError
  /// instead of being silently conflated with shutdown.
  std::unique_ptr<TcpChannel> accept();

  /// Unblocks accept() and closes the listening socket. Safe to call from
  /// any thread (e.g. a signal-driven shutdown path) and idempotent.
  void shutdown();

 private:
  std::atomic<int> fd_{-1};  ///< atomic: shutdown() races with accept()
  std::uint16_t port_ = 0;
  std::atomic<bool> shutting_down_{false};
};

}  // namespace uucs
