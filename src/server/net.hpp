#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "server/protocol.hpp"

namespace uucs {

/// RAII guard for a raw file descriptor: closes on destruction, moves but
/// never copies. Wraps every fd the moment the kernel hands it over —
/// accept(2)/socket(2) results used to travel as naked ints, so an
/// exception between the syscall and the owning object leaked the socket.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { reset(); }

  UniqueFd(UniqueFd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  explicit operator bool() const { return valid(); }

  /// Releases ownership without closing; returns the fd.
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

  /// Closes the held fd (if any) and optionally adopts a new one.
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// Deadlines (seconds) for the blocking TCP operations. Zero means "block
/// forever" — the pre-fault-tolerance behavior, still the default so local
/// and test transports pay nothing for the feature.
struct ChannelDeadlines {
  double connect_s = 0.0;  ///< TcpChannel::connect
  double read_s = 0.0;     ///< whole-message receive
  double write_s = 0.0;    ///< whole-message send
};

/// MessageChannel over a connected TCP socket, with "UUCS <len>\n<payload>"
/// framing. Blocking (optionally up to a deadline); one instance per
/// connection, single reader + single writer thread at a time.
class TcpChannel final : public MessageChannel {
 public:
  /// Takes ownership of a connected socket fd.
  explicit TcpChannel(int fd, ChannelDeadlines deadlines = {});
  ~TcpChannel() override;

  TcpChannel(const TcpChannel&) = delete;
  TcpChannel& operator=(const TcpChannel&) = delete;

  /// Connects to host:port (IPv4, e.g. "127.0.0.1"); throws SystemError on
  /// failure and TimeoutError when `deadlines.connect_s` expires first.
  static std::unique_ptr<TcpChannel> connect(const std::string& host, std::uint16_t port,
                                             ChannelDeadlines deadlines = {});

  void set_deadlines(ChannelDeadlines deadlines) { deadlines_ = deadlines; }
  const ChannelDeadlines& deadlines() const { return deadlines_; }

  /// Throws TimeoutError if the peer does not drain us within write_s.
  void write(const std::string& message) override;

  /// Throws TimeoutError if a whole message does not arrive within read_s —
  /// a hung or stalled peer can no longer block the caller forever.
  std::optional<std::string> read() override;

  void close() override;

  /// Half-closes both directions without releasing the fd: a thread blocked
  /// in read()/write() on this channel unblocks with EOF / a peer-closed
  /// error. Unlike close(), this is safe to call from another thread while
  /// the channel is in use (the fd stays valid until close()).
  void shutdown_rw();

  /// The framed wire bytes write() would send for `payload`. Exposed so
  /// fault injection and tests can craft truncated or corrupt frames.
  static std::string frame(std::string_view payload);

  /// Appends just the frame header ("UUCS <len>\n") for a payload of
  /// `payload_size` bytes to `out`. The event loop writes header and payload
  /// as separate iovecs, so the payload is never copied into a framed
  /// string.
  static void frame_header_into(std::string& out, std::size_t payload_size);

  /// Sends raw bytes with no framing (fault injection / tests only).
  void write_bytes(const std::string& bytes);

 private:
  int fd_;
  ChannelDeadlines deadlines_;
};

/// Listening TCP socket bound to 127.0.0.1. Port 0 picks a free port; the
/// chosen port is available via port(). `backlog` sizes the kernel accept
/// queue — the event-loop server points thousands of clients at one
/// listener, so connect storms need more room than the old fixed 16.
class TcpListener {
 public:
  /// Tag type for the adopting constructor below, so an adopted fd cannot be
  /// confused with a port number at a call site.
  struct AdoptFd {
    int fd;
  };

  explicit TcpListener(std::uint16_t port = 0, int backlog = 256);

  /// Adopts an externally created listening socket (e.g. one received over
  /// SCM_RIGHTS during a live takeover). The socket must already be bound
  /// and listening; the bound port is recovered via getsockname.
  explicit TcpListener(AdoptFd adopted);

  ~TcpListener();

  /// Movable so factories can choose between binding and adopting; moving a
  /// listener another thread is using is undefined.
  TcpListener(TcpListener&& other) noexcept
      : fd_(other.fd_.exchange(-1, std::memory_order_acq_rel)),
        port_(other.port_),
        shutting_down_(other.shutting_down_.load(std::memory_order_acquire)) {}

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  std::uint16_t port() const { return port_; }

  /// The listening socket's fd, for event loops that poll it directly.
  /// -1 after shutdown().
  int native_handle() const { return fd_.load(std::memory_order_acquire); }

  /// Switches the listening socket between blocking accept() (the default)
  /// and the non-blocking mode try_accept() requires.
  void set_nonblocking(bool nonblocking);

  /// Blocks until a client connects; returns nullptr only after an
  /// intentional shutdown(). A real accept(2) failure throws SystemError
  /// instead of being silently conflated with shutdown.
  std::unique_ptr<TcpChannel> accept();

  /// Non-blocking accept for event loops: an invalid UniqueFd when no
  /// connection is pending (or after shutdown), the connected socket —
  /// TCP_NODELAY set, already owned by the guard — otherwise. The listener
  /// must be in non-blocking mode.
  UniqueFd try_accept();

  /// Unblocks accept() and closes the listening socket. Safe to call from
  /// any thread (e.g. a signal-driven shutdown path) and idempotent.
  void shutdown();

  /// Releases ownership of the listening fd without shutdown(2)-ing it and
  /// returns it (-1 if already closed). Unlike shutdown(), this never
  /// disturbs the shared socket object, so a duplicate of the fd handed to
  /// another process (SCM_RIGHTS) keeps accepting and keeps its backlog.
  int release();

 private:
  std::atomic<int> fd_{-1};  ///< atomic: shutdown() races with accept()
  std::uint16_t port_ = 0;
  std::atomic<bool> shutting_down_{false};
};

}  // namespace uucs
