#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "server/protocol.hpp"

namespace uucs {

/// MessageChannel over a connected TCP socket, with "UUCS <len>\n<payload>"
/// framing. Blocking; one instance per connection, single reader + single
/// writer thread at a time.
class TcpChannel final : public MessageChannel {
 public:
  /// Takes ownership of a connected socket fd.
  explicit TcpChannel(int fd);
  ~TcpChannel() override;

  TcpChannel(const TcpChannel&) = delete;
  TcpChannel& operator=(const TcpChannel&) = delete;

  /// Connects to host:port (IPv4, e.g. "127.0.0.1"); throws SystemError.
  static std::unique_ptr<TcpChannel> connect(const std::string& host, std::uint16_t port);

  void write(const std::string& message) override;
  std::optional<std::string> read() override;
  void close() override;

 private:
  int fd_;
};

/// Listening TCP socket bound to 127.0.0.1. Port 0 picks a free port; the
/// chosen port is available via port().
class TcpListener {
 public:
  explicit TcpListener(std::uint16_t port = 0);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  std::uint16_t port() const { return port_; }

  /// Blocks until a client connects; returns nullptr if the listener was
  /// shut down.
  std::unique_ptr<TcpChannel> accept();

  /// Unblocks accept() and closes the listening socket.
  void shutdown();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace uucs
