#include "server/overload.hpp"

#include <algorithm>
#include <chrono>

#include "monitor/sampler.hpp"

namespace uucs {

Admission OverloadController::admit(const RequestPeek& peek, double queue_age_ms,
                                    std::size_t inflight) {
  if (peek.op == RequestPeek::Op::kStats) return Admission::kOk;
  if (config_.request_deadline_ms > 0.0 &&
      queue_age_ms > config_.request_deadline_ms) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.shed_deadline;
    return Admission::kShedDeadline;
  }
  if (config_.max_queue_depth > 0) {
    if (inflight > config_.max_queue_depth) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.shed_queue;
      return Admission::kShedQueue;
    }
    // Registrations go first: a machine that cannot register just retries,
    // a machine mid-sync is carrying results. Note > not >=: the request
    // being admitted is itself counted in `inflight`.
    const double floor =
        std::max(1.0, config_.register_shed_frac *
                          static_cast<double>(config_.max_queue_depth));
    if (peek.op == RequestPeek::Op::kRegister &&
        static_cast<double>(inflight) > floor) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.shed_registrations;
      return Admission::kShedRegistration;
    }
  }
  return Admission::kOk;
}

void OverloadController::note_degraded_reject() {
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.degraded_rejects;
}

void OverloadController::start(std::function<void()> on_pressure_enter,
                               std::function<void()> on_pressure_exit) {
  if (config_.min_available_frac <= 0.0) return;  // gate disabled
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  on_pressure_enter_ = std::move(on_pressure_enter);
  on_pressure_exit_ = std::move(on_pressure_exit);
  running_ = true;
  stop_requested_ = false;
  monitor_ = std::thread([this] { monitor_loop(); });
}

void OverloadController::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  monitor_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    running_ = false;
  }
  // Leave the accept gate the way we found it.
  if (pressure_paused_.exchange(false) && on_pressure_exit_) {
    on_pressure_exit_();
  }
}

void OverloadController::set_suspended(bool suspended) {
  suspended_.store(suspended, std::memory_order_relaxed);
  if (suspended && pressure_paused_.exchange(false)) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.pressure_resumes;
    if (on_pressure_exit_) on_pressure_exit_();
  }
}

void OverloadController::monitor_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  const auto interval = std::chrono::duration<double>(
      std::max(0.01, config_.pressure_interval_s));
  while (!stop_requested_) {
    lock.unlock();
    probe_once();
    lock.lock();
    cv_.wait_for(lock, interval, [this] { return stop_requested_; });
  }
}

void OverloadController::probe_once() {
  double frac = 1.0;
  bool have = false;
  if (config_.failpoints != nullptr) {
    if (const auto injected = config_.failpoints->on_pressure_probe()) {
      frac = *injected;
      have = true;
    }
  }
  if (!have) {
    if (const auto pressure = read_memory_pressure()) {
      frac = pressure->available_frac();
      have = true;
    }
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.probes;
    if (have) stats_.last_available_frac = frac;
  }
  if (!have || suspended_.load(std::memory_order_relaxed)) return;
  const double floor = config_.min_available_frac;
  if (!pressure_paused_.load(std::memory_order_relaxed)) {
    if (frac < floor) {
      pressure_paused_.store(true, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.pressure_pauses;
      }
      if (on_pressure_enter_) on_pressure_enter_();
    }
  } else if (frac > std::min(1.0, 1.5 * floor)) {
    // Hysteresis: resume only clearly above the floor, so a fraction
    // hovering at the boundary does not toggle accept per probe.
    pressure_paused_.store(false, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.pressure_resumes;
    }
    if (on_pressure_exit_) on_pressure_exit_();
  }
}

OverloadStats OverloadController::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace uucs
