#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

#include "server/failpoints.hpp"
#include "server/protocol.hpp"

namespace uucs {

/// Why (or whether) the admission gate let a request through.
enum class Admission : std::uint8_t {
  kOk = 0,
  kShedQueue,         ///< loop->worker queue at capacity
  kShedRegistration,  ///< registrations shed early, before syncs
  kShedDeadline,      ///< waited past its deadline; an answer is useless now
};

/// Counters for every shedding decision the overload layer makes. Sampled
/// by uucs_server --stats-interval and the uucsctl stats subcommand.
struct OverloadStats {
  std::uint64_t shed_queue = 0;
  std::uint64_t shed_deadline = 0;
  std::uint64_t shed_registrations = 0;
  std::uint64_t degraded_rejects = 0;  ///< write-class rejected, journal degraded
  std::uint64_t pressure_pauses = 0;
  std::uint64_t pressure_resumes = 0;
  std::uint64_t probes = 0;
  double last_available_frac = 1.0;
};

/// Admission control + load shedding for the ingest plane. Two halves:
///
///  - admit(): a pure, lock-free-on-the-hot-path gate the ingest handler
///    consults before paying for a parse. Sheds when the loop->worker queue
///    is past its depth cap (registrations shed earlier than syncs — a
///    machine that cannot register simply retries, while a machine mid-sync
///    has results the study wants) or when the request already waited past
///    its deadline (the client has given up; answering wastes a worker).
///
///  - a pressure monitor thread feeding the PR 4 memory probe into the
///    accept gate: below `min_available_frac` available memory the server
///    stops accepting new connections (on_pressure_enter), resuming only
///    above 1.5x the floor so the boundary does not flap. Failpoints can
///    override the probe for deterministic chaos runs.
///
/// The controller never touches sockets itself — the ingest server wires
/// the callbacks, keeping this class unit-testable without a loop.
class OverloadController {
 public:
  struct Config {
    /// Max requests dispatched-but-not-completed before shedding. 0: off.
    std::size_t max_queue_depth = 0;
    /// Shed a request that sat queued longer than this. 0: off.
    double request_deadline_ms = 0.0;
    /// Registrations shed at this fraction of max_queue_depth.
    double register_shed_frac = 0.5;
    /// Pause accept below this available-memory fraction. 0: off.
    double min_available_frac = 0.0;
    /// Pressure probe period.
    double pressure_interval_s = 0.5;
    /// Backoff hint stamped on v3 busy/degraded replies.
    std::uint64_t retry_after_ms = 200;
    /// Optional probe override source (chaos runs). Not owned.
    ServerFailpoints* failpoints = nullptr;
  };

  explicit OverloadController(Config config) : config_(config) {}
  ~OverloadController() { stop(); }

  OverloadController(const OverloadController&) = delete;
  OverloadController& operator=(const OverloadController&) = delete;

  /// The admission gate. `queue_age_ms` is how long the request sat between
  /// the loop thread and this worker; `inflight` is the server-wide count of
  /// dispatched-but-uncompleted requests. Stats requests always pass — an
  /// operator must be able to observe an overloaded server.
  Admission admit(const RequestPeek& peek, double queue_age_ms,
                  std::size_t inflight);

  /// Called by ingest when a write-class request is rejected because the
  /// journal is degraded (this class does not see the journal itself).
  void note_degraded_reject();

  /// Starts the pressure monitor (no-op when min_available_frac is 0 and
  /// there are no failpoints to consult).
  void start(std::function<void()> on_pressure_enter,
             std::function<void()> on_pressure_exit);
  void stop();

  /// Quiesce/takeover windows: a suspended monitor keeps probing but takes
  /// no action, so it cannot fight the drain logic for the accept gate. If
  /// the monitor itself paused accept, it releases it before going quiet.
  void set_suspended(bool suspended);

  /// True while the monitor holds the accept gate shut.
  bool pressure_paused() const {
    return pressure_paused_.load(std::memory_order_relaxed);
  }

  std::uint64_t retry_after_ms() const { return config_.retry_after_ms; }

  OverloadStats stats() const;

 private:
  void monitor_loop();
  void probe_once();

  Config config_;

  mutable std::mutex stats_mu_;
  OverloadStats stats_;

  std::mutex mu_;  // monitor wakeups
  std::condition_variable cv_;
  std::thread monitor_;
  bool running_ = false;
  bool stop_requested_ = false;
  std::atomic<bool> suspended_{false};
  std::atomic<bool> pressure_paused_{false};
  std::function<void()> on_pressure_enter_;
  std::function<void()> on_pressure_exit_;
};

}  // namespace uucs
