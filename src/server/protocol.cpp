#include "server/protocol.hpp"

#include <algorithm>
#include <cstdio>

#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace uucs {

namespace {

/// Testcase/run ids travel in comma-separated lists; enforce the invariant.
void check_id(const std::string& id) {
  if (id.find(',') != std::string::npos || id.find('\n') != std::string::npos) {
    throw ProtocolError("id contains forbidden characters: " + id);
  }
}

/// Strict protocol-version field parse: absent falls back to `absent`, but a
/// present field must be a sane positive integer. The error is a typed
/// ProtocolError (never a hang, never a ParseError that reads like a file
/// bug) so version-skew failures are diagnosable at both ends. Templated so
/// KvRecord and KvDoc::Rec heads share the one implementation (and the one
/// error message).
template <class H>
int parse_version_field(const H& head, const std::string& key, int absent) {
  const auto raw = head.find(key);
  if (!raw) return absent;
  const auto v = parse_int(*raw);
  if (!v || *v < 1 || *v > 1000000) {
    throw ProtocolError("malformed protocol version '" + std::string(*raw) +
                        "' in [" + std::string(head.type()) + "]");
  }
  return static_cast<int>(*v);
}

/// `key = <integer>\n`, matching KvRecord::set_int + kv_serialize bytes.
void append_int_line(std::string& out, std::string_view key, std::int64_t v) {
  out.append(key);
  out.append(" = ");
  char buf[24];
  const int n = std::snprintf(buf, sizeof(buf), "%lld",
                              static_cast<long long>(v));
  out.append(buf, static_cast<std::size_t>(n));
  out.push_back('\n');
}

void append_str_line(std::string& out, std::string_view key,
                     std::string_view value) {
  out.append(key);
  out.append(" = ");
  out.append(value);
  out.push_back('\n');
}

}  // namespace

std::string encode_register_request(const HostSpec& host, const std::string& nonce,
                                    int protocol_version) {
  KvRecord head("register-request");
  head.set_int("version", protocol_version);
  if (!nonce.empty()) head.set("nonce", nonce);
  return kv_serialize({head, host.to_record()});
}

void encode_register_response_into(const Guid& guid, int protocol_version,
                                   std::string& out) {
  out.append("[register-response]\n");
  append_str_line(out, "guid", guid.to_string());
  append_int_line(out, "version", protocol_version);
  out.push_back('\n');
}

std::string encode_register_response(const Guid& guid, int protocol_version) {
  std::string out;
  encode_register_response_into(guid, protocol_version, out);
  return out;
}

void encode_sync_request_into(const SyncRequest& request, std::string& out) {
  out.append("[sync-request]\n");
  // v1 requests stay byte-identical to the pre-negotiation wire format.
  if (request.protocol_version >= 2) {
    append_int_line(out, "proto", request.protocol_version);
  }
  out.append("guid = ");
  request.guid.append_to(out);  // no temporary: the sync hot path writes this
  out.push_back('\n');
  append_int_line(out, "sync_seq", static_cast<std::int64_t>(request.sync_seq));
  for (const auto& id : request.known_testcase_ids) check_id(id);
  out.append("known = ");
  for (std::size_t i = 0; i < request.known_testcase_ids.size(); ++i) {
    if (i) out.push_back(',');
    out.append(request.known_testcase_ids[i]);
  }
  out.push_back('\n');
  append_int_line(out, "result_count",
                  static_cast<std::int64_t>(request.results.size()));
  out.push_back('\n');
  for (const auto& r : request.results) r.serialize_into(out);
}

std::string encode_sync_request(const SyncRequest& request) {
  std::string out;
  encode_sync_request_into(request, out);
  return out;
}

void encode_sync_response_into(const SyncResponse& response, std::string& out) {
  out.append("[sync-response]\n");
  if (response.protocol_version >= 2) {
    append_int_line(out, "proto", response.protocol_version);
    append_int_line(out, "generation",
                    static_cast<std::int64_t>(response.server_generation));
  }
  append_int_line(out, "accepted_results",
                  static_cast<std::int64_t>(response.accepted_results));
  append_int_line(out, "duplicate_results",
                  static_cast<std::int64_t>(response.duplicate_results));
  for (const auto& id : response.stored_run_ids) check_id(id);
  out.append("stored = ");
  for (std::size_t i = 0; i < response.stored_run_ids.size(); ++i) {
    if (i) out.push_back(',');
    out.append(response.stored_run_ids[i]);
  }
  out.push_back('\n');
  append_int_line(out, "server_testcase_count",
                  static_cast<std::int64_t>(response.server_testcase_count));
  append_int_line(out, "testcase_count",
                  static_cast<std::int64_t>(response.new_testcases.size()));
  out.push_back('\n');
  for (const auto& tc : response.new_testcases) {
    // Appends the testcase's warm serialization cache when present —
    // identical bytes to kv_serialize_record_into(tc.to_record(), out).
    tc.serialize_record_into(out);
  }
}

std::string encode_sync_response(const SyncResponse& response) {
  std::string out;
  encode_sync_response_into(response, out);
  return out;
}

void encode_error_into(const std::string& message, std::string& out) {
  out.append("[error]\n");
  append_str_line(out, "message", message);
  out.push_back('\n');
}

std::string encode_error(const std::string& message) {
  std::string out;
  encode_error_into(message, out);
  return out;
}

void encode_busy_into(const std::string& kind, const std::string& message,
                      std::uint64_t retry_after_ms, std::string& out) {
  out.append("[error]\n");
  append_str_line(out, "message", message);
  append_str_line(out, "kind", kind);
  append_int_line(out, "retry_after_ms",
                  static_cast<std::int64_t>(retry_after_ms));
  out.push_back('\n');
}

std::string encode_busy(const std::string& kind, const std::string& message,
                        std::uint64_t retry_after_ms) {
  std::string out;
  encode_busy_into(kind, message, retry_after_ms, out);
  return out;
}

RequestPeek peek_request(std::string_view request) noexcept {
  RequestPeek peek;
  const std::string_view sv = request;
  bool in_head = false;
  std::size_t pos = 0;
  while (pos < sv.size()) {
    const auto nl = sv.find('\n', pos);
    const std::string_view line =
        trim(sv.substr(pos, (nl == std::string_view::npos ? sv.size() : nl) - pos));
    pos = nl == std::string_view::npos ? sv.size() : nl + 1;
    if (line.empty() || line.front() == '#') continue;
    if (line.front() == '[') {
      if (in_head) break;  // second record: the head is fully scanned
      if (line.back() != ']') break;
      const std::string_view name = trim(line.substr(1, line.size() - 2));
      if (name == "register-request") {
        peek.op = RequestPeek::Op::kRegister;
        peek.write_class = true;
      } else if (name == "sync-request") {
        peek.op = RequestPeek::Op::kSync;
      } else if (name == "stats-request") {
        peek.op = RequestPeek::Op::kStats;
      } else {
        break;
      }
      in_head = true;
      continue;
    }
    if (!in_head) break;  // junk before any record: the dispatcher's problem
    const auto eq = line.find('=');
    if (eq == std::string_view::npos) continue;
    const std::string_view key = trim(line.substr(0, eq));
    const std::string_view value = trim(line.substr(eq + 1));
    const bool version_key = (peek.op == RequestPeek::Op::kSync && key == "proto") ||
                             (peek.op != RequestPeek::Op::kSync && key == "version");
    if (version_key) {
      const auto v = parse_int(value);
      if (v && *v >= 1 && *v <= 1000000) peek.protocol_version = static_cast<int>(*v);
    } else if (peek.op == RequestPeek::Op::kSync && key == "result_count") {
      const auto v = parse_int(value);
      if (v && *v > 0) peek.write_class = true;
    }
  }
  return peek;
}

namespace {

SyncRequest decode_sync_request(const KvDoc& doc) {
  SyncRequest request;
  const KvDoc::Rec head = doc.at(0);
  const int proto = parse_version_field(head, "proto", 1);
  if (proto > kProtocolVersionMax) {
    throw ProtocolError("unsupported sync protocol version " +
                        std::to_string(proto) + " (this server speaks up to " +
                        std::to_string(kProtocolVersionMax) + ")");
  }
  request.protocol_version = static_cast<std::uint32_t>(proto);
  request.guid = Guid::parse(std::string(head.get("guid")));
  request.sync_seq = static_cast<std::uint64_t>(head.get_int_or("sync_seq", 0));
  // Tokenize the known-ids list straight off the view (same boundaries as
  // split(raw, ','): empty fields skipped just like before).
  const std::string_view known = head.has("known") ? head.get("known") : "";
  std::size_t start = 0;
  for (std::size_t i = 0; i <= known.size(); ++i) {
    if (i == known.size() || known[i] == ',') {
      if (i > start) {
        request.known_testcase_ids.emplace_back(known.substr(start, i - start));
      }
      start = i + 1;
    }
  }
  for (std::size_t i = 1; i < doc.size(); ++i) {
    request.results.push_back(RunRecord::from_kv(doc.at(i)));
  }
  const auto expected = static_cast<std::size_t>(head.get_int_or("result_count", -1));
  if (head.has("result_count") && expected != request.results.size()) {
    throw ProtocolError("sync request result_count mismatch");
  }
  return request;
}

SyncResponse decode_sync_response(const std::vector<KvRecord>& records) {
  SyncResponse response;
  const KvRecord& head = records.front();
  response.protocol_version =
      static_cast<std::uint32_t>(parse_version_field(head, "proto", 1));
  response.server_generation =
      static_cast<std::uint64_t>(head.get_int_or("generation", 0));
  response.accepted_results =
      static_cast<std::size_t>(head.get_int("accepted_results"));
  response.duplicate_results =
      static_cast<std::size_t>(head.get_int_or("duplicate_results", 0));
  for (const auto& id : split(head.get_or("stored", ""), ',')) {
    if (!id.empty()) response.stored_run_ids.push_back(id);
  }
  response.server_testcase_count =
      static_cast<std::size_t>(head.get_int("server_testcase_count"));
  for (std::size_t i = 1; i < records.size(); ++i) {
    response.new_testcases.push_back(Testcase::from_record(records[i]));
  }
  const auto expected = static_cast<std::size_t>(head.get_int("testcase_count"));
  if (expected != response.new_testcases.size()) {
    throw ProtocolError("sync response testcase_count mismatch");
  }
  return response;
}

}  // namespace

namespace {

/// Shared dispatch body. `journal_out == nullptr` is the blocking path (the
/// server journals + fsyncs internally before returning); non-null is the
/// deferred path (entries come back for the caller's group commit).
///
/// The parse is zero-copy: the request is sliced into a per-worker-thread
/// KvDoc arena whose index vectors stay warm across requests, so the
/// steady-state sync path allocates nothing between the frame buffer and
/// the typed SyncRequest. The views live only until this function returns
/// (or the same thread dispatches again) — everything that outlives the
/// call (run records, registration state) is copied by the decoders.
std::string dispatch_impl(UucsServer& server, std::string_view request,
                          Clock* clock, std::vector<std::string>* journal_out) {
  try {
    thread_local KvDoc doc;
    doc.parse(request);
    if (doc.empty()) return encode_error("empty request");
    const std::string_view op = doc.at(0).type();
    if (op == "register-request") {
      if (doc.size() < 2) return encode_error("register request missing host");
      // Version negotiation: answer the highest version both sides speak. A
      // client newer than us simply gets our ceiling back; a malformed
      // version is a typed ProtocolError answered as [error], never a hang.
      const int requested =
          parse_version_field(doc.at(0), "version", kProtocolVersionMin);
      const int negotiated = std::min(requested, kProtocolVersionMax);
      const HostSpec host = HostSpec::from_record(doc.at(1).materialize());
      const Guid guid = server.register_client(host, clock ? clock->now() : 0.0,
                                               doc.at(0).get_or("nonce", ""),
                                               journal_out);
      return encode_register_response(guid, negotiated);
    }
    if (op == "sync-request") {
      const SyncRequest req = decode_sync_request(doc);
      return encode_sync_response(server.hot_sync(req, journal_out));
    }
    return encode_error("unknown operation '" + std::string(op) + "'");
  } catch (const std::exception& e) {
    // An error response acknowledges nothing, so nothing needs durability.
    if (journal_out != nullptr) journal_out->clear();
    return encode_error(e.what());
  }
}

}  // namespace

std::string dispatch_request(UucsServer& server, std::string_view request,
                             Clock* clock) {
  return dispatch_impl(server, request, clock, nullptr);
}

DispatchResult dispatch_request_deferred(UucsServer& server,
                                         std::string_view request,
                                         Clock* clock) {
  DispatchResult result;
  result.response = dispatch_impl(server, request, clock, &result.journal_entries);
  return result;
}

void serve_channel(UucsServer& server, MessageChannel& channel, Clock* clock) {
  while (const auto request = channel.read()) {
    channel.write(dispatch_request(server, *request, clock));
  }
}

std::string RemoteServerApi::round_trip(const std::string& request) {
  channel_.write(request);
  const auto response = channel_.read();
  if (!response) throw ProtocolError("server closed the connection");
  return *response;
}

namespace {

/// An [error] reply with a `kind` key is v3 typed backpressure — retryable,
/// with an optional server pacing hint. Without the key it is the server
/// rejecting the request itself, which a retry cannot fix.
[[noreturn]] void throw_error_reply(const KvRecord& head) {
  if (const auto kind = head.find("kind")) {
    throw ServerBusyError(head.get_or("message", ""), *kind,
                          static_cast<std::uint64_t>(
                              head.get_int_or("retry_after_ms", 0)));
  }
  throw Error("server error: " + head.get("message"));
}

}  // namespace

Guid RemoteServerApi::register_client(const HostSpec& host, const std::string& nonce) {
  const auto records = kv_parse(
      round_trip(encode_register_request(host, nonce, requested_version_)));
  if (records.empty()) throw ProtocolError("empty register response");
  if (records.front().type() == "error") throw_error_reply(records.front());
  if (records.front().type() != "register-response") {
    throw ProtocolError("unexpected response [" + records.front().type() + "]");
  }
  // A pre-negotiation server answers without a version key: that IS the
  // answer ("I speak v1"), so the common version is the min of both sides.
  const int answered =
      parse_version_field(records.front(), "version", kProtocolVersionMin);
  negotiated_version_ = std::min(requested_version_, answered);
  return Guid::parse(records.front().get("guid"));
}

SyncResponse RemoteServerApi::hot_sync(const SyncRequest& request) {
  // Encode at the lower of what the caller asked for and what the server
  // negotiated: a caller that left the default 1 keeps the exact pre-v2
  // bytes, and nobody ever sends a version the server would reject.
  SyncRequest req = request;
  const int asked =
      request.protocol_version == 0 ? 1 : static_cast<int>(request.protocol_version);
  req.protocol_version =
      static_cast<std::uint32_t>(std::min(negotiated_version_, asked));
  const auto records = kv_parse(round_trip(encode_sync_request(req)));
  if (records.empty()) throw ProtocolError("empty sync response");
  if (records.front().type() == "error") throw_error_reply(records.front());
  if (records.front().type() != "sync-response") {
    throw ProtocolError("unexpected response [" + records.front().type() + "]");
  }
  SyncResponse response = decode_sync_response(records);
  if (response.protocol_version >= 2) {
    last_generation_ = response.server_generation;
  }
  return response;
}

}  // namespace uucs
