#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "server/server.hpp"
#include "util/clock.hpp"

namespace uucs {

/// Client-side view of the server: the two interactions of §2, both
/// initiated by the client. Implemented directly by LocalServerApi
/// (in-process server object) and by RemoteServerApi (wire protocol over a
/// MessageChannel), so client code is transport-agnostic.
class ServerApi {
 public:
  virtual ~ServerApi() = default;

  /// Registers the client machine; returns the assigned GUID. A non-empty
  /// `nonce` makes the call idempotent: the server remembers nonce -> GUID,
  /// so a retry after a lost response returns the existing registration
  /// instead of minting an orphan. Nonce uniqueness is the caller's
  /// contract (UucsClient derives it from its per-client seed).
  virtual Guid register_client(const HostSpec& host,
                               const std::string& nonce = "") = 0;

  /// Performs one hot sync.
  virtual SyncResponse hot_sync(const SyncRequest& request) = 0;
};

/// Direct adapter over an in-process UucsServer (no serialization).
class LocalServerApi final : public ServerApi {
 public:
  explicit LocalServerApi(UucsServer& server, Clock* clock = nullptr)
      : server_(server), clock_(clock) {}

  Guid register_client(const HostSpec& host, const std::string& nonce = "") override {
    return server_.register_client(host, clock_ ? clock_->now() : 0.0, nonce);
  }
  SyncResponse hot_sync(const SyncRequest& request) override {
    return server_.hot_sync(request);
  }

 private:
  UucsServer& server_;
  Clock* clock_;
};

/// Bidirectional, message-oriented, blocking byte channel. One message in,
/// one message out; read() returns nullopt when the peer closed.
class MessageChannel {
 public:
  virtual ~MessageChannel() = default;
  virtual void write(const std::string& message) = 0;
  virtual std::optional<std::string> read() = 0;
  virtual void close() = 0;
};

/// Wire protocol versions this build speaks. v1 is the original
/// register/sync exchange; v2 additionally echoes the version (`proto`) and
/// carries the server generation on sync responses, so a client can observe
/// a live takeover rollout. v3 adds typed backpressure: when an overloaded
/// or read-degraded server rejects a v3 request, the [error] reply carries
/// optional `kind` and `retry_after_ms` keys so the client can distinguish
/// "busy, retry later" from "your request is wrong" and spread its retries.
/// Negotiation is per-connectionless: the register request carries the
/// client's highest version, the response answers the highest version both
/// sides speak, and every sync request then states the version it is
/// encoded in (absent = 1). Each version only *adds* optional keys, so
/// either side may be older without breaking the other mid-rollout.
constexpr int kProtocolVersionMin = 1;
constexpr int kProtocolVersionMax = 3;

/// Wire codec: messages are the library's key-value text format, with the
/// record type of the first record naming the operation
/// (register-request/-response, sync-request/-response, error).
std::string encode_register_request(const HostSpec& host,
                                    const std::string& nonce = "",
                                    int protocol_version = kProtocolVersionMax);
std::string encode_register_response(const Guid& guid,
                                     int protocol_version = kProtocolVersionMin);
std::string encode_sync_request(const SyncRequest& request);
std::string encode_sync_response(const SyncResponse& response);
std::string encode_error(const std::string& message);

/// Append-style encoders: write the message into a caller-owned buffer
/// (appending, not replacing), byte-identical to the string-returning
/// variants above. The hot paths reuse one warmed buffer per worker so a
/// steady stream of encodes performs no heap allocation; the golden wire
/// tests pin both variants against checked-in fixtures.
void encode_register_response_into(const Guid& guid, int protocol_version,
                                   std::string& out);
void encode_sync_request_into(const SyncRequest& request, std::string& out);
void encode_sync_response_into(const SyncResponse& response, std::string& out);
void encode_error_into(const std::string& message, std::string& out);
void encode_busy_into(const std::string& kind, const std::string& message,
                      std::uint64_t retry_after_ms, std::string& out);

/// v3 typed backpressure: an [error] reply that additionally names its
/// shedding class (`kind`: "overload" | "degraded") and hints how long the
/// client should back off. Only ever sent to peers that asked for v3 —
/// older peers' wire bytes stay pinned (they are shed silently and their
/// retry timeout does the spreading).
std::string encode_busy(const std::string& kind, const std::string& message,
                        std::uint64_t retry_after_ms);

/// What the overload layer needs to know about a request *before* paying
/// for a full parse or dispatch: the operation, the protocol version it
/// self-describes, and whether admitting it would create new durable state
/// (registrations and uploads are write-class; a result-free sync is
/// read-class and stays serviceable while the journal is degraded).
struct RequestPeek {
  enum class Op { kRegister, kSync, kStats, kUnknown };
  Op op = Op::kUnknown;
  int protocol_version = 1;
  bool write_class = false;
};

/// Cheap, never-throwing scan of the request's head record. Operates on a
/// view (the ingest plane peeks straight into the connection's frame
/// buffer); allocates nothing. Malformed input yields kUnknown/defaults —
/// admission control must not crash on garbage the dispatcher would reject
/// anyway.
RequestPeek peek_request(std::string_view request) noexcept;

/// Server-side dispatch of one encoded request; returns the encoded
/// response (an [error] message for malformed or failing requests).
/// Journals and fsyncs accepted state before returning, so the returned
/// response may be sent immediately. `request` is only read during the
/// call (the parse is zero-copy into a per-thread arena), so callers may
/// pass a view into a transient frame buffer.
std::string dispatch_request(UucsServer& server, std::string_view request,
                             Clock* clock = nullptr);

/// Result of a deferred-durability dispatch: the encoded response plus the
/// journal entries that must be made durable *before* the response is
/// released to the client. Empty `journal_entries` (read-only or duplicate
/// requests, errors) means the response may be sent at once.
struct DispatchResult {
  std::string response;
  std::vector<std::string> journal_entries;
};

/// Like dispatch_request, but does not touch the journal itself: new state
/// is applied in memory and the entries that make it durable are handed
/// back. The ingest plane feeds them to the group-commit journal and sends
/// the response from the batch's durability callback, which is what lets
/// thousands of concurrent acks share one fsync.
DispatchResult dispatch_request_deferred(UucsServer& server,
                                         std::string_view request,
                                         Clock* clock = nullptr);

/// Serves a channel until the peer closes: read request, dispatch, reply.
void serve_channel(UucsServer& server, MessageChannel& channel, Clock* clock = nullptr);

/// ServerApi speaking the wire protocol over a MessageChannel. Throws
/// ProtocolError on malformed responses and Error on [error] replies.
class RemoteServerApi final : public ServerApi {
 public:
  /// `protocol_version` is the highest version this client speaks (an old
  /// client pins it to 1 in mixed-fleet tests). Until the server answers a
  /// register, syncs optimistically use it — safe because newer versions
  /// only add keys an older server ignores.
  explicit RemoteServerApi(MessageChannel& channel,
                           int protocol_version = kProtocolVersionMax)
      : channel_(channel),
        requested_version_(protocol_version),
        negotiated_version_(protocol_version) {}

  Guid register_client(const HostSpec& host, const std::string& nonce = "") override;
  SyncResponse hot_sync(const SyncRequest& request) override;

  /// Version agreed at the last register (or the optimistic default).
  int negotiated_version() const { return negotiated_version_; }
  /// Carries a prior negotiation across a reconnect (RetryingServerApi
  /// rebuilds this object per connection).
  void set_negotiated_version(int v) { negotiated_version_ = v; }

  /// Server generation from the last v2 sync response (0 before one, and
  /// forever 0 against a v1 server).
  std::uint64_t last_server_generation() const { return last_generation_; }

 private:
  std::string round_trip(const std::string& request);
  MessageChannel& channel_;
  int requested_version_;
  int negotiated_version_;
  std::uint64_t last_generation_ = 0;
};

}  // namespace uucs
