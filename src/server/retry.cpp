#include "server/retry.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace uucs {

RetryingServerApi::RetryingServerApi(ChannelFactory factory, Clock& clock,
                                     RetryPolicy policy)
    : factory_(std::move(factory)),
      clock_(clock),
      policy_(policy),
      jitter_(policy.jitter_seed) {
  UUCS_CHECK_MSG(policy_.max_attempts >= 1, "retry needs at least one attempt");
  UUCS_CHECK_MSG(policy_.base_delay_s > 0, "retry base delay must be positive");
  UUCS_CHECK_MSG(policy_.max_delay_s >= policy_.base_delay_s,
                 "retry max delay must be >= base delay");
}

MessageChannel& RetryingServerApi::channel() {
  if (!channel_) {
    ++connects_;
    channel_ = factory_();
    UUCS_CHECK_MSG(channel_ != nullptr, "channel factory returned nullptr");
    api_ = std::make_unique<RemoteServerApi>(*channel_, protocol_version_);
    // A reconnect must not forget what the server answered: mid-rollout the
    // negotiated version is the contract, not our optimistic maximum.
    api_->set_negotiated_version(std::min(negotiated_version_, protocol_version_));
  }
  return *channel_;
}

void RetryingServerApi::disconnect() {
  api_.reset();
  if (channel_) channel_->close();
  channel_.reset();
}

double RetryingServerApi::next_delay() {
  // Decorrelated jitter: delay ~ U[base, 3 * previous], capped. The first
  // retry seeds `previous` with base rather than returning base outright —
  // a deterministic first delay would re-synchronize every client that
  // failed at the same instant (they would all come back at exactly
  // base seconds and collide again; see the jitter-spread unit test).
  const double prev = prev_delay_ <= 0.0 ? policy_.base_delay_s : prev_delay_;
  const double hi = std::max(policy_.base_delay_s,
                             std::min(policy_.max_delay_s, 3.0 * prev));
  const double delay = jitter_.uniform(policy_.base_delay_s, hi);
  prev_delay_ = std::min(delay, policy_.max_delay_s);
  delays_.push_back(prev_delay_);
  return prev_delay_;
}

template <typename Op>
auto RetryingServerApi::with_retries(const char* what, Op&& op) -> decltype(op()) {
  for (std::size_t attempt = 1;; ++attempt) {
    try {
      channel();
      const auto result = op();
      prev_delay_ = 0.0;  // success resets the backoff ladder
      return result;
    } catch (const ServerBusyError& e) {
      // Typed v3 backpressure: the server answered — the connection and the
      // request are both fine, it just cannot take the work right now. Keep
      // the channel (reconnecting would only add load) and retry after at
      // least the server's hint, still jittered so a shed cohort spreads.
      if (attempt >= policy_.max_attempts) throw;
      ++retries_;
      ++busy_retries_;
      double delay = next_delay();
      if (e.retry_after_ms() > 0) {
        const double hint_s = static_cast<double>(e.retry_after_ms()) / 1000.0;
        delay = std::min(policy_.max_delay_s,
                         std::max(delay, jitter_.uniform(hint_s, 1.5 * hint_s)));
        prev_delay_ = delay;       // keep the ladder decorrelated from here
        delays_.back() = delay;    // record what we actually slept
      }
      log_warn("retry",
               strprintf("%s attempt %zu/%zu shed by server (%s: %s); retrying in %.3fs",
                         what, attempt, policy_.max_attempts, e.kind().c_str(),
                         e.what(), delay));
      clock_.sleep(delay);
    } catch (const Error& e) {
      // Retry only transport failures: timeouts and OS errors
      // (SystemError covers both) and torn/garbled wire exchanges
      // (ProtocolError). A plain Error is the server *answering* with
      // [error] — the request is wrong, not the network.
      const bool retryable = dynamic_cast<const SystemError*>(&e) != nullptr ||
                             dynamic_cast<const ProtocolError*>(&e) != nullptr;
      disconnect();
      if (!retryable || attempt >= policy_.max_attempts) throw;
      ++retries_;
      const double delay = next_delay();
      log_warn("retry", strprintf("%s attempt %zu/%zu failed (%s); retrying in %.3fs",
                                  what, attempt, policy_.max_attempts, e.what(),
                                  delay));
      clock_.sleep(delay);
    }
  }
}

Guid RetryingServerApi::register_client(const HostSpec& host,
                                        const std::string& nonce) {
  // Every attempt carries the same nonce: if the server registered us but
  // the response was lost, the retry resolves to the existing GUID instead
  // of leaking an orphan registration.
  return with_retries("register", [&] {
    const Guid guid = api_->register_client(host, nonce);
    negotiated_version_ = api_->negotiated_version();
    return guid;
  });
}

SyncResponse RetryingServerApi::hot_sync(const SyncRequest& request) {
  return with_retries("hot sync", [&] {
    SyncResponse response = api_->hot_sync(request);
    last_generation_ = api_->last_server_generation();
    return response;
  });
}

}  // namespace uucs
