#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "server/protocol.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

namespace uucs {

/// Backoff knobs for RetryingServerApi. Delays use "decorrelated jitter":
/// each delay is uniform in [base, 3 * previous], capped at max — fast on
/// the first retry, spread out under sustained failure so a fleet of
/// clients cannot stampede a recovering server in lockstep.
struct RetryPolicy {
  std::size_t max_attempts = 5;  ///< total tries per operation (>= 1)
  double base_delay_s = 0.5;     ///< floor of every backoff delay
  double max_delay_s = 30.0;     ///< ceiling of every backoff delay
  std::uint64_t jitter_seed = 1; ///< seeds the jitter stream (deterministic tests)
};

/// ServerApi decorator that makes the remote transport survive a hostile
/// network: transport-level failures (timeouts, disconnects, torn frames,
/// refused connections) are retried with exponential backoff + jitter over
/// a fresh channel from `factory`. Application-level failures — the server
/// answered with an [error] reply — are NOT retried; they mean the request
/// itself is wrong, and retrying cannot fix it.
///
/// Combined with the server's run_id dedup, retrying a hot sync whose
/// response was lost is safe: the records are acknowledged again, stored
/// once. Registration retries reuse the caller's nonce, so the server's
/// nonce dedup keeps a retried register exactly-once too.
class RetryingServerApi final : public ServerApi {
 public:
  /// Creates the channel for one connection attempt; may throw (treated as
  /// a retryable failure).
  using ChannelFactory = std::function<std::unique_ptr<MessageChannel>()>;

  /// `clock` supplies the backoff sleeps (a VirtualClock makes backoff
  /// unit-testable without real waiting); must outlive the api.
  RetryingServerApi(ChannelFactory factory, Clock& clock, RetryPolicy policy = {});

  Guid register_client(const HostSpec& host, const std::string& nonce = "") override;
  SyncResponse hot_sync(const SyncRequest& request) override;

  /// Drops the current connection; the next operation reconnects.
  void disconnect();

  /// Highest wire protocol version this client speaks (default: the
  /// build's maximum; mixed-fleet tests pin an "old" client to 1). Takes
  /// effect from the next connection.
  void set_protocol_version(int v) { protocol_version_ = v; }
  /// Version negotiated with the server, carried across reconnects.
  int negotiated_version() const { return negotiated_version_; }
  /// Server generation observed on the last v2 sync response — bumps by one
  /// when a live takeover happens under this client.
  std::uint64_t last_server_generation() const { return last_generation_; }

  std::size_t connects() const { return connects_; }  ///< factory invocations
  std::size_t retries() const { return retries_; }    ///< failed attempts retried
  /// Retries caused by a typed v3 busy/degraded reply (a subset of
  /// retries()); these keep the connection and honor the server's
  /// retry_after_ms hint.
  std::size_t busy_retries() const { return busy_retries_; }
  const std::vector<double>& backoff_delays() const { return delays_; }

 private:
  template <typename Op>
  auto with_retries(const char* what, Op&& op) -> decltype(op());
  MessageChannel& channel();
  double next_delay();

  ChannelFactory factory_;
  Clock& clock_;
  RetryPolicy policy_;
  Rng jitter_;
  std::unique_ptr<MessageChannel> channel_;
  std::unique_ptr<RemoteServerApi> api_;
  int protocol_version_ = kProtocolVersionMax;
  int negotiated_version_ = kProtocolVersionMax;
  std::uint64_t last_generation_ = 0;
  std::size_t connects_ = 0;
  std::size_t retries_ = 0;
  std::size_t busy_retries_ = 0;
  double prev_delay_ = 0.0;
  std::vector<double> delays_;
};

}  // namespace uucs
