#include "server/server.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"
#include "util/fs.hpp"
#include "util/logging.hpp"

namespace uucs {

namespace {

/// Stable 64→shard mix (splitmix-style finalizer) so client GUIDs spread
/// evenly across shards regardless of how the RNG laid out their bits.
std::size_t shard_index_of(const Guid& guid, std::size_t shard_count) {
  if (shard_count <= 1) return 0;
  std::uint64_t h = guid.hi ^ (guid.lo + 0x9e3779b97f4a7c15ULL);
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return static_cast<std::size_t>(h % shard_count);
}

/// Routing key for replayed/loaded rows: the client_guid the record carries.
/// Rows without one (hand-built records from the in-process simulators, or
/// pre-guid archives) home in shard 0.
std::size_t shard_index_of(const std::string& guid_text, std::size_t shard_count) {
  if (shard_count <= 1 || guid_text.empty()) return 0;
  try {
    return shard_index_of(Guid::parse(guid_text), shard_count);
  } catch (const std::exception&) {
    return 0;
  }
}

}  // namespace

UucsServer::UucsServer(std::uint64_t seed, std::size_t sample_batch,
                       std::size_t shard_count)
    : sample_batch_(sample_batch) {
  UUCS_CHECK_MSG(sample_batch_ > 0, "sample batch must be positive");
  UUCS_CHECK_MSG(shard_count > 0, "shard count must be positive");
  shards_.reserve(shard_count);
  // Shard 0's generator is seeded exactly like the pre-shard rng_ member, so
  // a single-shard server draws the same GUIDs and samples byte-for-byte.
  // Extra shards get independent streams forked from a separate seeder that
  // never perturbs shard 0's sequence.
  Rng seeder(seed);
  for (std::size_t i = 0; i < shard_count; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->rng = (i == 0) ? Rng(seed) : seeder.fork(i);
    shards_.push_back(std::move(shard));
  }
}

UucsServer::UucsServer(UucsServer&& other) noexcept
    : testcases_(std::move(other.testcases_)),
      shards_(std::move(other.shards_)),
      reg_nonces_(std::move(other.reg_nonces_)),
      sample_batch_(other.sample_batch_),
      journal_(std::move(other.journal_)),
      generation_(other.generation_.load(std::memory_order_relaxed)),
      merged_results_(std::move(other.merged_results_)),
      merged_version_(other.merged_version_),
      results_version_(other.results_version_.load(std::memory_order_relaxed)) {}

UucsServer& UucsServer::operator=(UucsServer&& other) noexcept {
  if (this != &other) {
    testcases_ = std::move(other.testcases_);
    shards_ = std::move(other.shards_);
    reg_nonces_ = std::move(other.reg_nonces_);
    sample_batch_ = other.sample_batch_;
    journal_ = std::move(other.journal_);
    generation_.store(other.generation_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    merged_results_ = std::move(other.merged_results_);
    merged_version_ = other.merged_version_;
    results_version_.store(other.results_version_.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
  }
  return *this;
}

UucsServer::Shard& UucsServer::shard_of(const Guid& guid) const {
  return *shards_[shard_index_of(guid, shards_.size())];
}

void UucsServer::add_testcase(Testcase tc) {
  std::unique_lock lock(testcases_mu_);
  testcases_.add(std::move(tc));
}

void UucsServer::add_testcases(const TestcaseStore& store) {
  std::unique_lock lock(testcases_mu_);
  testcases_.merge(store);
}

KvRecord UucsServer::registration_record(const Guid& guid,
                                         const ClientRegistration& reg) const {
  KvRecord rec = reg.host.to_record();
  rec.set_type("registration");
  rec.set("guid", guid.to_string());
  rec.set_double("registered_at", reg.registered_at);
  rec.set_int("sync_count", static_cast<std::int64_t>(reg.sync_count));
  rec.set_int("last_sync_seq", static_cast<std::int64_t>(reg.last_sync_seq));
  if (!reg.nonce.empty()) rec.set("nonce", reg.nonce);
  return rec;
}

void UucsServer::restore_registration(const KvRecord& rec) {
  ClientRegistration reg;
  reg.guid = Guid::parse(rec.get("guid"));
  KvRecord host_rec = rec;
  host_rec.set_type("host");
  reg.host = HostSpec::from_record(host_rec);
  reg.registered_at = rec.get_double_or("registered_at", 0.0);
  reg.sync_count = static_cast<std::size_t>(rec.get_int_or("sync_count", 0));
  reg.last_sync_seq =
      static_cast<std::uint64_t>(rec.get_int_or("last_sync_seq", 0));
  reg.nonce = rec.get_or("nonce", "");
  const Guid guid = reg.guid;
  if (!reg.nonce.empty()) reg_nonces_[reg.nonce] = guid;
  shard_of(guid).clients[guid] = std::move(reg);
}

bool UucsServer::restore_result(RunRecord r, bool dedup) {
  Shard& shard = *shards_[shard_index_of(r.client_guid, shards_.size())];
  if (!r.run_id.empty()) {
    if (dedup && shard.seen_run_ids.count(r.run_id) != 0) return false;
    shard.seen_run_ids.insert(r.run_id);
  }
  shard.results.add(std::move(r));
  return true;
}

void UucsServer::index_results() {
  for (auto& shard : shards_) {
    shard->seen_run_ids.clear();
    for (const auto& r : shard->results.records()) {
      if (!r.run_id.empty()) shard->seen_run_ids.insert(r.run_id);
    }
  }
}

void UucsServer::append_blocking(const std::vector<std::string>& entries) {
  std::lock_guard lock(journal_mu_);
  journal_->append_batch(entries);
}

Guid UucsServer::register_client(const HostSpec& host, double now,
                                 const std::string& nonce,
                                 std::vector<std::string>* journal_out) {
  std::lock_guard reg_lock(reg_mu_);
  if (!nonce.empty()) {
    const auto it = reg_nonces_.find(nonce);
    if (it != reg_nonces_.end()) {
      // Retry of a registration whose response was lost: same client, same
      // GUID — no orphan row, nothing new to journal.
      log_info("server", "duplicate registration (nonce " + nonce +
                             ") -> existing client " + it->second.to_string());
      return it->second;
    }
  }
  ClientRegistration reg;
  {
    // GUIDs mint from shard 0's generator — the pre-shard rng_ — which keeps
    // the single-shard draw sequence identical to the old implementation.
    std::lock_guard mint_lock(shards_[0]->mu);
    reg.guid = Guid::generate(shards_[0]->rng);
  }
  reg.host = host;
  reg.registered_at = now;
  reg.nonce = nonce;
  const Guid guid = reg.guid;
  if (journal_) {
    std::vector<std::string> entries{kv_serialize({registration_record(guid, reg)})};
    if (journal_out != nullptr) {
      // Deferred-ack path: the caller owns durability (group commit) and
      // must fsync these before the response leaves the server.
      for (auto& e : entries) journal_out->push_back(std::move(e));
    } else {
      append_blocking(entries);
    }
  }
  if (!nonce.empty()) reg_nonces_[nonce] = guid;
  {
    Shard& shard = shard_of(guid);
    std::lock_guard shard_lock(shard.mu);
    shard.clients.emplace(guid, std::move(reg));
  }
  log_info("server", "registered client " + guid.to_string());
  return guid;
}

bool UucsServer::is_registered(const Guid& guid) const {
  Shard& shard = shard_of(guid);
  std::lock_guard lock(shard.mu);
  return shard.clients.count(guid) != 0;
}

const ClientRegistration& UucsServer::registration(const Guid& guid) const {
  Shard& shard = shard_of(guid);
  std::lock_guard lock(shard.mu);
  const auto it = shard.clients.find(guid);
  if (it == shard.clients.end()) throw Error("unknown client " + guid.to_string());
  return it->second;
}

std::size_t UucsServer::client_count() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    n += shard->clients.size();
  }
  return n;
}

bool UucsServer::has_result(const std::string& run_id) const {
  if (run_id.empty()) return false;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    if (shard->seen_run_ids.count(run_id) != 0) return true;
  }
  return false;
}

SyncResponse UucsServer::hot_sync(const SyncRequest& request,
                                  std::vector<std::string>* journal_out) {
  Shard& shard = shard_of(request.guid);
  SyncResponse response;
  response.protocol_version =
      request.protocol_version == 0 ? 1 : request.protocol_version;
  response.server_generation = generation();
  std::vector<std::string> journal_entries;
  {
    std::lock_guard shard_lock(shard.mu);
    const auto it = shard.clients.find(request.guid);
    if (it == shard.clients.end()) {
      throw Error("hot sync from unregistered client " + request.guid.to_string());
    }
    ClientRegistration& reg = it->second;

    // Exactly-once uploads: a run_id the store already holds is a retry of a
    // sync whose response was lost — acknowledge it without storing again.
    // (Dedup is shard-local, which is complete because every upload of a
    // given run_id arrives under the same client GUID and therefore lands in
    // the same shard.)
    for (const auto& r : request.results) {
      if (!r.run_id.empty()) {
        if (shard.seen_run_ids.count(r.run_id) != 0) {
          ++response.duplicate_results;
          response.stored_run_ids.push_back(r.run_id);
          continue;
        }
        shard.seen_run_ids.insert(r.run_id);
        response.stored_run_ids.push_back(r.run_id);
      }
      if (journal_) {
        // Journal bytes are pinned: serialize_into is byte-identical to
        // kv_serialize({r.to_record()}) without the intermediate KvRecord.
        std::string entry;
        r.serialize_into(entry);
        journal_entries.push_back(std::move(entry));
      }
      shard.results.add(r);
      ++response.accepted_results;
    }
    if (response.accepted_results > 0) {
      results_version_.fetch_add(1, std::memory_order_relaxed);
    }

    // Growing random sample: every sync may add up to sample_batch_ fresh
    // testcases on top of what the client already holds. The draw comes from
    // the client's home-shard generator, so syncs on different shards never
    // serialize on one RNG.
    {
      std::shared_lock tc_lock(testcases_mu_);
      const auto fresh_ids = testcases_.random_sample(sample_batch_, shard.rng,
                                                      request.known_testcase_ids);
      response.new_testcases.reserve(fresh_ids.size());
      for (const auto& id : fresh_ids) {
        response.new_testcases.push_back(testcases_.get(id));
      }
      response.server_testcase_count = testcases_.size();
    }
    ++reg.sync_count;
    if (request.sync_seq > reg.last_sync_seq) reg.last_sync_seq = request.sync_seq;
  }

  // Durable before acknowledged: once the response leaves, a crash cannot
  // lose what it acked. The blocking path fsyncs here; the deferred path
  // hands the entries to the caller's group commit, which fsyncs the batch
  // before releasing any of its responses.
  if (journal_ && !journal_entries.empty()) {
    if (journal_out != nullptr) {
      for (auto& e : journal_entries) journal_out->push_back(std::move(e));
    } else {
      append_blocking(journal_entries);
    }
  }
  return response;
}

const ResultStore& UucsServer::results() const {
  if (shards_.size() == 1) return shards_[0]->results;
  std::lock_guard merged_lock(merged_mu_);
  const std::uint64_t version = results_version_.load(std::memory_order_acquire);
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    total += shard->results.size();
  }
  // Size is compared as well as the version so mutations through
  // mutable_results() (which bypass the version counter by design) still
  // invalidate the cache.
  if (version != merged_version_ || total != merged_results_.size()) {
    ResultStore merged;
    merged.reserve(total);
    for (const auto& shard : shards_) {
      std::lock_guard lock(shard->mu);
      merged.merge(shard->results);
    }
    merged_results_ = std::move(merged);
    merged_version_ = version;
  }
  return merged_results_;
}

ResultStore& UucsServer::mutable_results() { return shards_[0]->results; }

std::size_t UucsServer::attach_journal(const std::string& path) {
  journal_ = std::make_unique<Journal>(Journal::open(path));
  index_results();
  std::size_t recovered = 0;
  for (const auto& entry : journal_->entries()) {
    const auto records = kv_parse(entry);
    if (records.empty()) continue;
    const KvRecord& rec = records.front();
    if (rec.type() == "run") {
      if (restore_result(RunRecord::from_record(rec), /*dedup=*/true)) ++recovered;
    } else if (rec.type() == "registration") {
      restore_registration(rec);
      ++recovered;
    } else {
      throw ParseError("journal " + path + ": unexpected [" + rec.type() + "] entry");
    }
  }
  if (recovered > 0 || journal_->recovery().dropped_bytes > 0) {
    log_info("server",
             "journal " + path + ": recovered " + std::to_string(recovered) +
                 " entries, dropped " +
                 std::to_string(journal_->recovery().dropped_bytes) +
                 " torn bytes");
  }
  return recovered;
}

void UucsServer::save(const std::string& dir) const {
  make_dirs(dir);
  // Every shard is held for the snapshot's duration so the three files are a
  // consistent cut; in-flight syncs stall rather than straddle it.
  std::vector<std::unique_lock<std::mutex>> shard_locks;
  shard_locks.reserve(shards_.size());
  for (const auto& shard : shards_) shard_locks.emplace_back(shard->mu);

  {
    std::shared_lock tc_lock(testcases_mu_);
    testcases_.save(dir + "/testcases.txt");
  }
  if (shards_.size() == 1) {
    shards_[0]->results.save(dir + "/results.txt");
  } else {
    ResultStore merged;
    for (const auto& shard : shards_) merged.merge(shard->results);
    merged.save(dir + "/results.txt");
  }
  // Registrations are sorted by GUID across shards, matching the single-map
  // iteration order the pre-shard implementation wrote.
  std::vector<std::pair<Guid, const ClientRegistration*>> regs;
  for (const auto& shard : shards_) {
    for (const auto& [guid, reg] : shard->clients) regs.emplace_back(guid, &reg);
  }
  std::sort(regs.begin(), regs.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<KvRecord> reg_records;
  reg_records.reserve(regs.size());
  for (const auto& [guid, reg] : regs) {
    reg_records.push_back(registration_record(guid, *reg));
  }
  kv_save_file(dir + "/registrations.txt", reg_records);
  // Each snapshot file above is written atomically + durably (tmp + fsync +
  // rename), so only after all of them are safely on disk may the journal —
  // the only other copy of acknowledged data — be compacted away.
  if (journal_) {
    std::lock_guard journal_lock(journal_mu_);
    journal_->compact({});
  }
}

UucsServer UucsServer::load(const std::string& dir, std::uint64_t seed,
                            std::size_t shard_count) {
  UucsServer server(seed, 16, shard_count);
  server.testcases_ = TestcaseStore::load(dir + "/testcases.txt");
  for (auto& r : ResultStore::load(dir + "/results.txt").drain()) {
    server.restore_result(std::move(r), /*dedup=*/false);
  }
  for (const auto& rec : kv_load_file(dir + "/registrations.txt")) {
    if (rec.type() != "registration") {
      throw ParseError("expected [registration] record, got [" + rec.type() + "]");
    }
    server.restore_registration(rec);
  }
  return server;
}

}  // namespace uucs
