#include "server/server.hpp"

#include "util/error.hpp"
#include "util/fs.hpp"
#include "util/logging.hpp"

namespace uucs {

UucsServer::UucsServer(std::uint64_t seed, std::size_t sample_batch)
    : rng_(seed), sample_batch_(sample_batch) {
  UUCS_CHECK_MSG(sample_batch_ > 0, "sample batch must be positive");
}

void UucsServer::add_testcase(Testcase tc) { testcases_.add(std::move(tc)); }

void UucsServer::add_testcases(const TestcaseStore& store) { testcases_.merge(store); }

KvRecord UucsServer::registration_record(const Guid& guid,
                                         const ClientRegistration& reg) const {
  KvRecord rec = reg.host.to_record();
  rec.set_type("registration");
  rec.set("guid", guid.to_string());
  rec.set_double("registered_at", reg.registered_at);
  rec.set_int("sync_count", static_cast<std::int64_t>(reg.sync_count));
  rec.set_int("last_sync_seq", static_cast<std::int64_t>(reg.last_sync_seq));
  if (!reg.nonce.empty()) rec.set("nonce", reg.nonce);
  return rec;
}

void UucsServer::restore_registration(const KvRecord& rec) {
  ClientRegistration reg;
  reg.guid = Guid::parse(rec.get("guid"));
  KvRecord host_rec = rec;
  host_rec.set_type("host");
  reg.host = HostSpec::from_record(host_rec);
  reg.registered_at = rec.get_double_or("registered_at", 0.0);
  reg.sync_count = static_cast<std::size_t>(rec.get_int_or("sync_count", 0));
  reg.last_sync_seq =
      static_cast<std::uint64_t>(rec.get_int_or("last_sync_seq", 0));
  reg.nonce = rec.get_or("nonce", "");
  const Guid guid = reg.guid;
  if (!reg.nonce.empty()) reg_nonces_[reg.nonce] = guid;
  clients_[guid] = std::move(reg);
}

void UucsServer::index_results() {
  seen_run_ids_.clear();
  for (const auto& r : results_.records()) {
    if (!r.run_id.empty()) seen_run_ids_.insert(r.run_id);
  }
}

Guid UucsServer::register_client(const HostSpec& host, double now,
                                 const std::string& nonce) {
  if (!nonce.empty()) {
    const auto it = reg_nonces_.find(nonce);
    if (it != reg_nonces_.end()) {
      // Retry of a registration whose response was lost: same client, same
      // GUID — no orphan row, nothing new to journal.
      log_info("server", "duplicate registration (nonce " + nonce +
                             ") -> existing client " + it->second.to_string());
      return it->second;
    }
  }
  ClientRegistration reg;
  reg.guid = Guid::generate(rng_);
  reg.host = host;
  reg.registered_at = now;
  reg.nonce = nonce;
  const Guid guid = reg.guid;
  if (journal_) journal_->append(kv_serialize({registration_record(guid, reg)}));
  if (!nonce.empty()) reg_nonces_[nonce] = guid;
  clients_.emplace(guid, std::move(reg));
  log_info("server", "registered client " + guid.to_string());
  return guid;
}

bool UucsServer::is_registered(const Guid& guid) const {
  return clients_.count(guid) != 0;
}

const ClientRegistration& UucsServer::registration(const Guid& guid) const {
  const auto it = clients_.find(guid);
  if (it == clients_.end()) throw Error("unknown client " + guid.to_string());
  return it->second;
}

bool UucsServer::has_result(const std::string& run_id) const {
  return !run_id.empty() && seen_run_ids_.count(run_id) != 0;
}

SyncResponse UucsServer::hot_sync(const SyncRequest& request) {
  const auto it = clients_.find(request.guid);
  if (it == clients_.end()) {
    throw Error("hot sync from unregistered client " + request.guid.to_string());
  }
  ClientRegistration& reg = it->second;

  SyncResponse response;
  // Exactly-once uploads: a run_id the store already holds is a retry of a
  // sync whose response was lost — acknowledge it without storing again.
  std::vector<std::string> journal_entries;
  for (const auto& r : request.results) {
    if (!r.run_id.empty()) {
      if (seen_run_ids_.count(r.run_id) != 0) {
        ++response.duplicate_results;
        response.stored_run_ids.push_back(r.run_id);
        continue;
      }
      seen_run_ids_.insert(r.run_id);
      response.stored_run_ids.push_back(r.run_id);
    }
    if (journal_) journal_entries.push_back(kv_serialize({r.to_record()}));
    results_.add(r);
    ++response.accepted_results;
  }
  // Durable before acknowledged: once the response leaves, a crash cannot
  // lose what it acked.
  if (journal_ && !journal_entries.empty()) journal_->append_batch(journal_entries);

  // Growing random sample: every sync may add up to sample_batch_ fresh
  // testcases on top of what the client already holds.
  const auto fresh_ids =
      testcases_.random_sample(sample_batch_, rng_, request.known_testcase_ids);
  response.new_testcases.reserve(fresh_ids.size());
  for (const auto& id : fresh_ids) response.new_testcases.push_back(testcases_.get(id));
  response.server_testcase_count = testcases_.size();
  ++reg.sync_count;
  if (request.sync_seq > reg.last_sync_seq) reg.last_sync_seq = request.sync_seq;
  return response;
}

std::size_t UucsServer::attach_journal(const std::string& path) {
  journal_ = std::make_unique<Journal>(Journal::open(path));
  index_results();
  std::size_t recovered = 0;
  for (const auto& entry : journal_->entries()) {
    const auto records = kv_parse(entry);
    if (records.empty()) continue;
    const KvRecord& rec = records.front();
    if (rec.type() == "run") {
      RunRecord r = RunRecord::from_record(rec);
      if (!r.run_id.empty() && seen_run_ids_.count(r.run_id) != 0) continue;
      if (!r.run_id.empty()) seen_run_ids_.insert(r.run_id);
      results_.add(std::move(r));
      ++recovered;
    } else if (rec.type() == "registration") {
      restore_registration(rec);
      ++recovered;
    } else {
      throw ParseError("journal " + path + ": unexpected [" + rec.type() + "] entry");
    }
  }
  if (recovered > 0 || journal_->recovery().dropped_bytes > 0) {
    log_info("server",
             "journal " + path + ": recovered " + std::to_string(recovered) +
                 " entries, dropped " +
                 std::to_string(journal_->recovery().dropped_bytes) +
                 " torn bytes");
  }
  return recovered;
}

void UucsServer::save(const std::string& dir) const {
  make_dirs(dir);
  testcases_.save(dir + "/testcases.txt");
  results_.save(dir + "/results.txt");
  std::vector<KvRecord> regs;
  for (const auto& [guid, reg] : clients_) {
    regs.push_back(registration_record(guid, reg));
  }
  kv_save_file(dir + "/registrations.txt", regs);
  // Each snapshot file above is written atomically + durably (tmp + fsync +
  // rename), so only after all of them are safely on disk may the journal —
  // the only other copy of acknowledged data — be compacted away.
  if (journal_) journal_->compact({});
}

UucsServer UucsServer::load(const std::string& dir, std::uint64_t seed) {
  UucsServer server(seed);
  server.testcases_ = TestcaseStore::load(dir + "/testcases.txt");
  server.results_ = ResultStore::load(dir + "/results.txt");
  server.index_results();
  for (const auto& rec : kv_load_file(dir + "/registrations.txt")) {
    if (rec.type() != "registration") {
      throw ParseError("expected [registration] record, got [" + rec.type() + "]");
    }
    server.restore_registration(rec);
  }
  return server;
}

}  // namespace uucs
