#include "server/server.hpp"

#include "util/error.hpp"
#include "util/fs.hpp"
#include "util/logging.hpp"

namespace uucs {

UucsServer::UucsServer(std::uint64_t seed, std::size_t sample_batch)
    : rng_(seed), sample_batch_(sample_batch) {
  UUCS_CHECK_MSG(sample_batch_ > 0, "sample batch must be positive");
}

void UucsServer::add_testcase(Testcase tc) { testcases_.add(std::move(tc)); }

void UucsServer::add_testcases(const TestcaseStore& store) { testcases_.merge(store); }

Guid UucsServer::register_client(const HostSpec& host, double now) {
  ClientRegistration reg;
  reg.guid = Guid::generate(rng_);
  reg.host = host;
  reg.registered_at = now;
  const Guid guid = reg.guid;
  clients_.emplace(guid, std::move(reg));
  log_info("server", "registered client " + guid.to_string());
  return guid;
}

bool UucsServer::is_registered(const Guid& guid) const {
  return clients_.count(guid) != 0;
}

const ClientRegistration& UucsServer::registration(const Guid& guid) const {
  const auto it = clients_.find(guid);
  if (it == clients_.end()) throw Error("unknown client " + guid.to_string());
  return it->second;
}

SyncResponse UucsServer::hot_sync(const SyncRequest& request) {
  const auto it = clients_.find(request.guid);
  if (it == clients_.end()) {
    throw Error("hot sync from unregistered client " + request.guid.to_string());
  }
  ClientRegistration& reg = it->second;

  SyncResponse response;
  for (const auto& r : request.results) results_.add(r);
  response.accepted_results = request.results.size();

  // Growing random sample: every sync may add up to sample_batch_ fresh
  // testcases on top of what the client already holds.
  const auto fresh_ids =
      testcases_.random_sample(sample_batch_, rng_, request.known_testcase_ids);
  response.new_testcases.reserve(fresh_ids.size());
  for (const auto& id : fresh_ids) response.new_testcases.push_back(testcases_.get(id));
  response.server_testcase_count = testcases_.size();
  ++reg.sync_count;
  return response;
}

void UucsServer::save(const std::string& dir) const {
  make_dirs(dir);
  testcases_.save(dir + "/testcases.txt");
  results_.save(dir + "/results.txt");
  std::vector<KvRecord> regs;
  for (const auto& [guid, reg] : clients_) {
    KvRecord rec = reg.host.to_record();
    rec.set_type("registration");
    rec.set("guid", guid.to_string());
    rec.set_double("registered_at", reg.registered_at);
    rec.set_int("sync_count", static_cast<std::int64_t>(reg.sync_count));
    regs.push_back(std::move(rec));
  }
  kv_save_file(dir + "/registrations.txt", regs);
}

UucsServer UucsServer::load(const std::string& dir, std::uint64_t seed) {
  UucsServer server(seed);
  server.testcases_ = TestcaseStore::load(dir + "/testcases.txt");
  server.results_ = ResultStore::load(dir + "/results.txt");
  for (const auto& rec : kv_load_file(dir + "/registrations.txt")) {
    if (rec.type() != "registration") {
      throw ParseError("expected [registration] record, got [" + rec.type() + "]");
    }
    ClientRegistration reg;
    reg.guid = Guid::parse(rec.get("guid"));
    KvRecord host_rec = rec;
    host_rec.set_type("host");
    reg.host = HostSpec::from_record(host_rec);
    reg.registered_at = rec.get_double_or("registered_at", 0.0);
    reg.sync_count = static_cast<std::size_t>(rec.get_int_or("sync_count", 0));
    server.clients_.emplace(reg.guid, std::move(reg));
  }
  return server;
}

}  // namespace uucs
