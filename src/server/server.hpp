#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "monitor/sysinfo.hpp"
#include "testcase/run_record.hpp"
#include "testcase/store.hpp"
#include "util/guid.hpp"
#include "util/journal.hpp"
#include "util/rng.hpp"

namespace uucs {

/// A registered client: the GUID the server assigned plus the registration
/// snapshot (§2: registration provides "a detailed snapshot of the hardware
/// and software of the client machine").
struct ClientRegistration {
  Guid guid;
  HostSpec host;
  double registered_at = 0.0;  ///< server-clock seconds
  std::size_t sync_count = 0;  ///< completed hot syncs (drives sample growth)
  std::uint64_t last_sync_seq = 0;  ///< highest sync sequence number seen
  std::string nonce;  ///< client-supplied idempotency key ("" = none)
};

/// What a client sends on a hot sync.
struct SyncRequest {
  Guid guid;
  std::uint64_t sync_seq = 0;  ///< client-monotone sync counter (retries reuse it)
  std::vector<std::string> known_testcase_ids;  ///< already downloaded
  std::vector<RunRecord> results;               ///< new results to upload
  /// Wire protocol version this request is encoded in (see protocol.hpp);
  /// 1 on the wire when the key is absent, so old clients need no change.
  std::uint32_t protocol_version = 1;
};

/// What the server returns from a hot sync.
struct SyncResponse {
  std::vector<Testcase> new_testcases;  ///< growing random sample
  std::size_t accepted_results = 0;     ///< newly stored this sync
  std::size_t duplicate_results = 0;    ///< already held (a retried upload)
  /// Every uploaded run_id the server now durably holds — new or duplicate.
  /// The client clears exactly these from its pending store, which makes a
  /// retry after a lost response exactly-once.
  std::vector<std::string> stored_run_ids;
  std::size_t server_testcase_count = 0;
  /// Version the response is encoded in: mirrors the request's (a v1
  /// request gets a byte-identical v1 response).
  std::uint32_t protocol_version = 1;
  /// Server generation (bumped per live takeover); meaningful — and on the
  /// wire — only at protocol v2.
  std::uint64_t server_generation = 0;
};

/// The UUCS server (§2): holds the master testcase store, collects results,
/// registers clients, and hands each syncing client a *growing random
/// sample* of testcases — combined with the client's local random choice
/// and Poisson execution times, this makes the fleet execute a random
/// sample with respect to testcases, users, and times.
///
/// Uploads are idempotent: results are deduplicated by run_id, so a client
/// that retries a hot sync after a lost response stores each record exactly
/// once. With attach_journal(), every accepted result and registration is
/// journaled (fsync'd) before it is acknowledged, so a crash between
/// save() snapshots loses nothing.
///
/// Sharding (the million-connection ingest plane, DESIGN.md §13): the
/// mutable per-client state — registrations, the run_id dedup index, the
/// result rows, the sampling RNG — lives in `shard_count` independently
/// locked shards keyed by client-GUID hash, so event-loop worker threads
/// handling different clients never serialize on one mutex. With the
/// default single shard the server behaves bit-for-bit like the pre-shard
/// implementation (one state block, one RNG, same draw sequence), which is
/// what the simulators and golden fixtures pin. register_client and
/// hot_sync are thread-safe at any shard count; the bulk accessors
/// (results(), registration(), save()) take the shard locks they need but
/// return references that assume the caller reads them quiesced.
///
/// Dedup scope: run_ids are client-scoped unique (the client mints
/// "guid/serial"), and every upload and retry of a record arrives under the
/// same client GUID, so the per-shard dedup index sees all copies of a
/// given run_id in one shard.
class UucsServer {
 public:
  /// `sample_batch`: how many fresh testcases each hot sync may add.
  /// `shard_count`: independently locked state shards (see class comment).
  explicit UucsServer(std::uint64_t seed = 1, std::size_t sample_batch = 16,
                      std::size_t shard_count = 1);

  /// Movable so factories (load()) can return by value. Moving a server that
  /// other threads are touching is undefined — move only quiesced instances;
  /// the mutexes themselves are not moved (the target gets fresh ones, and
  /// per-shard locks travel inside their heap-allocated shards).
  UucsServer(UucsServer&& other) noexcept;
  UucsServer& operator=(UucsServer&& other) noexcept;
  UucsServer(const UucsServer&) = delete;
  UucsServer& operator=(const UucsServer&) = delete;

  /// Testcase catalog management (new testcases may be added at any time;
  /// guarded by a reader-writer lock against concurrent hot syncs).
  void add_testcase(Testcase tc);
  void add_testcases(const TestcaseStore& store);
  const TestcaseStore& testcases() const { return testcases_; }

  std::size_t shard_count() const { return shards_.size(); }

  /// Registers a client and returns its new globally unique identifier.
  /// A non-empty `nonce` makes registration idempotent: if a registration
  /// with the same nonce already exists (this process, a journal replay, or
  /// a snapshot), its GUID is returned instead of minting an orphan — so a
  /// client retrying after a lost register response stays one client.
  ///
  /// With a journal attached and `journal_out == nullptr`, the registration
  /// entry is appended (fsync'd) before this returns. With `journal_out`
  /// non-null the entry is handed back instead, and the caller must make it
  /// durable before releasing the response — the ingest plane routes it
  /// through the group-commit journal and acks on batch fsync.
  Guid register_client(const HostSpec& host, double now = 0.0,
                       const std::string& nonce = "",
                       std::vector<std::string>* journal_out = nullptr);

  /// True if `guid` belongs to a registered client.
  bool is_registered(const Guid& guid) const;
  const ClientRegistration& registration(const Guid& guid) const;
  std::size_t client_count() const;

  /// Handles one hot sync: stores the uploaded results (deduplicated by
  /// run_id) and returns a fresh batch of testcases the client does not
  /// have yet. Throws Error for an unregistered guid.
  ///
  /// Journal handling matches register_client: with `journal_out` null the
  /// accepted results are appended + fsync'd before returning; non-null
  /// hands the entries back for the caller's group commit, which must fsync
  /// them before the response (the ack) leaves the server.
  SyncResponse hot_sync(const SyncRequest& request,
                        std::vector<std::string>* journal_out = nullptr);

  /// True if a result with this run_id has been stored via hot_sync (or
  /// recovered from a snapshot/journal).
  bool has_result(const std::string& run_id) const;

  /// All results uploaded so far. With one shard this is the live store;
  /// with several it is a merged view (shard-index order, arrival order
  /// within a shard) rebuilt when stale — call it quiesced.
  const ResultStore& results() const;

  /// Direct store access for the in-process simulators (single-threaded
  /// deployments only; rows land in shard 0 and bypass the dedup index,
  /// exactly like the pre-shard implementation).
  ResultStore& mutable_results();

  /// Opens (creating if needed) an fsync'd append-only journal at `path`,
  /// replays any entries that survived a crash, and from now on journals
  /// every accepted result and registration before acknowledging it.
  /// Returns the number of journal entries recovered. Replayed entries are
  /// routed to shards by the client GUID they carry.
  std::size_t attach_journal(const std::string& path);
  bool has_journal() const { return journal_ != nullptr; }
  const Journal* journal() const { return journal_.get(); }
  Journal* mutable_journal() { return journal_.get(); }

  /// Persists stores as text files under `dir` (testcases.txt, results.txt,
  /// registrations.txt). With a journal attached, the journal is compacted
  /// to empty afterwards — the snapshot now holds everything. Takes every
  /// shard lock, so it is safe to call while syncs are in flight (they
  /// stall for the snapshot's duration); the journal side must be quiesced
  /// by the caller when a group-commit thread is attached to it.
  void save(const std::string& dir) const;

  /// Loads stores previously saved with save().
  static UucsServer load(const std::string& dir, std::uint64_t seed = 1,
                         std::size_t shard_count = 1);

  /// Server generation: bumped by one at every live takeover, so clients
  /// (and the `uucsctl upgrade` verifier) can observe a rollout happening.
  /// In-memory only — a restart from disk starts back at 0, which is fine
  /// because the generation orders *handoffs*, not persisted state.
  std::uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }
  void set_generation(std::uint64_t g) {
    generation_.store(g, std::memory_order_release);
  }

 private:
  /// One independently locked slice of the mutable per-client state.
  struct Shard {
    mutable std::mutex mu;
    std::map<Guid, ClientRegistration> clients;
    std::unordered_set<std::string> seen_run_ids;  ///< dedup index over results
    ResultStore results;
    Rng rng{1};  ///< growing-sample draws for clients homed here
  };

  Shard& shard_of(const Guid& guid) const;
  KvRecord registration_record(const Guid& guid, const ClientRegistration& reg) const;
  void restore_registration(const KvRecord& rec);
  bool restore_result(RunRecord r, bool dedup);
  void index_results();
  void append_blocking(const std::vector<std::string>& entries);

  TestcaseStore testcases_;
  mutable std::shared_mutex testcases_mu_;

  std::vector<std::unique_ptr<Shard>> shards_;

  /// Registration path: nonce idempotency index + GUID minting order. Taken
  /// before any shard lock; never taken while one is held.
  mutable std::mutex reg_mu_;
  std::map<std::string, Guid> reg_nonces_;

  std::size_t sample_batch_;
  std::unique_ptr<Journal> journal_;
  mutable std::mutex journal_mu_;  ///< serializes blocking appends

  std::atomic<std::uint64_t> generation_{0};

  /// Merged results() view for shard_count > 1.
  mutable std::mutex merged_mu_;
  mutable ResultStore merged_results_;
  mutable std::uint64_t merged_version_ = 0;
  mutable std::atomic<std::uint64_t> results_version_{1};
};

}  // namespace uucs
