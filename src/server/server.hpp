#pragma once

#include <map>
#include <string>
#include <vector>

#include "monitor/sysinfo.hpp"
#include "testcase/run_record.hpp"
#include "testcase/store.hpp"
#include "util/guid.hpp"
#include "util/rng.hpp"

namespace uucs {

/// A registered client: the GUID the server assigned plus the registration
/// snapshot (§2: registration provides "a detailed snapshot of the hardware
/// and software of the client machine").
struct ClientRegistration {
  Guid guid;
  HostSpec host;
  double registered_at = 0.0;  ///< server-clock seconds
  std::size_t sync_count = 0;  ///< completed hot syncs (drives sample growth)
};

/// What a client sends on a hot sync.
struct SyncRequest {
  Guid guid;
  std::vector<std::string> known_testcase_ids;  ///< already downloaded
  std::vector<RunRecord> results;               ///< new results to upload
};

/// What the server returns from a hot sync.
struct SyncResponse {
  std::vector<Testcase> new_testcases;  ///< growing random sample
  std::size_t accepted_results = 0;
  std::size_t server_testcase_count = 0;
};

/// The UUCS server (§2): holds the master testcase store, collects results,
/// registers clients, and hands each syncing client a *growing random
/// sample* of testcases — combined with the client's local random choice
/// and Poisson execution times, this makes the fleet execute a random
/// sample with respect to testcases, users, and times.
class UucsServer {
 public:
  /// `sample_batch`: how many fresh testcases each hot sync may add.
  explicit UucsServer(std::uint64_t seed = 1, std::size_t sample_batch = 16);

  /// Testcase catalog management (new testcases may be added at any time).
  void add_testcase(Testcase tc);
  void add_testcases(const TestcaseStore& store);
  const TestcaseStore& testcases() const { return testcases_; }

  /// Registers a client and returns its new globally unique identifier.
  Guid register_client(const HostSpec& host, double now = 0.0);

  /// True if `guid` belongs to a registered client.
  bool is_registered(const Guid& guid) const;
  const ClientRegistration& registration(const Guid& guid) const;
  std::size_t client_count() const { return clients_.size(); }

  /// Handles one hot sync: stores the uploaded results and returns a fresh
  /// batch of testcases the client does not have yet. Throws Error for an
  /// unregistered guid.
  SyncResponse hot_sync(const SyncRequest& request);

  /// All results uploaded so far.
  const ResultStore& results() const { return results_; }
  ResultStore& mutable_results() { return results_; }

  /// Persists stores as text files under `dir` (testcases.txt, results.txt,
  /// registrations.txt).
  void save(const std::string& dir) const;

  /// Loads stores previously saved with save().
  static UucsServer load(const std::string& dir, std::uint64_t seed = 1);

 private:
  TestcaseStore testcases_;
  ResultStore results_;
  std::map<Guid, ClientRegistration> clients_;
  Rng rng_;
  std::size_t sample_batch_;
};

}  // namespace uucs
