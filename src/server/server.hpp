#pragma once

#include <map>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "monitor/sysinfo.hpp"
#include "testcase/run_record.hpp"
#include "testcase/store.hpp"
#include "util/guid.hpp"
#include "util/journal.hpp"
#include "util/rng.hpp"

namespace uucs {

/// A registered client: the GUID the server assigned plus the registration
/// snapshot (§2: registration provides "a detailed snapshot of the hardware
/// and software of the client machine").
struct ClientRegistration {
  Guid guid;
  HostSpec host;
  double registered_at = 0.0;  ///< server-clock seconds
  std::size_t sync_count = 0;  ///< completed hot syncs (drives sample growth)
  std::uint64_t last_sync_seq = 0;  ///< highest sync sequence number seen
  std::string nonce;  ///< client-supplied idempotency key ("" = none)
};

/// What a client sends on a hot sync.
struct SyncRequest {
  Guid guid;
  std::uint64_t sync_seq = 0;  ///< client-monotone sync counter (retries reuse it)
  std::vector<std::string> known_testcase_ids;  ///< already downloaded
  std::vector<RunRecord> results;               ///< new results to upload
};

/// What the server returns from a hot sync.
struct SyncResponse {
  std::vector<Testcase> new_testcases;  ///< growing random sample
  std::size_t accepted_results = 0;     ///< newly stored this sync
  std::size_t duplicate_results = 0;    ///< already held (a retried upload)
  /// Every uploaded run_id the server now durably holds — new or duplicate.
  /// The client clears exactly these from its pending store, which makes a
  /// retry after a lost response exactly-once.
  std::vector<std::string> stored_run_ids;
  std::size_t server_testcase_count = 0;
};

/// The UUCS server (§2): holds the master testcase store, collects results,
/// registers clients, and hands each syncing client a *growing random
/// sample* of testcases — combined with the client's local random choice
/// and Poisson execution times, this makes the fleet execute a random
/// sample with respect to testcases, users, and times.
///
/// Uploads are idempotent: results are deduplicated by run_id, so a client
/// that retries a hot sync after a lost response stores each record exactly
/// once. With attach_journal(), every accepted result and registration is
/// journaled (fsync'd) before it is acknowledged, so a crash between
/// save() snapshots loses nothing.
class UucsServer {
 public:
  /// `sample_batch`: how many fresh testcases each hot sync may add.
  explicit UucsServer(std::uint64_t seed = 1, std::size_t sample_batch = 16);

  /// Testcase catalog management (new testcases may be added at any time).
  void add_testcase(Testcase tc);
  void add_testcases(const TestcaseStore& store);
  const TestcaseStore& testcases() const { return testcases_; }

  /// Registers a client and returns its new globally unique identifier.
  /// A non-empty `nonce` makes registration idempotent: if a registration
  /// with the same nonce already exists (this process, a journal replay, or
  /// a snapshot), its GUID is returned instead of minting an orphan — so a
  /// client retrying after a lost register response stays one client.
  Guid register_client(const HostSpec& host, double now = 0.0,
                       const std::string& nonce = "");

  /// True if `guid` belongs to a registered client.
  bool is_registered(const Guid& guid) const;
  const ClientRegistration& registration(const Guid& guid) const;
  std::size_t client_count() const { return clients_.size(); }

  /// Handles one hot sync: stores the uploaded results (deduplicated by
  /// run_id) and returns a fresh batch of testcases the client does not
  /// have yet. Throws Error for an unregistered guid.
  SyncResponse hot_sync(const SyncRequest& request);

  /// True if a result with this run_id has been stored via hot_sync (or
  /// recovered from a snapshot/journal).
  bool has_result(const std::string& run_id) const;

  /// All results uploaded so far.
  const ResultStore& results() const { return results_; }
  ResultStore& mutable_results() { return results_; }

  /// Opens (creating if needed) an fsync'd append-only journal at `path`,
  /// replays any entries that survived a crash, and from now on journals
  /// every accepted result and registration before acknowledging it.
  /// Returns the number of journal entries recovered.
  std::size_t attach_journal(const std::string& path);
  bool has_journal() const { return journal_ != nullptr; }
  const Journal* journal() const { return journal_.get(); }

  /// Persists stores as text files under `dir` (testcases.txt, results.txt,
  /// registrations.txt). With a journal attached, the journal is compacted
  /// to empty afterwards — the snapshot now holds everything.
  void save(const std::string& dir) const;

  /// Loads stores previously saved with save().
  static UucsServer load(const std::string& dir, std::uint64_t seed = 1);

 private:
  KvRecord registration_record(const Guid& guid, const ClientRegistration& reg) const;
  void restore_registration(const KvRecord& rec);
  void index_results();

  TestcaseStore testcases_;
  ResultStore results_;
  std::unordered_set<std::string> seen_run_ids_;  ///< dedup index over results_
  std::map<Guid, ClientRegistration> clients_;
  std::map<std::string, Guid> reg_nonces_;  ///< registration idempotency index
  Rng rng_;
  std::size_t sample_batch_;
  std::unique_ptr<Journal> journal_;
};

}  // namespace uucs
