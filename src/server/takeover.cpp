#include "server/takeover.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "util/error.hpp"
#include "util/kvtext.hpp"
#include "util/logging.hpp"

namespace uucs {

namespace {

/// Control-protocol version. Bumped only when the handoff message sequence
/// itself changes; the *wire* protocol clients speak negotiates separately.
constexpr std::int64_t kTakeoverVersion = 1;

double mono_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Absolute deadline for a multi-syscall control operation: every poll gets
/// the *remaining* budget, so a peer trickling bytes cannot stretch one
/// message past its timeout.
struct Deadline {
  double end;
  explicit Deadline(double timeout_s) : end(mono_s() + timeout_s) {}
  int remaining_ms(const char* what) const {
    const double r = end - mono_s();
    if (r <= 0.0) throw TimeoutError(what);
    return static_cast<int>(r * 1000.0) + 1;
  }
};

void wait_fd(int fd, short events, const Deadline& deadline, const char* what) {
  for (;;) {
    pollfd p{};
    p.fd = fd;
    p.events = events;
    const int r = ::poll(&p, 1, deadline.remaining_ms(what));
    if (r > 0) return;
    if (r == 0) throw TimeoutError(what);
    if (errno == EINTR) continue;
    throw SystemError(std::string(what) + ": poll: " + std::strerror(errno));
  }
}

void write_frame(int fd, const std::string& payload, double timeout_s,
                 const char* what) {
  const std::string framed = TcpChannel::frame(payload);
  const Deadline deadline(timeout_s);
  std::size_t off = 0;
  while (off < framed.size()) {
    wait_fd(fd, POLLOUT, deadline, what);
    const ssize_t n =
        ::send(fd, framed.data() + off, framed.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      continue;
    }
    throw SystemError(std::string(what) + ": send: " + std::strerror(errno));
  }
}

std::string read_frame(int fd, FrameReader& reader, double timeout_s,
                       const char* what) {
  std::string payload;
  if (reader.next(payload)) return payload;
  const Deadline deadline(timeout_s);
  char buf[4096];
  for (;;) {
    wait_fd(fd, POLLIN, deadline, what);
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      reader.feed(buf, static_cast<std::size_t>(n));
      if (reader.next(payload)) return payload;
      continue;
    }
    if (n == 0) {
      throw ProtocolError(std::string(what) + ": peer closed the control socket");
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    throw SystemError(std::string(what) + ": read: " + std::strerror(errno));
  }
}

sockaddr_un make_unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw ConfigError("control socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

UniqueFd unix_listen(const std::string& path) {
  UniqueFd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd) throw SystemError(std::string("socket(AF_UNIX): ") + std::strerror(errno));
  const sockaddr_un addr = make_unix_addr(path);
  // A stale socket file from a crashed predecessor would make bind fail
  // forever; the path is per-instance by convention, so unlinking is safe.
  ::unlink(path.c_str());
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw SystemError("bind " + path + ": " + std::strerror(errno));
  }
  if (::listen(fd.get(), 4) != 0) {
    throw SystemError("listen " + path + ": " + std::strerror(errno));
  }
  return fd;
}

UniqueFd unix_connect(const std::string& path) {
  UniqueFd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd) throw SystemError(std::string("socket(AF_UNIX): ") + std::strerror(errno));
  const sockaddr_un addr = make_unix_addr(path);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw SystemError("connect " + path + ": " + std::strerror(errno));
  }
  return fd;
}

/// Passes `fd_to_send` over the unix socket with a one-byte carrier message
/// (SCM_RIGHTS needs at least one data byte).
void send_fd_msg(int sock, int fd_to_send, double timeout_s) {
  const Deadline deadline(timeout_s);
  char byte = 'F';
  iovec iov{};
  iov.iov_base = &byte;
  iov.iov_len = 1;
  alignas(cmsghdr) char ctrl[CMSG_SPACE(sizeof(int))] = {};
  msghdr msg{};
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  msg.msg_control = ctrl;
  msg.msg_controllen = sizeof(ctrl);
  cmsghdr* cm = CMSG_FIRSTHDR(&msg);
  cm->cmsg_level = SOL_SOCKET;
  cm->cmsg_type = SCM_RIGHTS;
  cm->cmsg_len = CMSG_LEN(sizeof(int));
  std::memcpy(CMSG_DATA(cm), &fd_to_send, sizeof(int));
  for (;;) {
    wait_fd(sock, POLLOUT, deadline, "takeover fd pass");
    const ssize_t n = ::sendmsg(sock, &msg, MSG_NOSIGNAL);
    if (n == 1) return;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      continue;
    }
    throw SystemError(std::string("takeover fd pass: sendmsg: ") + std::strerror(errno));
  }
}

UniqueFd recv_fd_msg(int sock, double timeout_s) {
  const Deadline deadline(timeout_s);
  char byte = 0;
  iovec iov{};
  iov.iov_base = &byte;
  iov.iov_len = 1;
  alignas(cmsghdr) char ctrl[CMSG_SPACE(sizeof(int))] = {};
  msghdr msg{};
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  msg.msg_control = ctrl;
  msg.msg_controllen = sizeof(ctrl);
  for (;;) {
    wait_fd(sock, POLLIN, deadline, "takeover fd receive");
    const ssize_t n = ::recvmsg(sock, &msg, MSG_CMSG_CLOEXEC);
    if (n == 0) {
      throw ProtocolError("takeover fd receive: peer closed before passing the listener");
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      throw SystemError(std::string("takeover fd receive: recvmsg: ") + std::strerror(errno));
    }
    for (cmsghdr* cm = CMSG_FIRSTHDR(&msg); cm != nullptr; cm = CMSG_NXTHDR(&msg, cm)) {
      if (cm->cmsg_level == SOL_SOCKET && cm->cmsg_type == SCM_RIGHTS &&
          cm->cmsg_len == CMSG_LEN(sizeof(int))) {
        int fd = -1;
        std::memcpy(&fd, CMSG_DATA(cm), sizeof(int));
        return UniqueFd(fd);
      }
    }
    throw ProtocolError("takeover fd receive: message carried no SCM_RIGHTS fd");
  }
}

std::string abort_message(const std::string& reason) {
  KvRecord rec("takeover-abort");
  rec.set("reason", reason);
  return kv_serialize({rec});
}

}  // namespace

const char* to_string(TakeoverStage stage) {
  switch (stage) {
    case TakeoverStage::kHello: return "hello";
    case TakeoverStage::kPause: return "pause";
    case TakeoverStage::kDrain: return "drain";
    case TakeoverStage::kFlush: return "flush";
    case TakeoverStage::kSnapshot: return "snapshot";
    case TakeoverStage::kSendFd: return "send-fd";
    case TakeoverStage::kSendState: return "send-state";
    case TakeoverStage::kWaitReady: return "wait-ready";
    case TakeoverStage::kRetire: return "retire";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// TakeoverController (old process)

TakeoverController::TakeoverController(IngestServer& ingest, UucsServer& server,
                                       Config config)
    : ingest_(ingest), server_(server), config_(std::move(config)) {
  if (config_.socket_path.empty()) {
    throw ConfigError("takeover controller needs a control socket path");
  }
  if (config_.state_dir.empty()) {
    throw ConfigError("takeover controller needs a state dir to hand over");
  }
  listen_fd_ = unix_listen(config_.socket_path);
  thread_ = std::thread([this] { accept_loop(); });
}

TakeoverController::~TakeoverController() { stop(); }

void TakeoverController::stop() {
  if (stopping_.exchange(true)) return;
  // Shutdown unblocks an accept_loop parked in poll at the next timeout; a
  // shutdown(2) on a listening unix socket also wakes it immediately.
  ::shutdown(listen_fd_.get(), SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  listen_fd_.reset();
  // After a handoff the successor may already have re-bound this path for
  // the *next* upgrade; unlinking would tear its control socket down.
  if (!handed_off_.load(std::memory_order_acquire)) {
    ::unlink(config_.socket_path.c_str());
  }
}

bool TakeoverController::enter_stage(TakeoverStage s) {
  stage_.store(static_cast<int>(s), std::memory_order_release);
  if (config_.stage_hook && !config_.stage_hook(s)) {
    killed_.store(true, std::memory_order_release);
    return false;
  }
  return true;
}

void TakeoverController::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd p{};
    p.fd = listen_fd_.get();
    p.events = POLLIN;
    const int r = ::poll(&p, 1, 200);
    if (r < 0 && errno != EINTR) break;
    if (r <= 0) continue;
    UniqueFd conn(::accept4(listen_fd_.get(), nullptr, nullptr, SOCK_CLOEXEC));
    if (!conn) continue;
    const bool done = handle_connection(conn.get());
    conn.reset();
    // A completed handoff or a simulated kill ends this process's tenure;
    // the control socket has nothing left to offer.
    if (done || killed_.load(std::memory_order_acquire)) break;
  }
}

bool TakeoverController::handle_connection(int fd) {
  FrameReader reader;
  bool quiesced = false;
  try {
    if (!enter_stage(TakeoverStage::kHello)) return false;
    const auto hello =
        kv_parse(read_frame(fd, reader, config_.io_timeout_s, "takeover hello"));
    if (hello.empty() || hello.front().type() != "takeover-hello") {
      throw ProtocolError("expected takeover-hello");
    }
    const std::int64_t version = hello.front().get_int_or("version", -1);
    if (version != kTakeoverVersion) {
      write_frame(fd,
                  abort_message("unsupported takeover version " +
                                std::to_string(version)),
                  config_.io_timeout_s, "takeover abort");
      return false;
    }
    KvRecord accept_rec("takeover-accept");
    accept_rec.set_int("version", kTakeoverVersion);
    accept_rec.set_int("port", ingest_.port());
    write_frame(fd, kv_serialize({accept_rec}), config_.io_timeout_s,
                "takeover accept");

    if (!enter_stage(TakeoverStage::kPause)) return false;
    ingest_.loop().pause_accept();
    quiesced = true;

    if (!enter_stage(TakeoverStage::kDrain)) return false;
    ingest_.loop().begin_drain();
    if (!ingest_.loop().wait_connections_drained(config_.drain_timeout_s)) {
      // Stragglers past the deadline are cut: their un-acked requests are
      // stranded (generation-checked Responders drop the replies), so no
      // ack can escape after the final snapshot. The clients retry against
      // the successor and dedup absorbs the replays.
      ingest_.loop().close_all_connections();
    }
    ingest_.loop().wait_workers_idle();

    if (!enter_stage(TakeoverStage::kFlush)) return false;
    ingest_.flush_commits();

    if (!enter_stage(TakeoverStage::kSnapshot)) return false;
    ingest_.snapshot_now();

    if (!enter_stage(TakeoverStage::kSendFd)) return false;
    const int lfd = ingest_.loop().listener_fd();
    UUCS_CHECK_MSG(lfd >= 0, "listener already retired");
    send_fd_msg(fd, lfd, config_.io_timeout_s);

    if (!enter_stage(TakeoverStage::kSendState)) return false;
    const std::uint64_t clients = server_.client_count();
    const std::uint64_t results = server_.results().size();
    KvRecord state("takeover-state");
    state.set_int("version", kTakeoverVersion);
    state.set("state_dir", config_.state_dir);
    state.set("journal", config_.journal_path);
    state.set_int("clients", static_cast<std::int64_t>(clients));
    state.set_int("results", static_cast<std::int64_t>(results));
    state.set_int("generation",
                  static_cast<std::int64_t>(server_.generation() + 1));
    state.set_int("port", ingest_.port());
    write_frame(fd, kv_serialize({state}), config_.io_timeout_s, "takeover state");

    if (!enter_stage(TakeoverStage::kWaitReady)) return false;
    const auto ready = kv_parse(
        read_frame(fd, reader, config_.ready_timeout_s, "takeover ready"));
    if (ready.empty() || ready.front().type() != "takeover-ready") {
      throw ProtocolError("expected takeover-ready");
    }
    const std::int64_t got_clients = ready.front().get_int_or("clients", -1);
    const std::int64_t got_results = ready.front().get_int_or("results", -1);
    if (got_clients != static_cast<std::int64_t>(clients) ||
        got_results != static_cast<std::int64_t>(results)) {
      throw ProtocolError(
          "successor replayed " + std::to_string(got_clients) + " clients / " +
          std::to_string(got_results) + " results, expected " +
          std::to_string(clients) + " / " + std::to_string(results));
    }

    if (!enter_stage(TakeoverStage::kRetire)) return false;
    ingest_.loop().retire_listener();
    handed_off_.store(true, std::memory_order_release);
    // Courtesy only: the successor also serves on EOF, so a crash right
    // here leaves exactly one accepting process either way.
    try {
      KvRecord go("takeover-go");
      write_frame(fd, kv_serialize({go}), config_.io_timeout_s, "takeover go");
    } catch (const std::exception&) {
    }
    log_info("takeover", "handed off to successor (clients=" +
                             std::to_string(clients) +
                             ", results=" + std::to_string(results) + ")");
    if (config_.on_handed_off) config_.on_handed_off();
    return true;
  } catch (const std::exception& e) {
    log_warn("takeover", "handoff failed, rolling back: " + std::string(e.what()));
    try {
      write_frame(fd, abort_message(e.what()), 1.0, "takeover abort");
    } catch (const std::exception&) {
    }
    rollbacks_.fetch_add(1, std::memory_order_relaxed);
    if (quiesced) ingest_.resume();
    return false;
  }
}

// ---------------------------------------------------------------------------
// TakeoverClient (new process)

TakeoverClient::TakeoverClient(const std::string& socket_path, double io_timeout_s)
    : fd_(unix_connect(socket_path)), io_timeout_s_(io_timeout_s) {}

TakeoverClient::Inherited TakeoverClient::begin() {
  KvRecord hello("takeover-hello");
  hello.set_int("version", kTakeoverVersion);
  write_frame(fd_.get(), kv_serialize({hello}), io_timeout_s_, "takeover hello");

  const auto accept_rec = kv_parse(
      read_frame(fd_.get(), reader_, io_timeout_s_, "takeover accept"));
  if (accept_rec.empty()) throw ProtocolError("empty takeover accept");
  if (accept_rec.front().type() == "takeover-abort") {
    throw Error("predecessor aborted the takeover: " +
                accept_rec.front().get_or("reason", "?"));
  }
  if (accept_rec.front().type() != "takeover-accept") {
    throw ProtocolError("expected takeover-accept, got [" +
                        accept_rec.front().type() + "]");
  }

  Inherited out;
  // The predecessor quiesces, snapshots, then passes the fd: budget the
  // whole drain + snapshot, not one message's io timeout.
  out.listener = recv_fd_msg(fd_.get(), io_timeout_s_ + 60.0);

  const auto state = kv_parse(
      read_frame(fd_.get(), reader_, io_timeout_s_, "takeover state"));
  if (state.empty()) throw ProtocolError("empty takeover state");
  if (state.front().type() == "takeover-abort") {
    throw Error("predecessor aborted the takeover: " +
                state.front().get_or("reason", "?"));
  }
  if (state.front().type() != "takeover-state") {
    throw ProtocolError("expected takeover-state, got [" +
                        state.front().type() + "]");
  }
  const KvRecord& rec = state.front();
  out.state_dir = rec.get("state_dir");
  out.journal_path = rec.get_or("journal", "");
  out.generation = static_cast<std::uint64_t>(rec.get_int_or("generation", 1));
  out.expect_clients = static_cast<std::uint64_t>(rec.get_int_or("clients", 0));
  out.expect_results = static_cast<std::uint64_t>(rec.get_int_or("results", 0));
  out.port = static_cast<std::uint16_t>(rec.get_int_or("port", 0));
  return out;
}

TakeoverClient::Go TakeoverClient::confirm_ready(std::uint64_t clients,
                                                 std::uint64_t results,
                                                 double go_timeout_s) {
  KvRecord ready("takeover-ready");
  ready.set_int("clients", static_cast<std::int64_t>(clients));
  ready.set_int("results", static_cast<std::int64_t>(results));
  bool write_failed = false;
  try {
    write_frame(fd_.get(), kv_serialize({ready}), io_timeout_s_, "takeover ready");
  } catch (const std::exception&) {
    // EPIPE: the predecessor is gone (crash) or rolled back and closed. A
    // rollback sent an abort first, which is still buffered for us to read.
    write_failed = true;
  }
  try {
    const auto resp = kv_parse(read_frame(
        fd_.get(), reader_, write_failed ? io_timeout_s_ : go_timeout_s,
        "takeover go"));
    if (!resp.empty() && resp.front().type() == "takeover-abort") {
      return Go::kAbort;
    }
    return Go::kServe;
  } catch (const std::exception&) {
    // EOF without an abort, or a wedged predecessor: either way nobody else
    // is accepting (a wedged predecessor paused before it snapshotted our
    // state), so serving is the safe choice.
    return Go::kServe;
  }
}

}  // namespace uucs
