#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "server/event_loop.hpp"
#include "server/ingest.hpp"
#include "server/net.hpp"

namespace uucs {

/// Stages of the old-process handoff state machine (DESIGN.md §14). The
/// takeover is safe to kill -9 at every stage boundary on either side: before
/// kRetire the old process (or its restart) still owns the state; once the
/// new process has confirmed readiness the state on disk is complete and the
/// new process owns it.
enum class TakeoverStage {
  kHello,      ///< control connection accepted, versions checked
  kPause,      ///< stop accepting (newcomers queue in the kernel backlog)
  kDrain,      ///< finish in-flight requests, close every connection
  kFlush,      ///< flush the group-commit batch (every ack durable)
  kSnapshot,   ///< final atomic snapshot; journal compacts to empty
  kSendFd,     ///< pass the listening socket via SCM_RIGHTS
  kSendState,  ///< hand over the cursor: state dir, journal, counts, generation
  kWaitReady,  ///< wait for the new process to replay and confirm
  kRetire,     ///< close our listener fd (no shutdown(2)) and stop serving
};

const char* to_string(TakeoverStage stage);

/// Old-process side of a live takeover. Listens on a unix-domain control
/// socket; when a successor connects it drives the handoff protocol against
/// the IngestServer/UucsServer pair it wraps. A failure at any stage before
/// the successor confirms readiness rolls back: the old process resumes
/// accepting (clients that queued in the kernel backlog meanwhile are served
/// with no visible downtime) and the controller waits for the next attempt.
class TakeoverController {
 public:
  struct Config {
    std::string socket_path;    ///< unix-domain control socket to listen on
    std::string state_dir;      ///< snapshot dir handed to the successor
    std::string journal_path;   ///< journal file handed to the successor
    double drain_timeout_s = 10.0;  ///< force-close stragglers after this
    double ready_timeout_s = 30.0;  ///< successor replay budget
    double io_timeout_s = 10.0;     ///< per-message control-socket deadline
    /// Test hook, invoked before each stage runs. Returning false simulates
    /// a kill -9 at that boundary: the control connection drops, the
    /// controller stops, and the process state is whatever the previous
    /// stage left behind — no rollback, exactly like a real crash.
    std::function<bool(TakeoverStage)> stage_hook;
    /// Runs once after a successful handoff (kRetire complete). The server
    /// main loop uses this to begin its drain-and-exit.
    std::function<void()> on_handed_off;
  };

  /// `ingest` and `server` must outlive the controller. Starts the control
  /// listener immediately; throws ConfigError for a missing socket path or
  /// state dir and SystemError if the socket cannot be bound.
  TakeoverController(IngestServer& ingest, UucsServer& server, Config config);
  ~TakeoverController();

  TakeoverController(const TakeoverController&) = delete;
  TakeoverController& operator=(const TakeoverController&) = delete;

  /// True once a successor has confirmed readiness and we retired the
  /// listener. The old process must NOT write another snapshot after this
  /// (it would compact the journal underneath the successor).
  bool handed_off() const { return handed_off_.load(std::memory_order_acquire); }

  /// True when the stage hook vetoed a stage (simulated crash; tests only).
  bool killed() const { return killed_.load(std::memory_order_acquire); }

  /// Handoffs that failed before readiness and were rolled back.
  std::uint64_t rollbacks() const { return rollbacks_.load(std::memory_order_relaxed); }

  /// Stage the in-progress (or last) handoff reached.
  TakeoverStage stage() const {
    return static_cast<TakeoverStage>(stage_.load(std::memory_order_acquire));
  }

  /// Stops the control listener and joins. Idempotent; does not undo a
  /// completed handoff.
  void stop();

 private:
  void accept_loop();
  bool handle_connection(int fd);
  bool enter_stage(TakeoverStage s);

  IngestServer& ingest_;
  UucsServer& server_;
  Config config_;
  UniqueFd listen_fd_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> handed_off_{false};
  std::atomic<bool> killed_{false};
  std::atomic<std::uint64_t> rollbacks_{0};
  std::atomic<int> stage_{static_cast<int>(TakeoverStage::kHello)};
  std::thread thread_;
};

/// New-process side: connects to the predecessor's control socket, receives
/// the live listening socket and the state cursor, and — after the caller
/// has replayed snapshot + journal and built a paused ingest plane on the
/// inherited fd — confirms readiness.
class TakeoverClient {
 public:
  /// Everything the predecessor hands over.
  struct Inherited {
    UniqueFd listener;          ///< the live listening socket (bound + listening)
    std::string state_dir;      ///< snapshot to load
    std::string journal_path;   ///< journal to replay (compacted ≈ empty)
    std::uint64_t generation = 0;      ///< our generation (predecessor's + 1)
    std::uint64_t expect_clients = 0;  ///< registration count to verify replay
    std::uint64_t expect_results = 0;  ///< result count to verify replay
    std::uint16_t port = 0;            ///< the port the listener serves
  };

  /// Outcome of confirm_ready().
  enum class Go {
    kServe,  ///< predecessor retired (or died post-handoff): start accepting
    kAbort,  ///< predecessor rolled back: do NOT serve, exit
  };

  /// Connects (throws SystemError when nobody listens on `socket_path`).
  explicit TakeoverClient(const std::string& socket_path, double io_timeout_s = 10.0);

  /// Runs hello → accept → fd → state. Throws ProtocolError/TimeoutError on
  /// a malformed or silent predecessor and Error when it aborts the attempt.
  Inherited begin();

  /// Reports the replayed counts. The predecessor verifies them against its
  /// snapshot and either retires (kServe) or aborts (kAbort, count mismatch
  /// or rollback). EOF and a timeout both mean the predecessor is gone or
  /// wedged — and a wedged predecessor is paused, not serving — so the
  /// caller should serve.
  Go confirm_ready(std::uint64_t clients, std::uint64_t results,
                   double go_timeout_s = 30.0);

 private:
  UniqueFd fd_;
  FrameReader reader_;
  double io_timeout_s_;
};

}  // namespace uucs
