#include "sim/app_model.hpp"

#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace uucs::sim {

AppProfile AppProfile::for_task(Task t) {
  AppProfile p;
  p.task = t;
  switch (t) {
    case Task::kWord:
      // Typing and saving: negligible CPU, small working set, rare I/O.
      p.cpu_demand = 0.04;
      p.working_set_frac = 0.18;
      p.disk_demand_frac = 0.02;
      p.cpu_latency_weight = 0.25;
      p.memory_latency_weight = 0.4;
      p.disk_latency_weight = 0.3;
      break;
    case Task::kPowerpoint:
      // Diagram drawing: fine-grained interactivity, moderate footprint.
      p.cpu_demand = 0.30;
      p.working_set_frac = 0.30;
      p.disk_demand_frac = 0.04;
      p.cpu_latency_weight = 1.0;
      p.memory_latency_weight = 0.8;
      p.disk_latency_weight = 0.25;
      break;
    case Task::kIe:
      // Browsing + saving pages: bursty CPU, cache-hungry, disk-visible.
      p.cpu_demand = 0.30;
      p.working_set_frac = 0.45;
      p.disk_demand_frac = 0.15;
      p.cpu_latency_weight = 0.9;
      p.memory_latency_weight = 1.2;
      p.disk_latency_weight = 0.6;
      break;
    case Task::kQuake:
      // First-person shooter: CPU saturating, dynamic memory, level loads.
      p.cpu_demand = 0.90;
      p.working_set_frac = 0.75;
      p.disk_demand_frac = 0.08;
      p.cpu_latency_weight = 2.2;
      p.memory_latency_weight = 2.0;
      p.disk_latency_weight = 1.0;
      break;
  }
  return p;
}

AppModel::AppModel(AppProfile profile, const HostModel& host)
    : profile_(std::move(profile)), host_(host) {}

double AppModel::degradation(uucs::Resource r, double c) const {
  UUCS_CHECK_MSG(c >= 0, "contention must be >= 0");
  const double power = host_.power_index();
  switch (r) {
    case uucs::Resource::kCpu: {
      // Queueing latency: an interactive burst waits behind c busy threads;
      // felt in proportion to the app's latency weight, softened by host
      // power. Throughput loss kicks in once the *power-scaled* demand (a
      // faster CPU finishes the same frame in less time) exceeds the fair
      // share.
      const double latency = profile_.cpu_latency_weight * c / power;
      const double eff_demand = std::min(1.0, profile_.cpu_demand / power);
      const double slowdown = host_.cpu_slowdown(eff_demand, c);
      const double throughput = 4.0 * (slowdown - 1.0);
      return latency + throughput;
    }
    case uucs::Resource::kMemory: {
      // Paging pressure below overflow (allocator churn, cache dilution)
      // plus the page-fault storm once the working set no longer fits.
      const double pressure = 0.05 * profile_.memory_latency_weight * c;
      const double overflow =
          host_.memory_overflow(profile_.working_set_frac, 0.15, c);
      const double faults = 12.0 * profile_.memory_latency_weight * overflow;
      return pressure + faults;
    }
    case uucs::Resource::kDisk: {
      const double latency = profile_.disk_latency_weight * c;
      const double slowdown = host_.disk_slowdown(profile_.disk_demand_frac, c);
      const double starvation = 2.0 * (slowdown - 1.0);
      return latency + starvation;
    }
    case uucs::Resource::kNetwork: {
      // Modeled but excluded from studies, like the paper's network
      // exerciser: linear in the consumed bandwidth fraction.
      return c;
    }
  }
  throw uucs::Error("bad Resource value");
}

double AppModel::contention_for_degradation(uucs::Resource r, double d,
                                            double c_max) const {
  UUCS_CHECK_MSG(d >= 0, "degradation must be >= 0");
  if (d == 0) return 0.0;
  if (degradation(r, c_max) < d) return std::numeric_limits<double>::infinity();
  // Strict monotonicity makes plain bisection exact.
  double lo = 0.0, hi = c_max;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (degradation(r, mid) < d) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace uucs::sim
