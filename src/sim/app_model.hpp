#pragma once

#include "sim/host_model.hpp"
#include "sim/task.hpp"
#include "testcase/resource.hpp"

namespace uucs::sim {

/// Resource-demand profile of a foreground task. Values are fractions of
/// the paper's study machine (2.0 GHz P4, 512 MB); the §3.2 calibration
/// narrative pins the ordering: Word's CPU demand is tiny ("very high values
/// of CPU contention (around 3) are needed to affect interactivity at all")
/// while Quake's is near saturation ("contention values in the region of
/// 0.2 to 1.2 cause drastic effects").
struct AppProfile {
  Task task = Task::kWord;
  double cpu_demand = 0.1;        ///< CPU fraction used when interactive
  double working_set_frac = 0.2;  ///< resident-memory fraction once formed
  double disk_demand_frac = 0.05; ///< disk-bandwidth fraction
  /// How strongly latency/jitter in each resource is *felt*: converts raw
  /// slowdown into perceived interactivity degradation.
  double cpu_latency_weight = 1.0;
  double memory_latency_weight = 1.0;
  double disk_latency_weight = 1.0;

  /// The built-in profile for `t`.
  static AppProfile for_task(Task t);
};

/// Maps (task, resource, contention) to a perceived interactivity
/// degradation score via the host model. The score is dimensionless,
/// zero at zero contention, and STRICTLY increasing in contention — the
/// user model relies on this to convert calibrated contention thresholds
/// into degradation thresholds and back without loss.
///
/// Composition per resource:
///  - CPU: queueing-latency term (each interactive burst waits behind c
///    busy threads) plus a throughput term once the app's demand no longer
///    fits: both scale down on more powerful hosts.
///  - memory: small paging-pressure term plus the page-fault storm once the
///    working set overflows RAM.
///  - disk: I/O queueing latency plus the bandwidth-starvation term.
class AppModel {
 public:
  AppModel(AppProfile profile, const HostModel& host);

  const AppProfile& profile() const { return profile_; }

  /// Perceived degradation at contention `c` on resource `r`.
  double degradation(uucs::Resource r, double c) const;

  /// Inverse: the contention producing degradation `d` on `r` (bisection;
  /// d must be >= 0). Returns +inf above any reachable degradation.
  double contention_for_degradation(uucs::Resource r, double d,
                                    double c_max = 64.0) const;

 private:
  AppProfile profile_;
  const HostModel& host_;
};

}  // namespace uucs::sim
