#include "sim/event_queue.hpp"

#include <array>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace uucs::sim {

namespace {
const std::array<std::string, kEventClassCount> kClassNames = {
    "sync", "run-start", "feedback", "run-end", "generic"};
}  // namespace

const std::string& event_class_name(EventClass c) {
  const auto i = static_cast<std::size_t>(c);
  UUCS_CHECK_MSG(i < kEventClassCount, "unknown event class");
  return kClassNames[i];
}

EventClass parse_event_class(const std::string& name) {
  for (std::size_t i = 0; i < kEventClassCount; ++i) {
    if (kClassNames[i] == name) return static_cast<EventClass>(i);
  }
  throw Error("unknown event class: " + name);
}

void EventQueue::schedule_at(double t, EventClass cls, Handler h) {
  if (t < clock_.now()) {
    throw Error(strprintf(
        "cannot schedule an event in the past: t=%.9g is before now=%.9g",
        t, clock_.now()));
  }
  UUCS_CHECK(h != nullptr);
  queue_.push(Event{t, cls, next_seq_++, std::move(h)});
}

void EventQueue::schedule_in(double delay, EventClass cls, Handler h) {
  UUCS_CHECK_MSG(delay >= 0, "delay must be non-negative");
  schedule_at(clock_.now() + delay, cls, std::move(h));
}

double EventQueue::next_time() const {
  UUCS_CHECK_MSG(!queue_.empty(), "next_time on empty queue");
  return queue_.top().t;
}

bool EventQueue::step() {
  if (queue_.empty()) return false;
  // Move the handler out before running: the handler may schedule events.
  Event ev = queue_.top();
  queue_.pop();
  clock_.advance_to(ev.t);
  ev.h();
  return true;
}

void EventQueue::run_until(double t_end) {
  while (!queue_.empty() && queue_.top().t <= t_end) step();
  if (clock_.now() < t_end) clock_.advance_to(t_end);
}

void EventQueue::run_all() { run_all(max_events_); }

void EventQueue::run_all(std::size_t max_events) {
  std::size_t n = 0;
  while (step()) {
    if (++n > max_events) {
      throw Error(strprintf(
          "event budget exhausted: %zu events fired (cap %zu, virtual time "
          "%.9g) — runaway self-rescheduling? Raise the cap with "
          "EventQueue::set_max_events",
          n, max_events, clock_.now()));
    }
  }
}

}  // namespace uucs::sim
