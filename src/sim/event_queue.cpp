#include "sim/event_queue.hpp"

#include "util/error.hpp"

namespace uucs::sim {

void EventQueue::schedule_at(double t, Handler h) {
  UUCS_CHECK_MSG(t >= clock_.now(), "cannot schedule an event in the past");
  UUCS_CHECK(h != nullptr);
  queue_.push(Event{t, next_seq_++, std::move(h)});
}

void EventQueue::schedule_in(double delay, Handler h) {
  UUCS_CHECK_MSG(delay >= 0, "delay must be non-negative");
  schedule_at(clock_.now() + delay, std::move(h));
}

double EventQueue::next_time() const {
  UUCS_CHECK_MSG(!queue_.empty(), "next_time on empty queue");
  return queue_.top().t;
}

bool EventQueue::step() {
  if (queue_.empty()) return false;
  // Move the handler out before running: the handler may schedule events.
  Event ev = queue_.top();
  queue_.pop();
  clock_.advance_to(ev.t);
  ev.h();
  return true;
}

void EventQueue::run_until(double t_end) {
  while (!queue_.empty() && queue_.top().t <= t_end) step();
  if (clock_.now() < t_end) clock_.advance_to(t_end);
}

void EventQueue::run_all(std::size_t max_events) {
  std::size_t n = 0;
  while (step()) {
    UUCS_CHECK_MSG(++n <= max_events, "event budget exhausted (runaway schedule?)");
  }
}

}  // namespace uucs::sim
