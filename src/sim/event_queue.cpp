#include "sim/event_queue.hpp"

#include <algorithm>
#include <array>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace uucs::sim {

namespace {
const std::array<std::string, kEventClassCount> kClassNames = {
    "sync", "run-start", "feedback", "run-end", "generic"};

// 4-ary heap geometry: children of i are 4i+1..4i+4. A wider node halves
// the tree depth vs. a binary heap, trading a few extra comparisons per
// level for fewer cache-missing levels — a win for the small POD entries.
constexpr std::size_t kArity = 4;
}  // namespace

const std::string& event_class_name(EventClass c) {
  const auto i = static_cast<std::size_t>(c);
  UUCS_CHECK_MSG(i < kEventClassCount, "unknown event class");
  return kClassNames[i];
}

EventClass parse_event_class(const std::string& name) {
  for (std::size_t i = 0; i < kEventClassCount; ++i) {
    if (kClassNames[i] == name) return static_cast<EventClass>(i);
  }
  throw Error("unknown event class: " + name);
}

EventQueue::~EventQueue() {
  for (const Entry& e : heap_) arena_.release(ref_of(e));
  for (std::size_t i = drain_pos_; i < drained_.size(); ++i) {
    arena_.release(ref_of(drained_[i]));
  }
}

void EventQueue::reset() {
  for (const Entry& e : heap_) arena_.release(ref_of(e));
  for (std::size_t i = drain_pos_; i < drained_.size(); ++i) {
    arena_.release(ref_of(drained_[i]));
  }
  heap_.clear();  // capacity retained
  drained_.clear();
  drain_pos_ = 0;
  next_seq_ = 0;
}

void EventQueue::throw_past(double t) const {
  throw Error(strprintf(
      "cannot schedule an event in the past: t=%.9g is before now=%.9g",
      t, clock_.now()));
}

void EventQueue::throw_null_handler() {
  UUCS_CHECK_MSG(false, "cannot schedule a null handler");
}

void EventQueue::check_delay(double delay) {
  UUCS_CHECK_MSG(delay >= 0, "delay must be non-negative");
}

void EventQueue::push_entry(double t, EventClass cls, HandlerArena::Ref ref) {
  UUCS_CHECK_MSG(next_seq_ < kSeqLimit, "event sequence space exhausted");
  UUCS_CHECK_MSG(ref <= kRefMask, "handler arena ref out of key range");
  const Entry e{t, make_key(cls, next_seq_++, ref)};
  std::size_t i = heap_.size();
  heap_.push_back(e);
  while (i > 0) {  // sift up
    const std::size_t parent = (i - 1) / kArity;
    if (!before(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

EventQueue::Entry EventQueue::pop_top() {
  const Entry top = heap_.front();
  const Entry last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n != 0) {
    // Bottom-up ("bounce") replacement of the root: walk the min-child path
    // to a leaf, pulling each minimum up one level, then sift the former
    // last entry up from the leaf hole. The displaced entry almost always
    // belongs near the bottom, so skipping the per-level "does it fit yet?"
    // test against it saves a comparison per level on bulk drains; the
    // ancestors of the leaf hole are exactly the pulled-up path, so the
    // final sift-up terminates after a step or two.
    std::size_t i = 0;
    for (;;) {
      const std::size_t first_child = i * kArity + 1;
      if (first_child >= n) break;
      std::size_t best = first_child;
      const std::size_t end = std::min(first_child + kArity, n);
      for (std::size_t c = first_child + 1; c < end; ++c) {
        if (before(heap_[c], heap_[best])) best = c;
      }
      heap_[i] = heap_[best];
      i = best;
    }
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!before(last, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = last;
  }
  return top;
}

const EventQueue::Entry* EventQueue::peek() const {
  const Entry* d = drain_pos_ < drained_.size() ? &drained_[drain_pos_] : nullptr;
  const Entry* h = heap_.empty() ? nullptr : &heap_.front();
  if (d && h) return before(*h, *d) ? h : d;
  return d ? d : h;
}

void EventQueue::sort_drain() {
  drained_.clear();
  drain_pos_ = 0;
  std::swap(drained_, heap_);  // buffers trade places; capacity recycles
  std::sort(drained_.begin(), drained_.end(),
            [](const Entry& a, const Entry& b) { return before(a, b); });
}

double EventQueue::next_time() const {
  const Entry* next = peek();
  UUCS_CHECK_MSG(next != nullptr, "next_time on empty queue");
  return next->t;
}

bool EventQueue::step() {
  if (drain_pos_ == drained_.size() && heap_.size() >= kSortDrainMin) {
    sort_drain();
  }
  // The entry is popped and the handler's storage released before the
  // handler runs: handlers may schedule more events (or throw) without
  // corrupting the queue.
  Entry top;
  if (drain_pos_ < drained_.size() &&
      (heap_.empty() || !before(heap_.front(), drained_[drain_pos_]))) {
    top = drained_[drain_pos_++];
    if (drain_pos_ == drained_.size()) {
      drained_.clear();
      drain_pos_ = 0;
    }
  } else if (!heap_.empty()) {
    top = pop_top();
  } else {
    return false;
  }
  clock_.advance_to(top.t);
  arena_.invoke_and_release(ref_of(top));
  return true;
}

void EventQueue::run_until(double t_end) {
  for (const Entry* next = peek(); next != nullptr && next->t <= t_end;
       next = peek()) {
    step();
  }
  if (clock_.now() < t_end) clock_.advance_to(t_end);
}

void EventQueue::run_all() { run_all(max_events_); }

void EventQueue::run_all(std::size_t max_events) {
  std::size_t n = 0;
  while (step()) {
    if (++n > max_events) {
      throw Error(strprintf(
          "event budget exhausted: %zu events fired (cap %zu, virtual time "
          "%.9g) — runaway self-rescheduling? Raise the cap with "
          "EventQueue::set_max_events",
          n, max_events, clock_.now()));
    }
  }
}

}  // namespace uucs::sim
