#include "sim/event_queue.hpp"

#include <algorithm>
#include <array>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace uucs::sim {

namespace {
const std::array<std::string, kEventClassCount> kClassNames = {
    "sync", "run-start", "feedback", "run-end", "generic"};

// 4-ary heap geometry: children of i are 4i+1..4i+4. A wider node halves
// the tree depth vs. a binary heap, trading a few extra comparisons per
// level for fewer cache-missing levels — a win for the small POD entries.
constexpr std::size_t kArity = 4;
}  // namespace

const std::string& event_class_name(EventClass c) {
  const auto i = static_cast<std::size_t>(c);
  UUCS_CHECK_MSG(i < kEventClassCount, "unknown event class");
  return kClassNames[i];
}

EventClass parse_event_class(const std::string& name) {
  for (std::size_t i = 0; i < kEventClassCount; ++i) {
    if (kClassNames[i] == name) return static_cast<EventClass>(i);
  }
  throw Error("unknown event class: " + name);
}

EventQueue::~EventQueue() {
  for (const Entry& e : heap_) arena_.release(e.ref);
}

void EventQueue::throw_past(double t) const {
  throw Error(strprintf(
      "cannot schedule an event in the past: t=%.9g is before now=%.9g",
      t, clock_.now()));
}

void EventQueue::throw_null_handler() {
  UUCS_CHECK_MSG(false, "cannot schedule a null handler");
}

void EventQueue::check_delay(double delay) {
  UUCS_CHECK_MSG(delay >= 0, "delay must be non-negative");
}

void EventQueue::push_entry(double t, EventClass cls, HandlerArena::Ref ref) {
  Entry e{t, next_seq_++, ref, cls};
  std::size_t i = heap_.size();
  heap_.push_back(e);
  while (i > 0) {  // sift up
    const std::size_t parent = (i - 1) / kArity;
    if (!before(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

EventQueue::Entry EventQueue::pop_top() {
  const Entry top = heap_.front();
  const Entry last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {  // sift the former last entry down from the root
    std::size_t i = 0;
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t first_child = i * kArity + 1;
      if (first_child >= n) break;
      std::size_t best = first_child;
      const std::size_t end = std::min(first_child + kArity, n);
      for (std::size_t c = first_child + 1; c < end; ++c) {
        if (before(heap_[c], heap_[best])) best = c;
      }
      if (!before(heap_[best], last)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
  }
  return top;
}

double EventQueue::next_time() const {
  UUCS_CHECK_MSG(!heap_.empty(), "next_time on empty queue");
  return heap_.front().t;
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // The entry is popped and the handler's storage released before the
  // handler runs: handlers may schedule more events (or throw) without
  // corrupting the queue.
  const Entry top = pop_top();
  clock_.advance_to(top.t);
  arena_.invoke_and_release(top.ref);
  return true;
}

void EventQueue::run_until(double t_end) {
  while (!heap_.empty() && heap_.front().t <= t_end) step();
  if (clock_.now() < t_end) clock_.advance_to(t_end);
}

void EventQueue::run_all() { run_all(max_events_); }

void EventQueue::run_all(std::size_t max_events) {
  std::size_t n = 0;
  while (step()) {
    if (++n > max_events) {
      throw Error(strprintf(
          "event budget exhausted: %zu events fired (cap %zu, virtual time "
          "%.9g) — runaway self-rescheduling? Raise the cap with "
          "EventQueue::set_max_events",
          n, max_events, clock_.now()));
    }
  }
}

}  // namespace uucs::sim
