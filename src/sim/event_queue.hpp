#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "util/clock.hpp"

namespace uucs::sim {

/// Priority classes for events scheduled at equal virtual times. Lower
/// values fire first, encoding the tie-breaking contract every study driver
/// shares (previously an informal comment in internet_study.cpp):
///
///  - a hot sync at time t is visible to a run starting at t (sync < run),
///  - a user's feedback at time t is registered before the run it belongs
///    to is finalized (feedback < run-end),
///  - run bookkeeping (upload, budget accounting) happens last.
///
/// Among events with equal (time, class), insertion order (FIFO) decides.
enum class EventClass : std::uint8_t {
  kSync = 0,      ///< client/server hot-sync traffic, testcase delivery
  kRunStart = 1,  ///< a testcase run (or policy tick) begins
  kFeedback = 2,  ///< user discomfort press / throttle feedback
  kRunEnd = 3,    ///< a run completes; results are recorded
  kGeneric = 4,   ///< anything else
};
inline constexpr std::size_t kEventClassCount = 5;

const std::string& event_class_name(EventClass c);
EventClass parse_event_class(const std::string& name);

/// Discrete-event engine over a VirtualClock. Events are callbacks scheduled
/// at absolute virtual times; run_all()/step() pop them in
/// (time, EventClass, insertion) order and advance the clock, so multi-hour
/// studies execute in milliseconds. All three study drivers — the controlled
/// study's run/gap/session loops, the Internet study's hot-sync and Poisson
/// arrival schedules, and the policy-evaluation tick chains — schedule
/// through this queue via sim::Simulation.
class EventQueue {
 public:
  using Handler = std::function<void()>;

  explicit EventQueue(uucs::VirtualClock& clock) : clock_(clock) {}

  /// Schedules `h` at absolute time `t` (must be >= now; scheduling in the
  /// past throws with the offending times in the message).
  void schedule_at(double t, Handler h) {
    schedule_at(t, EventClass::kGeneric, std::move(h));
  }
  void schedule_at(double t, EventClass cls, Handler h);

  /// Schedules `h` after `delay` seconds (>= 0).
  void schedule_in(double delay, Handler h) {
    schedule_in(delay, EventClass::kGeneric, std::move(h));
  }
  void schedule_in(double delay, EventClass cls, Handler h);

  /// Number of pending events.
  std::size_t pending() const { return queue_.size(); }
  bool empty() const { return queue_.empty(); }

  /// Time of the next event; throws if empty.
  double next_time() const;

  /// Pops and runs the next event, advancing the clock to its time.
  /// Returns false if the queue was empty.
  bool step();

  /// Runs events until the queue is empty or the next event is after
  /// `t_end`; finally advances the clock to `t_end` if it is later.
  void run_until(double t_end);

  /// Runs all events to exhaustion (handlers may schedule more), capped at
  /// max_events() as a runaway guard; the error message surfaces the cap
  /// and the virtual time reached. Pass a cap to override the configured
  /// one for this call.
  void run_all();
  void run_all(std::size_t max_events);

  /// Runaway-guard budget for run_all(); defaults to 10M events.
  void set_max_events(std::size_t cap) { max_events_ = cap; }
  std::size_t max_events() const { return max_events_; }

  uucs::VirtualClock& clock() { return clock_; }

 private:
  struct Event {
    double t;
    EventClass cls;
    std::uint64_t seq;
    Handler h;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      if (a.cls != b.cls) return a.cls > b.cls;  // priority among equal times
      return a.seq > b.seq;                      // FIFO among equal classes
    }
  };

  uucs::VirtualClock& clock_;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::uint64_t next_seq_ = 0;
  std::size_t max_events_ = 10'000'000;
};

}  // namespace uucs::sim
