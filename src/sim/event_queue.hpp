#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/handler_arena.hpp"
#include "util/clock.hpp"

namespace uucs::sim {

/// Priority classes for events scheduled at equal virtual times. Lower
/// values fire first, encoding the tie-breaking contract every study driver
/// shares (previously an informal comment in internet_study.cpp):
///
///  - a hot sync at time t is visible to a run starting at t (sync < run),
///  - a user's feedback at time t is registered before the run it belongs
///    to is finalized (feedback < run-end),
///  - run bookkeeping (upload, budget accounting) happens last.
///
/// Among events with equal (time, class), insertion order (FIFO) decides.
enum class EventClass : std::uint8_t {
  kSync = 0,      ///< client/server hot-sync traffic, testcase delivery
  kRunStart = 1,  ///< a testcase run (or policy tick) begins
  kFeedback = 2,  ///< user discomfort press / throttle feedback
  kRunEnd = 3,    ///< a run completes; results are recorded
  kGeneric = 4,   ///< anything else
};
inline constexpr std::size_t kEventClassCount = 5;

const std::string& event_class_name(EventClass c);
EventClass parse_event_class(const std::string& name);

/// Discrete-event engine over a VirtualClock. Events are callbacks scheduled
/// at absolute virtual times; run_all()/step() pop them in
/// (time, EventClass, insertion) order and advance the clock, so multi-hour
/// studies execute in milliseconds. All three study drivers — the controlled
/// study's run/gap/session loops, the Internet study's hot-sync and Poisson
/// arrival schedules, and the policy-evaluation tick chains — schedule
/// through this queue via sim::Simulation.
///
/// Hot-path layout: handlers live in a recycled HandlerArena (small-buffer
/// slots + size-class slabs, see handler_arena.hpp), and the priority queue
/// is a hand-rolled 4-ary min-heap over 16-byte POD entries — the time plus
/// one packed key word holding (class, sequence, arena ref) — so scheduling
/// and firing an event allocates nothing in the steady state, sift
/// operations never move a callable, and four heap entries share a cache
/// line. schedule_at/schedule_in are templated: a lambda is emplaced
/// directly with its exact type, never converted to a `std::function` (the
/// Handler alias remains accepted for callers that need type erasure
/// themselves).
class EventQueue {
 public:
  using Handler = std::function<void()>;

  explicit EventQueue(uucs::VirtualClock& clock) : clock_(clock) {}
  ~EventQueue();

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `f` at absolute time `t` (must be >= now; scheduling in the
  /// past throws with the offending times in the message).
  template <typename F>
  void schedule_at(double t, F&& f) {
    schedule_at(t, EventClass::kGeneric, std::forward<F>(f));
  }
  template <typename F>
  void schedule_at(double t, EventClass cls, F&& f) {
    if (t < clock_.now()) throw_past(t);
    using Fn = std::decay_t<F>;
    if constexpr (std::is_same_v<Fn, std::nullptr_t>) {
      (void)f;
      throw_null_handler();
    } else {
      if constexpr (std::is_same_v<Fn, Handler>) {
        if (f == nullptr) throw_null_handler();
      }
      push_entry(t, cls, arena_.emplace(std::forward<F>(f)));
    }
  }

  /// Schedules `f` after `delay` seconds (>= 0).
  template <typename F>
  void schedule_in(double delay, F&& f) {
    schedule_in(delay, EventClass::kGeneric, std::forward<F>(f));
  }
  template <typename F>
  void schedule_in(double delay, EventClass cls, F&& f) {
    check_delay(delay);
    schedule_at(clock_.now() + delay, cls, std::forward<F>(f));
  }

  /// Number of pending events.
  std::size_t pending() const {
    return heap_.size() + (drained_.size() - drain_pos_);
  }
  bool empty() const { return heap_.empty() && drain_pos_ == drained_.size(); }

  /// Time of the next event; throws if empty.
  double next_time() const;

  /// Pops and runs the next event, advancing the clock to its time.
  /// Returns false if the queue was empty.
  bool step();

  /// Runs events until the queue is empty or the next event is after
  /// `t_end`; finally advances the clock to `t_end` if it is later.
  void run_until(double t_end);

  /// Runs all events to exhaustion (handlers may schedule more), capped at
  /// max_events() as a runaway guard; the error message surfaces the cap
  /// and the virtual time reached. Pass a cap to override the configured
  /// one for this call.
  void run_all();
  void run_all(std::size_t max_events);

  /// Runaway-guard budget for run_all(); defaults to 10M events.
  void set_max_events(std::size_t cap) { max_events_ = cap; }
  std::size_t max_events() const { return max_events_; }

  uucs::VirtualClock& clock() { return clock_; }

  /// Drops all pending events (destroying their handlers unfired) and
  /// rewinds the insertion sequence to zero, as if freshly constructed —
  /// but keeps the heap's and the arena's capacity, so a recycled queue
  /// schedules its next workload without re-warming the allocator. The
  /// caller owns resetting the clock (sim::Simulation::reset does both).
  void reset();

  /// Handler storage introspection for tests and benches.
  const HandlerArena& arena() const { return arena_; }

 private:
  /// One pending event, 16 bytes: the virtual time plus one packed key word
  /// laying out class (3 bits), insertion sequence (31 bits) and arena ref
  /// (30 bits) from high to low. The callable lives in the arena; sifting
  /// the heap moves only these POD entries, and because class and sequence
  /// sit above the ref, one integer compare resolves the whole
  /// (class, insertion) tie-break — the ref bits never decide an ordering
  /// (sequences are unique).
  struct Entry {
    double t;
    std::uint64_t key;
  };

  static constexpr unsigned kRefBits = 30;   ///< 1B live handlers >> any real run
  static constexpr unsigned kSeqBits = 31;   ///< 2.1B events per queue lifetime
  static constexpr std::uint64_t kRefMask = (std::uint64_t{1} << kRefBits) - 1;
  static constexpr std::uint64_t kSeqLimit = std::uint64_t{1} << kSeqBits;

  static std::uint64_t make_key(EventClass cls, std::uint64_t seq,
                                HandlerArena::Ref ref) {
    return (static_cast<std::uint64_t>(cls) << (kSeqBits + kRefBits)) |
           (seq << kRefBits) | ref;
  }
  static HandlerArena::Ref ref_of(const Entry& e) {
    return static_cast<HandlerArena::Ref>(e.key & kRefMask);
  }

  // (time, class, seq) lexicographic order — the determinism contract.
  static bool before(const Entry& a, const Entry& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.key < b.key;  // class, then FIFO insertion order
  }

  [[noreturn]] void throw_past(double t) const;
  [[noreturn]] static void throw_null_handler();
  static void check_delay(double delay);

  void push_entry(double t, EventClass cls, HandlerArena::Ref ref);
  Entry pop_top();
  const Entry* peek() const;
  void sort_drain();

  /// Cold backlogs at least this large are bulk-sorted into drained_
  /// instead of heap-popped one by one (see drained_ below).
  static constexpr std::size_t kSortDrainMin = 64;

  uucs::VirtualClock& clock_;
  std::vector<Entry> heap_;  ///< 4-ary min-heap, root at index 0
  /// Bulk-drain fast path: when step() finds the heap holding >=
  /// kSortDrainMin entries and no sorted batch in flight, the whole heap is
  /// sorted once into this buffer and served by bumping drain_pos_ — one
  /// cache-friendly std::sort instead of N cold sift-downs. Events
  /// scheduled while a batch drains land in the (now tiny) heap; step()
  /// fires whichever head is earlier under before(), so the merged order
  /// is exactly the heap-only order ((t, key) is a unique total order).
  std::vector<Entry> drained_;
  std::size_t drain_pos_ = 0;
  HandlerArena arena_;
  std::uint64_t next_seq_ = 0;
  std::size_t max_events_ = 10'000'000;
};

}  // namespace uucs::sim
