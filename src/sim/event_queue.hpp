#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/clock.hpp"

namespace uucs::sim {

/// Discrete-event engine over a VirtualClock. Events are callbacks scheduled
/// at absolute virtual times; run() pops them in (time, insertion) order and
/// advances the clock, so multi-hour studies execute in milliseconds. The
/// Internet-study driver schedules client hot-syncs and Poisson testcase
/// arrivals through this queue.
class EventQueue {
 public:
  using Handler = std::function<void()>;

  explicit EventQueue(uucs::VirtualClock& clock) : clock_(clock) {}

  /// Schedules `h` at absolute time `t` (must be >= now).
  void schedule_at(double t, Handler h);

  /// Schedules `h` after `delay` seconds (>= 0).
  void schedule_in(double delay, Handler h);

  /// Number of pending events.
  std::size_t pending() const { return queue_.size(); }
  bool empty() const { return queue_.empty(); }

  /// Time of the next event; throws if empty.
  double next_time() const;

  /// Pops and runs the next event, advancing the clock to its time.
  /// Returns false if the queue was empty.
  bool step();

  /// Runs events until the queue is empty or the next event is after
  /// `t_end`; finally advances the clock to `t_end` if it is later.
  void run_until(double t_end);

  /// Runs all events to exhaustion (handlers may schedule more); capped at
  /// `max_events` as a runaway guard.
  void run_all(std::size_t max_events = 10'000'000);

  uucs::VirtualClock& clock() { return clock_; }

 private:
  struct Event {
    double t;
    std::uint64_t seq;
    Handler h;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;  // FIFO among equal times
    }
  };

  uucs::VirtualClock& clock_;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace uucs::sim
