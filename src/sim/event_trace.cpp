#include "sim/event_trace.hpp"

#include <array>
#include <cstdlib>

#include "sim/simulation.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace uucs::sim {

void EventTrace::record(double t, EventClass cls, std::string label) {
  events_.push_back(TraceEvent{t, cls, std::move(label)});
}

void EventTrace::append(const EventTrace& other) {
  events_.insert(events_.end(), other.events_.begin(), other.events_.end());
}

void EventTrace::append(EventTrace&& other) {
  events_.insert(events_.end(),
                 std::make_move_iterator(other.events_.begin()),
                 std::make_move_iterator(other.events_.end()));
  other.events_.clear();
}

std::string EventTrace::serialize() const {
  std::string out;
  for (const TraceEvent& ev : events_) {
    out += strprintf("%a %s %s\n", ev.t, event_class_name(ev.cls).c_str(),
                     ev.label.c_str());
  }
  return out;
}

EventTrace EventTrace::parse(const std::string& text) {
  EventTrace trace;
  for (const std::string& line : split(text, '\n')) {
    if (trim(line).empty()) continue;
    const auto t_end = line.find(' ');
    UUCS_CHECK_MSG(t_end != std::string::npos, "malformed trace line");
    const auto cls_end = line.find(' ', t_end + 1);
    UUCS_CHECK_MSG(cls_end != std::string::npos, "malformed trace line");
    // parse_double rejects hexfloats; strtod accepts them.
    char* end = nullptr;
    const std::string t_text = line.substr(0, t_end);
    const double t = std::strtod(t_text.c_str(), &end);
    UUCS_CHECK_MSG(end && *end == '\0', "malformed trace time");
    trace.events_.push_back(TraceEvent{
        t, parse_event_class(line.substr(t_end + 1, cls_end - t_end - 1)),
        line.substr(cls_end + 1)});
  }
  return trace;
}

EventTrace EventTrace::replay() const {
  SimulationConfig config;
  config.trace = true;
  if (!events_.empty()) config.start = events_.front().t;
  config.max_events = events_.size() + 1;
  Simulation sim(config);
  for (const TraceEvent& ev : events_) {
    sim.schedule_at(ev.t, ev.cls, ev.label, [] {});
  }
  sim.run_all();
  return sim.take_trace();
}

TextTable EventTrace::summary() const {
  std::array<std::size_t, kEventClassCount> counts{};
  for (const TraceEvent& ev : events_) {
    ++counts[static_cast<std::size_t>(ev.cls)];
  }
  TextTable t;
  t.set_header({"event class", "count"});
  for (std::size_t i = 0; i < kEventClassCount; ++i) {
    if (counts[i] == 0) continue;
    t.add_row({event_class_name(static_cast<EventClass>(i)),
               std::to_string(counts[i])});
  }
  t.add_row({"total", std::to_string(events_.size())});
  if (!events_.empty()) {
    t.add_row({"time span (s)",
               strprintf("%.1f", events_.back().t - events_.front().t)});
  }
  return t;
}

}  // namespace uucs::sim
