#pragma once

#include <string>
#include <vector>

#include "sim/event_queue.hpp"
#include "util/table.hpp"

namespace uucs::sim {

/// One fired simulation event, as recorded by sim::Simulation when tracing
/// is enabled: the virtual time, the priority class, and a human-readable
/// label supplied at scheduling time.
struct TraceEvent {
  double t = 0.0;
  EventClass cls = EventClass::kGeneric;
  std::string label;

  bool operator==(const TraceEvent& other) const {
    return t == other.t && cls == other.cls && label == other.label;
  }
};

/// Recorded event stream of a simulation, in fire order. Serializes to a
/// lossless text form (hexfloat times) for replay/debugging: parse() plus
/// replay() reconstructs the exact event order, which is what the
/// determinism contract promises and the round-trip test pins.
class EventTrace {
 public:
  void record(double t, EventClass cls, std::string label);

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  void clear() { events_.clear(); }

  /// Appends `other`'s events (e.g. merging per-job traces in job order).
  void append(const EventTrace& other);
  void append(EventTrace&& other);

  /// One line per event: "<hexfloat-t> <class-name> <label>". The label may
  /// contain spaces; it runs to the end of the line.
  std::string serialize() const;
  static EventTrace parse(const std::string& text);

  /// Re-executes the recorded schedule through a fresh Simulation (no-op
  /// handlers, recorded insertion order) and returns the trace that run
  /// produces. A faithful recording replays to an identical event order.
  /// Meaningful for a single simulation context's trace; a merged
  /// multi-job trace concatenates independent virtual timelines and must
  /// be replayed per job.
  EventTrace replay() const;

  /// Event counts per class plus the time span — the quick look uucsctl
  /// prints before dumping a trace file.
  TextTable summary() const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace uucs::sim
