#include "sim/handler_arena.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace uucs::sim {

std::uint8_t HandlerArena::size_class_for(std::size_t bytes) {
  for (std::size_t i = 0; i < kClassBytes.size(); ++i) {
    if (bytes <= kClassBytes[i]) return static_cast<std::uint8_t>(i);
  }
  return kHugeClass;
}

HandlerArena::Ref HandlerArena::acquire_slot() {
  if (free_head_ != kNullRef) {
    const Ref ref = free_head_;
    free_head_ = slots_[ref].next_free;
    return ref;
  }
  UUCS_CHECK_MSG(slots_.size() < kNullRef, "handler arena slot space exhausted");
  slots_.emplace_back();
  return static_cast<Ref>(slots_.size() - 1);
}

void HandlerArena::free_slot(Ref ref) {
  Slot& slot = slots_[ref];
  slot.invoke_and_destroy = nullptr;
  slot.destroy = nullptr;
  slot.relocate = nullptr;
  slot.outline = nullptr;
  slot.next_free = free_head_;
  free_head_ = ref;
}

void* HandlerArena::acquire_block(std::uint8_t cls, std::size_t bytes) {
  if (cls == kHugeClass) return ::operator new(bytes);
  void*& head = block_free_[cls];
  if (head != nullptr) {
    void* block = head;
    head = *static_cast<void**>(block);
    return block;
  }
  const std::size_t block_bytes = kClassBytes[cls];
  if (bump_left_ < block_bytes) {
    const std::size_t chunk_bytes = std::max(block_bytes, next_chunk_bytes_);
    chunks_.push_back(std::make_unique<std::byte[]>(chunk_bytes));
    bump_ = chunks_.back().get();
    bump_left_ = chunk_bytes;
    slab_bytes_ += chunk_bytes;
    next_chunk_bytes_ = std::min<std::size_t>(next_chunk_bytes_ * 2, 64 * 1024);
  }
  void* block = bump_;
  bump_ += block_bytes;
  bump_left_ -= block_bytes;
  return block;
}

void HandlerArena::release_block(void* block, std::uint8_t cls) {
  if (cls == kHugeClass) {
    ::operator delete(block);
    return;
  }
  *static_cast<void**>(block) = block_free_[cls];
  block_free_[cls] = block;
}

void HandlerArena::invoke_and_release(Ref ref) {
  UUCS_CHECK_MSG(ref < slots_.size() && slots_[ref].invoke_and_destroy,
                 "invoke of a free handler slot");
  Slot& slot = slots_[ref];
  void (*const iad)(void*) = slot.invoke_and_destroy;
  if (slot.block_class == kInlineClass) {
    // Relocate to the stack first: the handler may schedule new events,
    // which can grow slots_ and move the slot's storage mid-call.
    alignas(std::max_align_t) unsigned char local[kInlineBytes];
    slot.relocate(slot.buf, local);
    free_slot(ref);
    --live_;
    iad(local);
    return;
  }
  // Outline blocks have stable addresses, so the callable runs in place;
  // the guard returns the block to its freelist even if it throws.
  void* block = slot.outline;
  const std::uint8_t cls = slot.block_class;
  free_slot(ref);
  --live_;
  struct BlockGuard {
    HandlerArena* arena;
    void* block;
    std::uint8_t cls;
    ~BlockGuard() { arena->release_block(block, cls); }
  } guard{this, block, cls};
  iad(block);
}

void HandlerArena::release(Ref ref) {
  UUCS_CHECK_MSG(ref < slots_.size() && slots_[ref].destroy,
                 "release of a free handler slot");
  Slot& slot = slots_[ref];
  if (slot.block_class == kInlineClass) {
    slot.destroy(slot.buf);
  } else {
    slot.destroy(slot.outline);
    release_block(slot.outline, slot.block_class);
  }
  free_slot(ref);
  --live_;
}

}  // namespace uucs::sim
