#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace uucs::sim {

/// Recycled storage for the EventQueue's type-erased handlers.
///
/// Small, nothrow-movable callables are constructed directly in a pooled
/// slot (small-buffer optimization); larger ones go into size-class blocks
/// carved from geometrically growing slabs. Slots and blocks return to
/// freelists when their event fires or is dropped, so a steady-state
/// simulation schedules millions of events without touching the global
/// allocator — the dominant cost of the previous per-event
/// `std::function` representation.
///
/// Invocation is reallocation- and exception-safe: the callable is moved
/// out of pooled storage and its slot released *before* it runs, so a
/// handler may freely schedule further events (growing the slot vector
/// under its feet) or throw (storage was already reclaimed; the moved-out
/// callable is destroyed during unwind).
class HandlerArena {
 public:
  using Ref = std::uint32_t;
  static constexpr Ref kNullRef = 0xffffffffu;

  /// Callables up to this size (and nothrow-movable) live inline in the
  /// slot. 48 bytes covers every study-driver lambda except the run-end
  /// closure that carries a whole RunRecord.
  static constexpr std::size_t kInlineBytes = 48;

  HandlerArena() = default;
  ~HandlerArena() = default;
  HandlerArena(const HandlerArena&) = delete;
  HandlerArena& operator=(const HandlerArena&) = delete;

  /// Stores `f`, returning a ref to pass to invoke_and_release()/release().
  template <typename F>
  Ref emplace(F&& f) {
    using Fn = std::decay_t<F>;
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "over-aligned handlers are not supported");
    const Ref ref = acquire_slot();
    Slot& slot = slots_[ref];
    slot.invoke_and_destroy = &invoke_and_destroy_fn<Fn>;
    slot.destroy = &destroy_fn<Fn>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      slot.relocate = &relocate_fn<Fn>;
      slot.block_class = kInlineClass;
      try {
        ::new (static_cast<void*>(slot.buf)) Fn(std::forward<F>(f));
      } catch (...) {
        free_slot(ref);
        throw;
      }
    } else {
      slot.relocate = nullptr;
      const std::uint8_t cls = size_class_for(sizeof(Fn));
      void* block = acquire_block(cls, sizeof(Fn));
      try {
        ::new (block) Fn(std::forward<F>(f));
      } catch (...) {
        release_block(block, cls);
        free_slot(ref);
        throw;
      }
      slot.outline = block;
      slot.block_class = cls;
    }
    ++live_;
    return ref;
  }

  /// Runs the stored callable and reclaims its storage. The slot (and any
  /// outline block) is released before/while the callable runs, so the
  /// callable may re-enter emplace(); storage is reclaimed even when the
  /// callable throws.
  void invoke_and_release(Ref ref);

  /// Destroys the stored callable without running it.
  void release(Ref ref);

  /// Handlers currently stored (scheduled but not yet fired/dropped).
  std::size_t live() const { return live_; }

  /// Total slots ever created — bounds the arena's steady-state footprint.
  std::size_t slot_capacity() const { return slots_.size(); }

  /// Bytes reserved in outline slabs (not counting huge direct allocations).
  std::size_t slab_bytes() const { return slab_bytes_; }

  /// Approximate resident footprint: the slot vector plus outline slabs.
  std::size_t footprint_bytes() const {
    return slots_.capacity() * sizeof(Slot) + slab_bytes_;
  }

 private:
  static constexpr std::uint8_t kInlineClass = 0xfe;
  static constexpr std::uint8_t kHugeClass = 0xff;
  static constexpr std::array<std::size_t, 7> kClassBytes = {
      64, 128, 256, 512, 1024, 2048, 4096};

  struct Slot {
    void (*invoke_and_destroy)(void*) = nullptr;
    void (*destroy)(void*) = nullptr;
    void (*relocate)(void*, void*) = nullptr;  ///< inline slots only
    void* outline = nullptr;                   ///< outline/huge slots only
    Ref next_free = kNullRef;
    std::uint8_t block_class = 0;
    alignas(std::max_align_t) unsigned char buf[kInlineBytes];
  };

  template <typename Fn>
  static void invoke_and_destroy_fn(void* p) {
    Fn* f = static_cast<Fn*>(p);
    struct Guard {
      Fn* f;
      ~Guard() { f->~Fn(); }
    } guard{f};
    (*f)();
  }

  template <typename Fn>
  static void destroy_fn(void* p) {
    static_cast<Fn*>(p)->~Fn();
  }

  // Move-construct dst from src, then destroy src. Registered only for
  // nothrow-movable callables, so relocation cannot fail half-way.
  template <typename Fn>
  static void relocate_fn(void* src, void* dst) {
    Fn* f = static_cast<Fn*>(src);
    ::new (dst) Fn(std::move(*f));
    f->~Fn();
  }

  static std::uint8_t size_class_for(std::size_t bytes);

  Ref acquire_slot();
  void free_slot(Ref ref);
  void* acquire_block(std::uint8_t cls, std::size_t bytes);
  void release_block(void* block, std::uint8_t cls);

  std::vector<Slot> slots_;
  Ref free_head_ = kNullRef;
  std::size_t live_ = 0;

  // Outline-block slabs: size-class freelists over bump-carved chunks that
  // start small (a driver job typically needs one or two blocks) and double
  // up to a cap for simulations with deep backlogs.
  std::array<void*, kClassBytes.size()> block_free_{};
  std::vector<std::unique_ptr<std::byte[]>> chunks_;
  std::byte* bump_ = nullptr;
  std::size_t bump_left_ = 0;
  std::size_t next_chunk_bytes_ = 4096;
  std::size_t slab_bytes_ = 0;
};

}  // namespace uucs::sim
