#include "sim/host_model.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace uucs::sim {

HostModel::HostModel(uucs::HostSpec spec) : spec_(std::move(spec)) {
  power_ = spec_.power_index();
  UUCS_CHECK_MSG(power_ > 0, "host power index must be positive");
}

double HostModel::cpu_share(double demand, double contention) const {
  UUCS_CHECK_MSG(demand >= 0 && demand <= 1, "cpu demand must be in [0,1]");
  UUCS_CHECK_MSG(contention >= 0, "contention must be >= 0");
  if (demand == 0) return 0.0;
  // While the app is runnable it is 1 thread against `contention` busy
  // threads; multi-core hosts spread the exerciser threads, leaving the app
  // min(1, cores/(1+c)) of one core's worth.
  const double cores = std::max(1.0, static_cast<double>(spec_.cpu_count));
  const double fair = std::min(1.0, cores / (1.0 + contention));
  return std::min(demand, fair);
}

double HostModel::cpu_slowdown(double demand, double contention) const {
  const double share = cpu_share(demand, contention);
  if (demand == 0) return 1.0;
  return share <= 0 ? 1e9 : std::max(1.0, demand / share);
}

double HostModel::memory_overflow(double working_set_frac, double base_frac,
                                  double contention) const {
  UUCS_CHECK_MSG(working_set_frac >= 0 && working_set_frac <= 1, "working set frac");
  UUCS_CHECK_MSG(base_frac >= 0 && base_frac <= 1, "base frac");
  UUCS_CHECK_MSG(contention >= 0, "contention must be >= 0");
  if (working_set_frac == 0) return 0.0;
  const double pressure = working_set_frac + base_frac + std::min(contention, 1.0);
  const double overflow = std::max(0.0, pressure - 1.0);
  // The app loses pages proportionally to its share of the overcommit
  // (the OS evicts across all working sets).
  return std::min(1.0, overflow / working_set_frac);
}

double HostModel::disk_share(double demand_frac, double contention) const {
  UUCS_CHECK_MSG(demand_frac >= 0 && demand_frac <= 1, "disk demand must be in [0,1]");
  UUCS_CHECK_MSG(contention >= 0, "contention must be >= 0");
  if (demand_frac == 0) return 0.0;
  return std::min(demand_frac, 1.0 / (1.0 + contention));
}

double HostModel::disk_slowdown(double demand_frac, double contention) const {
  const double share = disk_share(demand_frac, contention);
  if (demand_frac == 0) return 1.0;
  return share <= 0 ? 1e9 : std::max(1.0, demand_frac / share);
}

}  // namespace uucs::sim
