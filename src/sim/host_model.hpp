#pragma once

#include "monitor/sysinfo.hpp"
#include "testcase/resource.hpp"

namespace uucs::sim {

/// Analytic model of how a host divides each resource between a foreground
/// application and the exerciser's borrowed share. It mirrors the contention
/// semantics of the real exercisers (§2.2):
///
///  - CPU / disk: contention c behaves like c extra equal-priority
///    busy/IO-bound tasks, so an always-ready competitor receives a
///    1/(1+c) share of the device.
///  - memory: contention c is the fraction of physical memory whose pages
///    the exerciser keeps in its working set; demand beyond the remainder
///    pages against the disk.
class HostModel {
 public:
  explicit HostModel(uucs::HostSpec spec);

  const uucs::HostSpec& spec() const { return spec_; }

  /// Raw-power multiplier relative to the paper's study machine (question 6
  /// of the paper: "How does the level depend on the raw power of the
  /// host?"). 1.0 for the GX270.
  double power_index() const { return power_; }

  /// Device share available to a foreground app that wants fraction
  /// `demand` of the CPU while the exerciser applies contention c.
  /// Equal-priority fair sharing: the app competes as one runnable thread
  /// against c busy threads when it is active.
  double cpu_share(double demand, double contention) const;

  /// Slowdown factor (>=1) of CPU-bound foreground work under contention.
  double cpu_slowdown(double demand, double contention) const;

  /// Fraction of the app's working set that no longer fits in RAM when the
  /// exerciser borrows fraction `contention` of physical memory and the
  /// OS/base load occupies `base_frac`. Zero while everything fits.
  double memory_overflow(double working_set_frac, double base_frac,
                         double contention) const;

  /// Disk-bandwidth share for an app issuing I/O against c competing
  /// exerciser writers.
  double disk_share(double demand_frac, double contention) const;

  /// Slowdown factor (>=1) of disk-bound foreground work under contention.
  double disk_slowdown(double demand_frac, double contention) const;

 private:
  uucs::HostSpec spec_;
  double power_;
};

}  // namespace uucs::sim
