#include "sim/network_model.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace uucs::sim {

NetworkModel::NetworkModel(double link_bps) : link_bps_(link_bps) {
  UUCS_CHECK_MSG(link_bps_ > 0, "link speed must be positive");
}

double NetworkModel::foreground_share(double demand_frac, double contention) const {
  UUCS_CHECK_MSG(demand_frac >= 0 && demand_frac <= 1, "demand must be in [0,1]");
  UUCS_CHECK_MSG(contention >= 0 && contention <= 1, "network contention is a fraction");
  return std::min(demand_frac, std::max(0.0, 1.0 - contention));
}

double NetworkModel::latency_multiplier(double demand_frac, double contention) const {
  UUCS_CHECK_MSG(demand_frac >= 0 && demand_frac <= 1, "demand must be in [0,1]");
  UUCS_CHECK_MSG(contention >= 0 && contention <= 1, "network contention is a fraction");
  // M/M/1 waiting-time growth W ~ 1/(1-rho), normalized so the multiplier
  // is 1 when only the foreground flow uses the link.
  const double alone = std::min(0.999, demand_frac);
  const double loaded = std::min(0.999, demand_frac + contention);
  return (1.0 - alone) / (1.0 - loaded);
}

double NetworkModel::exerciser_bytes_per_s(double contention) const {
  UUCS_CHECK_MSG(contention >= 0 && contention <= 1, "network contention is a fraction");
  return contention * link_bps_ / 8.0;
}

}  // namespace uucs::sim
