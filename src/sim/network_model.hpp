#pragma once

#include <cstdint>

namespace uucs::sim {

/// Token-bucket model of a network exerciser. The paper *built* several
/// network exerciser variants but excluded them from its studies because
/// "all create a significant impact beyond the client machine" (§2.2); the
/// same policy holds here — this model exists for completeness and for the
/// future work the paper sketches, and the study drivers never use it.
///
/// Contention for the network is the fraction of link bandwidth consumed.
/// The model tracks how much foreground traffic is delayed: a foreground
/// flow demanding `demand_frac` of the link sees its throughput reduced to
/// min(demand, 1 - contention) plus queueing latency growth as the link
/// saturates.
class NetworkModel {
 public:
  /// `link_bps`: nominal link speed (the study machines had 100 Mbit/s).
  explicit NetworkModel(double link_bps = 100e6);

  double link_bps() const { return link_bps_; }

  /// Throughput available to a foreground flow of the given demand while
  /// the exerciser consumes fraction `contention` of the link.
  double foreground_share(double demand_frac, double contention) const;

  /// Queueing-latency multiplier (M/M/1-style growth as utilization
  /// approaches 1): 1 at idle, unbounded at saturation.
  double latency_multiplier(double demand_frac, double contention) const;

  /// Bytes the exerciser itself would inject per second at `contention`.
  double exerciser_bytes_per_s(double contention) const;

 private:
  double link_bps_;
};

}  // namespace uucs::sim
