#pragma once

#include <string>
#include <utility>

#include "sim/event_queue.hpp"
#include "sim/event_trace.hpp"
#include "util/clock.hpp"

namespace uucs::sim {

/// Knobs for one Simulation context.
struct SimulationConfig {
  double start = 0.0;        ///< initial virtual time
  bool trace = false;        ///< record every fired event into trace()
  std::size_t max_events = 10'000'000;  ///< run_all runaway cap
};

/// The discrete-event simulation context every study driver runs on: it
/// owns the VirtualClock, the EventQueue with its deterministic
/// (time, EventClass, insertion) tie-breaking, and an optional EventTrace
/// of fired events for replay and debugging.
///
/// Drivers create one Simulation per engine::SessionJob (plus one per
/// sequential driver phase), schedule their work as events — hot syncs,
/// run starts, user feedback, run ends, policy ticks — and call run_all().
/// Determinism: given the same schedule calls and the same pre-forked Rng
/// streams (util/rng_streams.hpp), the fired-event order and therefore the
/// RNG draw order are identical regardless of worker count or tracing.
class Simulation {
 public:
  explicit Simulation(SimulationConfig config = {})
      : config_(config), clock_(config.start), queue_(clock_) {
    queue_.set_max_events(config.max_events);
  }

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  uucs::VirtualClock& clock() { return clock_; }
  double now() const { return clock_.now(); }
  EventQueue& queue() { return queue_; }

  /// Schedules `h` at absolute virtual time `t`. The label is kept only
  /// when tracing; an untraced simulation pays no per-event string cost
  /// beyond the argument itself. Templated so a driver lambda reaches the
  /// EventQueue's arena storage with its exact type — no `std::function`
  /// conversion (and hence no heap allocation) on the untraced hot path.
  template <typename F>
  void schedule_at(double t, EventClass cls, std::string label, F&& h) {
    if (!config_.trace) {
      queue_.schedule_at(t, cls, std::forward<F>(h));
      return;
    }
    queue_.schedule_at(
        t, cls,
        [this, cls, label = std::move(label),
         h = std::forward<F>(h)]() mutable {
          trace_.record(clock_.now(), cls, label);
          h();
        });
  }

  template <typename F>
  void schedule_in(double delay, EventClass cls, std::string label, F&& h) {
    schedule_at(clock_.now() + delay, cls, std::move(label),
                std::forward<F>(h));
  }

  /// Appends a trace-only annotation at the current time without scheduling
  /// an event — for actions that must stay inline in their handler (e.g. a
  /// throttle's on_feedback between two resource checks of one tick).
  void note(EventClass cls, std::string label) {
    if (config_.trace) trace_.record(clock_.now(), cls, std::move(label));
  }

  bool step() { return queue_.step(); }
  void run_until(double t_end) { queue_.run_until(t_end); }
  void run_all() { queue_.run_all(); }

  bool tracing() const { return config_.trace; }
  const EventTrace& trace() const { return trace_; }
  EventTrace take_trace() { return std::move(trace_); }

  /// Restores the fresh-construction state — clock back at config.start,
  /// no pending events, insertion sequence zero, empty trace — while
  /// keeping the queue's and arena's warmed capacity. An engine worker
  /// recycles one Simulation across its whole job partition this way; a
  /// reset context is observationally identical to a newly built one, so
  /// reuse cannot perturb the deterministic event order.
  void reset() {
    queue_.reset();
    clock_.reset(config_.start);
    trace_.clear();
  }

 private:
  SimulationConfig config_;
  uucs::VirtualClock clock_;
  EventQueue queue_;
  EventTrace trace_;
};

}  // namespace uucs::sim
