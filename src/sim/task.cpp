#include "sim/task.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace uucs::sim {

const std::string& task_name(Task t) {
  static const std::string kNames[kTaskCount] = {"word", "powerpoint", "ie", "quake"};
  const auto i = static_cast<std::size_t>(t);
  UUCS_CHECK_MSG(i < kTaskCount, "bad Task value");
  return kNames[i];
}

const std::string& task_display_name(Task t) {
  static const std::string kNames[kTaskCount] = {"Word", "Powerpoint", "IE", "Quake"};
  const auto i = static_cast<std::size_t>(t);
  UUCS_CHECK_MSG(i < kTaskCount, "bad Task value");
  return kNames[i];
}

Task parse_task(const std::string& name) {
  const std::string n = to_lower(trim(name));
  if (n == "word") return Task::kWord;
  if (n == "powerpoint" || n == "ppt") return Task::kPowerpoint;
  if (n == "ie" || n == "internet explorer") return Task::kIe;
  if (n == "quake") return Task::kQuake;
  throw ParseError("unknown task '" + name + "'");
}

}  // namespace uucs::sim
