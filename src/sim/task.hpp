#pragma once

#include <array>
#include <string>

namespace uucs::sim {

/// The foreground task (the user's *context*, §3.1). The controlled study
/// uses four tasks chosen to represent typical interactive work, from the
/// least demanding (typing in Word) to the most (playing Quake III).
enum class Task { kWord = 0, kPowerpoint = 1, kIe = 2, kQuake = 3 };

inline constexpr std::size_t kTaskCount = 4;

inline constexpr std::array<Task, kTaskCount> kAllTasks = {
    Task::kWord, Task::kPowerpoint, Task::kIe, Task::kQuake};

/// Lowercase canonical name ("word", "powerpoint", "ie", "quake").
const std::string& task_name(Task t);

/// Display name matching the paper's tables ("Word", "Powerpoint", "IE",
/// "Quake").
const std::string& task_display_name(Task t);

/// Parses a canonical name (case-insensitive); throws ParseError otherwise.
Task parse_task(const std::string& name);

}  // namespace uucs::sim
