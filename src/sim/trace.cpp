#include "sim/trace.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace uucs::sim {

DegradationTrace degradation_trace(const AppModel& app, uucs::Resource r,
                                   const uucs::ExerciseFunction& f, double dt_s) {
  UUCS_CHECK_MSG(dt_s > 0, "trace step must be positive");
  DegradationTrace trace;
  trace.dt_s = dt_s;
  const double duration = f.duration();
  for (double t = 0; t < duration; t += dt_s) {
    const double c = f.level_at(t);
    const double d = app.degradation(r, c);
    trace.contention.push_back(c);
    trace.degradation.push_back(d);
    trace.peak_degradation = std::max(trace.peak_degradation, d);
  }
  return trace;
}

double degradation_to_latency_ms(double degradation, double base_ms) {
  UUCS_CHECK_MSG(degradation >= 0 && base_ms > 0, "latency conversion domain");
  return base_ms * (1.0 + degradation);
}

}  // namespace uucs::sim
