#pragma once

#include <vector>

#include "sim/app_model.hpp"
#include "testcase/exercise_function.hpp"

namespace uucs::sim {

/// Time series derived from an exercise function through the app model —
/// "what would the user feel, moment by moment, while this testcase runs?"
/// Used by the perceived-latency example and by tests that pin the
/// mechanistic layer's shape.
struct DegradationTrace {
  double dt_s = 1.0;
  std::vector<double> contention;   ///< input level at each step
  std::vector<double> degradation;  ///< perceived degradation at each step
  double peak_degradation = 0.0;
};

/// Samples `f` every `dt_s` seconds and maps each level through
/// `app.degradation(r, .)`.
DegradationTrace degradation_trace(const AppModel& app, uucs::Resource r,
                                   const uucs::ExerciseFunction& f,
                                   double dt_s = 1.0);

/// Converts a degradation score into an approximate interactive response
/// latency in milliseconds: base latency scaled by (1 + degradation). The
/// 100 ms base is the classic instantaneous-feel budget from the
/// interaction literature the paper cites (Komatsubara; Endo et al.).
double degradation_to_latency_ms(double degradation, double base_ms = 100.0);

}  // namespace uucs::sim
