#include "sim/user_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace uucs::sim {

namespace {

std::size_t study_resource_index(uucs::Resource r) {
  switch (r) {
    case uucs::Resource::kCpu:
      return 0;
    case uucs::Resource::kMemory:
      return 1;
    case uucs::Resource::kDisk:
      return 2;
    case uucs::Resource::kNetwork:
      break;
  }
  throw uucs::Error("network is not a study resource");
}

/// Window over which an increase counts as an abrupt jump (surprise), and
/// the minimum size of such a jump in contention units.
constexpr double kSurpriseWindowS = 5.0;
constexpr double kSurpriseJump = 0.25;

}  // namespace

const std::string& skill_category_name(SkillCategory c) {
  static const std::string kNames[kSkillCategoryCount] = {"pc",         "windows",
                                                          "word",       "powerpoint",
                                                          "ie",         "quake"};
  const auto i = static_cast<std::size_t>(c);
  UUCS_CHECK_MSG(i < kSkillCategoryCount, "bad SkillCategory");
  return kNames[i];
}

const std::string& skill_rating_name(SkillRating r) {
  static const std::string kNames[3] = {"beginner", "typical", "power"};
  const auto i = static_cast<std::size_t>(r);
  UUCS_CHECK_MSG(i < 3, "bad SkillRating");
  return kNames[i];
}

SkillRating parse_skill_rating(const std::string& name) {
  const std::string n = uucs::to_lower(uucs::trim(name));
  if (n == "beginner") return SkillRating::kBeginner;
  if (n == "typical") return SkillRating::kTypical;
  if (n == "power") return SkillRating::kPower;
  throw uucs::ParseError("unknown skill rating '" + name + "'");
}

SkillCategory task_skill_category(Task t) {
  switch (t) {
    case Task::kWord:
      return SkillCategory::kWord;
    case Task::kPowerpoint:
      return SkillCategory::kPowerpoint;
    case Task::kIe:
      return SkillCategory::kIe;
    case Task::kQuake:
      return SkillCategory::kQuake;
  }
  throw uucs::Error("bad Task");
}

double UserProfile::threshold(Task t, uucs::Resource r) const {
  return thresholds[static_cast<std::size_t>(t)][study_resource_index(r)];
}

void UserProfile::set_threshold(Task t, uucs::Resource r, double v) {
  UUCS_CHECK_MSG(v > 0 || std::isinf(v), "threshold must be positive or +inf");
  thresholds[static_cast<std::size_t>(t)][study_resource_index(r)] = v;
}

RunSimulator::RunSimulator(const HostModel& host,
                           std::array<double, kTaskCount> noise_rates)
    : host_(host),
      apps_{AppModel(AppProfile::for_task(Task::kWord), host),
            AppModel(AppProfile::for_task(Task::kPowerpoint), host),
            AppModel(AppProfile::for_task(Task::kIe), host),
            AppModel(AppProfile::for_task(Task::kQuake), host)},
      noise_rates_(noise_rates) {
  for (double r : noise_rates_) UUCS_CHECK_MSG(r >= 0, "noise rate must be >= 0");
}

RunSimulator::RunSimulator(const HostModel& host,
                           std::array<double, kTaskCount> noise_rates,
                           double nonblank_noise_scale)
    : RunSimulator(host, noise_rates) {
  set_nonblank_noise_scale(nonblank_noise_scale);
}

const AppModel& RunSimulator::app(Task t) const {
  return apps_[static_cast<std::size_t>(t)];
}

double RunSimulator::noise_rate(Task t) const {
  return noise_rates_[static_cast<std::size_t>(t)];
}

void RunSimulator::set_nonblank_noise_scale(double scale) {
  UUCS_CHECK_MSG(scale >= 0 && scale <= 1, "noise scale must be in [0,1]");
  nonblank_noise_scale_ = scale;
}

double RunSimulator::crossing_time(const UserProfile& user, Task task,
                                   const uucs::Testcase& tc, uucs::Resource r) const {
  const uucs::ExerciseFunction* f = tc.function(r);
  if (!f || f->empty()) return -1.0;
  const double threshold = user.threshold(task, r);
  if (!std::isfinite(threshold)) return -1.0;

  // Thresholds are calibrated in contention units on the paper's study
  // machine. A host of different raw power (paper question 6) feels the
  // same *degradation* at a different contention: map through the app
  // model's degradation curve evaluated on this host, anchored by the
  // reference machine.
  double eff_threshold = threshold;
  static const HostModel kReference{uucs::HostSpec::paper_study_machine()};
  if (host_.power_index() != kReference.power_index()) {
    const AppModel ref_app(AppProfile::for_task(task), kReference);
    const double theta = ref_app.degradation(r, threshold);
    eff_threshold = app(task).contention_for_degradation(r, theta);
    if (!std::isfinite(eff_threshold)) return -1.0;
  }

  const double rate = f->sample_rate_hz();
  const auto& values = f->values();
  const auto window = static_cast<std::size_t>(kSurpriseWindowS * rate);
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double c = values[i];
    // Frog-in-the-pot (§3.3.5): a level reached by an abrupt jump is felt
    // as if the threshold were lower by the surprise penalty; a slow ramp
    // lets the user acclimatize and tolerate the full threshold. The jump
    // test is relative so a steep-but-continuous ramp does not register as
    // a surprise once it is under way.
    const double past = i >= window ? values[i - window] : 0.0;
    const bool surprised = (c - past) > std::max(kSurpriseJump, 0.5 * c);
    const double t_eff =
        surprised ? eff_threshold * (1.0 - user.surprise_penalty) : eff_threshold;
    if (c >= t_eff && c > 0.0) return static_cast<double>(i) / rate;
  }
  return -1.0;
}

RunSimulator::Outcome RunSimulator::simulate(const UserProfile& user, Task task,
                                             const uucs::Testcase& tc,
                                             uucs::Rng& rng) const {
  const double duration = tc.duration();
  Outcome out;
  out.offset_s = duration;

  double best_cross = std::numeric_limits<double>::infinity();
  std::optional<uucs::Resource> trigger;
  for (uucs::Resource r : uucs::kStudyResources) {
    const double t = crossing_time(user, task, tc, r);
    if (t >= 0 && t < best_cross) {
      best_cross = t;
      trigger = r;
    }
  }
  double t_threshold = std::numeric_limits<double>::infinity();
  if (trigger) t_threshold = best_cross + user.reaction_delay_s;

  double t_noise = std::numeric_limits<double>::infinity();
  double lambda = noise_rate(task) * user.noise_multiplier;
  if (!tc.is_blank()) lambda *= nonblank_noise_scale_;
  if (lambda > 0) t_noise = rng.exponential(1.0 / lambda);

  const double t_fb = std::min(t_threshold, t_noise);
  if (t_fb < duration) {
    out.discomforted = true;
    out.offset_s = t_fb;
    out.noise_triggered = t_noise < t_threshold;
    if (!out.noise_triggered) out.trigger = trigger;
  }
  return out;
}

uucs::RunRecord RunSimulator::simulate_record(const UserProfile& user, Task task,
                                              const uucs::Testcase& tc,
                                              uucs::Rng& rng,
                                              const std::string& run_id) const {
  const Outcome out = simulate(user, task, tc, rng);
  uucs::RunRecord rec;
  rec.run_id = run_id;
  rec.user_id = user.user_id;
  rec.testcase_id = tc.id();
  rec.task = task_name(task);
  rec.discomforted = out.discomforted;
  rec.offset_s = out.offset_s;
  for (uucs::Resource r : tc.resources()) {
    const uucs::ExerciseFunction* f = tc.function(r);
    UUCS_CHECK(f != nullptr);
    rec.set_last_levels(r, f->last_values_before(out.offset_s));
  }
  rec.metadata["testcase.description"] = tc.description();
  rec.metadata["noise_triggered"] = out.noise_triggered ? "true" : "false";
  if (out.trigger) rec.metadata["trigger"] = uucs::resource_name(*out.trigger);
  rec.metadata["host.power"] = uucs::strprintf("%.6g", host_.power_index());
  for (std::size_t c = 0; c < kSkillCategoryCount; ++c) {
    rec.metadata["skill." + skill_category_name(static_cast<SkillCategory>(c))] =
        skill_rating_name(user.ratings[c]);
  }
  return rec;
}

FlatRunKeys::FlatRunKeys(uucs::StringInterner& pool) {
  testcase_description = pool.intern("testcase.description");
  noise_triggered = pool.intern("noise_triggered");
  true_value = pool.intern("true");
  false_value = pool.intern("false");
  trigger = pool.intern("trigger");
  host_power = pool.intern("host.power");
  for (std::size_t i = 0; i < uucs::kResourceCount; ++i) {
    resource_names[i] =
        pool.intern(uucs::resource_name(static_cast<uucs::Resource>(i)));
  }
  for (std::size_t c = 0; c < kSkillCategoryCount; ++c) {
    skill_keys[c] = pool.intern(
        "skill." + skill_category_name(static_cast<SkillCategory>(c)));
  }
  for (std::size_t r = 0; r < 3; ++r) {
    rating_names[r] = pool.intern(skill_rating_name(static_cast<SkillRating>(r)));
  }
  for (std::size_t i = 0; i < kTaskCount; ++i) {
    task_names[i] = pool.intern(task_name(static_cast<Task>(i)));
  }
}

namespace {

const FlatRunKeys& global_flat_keys() {
  static const FlatRunKeys table(uucs::StringInterner::global());
  return table;
}

}  // namespace

RunSimulator::FlatRunContext RunSimulator::flat_context(
    const UserProfile& user) const {
  return flat_context(user, global_flat_keys(), uucs::StringInterner::global());
}

RunSimulator::FlatRunContext RunSimulator::flat_context(
    const UserProfile& user, const FlatRunKeys& keys,
    uucs::StringInterner& pool) const {
  FlatRunContext ctx;
  ctx.user_id = pool.intern(user.user_id);
  ctx.host_power = pool.intern(uucs::strprintf("%.6g", host_.power_index()));
  for (std::size_t c = 0; c < kSkillCategoryCount; ++c) {
    ctx.skills[c] =
        keys.rating_names[static_cast<std::size_t>(user.ratings[c])];
  }
  return ctx;
}

uucs::FlatRunRecord RunSimulator::simulate_flat(
    const UserProfile& user, Task task, const uucs::Testcase& tc,
    const uucs::InternedTestcase& itc, uucs::Rng& rng, std::string run_id,
    const FlatRunContext& ctx) const {
  return simulate_flat(user, task, tc, itc, rng, std::move(run_id), ctx,
                       global_flat_keys(), uucs::StringInterner::global());
}

uucs::FlatRunRecord RunSimulator::simulate_flat(
    const UserProfile& user, Task task, const uucs::Testcase& tc,
    const uucs::InternedTestcase& itc, uucs::Rng& rng, std::string run_id,
    const FlatRunContext& ctx, const FlatRunKeys& keys,
    uucs::StringInterner& pool) const {
  const Outcome out = simulate(user, task, tc, rng);
  uucs::FlatRunRecord rec;
  rec.run_id = std::move(run_id);
  rec.user_id = ctx.user_id;
  rec.testcase_id = itc.id;
  rec.task = keys.task_names[static_cast<std::size_t>(task)];
  rec.discomforted = out.discomforted;
  rec.offset_s = out.offset_s;
  for (std::size_t i = 0; i < uucs::kResourceCount; ++i) {
    const auto r = static_cast<uucs::Resource>(i);
    const uucs::ExerciseFunction* f = tc.function(r);
    if (f == nullptr) continue;
    double trail[uucs::FlatRunRecord::kTrailMax];
    const std::size_t n = f->last_values_before_into(
        out.offset_s, trail, uucs::FlatRunRecord::kTrailMax);
    rec.set_levels(r, trail, n, pool);
  }
  rec.add_meta(keys.testcase_description, itc.description);
  rec.add_meta(keys.noise_triggered,
               out.noise_triggered ? keys.true_value : keys.false_value);
  if (out.trigger) {
    rec.add_meta(keys.trigger,
                 keys.resource_names[static_cast<std::size_t>(*out.trigger)]);
  }
  rec.add_meta(keys.host_power, ctx.host_power);
  for (std::size_t c = 0; c < kSkillCategoryCount; ++c) {
    rec.add_meta(keys.skill_keys[c], ctx.skills[c]);
  }
  return rec;
}

}  // namespace uucs::sim
