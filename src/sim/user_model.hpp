#pragma once

#include <array>
#include <map>
#include <optional>
#include <string>

#include "sim/app_model.hpp"
#include "sim/task.hpp"
#include "testcase/run_record.hpp"
#include "testcase/run_record_flat.hpp"
#include "testcase/testcase.hpp"
#include "util/rng.hpp"

namespace uucs::sim {

/// Self-rating categories from the study questionnaire (§3.1): users rate
/// themselves for PC usage, Windows, and each of the four applications.
enum class SkillCategory {
  kPc = 0,
  kWindows = 1,
  kWord = 2,
  kPowerpoint = 3,
  kIe = 4,
  kQuake = 5,
};
inline constexpr std::size_t kSkillCategoryCount = 6;

/// The three self-rating levels from the questionnaire.
enum class SkillRating { kBeginner = 0, kTypical = 1, kPower = 2 };

const std::string& skill_category_name(SkillCategory c);
const std::string& skill_rating_name(SkillRating r);
SkillRating parse_skill_rating(const std::string& name);

/// The skill category whose self-rating is most relevant to a task.
SkillCategory task_skill_category(Task t);

/// A synthetic study participant. Thresholds are *contention* levels per
/// (task, resource) cell at which this user's discomfort is triggered under
/// slowly varying borrowing; they are drawn by the population calibrator so
/// the population reproduces the paper's per-cell statistics.
struct UserProfile {
  std::string user_id;
  std::array<SkillRating, kSkillCategoryCount> ratings{
      SkillRating::kTypical, SkillRating::kTypical, SkillRating::kTypical,
      SkillRating::kTypical, SkillRating::kTypical, SkillRating::kTypical};
  double latent_skill = 0.0;  ///< z-score behind the ratings (higher = more expert)

  /// Contention thresholds [task][study resource]; +inf = never discomforted.
  std::array<std::array<double, 3>, kTaskCount> thresholds{};

  /// Personal multiplier on the task noise-floor hazard.
  double noise_multiplier = 1.0;

  /// Seconds between the threshold crossing and the actual click/hot-key.
  double reaction_delay_s = 2.0;

  /// Frog-in-the-pot surprise penalty: abrupt contention jumps are felt as
  /// if the threshold were lower by this fraction (§3.3.5).
  double surprise_penalty = 0.15;

  double threshold(Task t, uucs::Resource r) const;
  void set_threshold(Task t, uucs::Resource r, double v);
  SkillRating rating(SkillCategory c) const {
    return ratings[static_cast<std::size_t>(c)];
  }
};

/// Interner ids of every string simulate_flat() emits that is constant
/// across a pool's lifetime: well-known metadata keys, resource names, task
/// names, skill-rating names, the "true"/"false" literals. Built once per
/// string pool — process-wide for StringInterner::global(), once per engine
/// worker for the sharded drivers' thread-local pools — so the per-run hot
/// path never calls intern() for a constant.
struct FlatRunKeys {
  explicit FlatRunKeys(uucs::StringInterner& pool);

  std::uint32_t testcase_description;
  std::uint32_t noise_triggered;
  std::uint32_t true_value;
  std::uint32_t false_value;
  std::uint32_t trigger;
  std::uint32_t host_power;
  std::array<std::uint32_t, uucs::kResourceCount> resource_names;
  std::array<std::uint32_t, kSkillCategoryCount> skill_keys;
  std::array<std::uint32_t, 3> rating_names;
  std::array<std::uint32_t, kTaskCount> task_names;
};

/// Simulates individual testcase runs for synthetic users: the virtual-time
/// equivalent of the real client executing a testcase while the user works.
class RunSimulator {
 public:
  /// `host` must outlive the simulator. Noise rates are per-second hazards
  /// of spontaneous (no-borrowing) discomfort per task; the study
  /// calibration derives them from Fig 9's blank-testcase probabilities.
  RunSimulator(const HostModel& host, std::array<double, kTaskCount> noise_rates);

  /// Fully-configured constructor: a simulator built this way needs no
  /// further mutation, so it can be declared const and shared read-only
  /// across SessionEngine shards (simulate()/simulate_record() are const
  /// and keep all per-run state in the caller's Rng).
  RunSimulator(const HostModel& host, std::array<double, kTaskCount> noise_rates,
               double nonblank_noise_scale);

  const HostModel& host() const { return host_; }
  const AppModel& app(Task t) const;
  double noise_rate(Task t) const;

  /// Scale applied to the noise-floor hazard during non-blank runs: an
  /// active borrowing episode captures some of the attention that would
  /// otherwise produce an ambient-annoyance press, so spontaneous feedback
  /// is somewhat rarer there than in blank runs. 1.0 disables the effect.
  void set_nonblank_noise_scale(double scale);
  double nonblank_noise_scale() const { return nonblank_noise_scale_; }

  /// Outcome of one simulated run.
  struct Outcome {
    bool discomforted = false;
    double offset_s = 0.0;          ///< feedback time, or duration if exhausted
    bool noise_triggered = false;   ///< discomfort came from the noise floor
    std::optional<uucs::Resource> trigger;  ///< crossing resource, if any
  };

  /// Simulates `user` performing `task` while `tc` runs in the background.
  /// Deterministic given `rng` state.
  Outcome simulate(const UserProfile& user, Task task, const uucs::Testcase& tc,
                   uucs::Rng& rng) const;

  /// Like simulate(), but also builds the client-format RunRecord (last
  /// contention levels, task, metadata) the analysis pipeline consumes.
  uucs::RunRecord simulate_record(const UserProfile& user, Task task,
                                  const uucs::Testcase& tc, uucs::Rng& rng,
                                  const std::string& run_id) const;

  /// Pre-interned per-user context for simulate_flat(): everything constant
  /// across one user's runs is pooled once before the first run (the
  /// session drivers build one per job). The pool-taking overload interns
  /// into a worker-local pool with that pool's key table; the default
  /// overload uses the process-wide pool (and its global key table), whose
  /// mutex makes it the slow path on sharded drivers.
  struct FlatRunContext {
    std::uint32_t user_id = 0;
    std::uint32_t host_power = 0;  ///< "%.6g" of the host power index
    std::array<std::uint32_t, kSkillCategoryCount> skills{};  ///< rating names
  };
  FlatRunContext flat_context(const UserProfile& user) const;
  FlatRunContext flat_context(const UserProfile& user, const FlatRunKeys& keys,
                              uucs::StringInterner& pool) const;

  /// The hot-path twin of simulate_record(): same simulate() call (so the
  /// RNG draw sequence is identical), but the result is a FlatRunRecord of
  /// interned ids and inline arrays — no map or string allocation per run.
  /// `itc` carries the testcase's pre-interned id and description.
  /// `keys`/`pool` must be the table and pool `ctx` and `itc` were built
  /// from; the default overload uses the global pool. Guarantee (enforced
  /// by tests): to_run_record() of the result against the same pool is
  /// field-identical to what simulate_record() returns for the same inputs.
  uucs::FlatRunRecord simulate_flat(const UserProfile& user, Task task,
                                    const uucs::Testcase& tc,
                                    const uucs::InternedTestcase& itc,
                                    uucs::Rng& rng,
                                    std::string run_id,
                                    const FlatRunContext& ctx) const;
  uucs::FlatRunRecord simulate_flat(const UserProfile& user, Task task,
                                    const uucs::Testcase& tc,
                                    const uucs::InternedTestcase& itc,
                                    uucs::Rng& rng,
                                    std::string run_id,
                                    const FlatRunContext& ctx,
                                    const FlatRunKeys& keys,
                                    uucs::StringInterner& pool) const;

  /// First time at which `user` would cross the discomfort threshold for
  /// resource `r` of `tc` during `task`; negative if never. Exposed for
  /// tests and the analysis of time dynamics.
  double crossing_time(const UserProfile& user, Task task, const uucs::Testcase& tc,
                       uucs::Resource r) const;

 private:
  const HostModel& host_;
  std::array<AppModel, kTaskCount> apps_;
  std::array<double, kTaskCount> noise_rates_;
  double nonblank_noise_scale_ = 1.0;
};

}  // namespace uucs::sim
