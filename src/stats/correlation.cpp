#include "stats/correlation.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace uucs::stats {

double pearson_correlation(const std::vector<double>& x,
                           const std::vector<double>& y) {
  UUCS_CHECK_MSG(x.size() == y.size(), "correlation needs equal lengths");
  UUCS_CHECK_MSG(x.size() >= 2, "correlation needs at least two points");
  const double n = static_cast<double>(x.size());
  double mx = 0, my = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= n;
  my /= n;
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0 || syy <= 0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> midranks(const std::vector<double>& xs) {
  std::vector<std::size_t> order(xs.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(xs.size(), 0.0);
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() && xs[order[j + 1]] == xs[order[i]]) ++j;
    // Positions i..j (0-based) share the average 1-based rank.
    const double rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = rank;
    i = j + 1;
  }
  return ranks;
}

double spearman_correlation(const std::vector<double>& x,
                            const std::vector<double>& y) {
  UUCS_CHECK_MSG(x.size() == y.size(), "correlation needs equal lengths");
  return pearson_correlation(midranks(x), midranks(y));
}

}  // namespace uucs::stats
