#pragma once

#include <vector>

namespace uucs::stats {

/// Pearson product-moment correlation of two equal-length samples.
/// Returns 0 when either sample is constant. Throws on length mismatch or
/// fewer than two points.
double pearson_correlation(const std::vector<double>& x,
                           const std::vector<double>& y);

/// Spearman rank correlation (Pearson on mid-ranks; ties averaged). Robust
/// to monotone-nonlinear relationships like host power vs tolerated
/// contention.
double spearman_correlation(const std::vector<double>& x,
                            const std::vector<double>& y);

/// Mid-ranks of a sample (1-based; ties share the average rank).
std::vector<double> midranks(const std::vector<double>& xs);

}  // namespace uucs::stats
