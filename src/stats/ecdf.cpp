#include "stats/ecdf.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace uucs::stats {

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  UUCS_CHECK_MSG(!sorted_.empty(), "EmpiricalCdf needs at least one sample");
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::at(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double q) const {
  UUCS_CHECK_MSG(q > 0 && q <= 1, "EmpiricalCdf quantile q must be in (0,1]");
  const auto n = sorted_.size();
  const auto k = static_cast<std::size_t>(std::ceil(q * static_cast<double>(n)));
  return sorted_[std::min(k == 0 ? 0 : k - 1, n - 1)];
}

void DiscomfortCdf::add_discomfort(double level) {
  UUCS_CHECK_MSG(level >= 0, "contention level cannot be negative");
  levels_.push_back(level);
}

void DiscomfortCdf::add_exhausted() { ++exhausted_; }

void DiscomfortCdf::merge(const DiscomfortCdf& other) {
  levels_.insert(levels_.end(), other.levels_.begin(), other.levels_.end());
  exhausted_ += other.exhausted_;
}

double DiscomfortCdf::fraction_discomforted() const {
  const auto total = run_count();
  return total == 0 ? 0.0 : static_cast<double>(levels_.size()) / static_cast<double>(total);
}

double DiscomfortCdf::fraction_at(double x) const {
  const auto total = run_count();
  if (total == 0) return 0.0;
  std::size_t below = 0;
  for (double l : levels_) {
    if (l <= x) ++below;
  }
  return static_cast<double>(below) / static_cast<double>(total);
}

std::optional<double> DiscomfortCdf::level_at_fraction(double q) const {
  UUCS_CHECK_MSG(q > 0 && q <= 1, "level_at_fraction q must be in (0,1]");
  const auto total = run_count();
  if (total == 0) return std::nullopt;
  std::vector<double> sorted = levels_;
  std::sort(sorted.begin(), sorted.end());
  const auto need =
      static_cast<std::size_t>(std::ceil(q * static_cast<double>(total) - 1e-12));
  if (need == 0) return sorted.empty() ? std::optional<double>{} : sorted.front();
  if (need > sorted.size()) return std::nullopt;  // q beyond f_d: censored region
  return sorted[need - 1];
}

std::optional<MeanCi> DiscomfortCdf::mean_discomfort_level(double confidence) const {
  if (levels_.empty()) return std::nullopt;
  return mean_confidence_interval(levels_, confidence);
}

std::vector<std::pair<double, double>> DiscomfortCdf::curve_points() const {
  std::vector<std::pair<double, double>> pts;
  if (levels_.empty()) return pts;
  std::vector<double> sorted = levels_;
  std::sort(sorted.begin(), sorted.end());
  const double total = static_cast<double>(run_count());
  pts.emplace_back(sorted.front(), 0.0);
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    // Collapse ties: emit one point per distinct level at the upper count.
    if (i + 1 < sorted.size() && sorted[i + 1] == sorted[i]) continue;
    pts.emplace_back(sorted[i], static_cast<double>(i + 1) / total);
  }
  return pts;
}

double DiscomfortCdf::dkw_half_width(double alpha) const {
  UUCS_CHECK_MSG(alpha > 0 && alpha < 1, "alpha must be in (0,1)");
  const auto n = run_count();
  if (n == 0) return 0.0;
  return std::sqrt(std::log(2.0 / alpha) / (2.0 * static_cast<double>(n)));
}

std::string DiscomfortCdf::ascii_plot(int width, int height, const std::string& title) const {
  UUCS_CHECK_MSG(width >= 10 && height >= 4, "plot too small");
  std::ostringstream os;
  if (!title.empty()) os << title << '\n';
  os << uucs::strprintf("DfCount=%zu ExCount=%zu f_d=%.2f\n", discomfort_count(),
                        exhausted_count(), fraction_discomforted());
  if (levels_.empty()) {
    os << "(no discomfort observed in range)\n";
    return os.str();
  }
  const auto pts = curve_points();
  const double xmax = std::max(1e-9, pts.back().first);
  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  for (int col = 0; col < width; ++col) {
    const double x = xmax * (col + 1) / width;
    const double f = fraction_at(x);
    int row = static_cast<int>(std::round(f * (height - 1)));
    row = std::clamp(row, 0, height - 1);
    grid[static_cast<std::size_t>(height - 1 - row)][static_cast<std::size_t>(col)] = '*';
  }
  for (int r = 0; r < height; ++r) {
    const double frac = static_cast<double>(height - 1 - r) / (height - 1);
    os << uucs::strprintf("%5.2f |", frac) << grid[static_cast<std::size_t>(r)] << '\n';
  }
  os << "      +" << std::string(static_cast<std::size_t>(width), '-') << '\n';
  os << uucs::strprintf("       0%*s\n", width - 1,
                        uucs::strprintf("%.2f", xmax).c_str());
  return os.str();
}

}  // namespace uucs::stats
