#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "stats/summary.hpp"

namespace uucs::stats {

/// Plain empirical CDF over a sample.
class EmpiricalCdf {
 public:
  explicit EmpiricalCdf(std::vector<double> samples);

  /// F(x) = fraction of samples <= x.
  double at(double x) const;

  /// Smallest sample value v with F(v) >= q, q in (0,1].
  double quantile(double q) const;

  std::size_t size() const { return sorted_.size(); }
  const std::vector<double>& sorted_samples() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

/// The paper's discomfort CDF (Figs 10-12, 18): the cumulative fraction of
/// *runs* whose user expressed discomfort at or below a given contention
/// level. Runs where the testcase exhausted without feedback are
/// right-censored — they enter the denominator but never the numerator, so
/// the curve saturates at f_d = DfCount / (DfCount + ExCount).
class DiscomfortCdf {
 public:
  /// Records a run that ended in discomfort at `level`.
  void add_discomfort(double level);

  /// Records a run that exhausted without feedback (censored at the
  /// testcase's maximum level, which only matters for bookkeeping).
  void add_exhausted();

  /// Merges another CDF's runs into this one (used for aggregation across
  /// tasks, Figs 10-12).
  void merge(const DiscomfortCdf& other);

  std::size_t discomfort_count() const { return levels_.size(); }
  std::size_t exhausted_count() const { return exhausted_; }
  std::size_t run_count() const { return levels_.size() + exhausted_; }

  /// f_d = DfCount / (DfCount + ExCount); 0 if no runs (Fig 14).
  double fraction_discomforted() const;

  /// Cumulative fraction of runs discomforted at contention <= x.
  double fraction_at(double x) const;

  /// c_q: the contention level at which a fraction q of runs have become
  /// discomforted (Fig 15 uses q=0.05). nullopt when q exceeds f_d — the
  /// paper marks such cells '*': insufficient information.
  std::optional<double> level_at_fraction(double q) const;

  /// c_a: mean contention level at discomfort with a Student-t confidence
  /// interval (Fig 16). nullopt when no discomfort was observed.
  std::optional<MeanCi> mean_discomfort_level(double confidence = 0.95) const;

  /// The discomfort levels observed (unsorted).
  const std::vector<double>& discomfort_levels() const { return levels_; }

  /// Step-function points (x, F(x)) suitable for plotting or CSV export;
  /// includes a leading (min_x, 0) anchor.
  std::vector<std::pair<double, double>> curve_points() const;

  /// Renders an ASCII plot of the CDF, `width` x `height` characters,
  /// for the figure benches.
  std::string ascii_plot(int width = 60, int height = 16,
                         const std::string& title = "") const;

  /// Dvoretzky–Kiefer–Wolfowitz half-width: with probability 1-alpha the
  /// true curve lies within +-epsilon of the empirical one everywhere,
  /// epsilon = sqrt(ln(2/alpha) / (2 n)). Returns 0 for an empty CDF.
  double dkw_half_width(double alpha = 0.05) const;

 private:
  std::vector<double> levels_;
  std::size_t exhausted_ = 0;
};

}  // namespace uucs::stats
