#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "stats/summary.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace uucs::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  UUCS_CHECK_MSG(hi > lo, "histogram range must be non-empty");
  UUCS_CHECK_MSG(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) {
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::size_t>(frac * static_cast<double>(counts_.size()));
  idx = std::min(idx, counts_.size() - 1);
  ++counts_[idx];
}

std::size_t Histogram::total() const {
  std::size_t t = underflow_ + overflow_;
  for (auto c : counts_) t += c;
  return t;
}

std::pair<double, double> Histogram::bin_range(std::size_t i) const {
  UUCS_CHECK_MSG(i < counts_.size(), "bin index out of range");
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return {lo_ + w * static_cast<double>(i), lo_ + w * static_cast<double>(i + 1)};
}

std::string Histogram::ascii_render(int bar_width) const {
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto [a, b] = bin_range(i);
    const int bar =
        static_cast<int>(std::lround(static_cast<double>(counts_[i]) * bar_width /
                                     static_cast<double>(peak)));
    os << uucs::strprintf("[%8.3f,%8.3f) %6zu |", a, b, counts_[i])
       << std::string(static_cast<std::size_t>(bar), '#') << '\n';
  }
  if (underflow_ || overflow_) {
    os << uucs::strprintf("underflow=%zu overflow=%zu\n", underflow_, overflow_);
  }
  return os.str();
}

BootstrapCi bootstrap_mean_ci(const std::vector<double>& xs, double confidence,
                              std::size_t resamples, std::uint64_t seed) {
  UUCS_CHECK_MSG(!xs.empty(), "bootstrap of empty sample");
  UUCS_CHECK_MSG(confidence > 0 && confidence < 1, "confidence in (0,1)");
  uucs::Rng rng(seed);
  std::vector<double> means;
  means.reserve(resamples);
  const auto n = xs.size();
  for (std::size_t r = 0; r < resamples; ++r) {
    double sum = 0;
    for (std::size_t i = 0; i < n; ++i) {
      sum += xs[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1))];
    }
    means.push_back(sum / static_cast<double>(n));
  }
  BootstrapCi ci;
  ci.estimate = mean_of(xs);
  const double alpha = 1.0 - confidence;
  ci.lo = quantile(means, alpha / 2.0);
  ci.hi = quantile(means, 1.0 - alpha / 2.0);
  return ci;
}

}  // namespace uucs::stats
