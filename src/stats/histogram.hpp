#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace uucs::stats {

/// Fixed-width-bin histogram over [lo, hi). Values outside the range count
/// in underflow/overflow. Used by the monitor for load summaries and by the
/// analysis tools for threshold distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t bin_count() const { return counts_.size(); }
  std::size_t bin(std::size_t i) const { return counts_.at(i); }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  std::size_t total() const;

  /// [left_edge, right_edge) of bin i.
  std::pair<double, double> bin_range(std::size_t i) const;

  /// Horizontal ASCII bar rendering.
  std::string ascii_render(int bar_width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

/// Percentile bootstrap confidence interval for the mean of `xs`:
/// `resamples` bootstrap replicates with the provided RNG seed.
struct BootstrapCi {
  double estimate = 0.0;
  double lo = 0.0;
  double hi = 0.0;
};
BootstrapCi bootstrap_mean_ci(const std::vector<double>& xs, double confidence = 0.95,
                              std::size_t resamples = 2000, std::uint64_t seed = 1);

}  // namespace uucs::stats
