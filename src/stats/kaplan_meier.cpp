#include "stats/kaplan_meier.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace uucs::stats {

void KaplanMeier::add_event(double level) {
  UUCS_CHECK_MSG(level >= 0, "level must be >= 0");
  observations_.push_back({level, true});
  ++events_;
}

void KaplanMeier::add_censored(double level) {
  UUCS_CHECK_MSG(level >= 0, "level must be >= 0");
  observations_.push_back({level, false});
  ++censored_;
}

std::vector<std::pair<double, double>> KaplanMeier::curve_points() const {
  std::vector<Obs> sorted = observations_;
  std::sort(sorted.begin(), sorted.end(), [](const Obs& a, const Obs& b) {
    if (a.level != b.level) return a.level < b.level;
    // Events before censorings at the same level: the censored runs were
    // still at risk when the event occurred.
    return a.event && !b.event;
  });

  std::vector<std::pair<double, double>> points;
  double survival = 1.0;
  std::size_t at_risk = sorted.size();
  std::size_t i = 0;
  while (i < sorted.size()) {
    const double level = sorted[i].level;
    std::size_t events_here = 0;
    std::size_t total_here = 0;
    while (i < sorted.size() && sorted[i].level == level) {
      if (sorted[i].event) ++events_here;
      ++total_here;
      ++i;
    }
    if (events_here > 0) {
      survival *= 1.0 - static_cast<double>(events_here) /
                            static_cast<double>(at_risk);
      points.emplace_back(level, 1.0 - survival);
    }
    at_risk -= total_here;
  }
  return points;
}

double KaplanMeier::discomfort_probability(double x) const {
  double prob = 0.0;
  for (const auto& [level, p] : curve_points()) {
    if (level > x) break;
    prob = p;
  }
  return prob;
}

std::optional<double> KaplanMeier::level_at_probability(double q) const {
  UUCS_CHECK_MSG(q > 0 && q <= 1, "probability must be in (0,1]");
  for (const auto& [level, p] : curve_points()) {
    if (p >= q) return level;
  }
  return std::nullopt;
}

}  // namespace uucs::stats
