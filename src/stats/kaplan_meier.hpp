#pragma once

#include <optional>
#include <utility>
#include <vector>

namespace uucs::stats {

/// Kaplan–Meier product-limit estimator over right-censored observations.
///
/// The discomfort data is textbook right-censored survival data in the
/// *contention* dimension: a run that ends in discomfort at level L is an
/// event at L; a run whose testcase exhausted observed the user surviving
/// to the testcase's maximum level (censored at x_max). The naive
/// discomfort CDF (Figs 10-12) divides by all runs regardless of each run's
/// censoring level, which biases the aggregate when tasks explore different
/// ramp maxima (Word's CPU ramp reaches 7.0, Quake's only 1.3). The KM
/// estimator handles exactly this.
class KaplanMeier {
 public:
  /// Records a discomfort event at `level`.
  void add_event(double level);

  /// Records a run censored at `level` (survived to there, then the
  /// testcase ended).
  void add_censored(double level);

  std::size_t event_count() const { return events_; }
  std::size_t censored_count() const { return censored_; }
  std::size_t size() const { return events_ + censored_; }

  /// Estimated probability of discomfort at contention <= x:
  /// 1 - prod_{levels l <= x} (1 - d_l / n_l).
  double discomfort_probability(double x) const;

  /// Smallest event level where discomfort probability reaches `q`;
  /// nullopt if the curve never gets there (data too censored).
  std::optional<double> level_at_probability(double q) const;

  /// Step-curve points (level, discomfort probability) at each event level.
  std::vector<std::pair<double, double>> curve_points() const;

 private:
  struct Obs {
    double level;
    bool event;
  };
  std::vector<Obs> observations_;
  std::size_t events_ = 0;
  std::size_t censored_ = 0;
};

}  // namespace uucs::stats
