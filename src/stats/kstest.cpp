#include "stats/kstest.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace uucs::stats {

double kolmogorov_q(double lambda) {
  if (lambda <= 0) return 1.0;
  double sum = 0.0;
  double sign = 1.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * k * k * lambda * lambda);
    sum += sign * term;
    sign = -sign;
    if (term < 1e-16) break;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

namespace {

double asymptotic_p(double d, double effective_n) {
  // Stephens' small-sample correction.
  const double sqrt_n = std::sqrt(effective_n);
  const double lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d;
  return kolmogorov_q(lambda);
}

}  // namespace

KsResult ks_test(std::vector<double> sample,
                 const std::function<double(double)>& reference) {
  UUCS_CHECK_MSG(!sample.empty(), "ks_test needs a non-empty sample");
  UUCS_CHECK(reference != nullptr);
  std::sort(sample.begin(), sample.end());
  const double n = static_cast<double>(sample.size());
  double d = 0.0;
  for (std::size_t i = 0; i < sample.size(); ++i) {
    const double f = reference(sample[i]);
    UUCS_CHECK_MSG(f >= -1e-12 && f <= 1.0 + 1e-12, "reference CDF out of [0,1]");
    const double above = static_cast<double>(i + 1) / n - f;
    const double below = f - static_cast<double>(i) / n;
    d = std::max({d, above, below});
  }
  KsResult r;
  r.statistic = d;
  r.n = sample.size();
  r.p_value = asymptotic_p(d, n);
  return r;
}

KsResult ks_test_two_sample(std::vector<double> a, std::vector<double> b) {
  UUCS_CHECK_MSG(!a.empty() && !b.empty(), "ks_test needs non-empty samples");
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  std::size_t ia = 0, ib = 0;
  double d = 0.0;
  while (ia < a.size() && ib < b.size()) {
    const double x = std::min(a[ia], b[ib]);
    while (ia < a.size() && a[ia] <= x) ++ia;
    while (ib < b.size() && b[ib] <= x) ++ib;
    d = std::max(d, std::fabs(static_cast<double>(ia) / na -
                              static_cast<double>(ib) / nb));
  }
  KsResult r;
  r.statistic = d;
  r.n = a.size() + b.size();
  r.p_value = asymptotic_p(d, na * nb / (na + nb));
  return r;
}

}  // namespace uucs::stats
