#pragma once

#include <functional>
#include <vector>

namespace uucs::stats {

/// One-sample Kolmogorov–Smirnov test against a reference CDF, used to
/// verify that generated populations match their fitted distributions and
/// that queueing traces match theory.
struct KsResult {
  double statistic = 0.0;  ///< D_n = sup |F_n(x) - F(x)|
  double p_value = 1.0;    ///< asymptotic two-sided p (Kolmogorov Q)
  std::size_t n = 0;
};

/// `reference` must be a CDF evaluated at a sample value. Throws on an
/// empty sample.
KsResult ks_test(std::vector<double> sample,
                 const std::function<double(double)>& reference);

/// Two-sample KS test: D = sup |F_a(x) - F_b(x)| with the asymptotic
/// p-value on the effective sample size.
KsResult ks_test_two_sample(std::vector<double> a, std::vector<double> b);

/// The Kolmogorov survival function Q(lambda) = 2 sum (-1)^{k-1} e^{-2k^2
/// lambda^2}; exposed for tests.
double kolmogorov_q(double lambda);

}  // namespace uucs::stats
