#include "stats/optimize.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace uucs::stats {

OptimizeResult nelder_mead(const std::function<double(const std::vector<double>&)>& f,
                           std::vector<double> x0, double step,
                           std::size_t max_evals, double tol) {
  UUCS_CHECK_MSG(!x0.empty(), "nelder_mead needs at least one dimension");
  const std::size_t n = x0.size();
  OptimizeResult result;

  // Build the initial simplex: x0 plus one step along each axis.
  std::vector<std::vector<double>> pts(n + 1, x0);
  for (std::size_t i = 0; i < n; ++i) pts[i + 1][i] += step;
  std::vector<double> vals(n + 1);
  for (std::size_t i = 0; i <= n; ++i) {
    vals[i] = f(pts[i]);
    ++result.evaluations;
  }

  constexpr double kAlpha = 1.0;   // reflection
  constexpr double kGamma = 2.0;   // expansion
  constexpr double kRho = 0.5;     // contraction
  constexpr double kSigma = 0.5;   // shrink

  while (result.evaluations < max_evals) {
    // Order the simplex.
    std::vector<std::size_t> idx(n + 1);
    for (std::size_t i = 0; i <= n; ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(),
              [&](std::size_t a, std::size_t b) { return vals[a] < vals[b]; });
    const std::size_t best = idx[0];
    const std::size_t worst = idx[n];

    if (std::fabs(vals[worst] - vals[best]) <
        tol * (std::fabs(vals[best]) + tol)) {
      result.converged = true;
      break;
    }

    // Centroid excluding the worst point.
    std::vector<double> centroid(n, 0.0);
    for (std::size_t i = 0; i <= n; ++i) {
      if (i == worst) continue;
      for (std::size_t d = 0; d < n; ++d) centroid[d] += pts[i][d];
    }
    for (double& c : centroid) c /= static_cast<double>(n);

    auto blend = [&](double coef) {
      std::vector<double> p(n);
      for (std::size_t d = 0; d < n; ++d) {
        p[d] = centroid[d] + coef * (pts[worst][d] - centroid[d]);
      }
      return p;
    };

    const auto reflected = blend(-kAlpha);
    const double fr = f(reflected);
    ++result.evaluations;

    if (fr < vals[idx[0]]) {
      const auto expanded = blend(-kGamma);
      const double fe = f(expanded);
      ++result.evaluations;
      if (fe < fr) {
        pts[worst] = expanded;
        vals[worst] = fe;
      } else {
        pts[worst] = reflected;
        vals[worst] = fr;
      }
      continue;
    }
    if (fr < vals[idx[n - 1]]) {
      pts[worst] = reflected;
      vals[worst] = fr;
      continue;
    }
    const auto contracted = blend(kRho);
    const double fc = f(contracted);
    ++result.evaluations;
    if (fc < vals[worst]) {
      pts[worst] = contracted;
      vals[worst] = fc;
      continue;
    }
    // Shrink toward the best point.
    for (std::size_t i = 0; i <= n; ++i) {
      if (i == best) continue;
      for (std::size_t d = 0; d < n; ++d) {
        pts[i][d] = pts[best][d] + kSigma * (pts[i][d] - pts[best][d]);
      }
      vals[i] = f(pts[i]);
      ++result.evaluations;
    }
  }

  const auto best_it = std::min_element(vals.begin(), vals.end());
  result.value = *best_it;
  result.x = pts[static_cast<std::size_t>(best_it - vals.begin())];
  return result;
}

double golden_section(const std::function<double(double)>& f, double lo, double hi,
                      double tol) {
  UUCS_CHECK_MSG(lo <= hi, "golden_section: invalid bracket");
  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double a = lo, b = hi;
  double c = b - phi * (b - a);
  double d = a + phi * (b - a);
  double fc = f(c), fd = f(d);
  while (b - a > tol * (1.0 + std::fabs(a) + std::fabs(b))) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - phi * (b - a);
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + phi * (b - a);
      fd = f(d);
    }
  }
  return 0.5 * (a + b);
}

double bisect_root(const std::function<double(double)>& f, double lo, double hi,
                   double tol) {
  double flo = f(lo);
  double fhi = f(hi);
  UUCS_CHECK_MSG(flo == 0.0 || fhi == 0.0 || (flo < 0) != (fhi < 0),
                 "bisect_root: no sign change over bracket");
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  for (int i = 0; i < 200 && hi - lo > tol * (1.0 + std::fabs(lo)); ++i) {
    const double mid = 0.5 * (lo + hi);
    const double fm = f(mid);
    if (fm == 0.0) return mid;
    if ((fm < 0) == (flo < 0)) {
      lo = mid;
      flo = fm;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace uucs::stats
