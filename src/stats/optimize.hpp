#pragma once

#include <functional>
#include <vector>

namespace uucs::stats {

/// Result of a derivative-free minimization.
struct OptimizeResult {
  std::vector<double> x;    ///< best point found
  double value = 0.0;       ///< objective at x
  std::size_t evaluations = 0;
  bool converged = false;
};

/// Nelder–Mead simplex minimization of `f` starting from `x0` with initial
/// per-coordinate step `step`. Used by the population calibrator to fit
/// lognormal threshold distributions to the paper's published cell
/// statistics. Deterministic; no gradients required.
OptimizeResult nelder_mead(const std::function<double(const std::vector<double>&)>& f,
                           std::vector<double> x0, double step = 0.5,
                           std::size_t max_evals = 4000, double tol = 1e-10);

/// Golden-section minimization of a 1-D unimodal function on [lo, hi].
double golden_section(const std::function<double(double)>& f, double lo, double hi,
                      double tol = 1e-10);

/// Bisection root find for monotone `f` on [lo, hi] with f(lo), f(hi) of
/// opposite sign; throws Error if the bracket is invalid.
double bisect_root(const std::function<double(double)>& f, double lo, double hi,
                   double tol = 1e-12);

}  // namespace uucs::stats
