#include "stats/special.hpp"

#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace uucs::stats {

namespace {

/// Continued fraction for the incomplete beta (Numerical-Recipes style
/// modified Lentz algorithm).
double betacf(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-14;
  constexpr double kFpMin = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double incomplete_beta(double a, double b, double x) {
  UUCS_CHECK_MSG(a > 0 && b > 0, "incomplete_beta: a,b must be positive");
  UUCS_CHECK_MSG(x >= 0 && x <= 1, "incomplete_beta: x must be in [0,1]");
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b) +
                          a * std::log(x) + b * std::log1p(-x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * betacf(a, b, x) / a;
  }
  return 1.0 - front * betacf(b, a, 1.0 - x) / b;
}

double incomplete_gamma_p(double a, double x) {
  UUCS_CHECK_MSG(a > 0 && x >= 0, "incomplete_gamma_p domain");
  if (x == 0.0) return 0.0;
  const double lg = std::lgamma(a);
  if (x < a + 1.0) {
    // Series representation.
    double ap = a;
    double sum = 1.0 / a;
    double del = sum;
    for (int n = 0; n < 500; ++n) {
      ap += 1.0;
      del *= x / ap;
      sum += del;
      if (std::fabs(del) < std::fabs(sum) * 1e-15) break;
    }
    return sum * std::exp(-x + a * std::log(x) - lg);
  }
  // Continued fraction for Q(a,x); P = 1 - Q.
  constexpr double kFpMin = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = b + an / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 1e-15) break;
  }
  const double q = std::exp(-x + a * std::log(x) - lg) * h;
  return 1.0 - q;
}

double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double normal_quantile(double p) {
  UUCS_CHECK_MSG(p > 0 && p < 1, "normal_quantile: p must be in (0,1)");
  // Acklam's algorithm.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double plow = 0.02425;
  double x;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - plow) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log1p(-p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement step using the exact CDF.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

double student_t_cdf(double t, double nu) {
  UUCS_CHECK_MSG(nu > 0, "student_t_cdf: nu must be positive");
  if (std::isinf(t)) return t > 0 ? 1.0 : 0.0;
  const double t2 = t * t;
  if (t2 < nu) {
    // Near the median x = nu/(nu+t^2) rounds to 1 and loses t^2; the
    // symmetric form I_{t^2/(nu+t^2)}(1/2, nu/2) keeps full precision there.
    const double x = t2 / (nu + t2);
    const double half_center = 0.5 * incomplete_beta(0.5, nu / 2.0, x);
    return t >= 0 ? 0.5 + half_center : 0.5 - half_center;
  }
  const double x = nu / (nu + t2);
  const double tail = 0.5 * incomplete_beta(nu / 2.0, 0.5, x);
  return t >= 0 ? 1.0 - tail : tail;
}

double student_t_two_sided_p(double t, double nu) {
  UUCS_CHECK_MSG(nu > 0, "student_t_two_sided_p: nu must be positive");
  const double x = nu / (nu + t * t);
  return incomplete_beta(nu / 2.0, 0.5, x);
}

double student_t_quantile(double p, double nu) {
  UUCS_CHECK_MSG(p > 0 && p < 1, "student_t_quantile: p must be in (0,1)");
  // Bracket then bisect; the CDF is strictly increasing.
  double lo = -1.0, hi = 1.0;
  while (student_t_cdf(lo, nu) > p) lo *= 2.0;
  while (student_t_cdf(hi, nu) < p) hi *= 2.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (student_t_cdf(mid, nu) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-12 * std::max(1.0, std::fabs(hi))) break;
  }
  return 0.5 * (lo + hi);
}

}  // namespace uucs::stats
