#pragma once

namespace uucs::stats {

/// Regularized incomplete beta function I_x(a, b) for a,b > 0, x in [0,1].
/// Computed with the Lentz continued-fraction expansion; accurate to ~1e-12.
/// This is the only special function the t-test p-values need.
double incomplete_beta(double a, double b, double x);

/// Regularized lower incomplete gamma P(a, x), a > 0, x >= 0
/// (series for x < a+1, continued fraction otherwise). Used for
/// Poisson/chi-square tail probabilities.
double incomplete_gamma_p(double a, double x);

/// Standard normal CDF Phi(x).
double normal_cdf(double x);

/// Inverse standard normal CDF (Acklam's rational approximation refined by
/// one Halley step; |error| < 1e-13 over (0,1)).
double normal_quantile(double p);

/// Student-t CDF with nu degrees of freedom.
double student_t_cdf(double t, double nu);

/// Two-sided tail probability of |T| >= |t| for Student-t with nu dof.
double student_t_two_sided_p(double t, double nu);

/// Inverse of the Student-t CDF (bisection on student_t_cdf; used for
/// confidence-interval half-widths).
double student_t_quantile(double p, double nu);

}  // namespace uucs::stats
