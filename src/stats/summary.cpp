#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

#include "stats/special.hpp"
#include "util/error.hpp"

namespace uucs::stats {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStat::merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::mean() const { return mean_; }

double RunningStat::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::min() const {
  UUCS_CHECK_MSG(n_ > 0, "min of empty RunningStat");
  return min_;
}

double RunningStat::max() const {
  UUCS_CHECK_MSG(n_ > 0, "max of empty RunningStat");
  return max_;
}

MeanCi mean_confidence_interval(const std::vector<double>& xs, double confidence) {
  UUCS_CHECK_MSG(confidence > 0 && confidence < 1, "confidence must be in (0,1)");
  MeanCi ci;
  ci.n = xs.size();
  RunningStat rs;
  for (double x : xs) rs.add(x);
  ci.mean = rs.mean();
  if (xs.size() < 2) {
    ci.lo = ci.hi = ci.mean;
    return ci;
  }
  const double nu = static_cast<double>(xs.size() - 1);
  const double tcrit = student_t_quantile(0.5 + confidence / 2.0, nu);
  const double half = tcrit * rs.stddev() / std::sqrt(static_cast<double>(xs.size()));
  ci.lo = ci.mean - half;
  ci.hi = ci.mean + half;
  return ci;
}

double quantile(std::vector<double> xs, double q) {
  UUCS_CHECK_MSG(!xs.empty(), "quantile of empty sample");
  UUCS_CHECK_MSG(q >= 0 && q <= 1, "quantile q must be in [0,1]");
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto i = static_cast<std::size_t>(pos);
  if (i + 1 >= xs.size()) return xs.back();
  const double frac = pos - static_cast<double>(i);
  return xs[i] * (1.0 - frac) + xs[i + 1] * frac;
}

double mean_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  RunningStat rs;
  for (double x : xs) rs.add(x);
  return rs.mean();
}

}  // namespace uucs::stats
