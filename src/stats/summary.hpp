#pragma once

#include <cstddef>
#include <vector>

namespace uucs::stats {

/// Single-pass running moments (Welford). Numerically stable; merges
/// supported so per-thread accumulators can be combined.
class RunningStat {
 public:
  void add(double x);

  /// Merges another accumulator into this one.
  void merge(const RunningStat& other);

  std::size_t count() const { return n_; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 when n < 2.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Two-sided confidence interval for a mean.
struct MeanCi {
  double mean = 0.0;
  double lo = 0.0;
  double hi = 0.0;
  std::size_t n = 0;
};

/// Student-t confidence interval for the mean of `xs` at the given
/// confidence level (default 95%, matching the paper's Fig 16).
/// With n < 2 the interval degenerates to [mean, mean].
MeanCi mean_confidence_interval(const std::vector<double>& xs, double confidence = 0.95);

/// Quantile of `xs` with linear interpolation between order statistics
/// (type-7, the common default). q in [0,1]; xs need not be sorted.
double quantile(std::vector<double> xs, double q);

/// Mean of `xs`; 0 for empty input.
double mean_of(const std::vector<double>& xs);

}  // namespace uucs::stats
