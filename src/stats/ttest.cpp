#include "stats/ttest.hpp"

#include <cmath>

#include "stats/special.hpp"
#include "stats/summary.hpp"
#include "util/error.hpp"

namespace uucs::stats {

namespace {

RunningStat accumulate(const std::vector<double>& xs) {
  RunningStat rs;
  for (double x : xs) rs.add(x);
  return rs;
}

}  // namespace

TTestResult welch_t_test(const std::vector<double>& a, const std::vector<double>& b) {
  TTestResult r;
  if (a.size() < 2 || b.size() < 2) return r;
  const RunningStat sa = accumulate(a);
  const RunningStat sb = accumulate(b);
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  const double va = sa.variance() / na;
  const double vb = sb.variance() / nb;
  r.difference = sa.mean() - sb.mean();
  const double se2 = va + vb;
  if (se2 <= 0) return r;  // both groups constant: t undefined
  r.t = r.difference / std::sqrt(se2);
  r.dof = se2 * se2 / (va * va / (na - 1.0) + vb * vb / (nb - 1.0));
  r.p_two_sided = student_t_two_sided_p(r.t, r.dof);
  r.valid = true;
  return r;
}

TTestResult pooled_t_test(const std::vector<double>& a, const std::vector<double>& b) {
  TTestResult r;
  if (a.size() < 2 || b.size() < 2) return r;
  const RunningStat sa = accumulate(a);
  const RunningStat sb = accumulate(b);
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  const double dof = na + nb - 2.0;
  const double sp2 = ((na - 1.0) * sa.variance() + (nb - 1.0) * sb.variance()) / dof;
  r.difference = sa.mean() - sb.mean();
  const double se2 = sp2 * (1.0 / na + 1.0 / nb);
  if (se2 <= 0) return r;
  r.t = r.difference / std::sqrt(se2);
  r.dof = dof;
  r.p_two_sided = student_t_two_sided_p(r.t, r.dof);
  r.valid = true;
  return r;
}

TTestResult one_sample_t_test(const std::vector<double>& xs, double mu0) {
  TTestResult r;
  if (xs.size() < 2) return r;
  const RunningStat s = accumulate(xs);
  const double n = static_cast<double>(xs.size());
  r.difference = s.mean() - mu0;
  const double se2 = s.variance() / n;
  if (se2 <= 0) return r;
  r.t = r.difference / std::sqrt(se2);
  r.dof = n - 1.0;
  r.p_two_sided = student_t_two_sided_p(r.t, r.dof);
  r.valid = true;
  return r;
}

TTestResult paired_t_test(const std::vector<double>& a, const std::vector<double>& b) {
  UUCS_CHECK_MSG(a.size() == b.size(), "paired t-test needs equal lengths");
  std::vector<double> diff(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) diff[i] = a[i] - b[i];
  return one_sample_t_test(diff, 0.0);
}

}  // namespace uucs::stats
