#pragma once

#include <vector>

namespace uucs::stats {

/// Result of a t-test. `difference` is mean(a) - mean(b) for two-sample
/// tests, or mean(x) - mu0 for one-sample tests.
struct TTestResult {
  double t = 0.0;           ///< test statistic
  double dof = 0.0;         ///< degrees of freedom (Welch-Satterthwaite for unpaired)
  double p_two_sided = 1.0; ///< two-sided p-value
  double difference = 0.0;  ///< estimated mean difference
  bool valid = false;       ///< false when a group is too small / has no variance
};

/// Unpaired two-sample t-test with unequal variances (Welch). This is the
/// test behind the paper's Fig 17 skill-group comparisons.
TTestResult welch_t_test(const std::vector<double>& a, const std::vector<double>& b);

/// Unpaired two-sample t-test with pooled variance (classic Student).
TTestResult pooled_t_test(const std::vector<double>& a, const std::vector<double>& b);

/// One-sample t-test of mean(xs) against mu0. Used for the paired
/// ramp-vs-step analysis (§3.3.5): differences tested against zero.
TTestResult one_sample_t_test(const std::vector<double>& xs, double mu0);

/// Paired t-test: one_sample_t_test(a - b, 0). Requires equal lengths.
TTestResult paired_t_test(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace uucs::stats
