#include "study/calibration.hpp"

#include <algorithm>

#include "stats/optimize.hpp"
#include "stats/special.hpp"
#include "util/error.hpp"

namespace uucs::study {

MixtureStats ramp_mixture_stats(double mu, double sigma, double ramp_max,
                                double duration_s, double noise_rate_per_s) {
  UUCS_CHECK_MSG(ramp_max > 0 && duration_s > 0, "ramp parameters");
  UUCS_CHECK_MSG(sigma > 0, "sigma must be positive");
  constexpr int kGrid = 2000;

  // A run discomforts by level c if the user's threshold was crossed
  // (threshold <= c) OR the noise-floor hazard fired during the first
  // tau*c/x seconds. Both observed at the ramp's current level, so the
  // observable CDF over levels is
  //   G(c) = 1 - (1 - F(c)) * exp(-lambda * tau * c / x).
  auto G = [&](double c) {
    const double f =
        c <= 0 ? 0.0 : uucs::stats::normal_cdf((std::log(c) - mu) / sigma);
    const double noise_survival =
        std::exp(-noise_rate_per_s * duration_s * c / ramp_max);
    return 1.0 - (1.0 - f) * noise_survival;
  };

  MixtureStats out;
  out.fd = G(ramp_max);

  // c05 and ca by grid walk.
  double prev_g = 0.0;
  double weighted_sum = 0.0;
  bool have_c05 = false;
  for (int i = 1; i <= kGrid; ++i) {
    const double c = ramp_max * i / kGrid;
    const double g = G(c);
    if (!have_c05 && g >= 0.05) {
      out.c05 = c;
      have_c05 = true;
    }
    weighted_sum += c * (g - prev_g);
    prev_g = g;
  }
  if (out.fd > 0) out.ca = weighted_sum / out.fd;
  return out;
}

namespace {
// The optimizer works in log-sigma; bound sigma to (e^-4, ~2.4] — larger
// spreads are not plausible for human tolerance and let the fit degenerate
// on cells whose fd target sits near the noise floor.
constexpr double kLogSigmaLo = -4.0;
constexpr double kLogSigmaHi = 0.875;
}  // namespace

CellFit fit_cell(const PaperCell& target, double ramp_max, double duration_s,
                 double noise_rate_per_s) {
  CellFit fit;
  if (target.fd <= 0.0) {
    // '*' cells: no discomfort observed anywhere in the explored range.
    fit.never = true;
    return fit;
  }

  auto objective = [&](const std::vector<double>& p) {
    const double mu = p[0];
    const double sigma = std::exp(std::clamp(p[1], kLogSigmaLo, kLogSigmaHi));
    const MixtureStats m =
        ramp_mixture_stats(mu, sigma, ramp_max, duration_s, noise_rate_per_s);
    double err = 25.0 * (m.fd - target.fd) * (m.fd - target.fd);
    if (target.has_c05()) {
      const double c05 = std::isnan(m.c05) ? 2.0 * ramp_max : m.c05;
      const double d = (c05 - target.c05) / ramp_max;
      err += 8.0 * d * d;
    }
    if (target.has_ca()) {
      const double ca = std::isnan(m.ca) ? 2.0 * ramp_max : m.ca;
      const double d = (ca - target.ca) / ramp_max;
      err += 8.0 * d * d;
    }
    return err;
  };

  // Multi-start: the objective is mildly multi-modal when fd is small.
  const double anchor = target.has_ca() ? target.ca : ramp_max / 2.0;
  double best = std::numeric_limits<double>::infinity();
  for (const double mu0 : {std::log(anchor), std::log(anchor) + 0.7,
                           std::log(anchor) - 0.7}) {
    for (const double ls0 : {std::log(0.25), std::log(0.8)}) {
      const auto r = uucs::stats::nelder_mead(objective, {mu0, ls0}, 0.4, 2500);
      if (r.value < best) {
        best = r.value;
        fit.mu = r.x[0];
        fit.sigma = std::exp(std::clamp(r.x[1], kLogSigmaLo, kLogSigmaHi));
        fit.fit_error = r.value;
      }
    }
  }
  return fit;
}

PopulationParams calibrate_population() {
  PopulationParams params;
  for (std::size_t ti = 0; ti < kTasks; ++ti) {
    params.noise_rates[ti] = noise_rate_per_s(static_cast<Task>(ti));
  }

  for (std::size_t ti = 0; ti < kTasks; ++ti) {
    const auto t = static_cast<Task>(ti);
    for (std::size_t ri = 0; ri < kResources; ++ri) {
      const uucs::Resource r = resource_at(ri);
      // The fit sees the hazard a non-blank run actually experiences.
      const double lambda = params.noise_rates[ti] * params.nonblank_noise_scale;
      params.cells[ti][ri] =
          fit_cell(paper_cell(t, r), ramp_max(t, r), kRunDuration, lambda);
    }
  }

  // Skill loadings, shaped by Fig 17: the reported significant differences
  // concentrate on Quake/CPU (all four rows), IE/Disk and IE/Memory, and
  // "applications which have higher resource requirements show greater
  // differences between user classes" (§3.3.4).
  auto& sl = params.skill_loadings;
  const auto set = [&](Task t, uucs::Resource r, double v) {
    sl[static_cast<std::size_t>(t)][resource_index(r)] = v;
  };
  for (uucs::Resource r : uucs::kStudyResources) {
    set(Task::kWord, r, 0.15);
    set(Task::kPowerpoint, r, 0.25);
  }
  set(Task::kIe, uucs::Resource::kCpu, 0.30);
  set(Task::kIe, uucs::Resource::kMemory, 0.45);
  set(Task::kIe, uucs::Resource::kDisk, 0.50);
  set(Task::kQuake, uucs::Resource::kCpu, 0.55);
  set(Task::kQuake, uucs::Resource::kMemory, 0.35);
  set(Task::kQuake, uucs::Resource::kDisk, 0.35);
  return params;
}

}  // namespace uucs::study
