#pragma once

#include <array>
#include <cmath>
#include <limits>
#include <string>

#include "study/paper_constants.hpp"

namespace uucs::study {

/// Fitted threshold distribution for one (task, resource) cell: the
/// contention level at which a user expresses discomfort under a slow ramp
/// is modeled as lognormal(mu, sigma); `never` marks cells where the paper
/// observed no discomfort in the explored range (Word/Memory).
struct CellFit {
  bool never = false;
  double mu = 0.0;
  double sigma = 1.0;
  double fit_error = 0.0;  ///< residual of the calibration objective

  /// Threshold at population rank z (a standard normal score).
  double threshold_at(double z) const {
    return never ? std::numeric_limits<double>::infinity()
                 : std::exp(mu + sigma * z);
  }
};

/// Everything the population generator needs: per-cell fits plus the
/// behavioral parameters shared across the population.
struct PopulationParams {
  std::array<std::array<CellFit, kResources>, kTasks> cells{};

  /// Per-task noise-floor hazards (per second), from Fig 9 blanks.
  std::array<double, kTasks> noise_rates{};

  /// Noise hazard multiplier during non-blank runs (attention capture).
  double nonblank_noise_scale = 0.6;

  /// Copula loadings: shared user-sensitivity weight, and per-cell skill
  /// weights (how strongly expertise lowers the threshold).
  double sensitivity_loading = 0.45;
  std::array<std::array<double, kResources>, kTasks> skill_loadings{};

  /// Correlation between the latent skill and each questionnaire rating.
  double rating_fidelity = 0.75;

  /// Frog-in-the-pot surprise penalty (fractional threshold reduction for
  /// abrupt jumps). Fig 9's step runs discomfort nearly as often as ramps
  /// despite lower step levels (e.g. Powerpoint/CPU step 0.98 vs ramp mean
  /// 1.17), which pins the penalty near a third.
  double surprise_penalty = 0.35;

  /// Reaction delay lognormal parameters (seconds).
  double reaction_mu = std::log(2.0);
  double reaction_sigma = 0.4;

  const CellFit& cell(Task t, uucs::Resource r) const {
    return cells[static_cast<std::size_t>(t)][resource_index(r)];
  }
  CellFit& cell(Task t, uucs::Resource r) {
    return cells[static_cast<std::size_t>(t)][resource_index(r)];
  }
  double skill_loading(Task t, uucs::Resource r) const {
    return skill_loadings[static_cast<std::size_t>(t)][resource_index(r)];
  }
};

/// Statistics of the observable ramp-run mixture (threshold crossing racing
/// the noise-floor hazard) for a candidate lognormal fit — the model the
/// calibrator inverts. Exposed for tests.
struct MixtureStats {
  double fd = 0.0;
  double c05 = std::numeric_limits<double>::quiet_NaN();
  double ca = std::numeric_limits<double>::quiet_NaN();
};
MixtureStats ramp_mixture_stats(double mu, double sigma, double ramp_max,
                                double duration_s, double noise_rate_per_s);

/// Fits one cell's lognormal to paper targets under the given noise rate.
CellFit fit_cell(const PaperCell& target, double ramp_max, double duration_s,
                 double noise_rate_per_s);

/// Fits every cell from the paper's published statistics and fills in the
/// behavioral defaults (skill loadings scaled from Fig 17's findings).
/// Deterministic and moderately expensive (~10 ms per cell); call once and
/// reuse.
PopulationParams calibrate_population();

}  // namespace uucs::study
