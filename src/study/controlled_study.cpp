#include "study/controlled_study.hpp"

#include <algorithm>

#include "sim/host_model.hpp"
#include "testcase/suite.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace uucs::study {

uucs::TestcaseStore controlled_study_testcases(Task t) {
  uucs::TestcaseStore store;
  for (uucs::Resource r : uucs::kStudyResources) {
    store.add(uucs::make_ramp_testcase(r, ramp_max(t, r), kRunDuration));
    store.add(
        uucs::make_step_testcase(r, step_level(t, r), kRunDuration, kStepBreak));
  }
  store.add(uucs::make_blank_testcase(kRunDuration, "a"));
  store.add(uucs::make_blank_testcase(kRunDuration, "b"));
  return store;
}


ControlledStudyOutput run_controlled_study(const ControlledStudyConfig& config) {
  return run_controlled_study(config, calibrate_population());
}

ControlledStudyOutput run_controlled_study(const ControlledStudyConfig& config,
                                           const PopulationParams& params) {
  UUCS_CHECK_MSG(config.participants > 0, "need at least one participant");
  UUCS_CHECK_MSG(config.session_s > 0 && config.mean_gap_s >= 0, "session config");

  ControlledStudyOutput out;
  out.params = params;

  uucs::Rng root(config.seed);
  uucs::Rng pop_rng = root.fork(1);
  out.users = generate_population(params, config.participants, pop_rng);

  const uucs::sim::HostModel host(config.host);
  uucs::sim::RunSimulator simulator(
      host, {params.noise_rates[0], params.noise_rates[1], params.noise_rates[2],
             params.noise_rates[3]});
  simulator.set_nonblank_noise_scale(params.nonblank_noise_scale);

  std::size_t run_serial = 0;
  for (std::size_t ui = 0; ui < out.users.size(); ++ui) {
    const auto& user = out.users[ui];
    uucs::Rng user_rng = root.fork(1000 + ui);
    for (Task task : uucs::sim::kAllTasks) {
      const uucs::TestcaseStore testcases = controlled_study_testcases(task);
      // All eight testcases in random order; when the pass completes with
      // session budget to spare (frequent discomfort ends runs early),
      // further random testcases fill the remainder.
      std::vector<std::string> order = testcases.ids();
      user_rng.shuffle(order);
      double elapsed = 0.0;
      std::size_t next = 0;
      while (true) {
        if (next == order.size()) {
          user_rng.shuffle(order);
          next = 0;
        }
        const uucs::Testcase& tc = testcases.get(order[next++]);
        if (elapsed + tc.duration() > config.session_s) break;
        uucs::RunRecord rec = simulator.simulate_record(
            user, task, tc, user_rng, uucs::strprintf("run-%05zu", run_serial++));
        elapsed += rec.offset_s;
        // Setup gap before the next run (form reset, task re-engagement).
        elapsed += user_rng.lognormal(
            std::log(std::max(config.mean_gap_s, 1e-9)) -
                config.gap_sigma * config.gap_sigma / 2.0,
            config.gap_sigma);
        out.results.add(std::move(rec));
      }
    }
  }
  return out;
}

}  // namespace uucs::study
