#include "study/controlled_study.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "sim/host_model.hpp"
#include "sim/simulation.hpp"
#include "testcase/suite.hpp"
#include "util/error.hpp"
#include "util/rng_streams.hpp"
#include "util/strings.hpp"

namespace uucs::study {

uucs::TestcaseStore controlled_study_testcases(Task t) {
  uucs::TestcaseStore store;
  for (uucs::Resource r : uucs::kStudyResources) {
    store.add(uucs::make_ramp_testcase(r, ramp_max(t, r), kRunDuration));
    store.add(
        uucs::make_step_testcase(r, step_level(t, r), kRunDuration, kStepBreak));
  }
  store.add(uucs::make_blank_testcase(kRunDuration, "a"));
  store.add(uucs::make_blank_testcase(kRunDuration, "b"));
  return store;
}

namespace {

/// One user's four task sessions as a discrete-event schedule: the body of
/// a SessionJob, driven by the job's own sim::Simulation. Each run is a
/// run-start event; its completion is a run-end event at start + offset; a
/// discomfort press is a feedback event between them (same timestamp as the
/// run end, earlier priority class). Runs against shared immutable state
/// (simulator, per-task testcase stores) and keeps all mutable state in the
/// job's own Rng and this driver.
///
/// The session budget is tracked as an explicit `elapsed` accumulator (not
/// `now() - session_start`) so the floating-point sums — and therefore the
/// break decisions — are bit-identical to the historical sequential loop.
class UserSessionDriver {
 public:
  UserSessionDriver(
      const engine::SessionJob& job, const ControlledStudyConfig& config,
      const uucs::sim::RunSimulator& simulator,
      const std::array<uucs::TestcaseStore, uucs::sim::kTaskCount>& testcases,
      uucs::Rng& rng, uucs::sim::Simulation& sim)
      : job_(job), config_(config), simulator_(simulator),
        testcases_(testcases), rng_(rng), sim_(sim) {}

  uucs::ResultStore run() {
    if (!job_.tasks.empty()) begin_session();
    sim_.run_all();
    return std::move(shard_);
  }

 private:
  Task task() const { return job_.tasks[task_idx_]; }
  const uucs::TestcaseStore& store() const {
    return testcases_[static_cast<std::size_t>(task())];
  }

  /// Starts the current task session: all eight testcases in random order;
  /// when the pass completes with session budget to spare (frequent
  /// discomfort ends runs early), further random testcases fill the
  /// remainder.
  void begin_session() {
    order_ = store().ids();
    rng_.shuffle(order_);
    next_ = 0;
    elapsed_ = 0.0;
    first_run_ = true;
    schedule_next_run();
  }

  /// Picks the next testcase and setup gap; schedules the run-start event
  /// if it fits the session budget, otherwise ends the session.
  void schedule_next_run() {
    if (next_ == order_.size()) {
      rng_.shuffle(order_);
      next_ = 0;
    }
    const uucs::Testcase& tc = store().get(order_[next_++]);
    // Setup gap before this run (form reset, task re-engagement). Drawn
    // before the budget check so a session can never charge time past its
    // budget.
    const double gap =
        first_run_ ? 0.0
                   : rng_.lognormal(
                         std::log(std::max(config_.mean_gap_s, 1e-9)) -
                             config_.gap_sigma * config_.gap_sigma / 2.0,
                         config_.gap_sigma);
    if (elapsed_ + gap + tc.duration() > config_.session_s) {
      end_session();
      return;
    }
    elapsed_ += gap;
    sim_.schedule_in(
        gap, uucs::sim::EventClass::kRunStart,
        sim_.tracing() ? uucs::strprintf("user=%zu task=%s tc=%s",
                                         job_.index,
                                         uucs::sim::task_name(task()).c_str(),
                                         tc.id().c_str())
                       : std::string(),
        [this, tcp = &tc] { start_run(*tcp); });  // store-owned, outlives us
  }

  /// Run-start event: simulate the run; its completion is a run-end event
  /// at start + offset, preceded by a feedback event when the simulated
  /// user pressed the discomfort key at that moment.
  void start_run(const uucs::Testcase& tc) {
    uucs::RunRecord rec = simulator_.simulate_record(
        *job_.user, task(), tc, rng_,
        uucs::strprintf("job-%05zu-%04zu", job_.index, local_serial_++));
    const double offset = rec.offset_s;
    // Label built before the handler's move-capture of rec (argument
    // evaluation order would otherwise empty run_id under the move).
    const std::string label =
        sim_.tracing() ? uucs::strprintf("user=%zu run=%s", job_.index,
                                         rec.run_id.c_str())
                       : std::string();
    if (sim_.tracing() && rec.discomforted) {
      sim_.schedule_in(offset, uucs::sim::EventClass::kFeedback, label, [] {});
    }
    sim_.schedule_in(
        offset, uucs::sim::EventClass::kRunEnd, label,
        [this, rec = std::move(rec)]() mutable { end_run(std::move(rec)); });
  }

  /// Run-end event: commit the record, charge the session budget, continue.
  void end_run(uucs::RunRecord rec) {
    elapsed_ += rec.offset_s;
    shard_.add(std::move(rec));
    first_run_ = false;
    schedule_next_run();
  }

  void end_session() {
    if (++task_idx_ < job_.tasks.size()) begin_session();
    // Otherwise nothing is scheduled and run_all() drains.
  }

  const engine::SessionJob& job_;
  const ControlledStudyConfig& config_;
  const uucs::sim::RunSimulator& simulator_;
  const std::array<uucs::TestcaseStore, uucs::sim::kTaskCount>& testcases_;
  uucs::Rng& rng_;
  uucs::sim::Simulation& sim_;

  uucs::ResultStore shard_;
  std::size_t task_idx_ = 0;
  std::vector<std::string> order_;
  std::size_t next_ = 0;
  double elapsed_ = 0.0;
  bool first_run_ = true;
  std::size_t local_serial_ = 0;
};

}  // namespace

ControlledStudyOutput run_controlled_study(const ControlledStudyConfig& config) {
  return run_controlled_study(config, calibrate_population());
}

ControlledStudyOutput run_controlled_study(const ControlledStudyConfig& config,
                                           const PopulationParams& params) {
  UUCS_CHECK_MSG(config.participants > 0, "need at least one participant");
  UUCS_CHECK_MSG(config.session_s > 0 && config.mean_gap_s >= 0, "session config");

  ControlledStudyOutput out;
  out.params = params;

  uucs::Rng root(config.seed);
  uucs::Rng pop_rng = root.fork(streams::kControlledPopulation);
  out.users = generate_population(params, config.participants, pop_rng);

  // Shared immutable world: one host model and one fully-configured
  // simulator serve every shard concurrently.
  const uucs::sim::HostModel host(config.host);
  const uucs::sim::RunSimulator simulator(
      host,
      {params.noise_rates[0], params.noise_rates[1], params.noise_rates[2],
       params.noise_rates[3]},
      params.nonblank_noise_scale);
  std::array<uucs::TestcaseStore, uucs::sim::kTaskCount> testcases;
  for (Task task : uucs::sim::kAllTasks) {
    testcases[static_cast<std::size_t>(task)] = controlled_study_testcases(task);
  }

  // Per-user streams fork from the root in user order *before* any job
  // runs — the determinism half the engine cannot provide by itself.
  std::vector<engine::SessionJob> jobs =
      engine::make_user_session_jobs(out.users, root, streams::controlled_user);

  engine::SessionEngine eng(engine::EngineConfig{config.jobs, config.trace});
  std::vector<uucs::ResultStore> shards = eng.map<uucs::ResultStore>(
      jobs.size(), [&](engine::JobContext& ctx) {
        engine::SessionJob& job = jobs[ctx.index()];
        UserSessionDriver driver(job, config, simulator, testcases, job.rng,
                                 ctx.simulation());
        uucs::ResultStore shard = driver.run();
        ctx.count_runs(shard.size());
        return shard;
      });

  // Deterministic merge: shards append in job (= user) order and runs are
  // renumbered globally, reproducing the sequential driver's ids exactly.
  std::size_t run_serial = 0;
  for (uucs::ResultStore& shard : shards) {
    for (uucs::RunRecord& rec : shard.drain()) {
      rec.run_id = uucs::strprintf("run-%05zu", run_serial++);
      out.results.add(std::move(rec));
    }
  }
  out.engine = eng.stats();
  if (config.trace) out.trace = eng.merged_trace();
  return out;
}

}  // namespace uucs::study
