#include "study/controlled_study.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "sim/host_model.hpp"
#include "testcase/suite.hpp"
#include "util/error.hpp"
#include "util/rng_streams.hpp"
#include "util/strings.hpp"

namespace uucs::study {

uucs::TestcaseStore controlled_study_testcases(Task t) {
  uucs::TestcaseStore store;
  for (uucs::Resource r : uucs::kStudyResources) {
    store.add(uucs::make_ramp_testcase(r, ramp_max(t, r), kRunDuration));
    store.add(
        uucs::make_step_testcase(r, step_level(t, r), kRunDuration, kStepBreak));
  }
  store.add(uucs::make_blank_testcase(kRunDuration, "a"));
  store.add(uucs::make_blank_testcase(kRunDuration, "b"));
  return store;
}

namespace {

/// One user's four task sessions: the body of a SessionJob. Runs against
/// shared immutable state (simulator, per-task testcase stores) and keeps
/// all mutable state in the job's own Rng and the shard ResultStore.
uucs::ResultStore run_user_sessions(
    const engine::SessionJob& job, const ControlledStudyConfig& config,
    const uucs::sim::RunSimulator& simulator,
    const std::array<uucs::TestcaseStore, uucs::sim::kTaskCount>& testcases,
    uucs::Rng& rng) {
  uucs::ResultStore shard;
  std::size_t local_serial = 0;
  for (Task task : job.tasks) {
    const uucs::TestcaseStore& store =
        testcases[static_cast<std::size_t>(task)];
    // All eight testcases in random order; when the pass completes with
    // session budget to spare (frequent discomfort ends runs early),
    // further random testcases fill the remainder.
    std::vector<std::string> order = store.ids();
    rng.shuffle(order);
    double elapsed = 0.0;
    std::size_t next = 0;
    bool first_run = true;
    while (true) {
      if (next == order.size()) {
        rng.shuffle(order);
        next = 0;
      }
      const uucs::Testcase& tc = store.get(order[next++]);
      // Setup gap before this run (form reset, task re-engagement). Drawn
      // before the budget check so a session can never charge time past
      // its budget: previously the gap was added to `elapsed` only after
      // a run committed, letting the final gap overshoot `session_s`
      // unchecked.
      const double gap =
          first_run ? 0.0
                    : rng.lognormal(
                          std::log(std::max(config.mean_gap_s, 1e-9)) -
                              config.gap_sigma * config.gap_sigma / 2.0,
                          config.gap_sigma);
      if (elapsed + gap + tc.duration() > config.session_s) break;
      elapsed += gap;
      uucs::RunRecord rec = simulator.simulate_record(
          *job.user, task, tc, rng,
          uucs::strprintf("job-%05zu-%04zu", job.index, local_serial++));
      elapsed += rec.offset_s;
      shard.add(std::move(rec));
      first_run = false;
    }
  }
  return shard;
}

}  // namespace

ControlledStudyOutput run_controlled_study(const ControlledStudyConfig& config) {
  return run_controlled_study(config, calibrate_population());
}

ControlledStudyOutput run_controlled_study(const ControlledStudyConfig& config,
                                           const PopulationParams& params) {
  UUCS_CHECK_MSG(config.participants > 0, "need at least one participant");
  UUCS_CHECK_MSG(config.session_s > 0 && config.mean_gap_s >= 0, "session config");

  ControlledStudyOutput out;
  out.params = params;

  uucs::Rng root(config.seed);
  uucs::Rng pop_rng = root.fork(streams::kControlledPopulation);
  out.users = generate_population(params, config.participants, pop_rng);

  // Shared immutable world: one host model and one fully-configured
  // simulator serve every shard concurrently.
  const uucs::sim::HostModel host(config.host);
  const uucs::sim::RunSimulator simulator(
      host,
      {params.noise_rates[0], params.noise_rates[1], params.noise_rates[2],
       params.noise_rates[3]},
      params.nonblank_noise_scale);
  std::array<uucs::TestcaseStore, uucs::sim::kTaskCount> testcases;
  for (Task task : uucs::sim::kAllTasks) {
    testcases[static_cast<std::size_t>(task)] = controlled_study_testcases(task);
  }

  // Per-user streams fork from the root in user order *before* any job
  // runs — the determinism half the engine cannot provide by itself.
  std::vector<engine::SessionJob> jobs =
      engine::make_user_session_jobs(out.users, root, streams::controlled_user);

  engine::SessionEngine eng(engine::EngineConfig{config.jobs});
  std::vector<uucs::ResultStore> shards = eng.map<uucs::ResultStore>(
      jobs.size(), [&](engine::JobContext& ctx) {
        engine::SessionJob& job = jobs[ctx.index()];
        uucs::ResultStore shard =
            run_user_sessions(job, config, simulator, testcases, job.rng);
        ctx.count_runs(shard.size());
        return shard;
      });

  // Deterministic merge: shards append in job (= user) order and runs are
  // renumbered globally, reproducing the sequential driver's ids exactly.
  std::size_t run_serial = 0;
  for (uucs::ResultStore& shard : shards) {
    for (uucs::RunRecord& rec : shard.drain()) {
      rec.run_id = uucs::strprintf("run-%05zu", run_serial++);
      out.results.add(std::move(rec));
    }
  }
  out.engine = eng.stats();
  return out;
}

}  // namespace uucs::study
