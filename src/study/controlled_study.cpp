#include "study/controlled_study.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <memory>
#include <numeric>

#include "sim/host_model.hpp"
#include "sim/simulation.hpp"
#include "testcase/suite.hpp"
#include "util/error.hpp"
#include "util/interner.hpp"
#include "util/rng_streams.hpp"
#include "util/strings.hpp"

namespace uucs::study {

uucs::TestcaseStore controlled_study_testcases(Task t) {
  uucs::TestcaseStore store;
  for (uucs::Resource r : uucs::kStudyResources) {
    store.add(uucs::make_ramp_testcase(r, ramp_max(t, r), kRunDuration));
    store.add(
        uucs::make_step_testcase(r, step_level(t, r), kRunDuration, kStepBreak));
  }
  store.add(uucs::make_blank_testcase(kRunDuration, "a"));
  store.add(uucs::make_blank_testcase(kRunDuration, "b"));
  return store;
}

namespace {

/// Pre-resolved view of one task's testcase store: testcase pointers in
/// ids() (sorted) order, so the session loop shuffles 32-bit indices
/// instead of copying id strings. Built once per study; shared read-only.
struct TaskWorld {
  std::vector<const uucs::Testcase*> cases;  ///< ids() order
};

std::array<TaskWorld, uucs::sim::kTaskCount> make_task_worlds(
    const std::array<uucs::TestcaseStore, uucs::sim::kTaskCount>& testcases) {
  std::array<TaskWorld, uucs::sim::kTaskCount> worlds;
  for (std::size_t t = 0; t < uucs::sim::kTaskCount; ++t) {
    const uucs::TestcaseStore& store = testcases[t];
    TaskWorld& world = worlds[t];
    world.cases.reserve(store.size());
    for (const std::string& id : store.ids()) {
      world.cases.push_back(&store.get(id));
    }
  }
  return worlds;
}

/// Everything one engine worker owns for the streaming flat path, all
/// interned against that worker's private (unsynchronized) string pool:
/// the flat key table, (id, description) pairs aligned with each
/// TaskWorld's cases, and the accumulator the worker's runs fold into.
/// Built lazily on the slot's first job; from then on the per-run hot path
/// touches no shared mutable state and takes no lock. Accumulator state is
/// id-free, so per-worker pools never need reconciling at merge time
/// (DESIGN.md §11).
struct WorkerLocal {
  uucs::StringInterner* pool = nullptr;  ///< unset until first job
  std::unique_ptr<uucs::sim::FlatRunKeys> keys;
  std::array<std::vector<uucs::InternedTestcase>, uucs::sim::kTaskCount> interned;
  std::unique_ptr<analysis::StudyAccumulator> acc;

  void init(uucs::StringInterner& worker_pool,
            const std::array<TaskWorld, uucs::sim::kTaskCount>& worlds) {
    pool = &worker_pool;
    keys = std::make_unique<uucs::sim::FlatRunKeys>(worker_pool);
    for (std::size_t t = 0; t < uucs::sim::kTaskCount; ++t) {
      interned[t].reserve(worlds[t].cases.size());
      for (const uucs::Testcase* tc : worlds[t].cases) {
        interned[t].push_back(uucs::InternedTestcase{
            worker_pool.intern(tc->id()), worker_pool.intern(tc->description())});
      }
    }
    acc = std::make_unique<analysis::StudyAccumulator>(worker_pool);
  }
};

/// One user's four task sessions as a discrete-event schedule: the body of
/// a SessionJob, driven by the job's own sim::Simulation. Each run is a
/// run-start event; its completion is a run-end event at start + offset; a
/// discomfort press is a feedback event between them (same timestamp as the
/// run end, earlier priority class). Runs against shared immutable state
/// (simulator, per-task testcase stores) and keeps all mutable state in the
/// job's own Rng and this driver.
///
/// The session budget is tracked as an explicit `elapsed` accumulator (not
/// `now() - session_start`) so the floating-point sums — and therefore the
/// break decisions — are bit-identical to the historical sequential loop.
class UserSessionDriver {
 public:
  /// `local` non-null selects streaming mode: runs go through the flat
  /// record path — interned against the worker's private pool — into the
  /// worker's accumulator, and no shard is kept. `retained` /
  /// `retained_cap` implement the in-memory spill guard (see
  /// ControlledStudyConfig::max_records_in_memory); both are ignored in
  /// streaming mode.
  UserSessionDriver(
      const engine::SessionJob& job, const ControlledStudyConfig& config,
      const uucs::sim::RunSimulator& simulator,
      const std::array<TaskWorld, uucs::sim::kTaskCount>& worlds,
      uucs::Rng& rng, uucs::sim::Simulation& sim,
      WorkerLocal* local = nullptr,
      std::atomic<std::size_t>* retained = nullptr,
      std::size_t retained_cap = 0)
      : job_(job), config_(config), simulator_(simulator), worlds_(worlds),
        rng_(rng), sim_(sim), local_(local), retained_(retained),
        retained_cap_(retained_cap) {
    if (local_) {
      flat_ctx_ =
          simulator_.flat_context(*job_.user, *local_->keys, *local_->pool);
    } else {
      // ~10 completed runs per 16-minute session is the empirical mean;
      // one growth step at most for discomfort-heavy users.
      shard_.reserve(job_.tasks.size() * 12);
    }
  }

  uucs::ResultStore run() {
    if (!job_.tasks.empty()) begin_session();
    sim_.run_all();
    return std::move(shard_);
  }

  /// Runs completed (streaming mode keeps no shard to count).
  std::size_t runs() const { return runs_; }

 private:
  Task task() const { return job_.tasks[task_idx_]; }
  const TaskWorld& world() const {
    return worlds_[static_cast<std::size_t>(task())];
  }

  /// Starts the current task session: all eight testcases in random order;
  /// when the pass completes with session budget to spare (frequent
  /// discomfort ends runs early), further random testcases fill the
  /// remainder.
  void begin_session() {
    // Index shuffle: the draw sequence depends only on the element count,
    // so this is bit-identical to the historical shuffle of the sorted id
    // strings — without copying eight strings per session.
    order_.resize(world().cases.size());
    std::iota(order_.begin(), order_.end(), 0u);
    rng_.shuffle(order_);
    next_ = 0;
    elapsed_ = 0.0;
    first_run_ = true;
    schedule_next_run();
  }

  /// Picks the next testcase and setup gap; schedules the run-start event
  /// if it fits the session budget, otherwise ends the session.
  void schedule_next_run() {
    if (next_ == order_.size()) {
      rng_.shuffle(order_);
      next_ = 0;
    }
    const std::uint32_t pick = order_[next_++];
    const uucs::Testcase& tc = *world().cases[pick];
    // Setup gap before this run (form reset, task re-engagement). Drawn
    // before the budget check so a session can never charge time past its
    // budget.
    const double gap =
        first_run_ ? 0.0
                   : rng_.lognormal(
                         std::log(std::max(config_.mean_gap_s, 1e-9)) -
                             config_.gap_sigma * config_.gap_sigma / 2.0,
                         config_.gap_sigma);
    if (elapsed_ + gap + tc.duration() > config_.session_s) {
      end_session();
      return;
    }
    elapsed_ += gap;
    sim_.schedule_in(
        gap, uucs::sim::EventClass::kRunStart,
        sim_.tracing() ? uucs::strprintf("user=%zu task=%s tc=%s",
                                         job_.index,
                                         uucs::sim::task_name(task()).c_str(),
                                         tc.id().c_str())
                       : std::string(),
        [this, tcp = &tc, pick] { start_run(*tcp, pick); });  // store-owned
  }

  /// Run-start event: simulate the run; its completion is a run-end event
  /// at start + offset, preceded by a feedback event when the simulated
  /// user pressed the discomfort key at that moment.
  void start_run(const uucs::Testcase& tc, std::uint32_t pick) {
    if (local_) {
      start_run_flat(
          tc, local_->interned[static_cast<std::size_t>(task())][pick]);
      return;
    }
    uucs::RunRecord rec = simulator_.simulate_record(
        *job_.user, task(), tc, rng_,
        uucs::strprintf("job-%05zu-%04zu", job_.index, local_serial_++));
    const double offset = rec.offset_s;
    // Label built before the handler's move-capture of rec (argument
    // evaluation order would otherwise empty run_id under the move).
    const std::string label =
        sim_.tracing() ? uucs::strprintf("user=%zu run=%s", job_.index,
                                         rec.run_id.c_str())
                       : std::string();
    if (sim_.tracing() && rec.discomforted) {
      sim_.schedule_in(offset, uucs::sim::EventClass::kFeedback, label, [] {});
    }
    sim_.schedule_in(
        offset, uucs::sim::EventClass::kRunEnd, label,
        [this, rec = std::move(rec)]() mutable { end_run(std::move(rec)); });
  }

  /// Streaming twin of start_run: same simulate() draw sequence (see
  /// RunSimulator::simulate_flat), but the record never leaves the flat
  /// representation and is folded into the accumulator at run end.
  void start_run_flat(const uucs::Testcase& tc,
                      const uucs::InternedTestcase& itc) {
    // Run ids only exist to label trace events; an untraced streaming run
    // never reads them, so skip the per-run strprintf allocation there.
    std::string run_id =
        sim_.tracing()
            ? uucs::strprintf("job-%05zu-%04zu", job_.index, local_serial_++)
            : std::string();
    uucs::FlatRunRecord rec = simulator_.simulate_flat(
        *job_.user, task(), tc, itc, rng_, std::move(run_id), flat_ctx_,
        *local_->keys, *local_->pool);
    const double offset = rec.offset_s;
    const std::string label =
        sim_.tracing() ? uucs::strprintf("user=%zu run=%s", job_.index,
                                         rec.run_id.c_str())
                       : std::string();
    if (sim_.tracing() && rec.discomforted) {
      sim_.schedule_in(offset, uucs::sim::EventClass::kFeedback, label, [] {});
    }
    sim_.schedule_in(
        offset, uucs::sim::EventClass::kRunEnd, label,
        [this, rec = std::move(rec)]() mutable { end_run_flat(std::move(rec)); });
  }

  /// Run-end event: commit the record, charge the session budget, continue.
  void end_run(uucs::RunRecord rec) {
    if (retained_ != nullptr && retained_cap_ > 0) {
      const std::size_t total =
          retained_->fetch_add(1, std::memory_order_relaxed) + 1;
      if (total > retained_cap_) {
        throw uucs::Error(uucs::strprintf(
            "in-memory result store would exceed max_records_in_memory=%zu; "
            "rerun with --streaming to aggregate in O(1) space per run",
            retained_cap_));
      }
    }
    elapsed_ += rec.offset_s;
    shard_.add(std::move(rec));
    ++runs_;
    first_run_ = false;
    schedule_next_run();
  }

  void end_run_flat(uucs::FlatRunRecord rec) {
    elapsed_ += rec.offset_s;
    local_->acc->add(rec);
    ++runs_;
    first_run_ = false;
    schedule_next_run();
  }

  void end_session() {
    if (++task_idx_ < job_.tasks.size()) begin_session();
    // Otherwise nothing is scheduled and run_all() drains.
  }

  const engine::SessionJob& job_;
  const ControlledStudyConfig& config_;
  const uucs::sim::RunSimulator& simulator_;
  const std::array<TaskWorld, uucs::sim::kTaskCount>& worlds_;
  uucs::Rng& rng_;
  uucs::sim::Simulation& sim_;

  WorkerLocal* local_ = nullptr;  ///< streaming worker state, or null
  std::atomic<std::size_t>* retained_ = nullptr;
  std::size_t retained_cap_ = 0;
  uucs::sim::RunSimulator::FlatRunContext flat_ctx_;

  uucs::ResultStore shard_;
  std::size_t task_idx_ = 0;
  std::vector<std::uint32_t> order_;
  std::size_t next_ = 0;
  double elapsed_ = 0.0;
  bool first_run_ = true;
  std::size_t local_serial_ = 0;
  std::size_t runs_ = 0;
};

}  // namespace

ControlledStudyOutput run_controlled_study(const ControlledStudyConfig& config) {
  return run_controlled_study(config, calibrate_population());
}

ControlledStudyOutput run_controlled_study(const ControlledStudyConfig& config,
                                           const PopulationParams& params) {
  UUCS_CHECK_MSG(config.participants > 0, "need at least one participant");
  UUCS_CHECK_MSG(config.session_s > 0 && config.mean_gap_s >= 0, "session config");

  ControlledStudyOutput out;
  out.params = params;

  uucs::Rng root(config.seed);
  uucs::Rng pop_rng = root.fork(streams::kControlledPopulation);
  out.users = generate_population(params, config.participants, pop_rng);

  // Shared immutable world: one host model and one fully-configured
  // simulator serve every shard concurrently.
  const uucs::sim::HostModel host(config.host);
  const uucs::sim::RunSimulator simulator(
      host,
      {params.noise_rates[0], params.noise_rates[1], params.noise_rates[2],
       params.noise_rates[3]},
      params.nonblank_noise_scale);
  std::array<uucs::TestcaseStore, uucs::sim::kTaskCount> testcases;
  for (Task task : uucs::sim::kAllTasks) {
    testcases[static_cast<std::size_t>(task)] = controlled_study_testcases(task);
  }
  const std::array<TaskWorld, uucs::sim::kTaskCount> worlds =
      make_task_worlds(testcases);

  // Per-user streams fork from the root in user order *before* any job
  // runs — the determinism half the engine cannot provide by itself.
  std::vector<engine::SessionJob> jobs =
      engine::make_user_session_jobs(out.users, root, streams::controlled_user);

  engine::SessionEngine eng(engine::EngineConfig{config.jobs, config.trace});

  // Streaming mode: one WorkerLocal per worker slot — accumulator, flat
  // key table and interned testcase views, all built over that worker's
  // private string pool on the slot's first job and touched only by the
  // thread owning the slot (JobContext::worker_slot). The merge order
  // below is fixed (ascending slot), but accumulator state is an exact,
  // order-independent, id-free function of the run multiset, so output
  // does not depend on which jobs share a slot or which pool interned them.
  std::vector<WorkerLocal> locals(config.streaming ? eng.workers() : 0);
  std::atomic<std::size_t> retained{0};
  std::atomic<std::size_t>* guard =
      (!config.streaming && config.max_records_in_memory > 0) ? &retained
                                                              : nullptr;

  std::vector<uucs::ResultStore> shards = eng.map<uucs::ResultStore>(
      jobs.size(), [&](engine::JobContext& ctx) {
        engine::SessionJob& job = jobs[ctx.index()];
        WorkerLocal* local = nullptr;
        if (config.streaming) {
          local = &locals[ctx.worker_slot()];
          if (!local->pool) local->init(ctx.interner(), worlds);
        }
        UserSessionDriver driver(job, config, simulator, worlds, job.rng,
                                 ctx.simulation(), local, guard,
                                 config.max_records_in_memory);
        uucs::ResultStore shard = driver.run();
        ctx.count_runs(driver.runs());
        return shard;
      });

  if (config.streaming) {
    const auto merge_start = std::chrono::steady_clock::now();
    out.aggregates = std::make_unique<analysis::StudyAccumulator>();
    for (const WorkerLocal& local : locals) {
      if (local.acc) out.aggregates->merge(*local.acc);
    }
    eng.add_merge_time(std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - merge_start)
                           .count());
  } else {
    // Deterministic merge: shards append in job (= user) order and runs are
    // renumbered globally, reproducing the sequential driver's ids exactly.
    std::size_t total = 0;
    for (const uucs::ResultStore& shard : shards) total += shard.size();
    out.results.reserve(total);
    std::size_t run_serial = 0;
    for (uucs::ResultStore& shard : shards) {
      for (uucs::RunRecord& rec : shard.drain()) {
        rec.run_id = uucs::strprintf("run-%05zu", run_serial++);
        out.results.add(std::move(rec));
      }
    }
  }
  out.engine = eng.stats();
  if (config.trace) out.trace = eng.merged_trace();
  return out;
}

}  // namespace uucs::study
