#pragma once

#include <memory>
#include <vector>

#include "analysis/streaming.hpp"
#include "engine/session_engine.hpp"
#include "monitor/sysinfo.hpp"
#include "study/population.hpp"
#include "testcase/run_record.hpp"
#include "testcase/store.hpp"

namespace uucs::study {

/// Configuration of the §3 controlled study reproduction.
struct ControlledStudyConfig {
  std::size_t participants = kParticipants;  ///< 33 in the paper
  std::uint64_t seed = 2004;

  /// Session mechanics. The paper does not spell these out, but its Fig 9
  /// counts (~2 CPU runs and ~2 blank runs per user per task, more for
  /// Quake where early discomfort frees time) pin them down: all eight
  /// testcases run once in random order with a short setup gap, and any
  /// remaining budget is filled with further random testcases.
  double session_s = kSessionSeconds;  ///< 16 minutes per task
  double mean_gap_s = 12.0;            ///< setup gap between runs
  double gap_sigma = 0.35;             ///< lognormal spread of the gap

  /// SessionEngine worker threads (0 = hardware concurrency, 1 = the exact
  /// sequential path). Any value yields bit-identical output for one seed:
  /// per-user sessions run as independent jobs and merge in user order.
  std::size_t jobs = 0;

  /// Record every simulation event (run starts, feedback, run ends) into
  /// ControlledStudyOutput::trace, merged in user order. Observability
  /// only — never changes results.
  bool trace = false;

  /// Streaming aggregation (DESIGN.md §10): retain no RunRecords at all.
  /// Runs flow through the flat hot path (sim::RunSimulator::simulate_flat)
  /// into one analysis::StudyAccumulator per engine worker, merged after
  /// the engine drains. Output::results stays empty; Output::aggregates is
  /// set instead, and its contents are exactly — not approximately — what
  /// the analysis layer computes from the in-memory records. Memory is
  /// O(workers), independent of the run count.
  bool streaming = false;

  /// Spill guard for the in-memory path: the study aborts (with an error
  /// advising --streaming) as soon as the retained record count would
  /// exceed this. 0 = unlimited. Ignored when `streaming` is set — nothing
  /// is retained there.
  std::size_t max_records_in_memory = 0;

  uucs::HostSpec host = uucs::HostSpec::paper_study_machine();
};

/// The Fig 8 testcase set for one task: CPU/disk/memory ramps and steps
/// with the paper's parameters, plus the two blank testcases.
uucs::TestcaseStore controlled_study_testcases(Task t);

/// Everything the study produces.
struct ControlledStudyOutput {
  uucs::ResultStore results;   ///< empty when config.streaming was set
  std::vector<uucs::sim::UserProfile> users;
  PopulationParams params;
  engine::EngineStats engine;  ///< instrumentation of the session engine
  sim::EventTrace trace;       ///< fired events, when config.trace was set

  /// Streaming-mode aggregates (config.streaming): everything the analysis
  /// layer derives from `results`, computed without retaining the records.
  std::unique_ptr<analysis::StudyAccumulator> aggregates;
};

/// Runs the full controlled study in virtual time: draws the participant
/// population from the calibrated model, then for each user and each of the
/// four 16-minute task sessions executes randomly ordered Fig 8 testcases
/// (blanks over-weighted) with setup gaps, ending runs early on discomfort.
/// Deterministic in `config.seed` regardless of `config.jobs`.
ControlledStudyOutput run_controlled_study(const ControlledStudyConfig& config = {});

/// Variant reusing an existing calibration (saves ~100 ms per call).
ControlledStudyOutput run_controlled_study(const ControlledStudyConfig& config,
                                           const PopulationParams& params);

}  // namespace uucs::study
