#include "study/internet_study.hpp"

#include <algorithm>
#include <limits>
#include <set>

#include "client/client.hpp"
#include "sim/host_model.hpp"
#include "util/error.hpp"
#include "util/rng_streams.hpp"
#include "util/strings.hpp"

namespace uucs::study {

namespace {

/// One simulated deployment site: a client machine, its user, and the glue
/// the replay needs. Heap-allocated so the RunSimulator's reference to the
/// HostModel stays valid.
struct Site {
  Site(uucs::HostSpec spec, const uucs::ClientConfig& cc,
       std::array<double, uucs::sim::kTaskCount> noise, double nonblank_scale,
       uucs::sim::UserProfile user_in, std::uint64_t seed)
      : client(spec, cc),
        host(std::move(spec)),
        simulator(host, noise),
        user(std::move(user_in)),
        rng(seed) {
    simulator.set_nonblank_noise_scale(nonblank_scale);
  }

  uucs::UucsClient client;
  uucs::sim::HostModel host;
  uucs::sim::RunSimulator simulator;
  uucs::sim::UserProfile user;
  uucs::Rng rng;
};

uucs::HostSpec make_host(double power, std::size_t index) {
  uucs::HostSpec spec = uucs::HostSpec::paper_study_machine();
  spec.hostname = uucs::strprintf("inet-host-%03zu", index);
  spec.os_name = "Windows XP";
  spec.cpu_mhz = 2000.0 * power;  // single core: power index == clock ratio
  spec.cpu_count = 1;
  return spec;
}

/// A hot sync fired during the replayed schedule.
struct SyncEvent {
  double t;
  std::size_t site;
};

/// Testcases a sync delivered to one site, by id (bodies live in the
/// server's catalog, which is immutable during the run phase).
struct SyncDelivery {
  double t;
  std::vector<std::string> ids;
};

/// Everything one site produced during the parallel run phase.
struct SiteShard {
  struct TimedRun {
    double t;
    uucs::RunRecord rec;
  };
  std::vector<TimedRun> runs;
  std::set<std::string> distinct;
};

}  // namespace

InternetStudyOutput run_internet_study(const InternetStudyConfig& config) {
  return run_internet_study(config, calibrate_population());
}

/// The fleet simulation runs in three phases that together replay the exact
/// event-queue interleaving of the sequential discrete-event driver:
///
///  A. (sequential) Sync replay. Sync times depend only on each site's
///     setup draws (stagger + fixed interval), never on runs, and the
///     server's RNG consumption per sync depends only on the sync order and
///     each client's known-testcase set, never on uploaded result content.
///     Replaying registrations and testcase-sample handouts in global sync
///     order therefore reproduces the server state stream exactly, and
///     yields each site's delivery log (when which testcases arrived).
///  B. (parallel) Run replay. A site's RNG is consumed only by its own run
///     events, and what a run sees locally is fully determined by the
///     delivery log, so sites simulate independently as engine jobs.
///  C. (sequential) Upload merge. Walking the fired syncs in order and
///     appending each site's runs recorded before that sync reconstructs
///     the server's result store in upload order; the trailing flush syncs
///     then run against the real server, exactly like the event version.
///
/// Event-time ties (a sync and a run at the same instant) are resolved as
/// sync-first; times are continuous draws, so ties have measure zero.
InternetStudyOutput run_internet_study(const InternetStudyConfig& config,
                                       const PopulationParams& params) {
  UUCS_CHECK_MSG(config.clients > 0, "need at least one client");
  UUCS_CHECK_MSG(config.duration_s > 0, "duration must be positive");
  UUCS_CHECK_MSG(config.power_min > 0 && config.power_max >= config.power_min,
                 "power range");

  InternetStudyOutput out;
  out.params = params;
  uucs::Rng root(config.seed);

  out.server = std::make_unique<uucs::UucsServer>(
      root.fork(streams::kInternetServer)(), /*sample_batch=*/32);
  {
    uucs::Rng suite_rng = root.fork(streams::kInternetSuite);
    out.server->add_testcases(uucs::generate_internet_suite(config.suite, suite_rng));
  }
  uucs::LocalServerApi api(*out.server);

  const std::array<double, uucs::sim::kTaskCount> noise = {
      params.noise_rates[0], params.noise_rates[1], params.noise_rates[2],
      params.noise_rates[3]};

  uucs::Rng pop_rng = root.fork(streams::kInternetPopulation);
  std::vector<std::unique_ptr<Site>> sites;
  sites.reserve(config.clients);
  for (std::size_t i = 0; i < config.clients; ++i) {
    const double log_lo = std::log(config.power_min);
    const double log_hi = std::log(config.power_max);
    const double power = std::exp(pop_rng.uniform(log_lo, log_hi));
    uucs::ClientConfig cc;
    cc.sync_interval_s = config.sync_interval_s;
    cc.mean_run_interarrival_s = config.mean_run_interarrival_s;
    cc.seed = pop_rng();
    auto user = draw_user(params, pop_rng, uucs::strprintf("inet-user-%03zu", i));
    sites.push_back(std::make_unique<Site>(make_host(power, i), cc, noise,
                                           params.nonblank_noise_scale,
                                           std::move(user), pop_rng()));
  }

  // Setup draws, in site order: initial sync stagger across the first
  // interval, then the delay before the first run.
  std::vector<double> stagger(sites.size());
  std::vector<double> first_run(sites.size());
  for (std::size_t i = 0; i < sites.size(); ++i) {
    stagger[i] = sites[i]->rng.uniform(0.0, config.sync_interval_s);
    first_run[i] = sites[i]->client.next_run_delay(sites[i]->rng);
  }

  // Phase A: replay the sync schedule. A sync fires at its stagger (if
  // within the horizon) and every interval after that while the next one
  // would still land strictly inside the horizon — the self-rescheduling
  // rule of the event-queue driver.
  std::vector<SyncEvent> syncs;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    if (stagger[i] > config.duration_s) continue;
    double t = stagger[i];
    while (true) {
      syncs.push_back(SyncEvent{t, i});
      if (t + config.sync_interval_s < config.duration_s) {
        t += config.sync_interval_s;
      } else {
        break;
      }
    }
  }
  std::sort(syncs.begin(), syncs.end(), [](const SyncEvent& a, const SyncEvent& b) {
    return a.t != b.t ? a.t < b.t : a.site < b.site;
  });

  std::vector<std::vector<SyncDelivery>> deliveries(sites.size());
  for (const SyncEvent& ev : syncs) {
    uucs::UucsClient& client = sites[ev.site]->client;
    // Same server interaction as UucsClient::hot_sync with no pending
    // results (runs have not been simulated yet, and upload content never
    // influences the server's draws).
    client.ensure_registered(api);
    uucs::SyncRequest request;
    request.guid = client.guid();
    request.known_testcase_ids = client.testcases().ids();
    uucs::SyncResponse response = api.hot_sync(request);
    SyncDelivery delivery{ev.t, {}};
    delivery.ids.reserve(response.new_testcases.size());
    for (auto& tc : response.new_testcases) {
      delivery.ids.push_back(tc.id());
      client.mutable_testcases().add(std::move(tc));
    }
    deliveries[ev.site].push_back(std::move(delivery));
    ++out.total_syncs;
  }

  // Phase B: simulate each site's runs as an engine job.
  const uucs::TestcaseStore& catalog = out.server->testcases();
  engine::SessionEngine eng(engine::EngineConfig{config.jobs});
  std::vector<SiteShard> shards = eng.map<SiteShard>(
      sites.size(), [&](engine::JobContext& ctx) {
        const std::size_t i = ctx.index();
        Site& site = *sites[i];
        SiteShard shard;
        double t = first_run[i];
        if (t > config.duration_s) return shard;

        const std::vector<double> weights(config.task_weights.begin(),
                                          config.task_weights.end());
        // Guid as the client saw it at each instant: nil until the first
        // sync registered it (record_result stamps at record time).
        const std::string nil_guid = uucs::Guid().to_string();
        const std::string real_guid = site.client.guid().to_string();
        const double first_sync = deliveries[i].empty()
                                      ? std::numeric_limits<double>::infinity()
                                      : stagger[i];
        uucs::TestcaseStore known;
        std::size_t next_delivery = 0;
        std::uint64_t run_serial = 0;
        while (true) {
          while (next_delivery < deliveries[i].size() &&
                 deliveries[i][next_delivery].t <= t) {
            for (const std::string& id : deliveries[i][next_delivery].ids) {
              known.add(catalog.get(id));
            }
            ++next_delivery;
          }
          const std::string& guid = t >= first_sync ? real_guid : nil_guid;
          if (const auto id = known.random_id(site.rng)) {
            // Task context at this moment, drawn from the configured mix.
            const auto task =
                static_cast<uucs::sim::Task>(site.rng.weighted_index(weights));
            uucs::RunRecord rec = site.simulator.simulate_record(
                site.user, task, known.get(*id), site.rng,
                uucs::strprintf("%s/%llu", guid.c_str(),
                                static_cast<unsigned long long>(run_serial++)));
            rec.client_guid = guid;
            shard.runs.push_back(SiteShard::TimedRun{t, std::move(rec)});
            shard.distinct.insert(*id);
          }
          const double delay = site.client.next_run_delay(site.rng);
          if (t + delay < config.duration_s) {
            t += delay;
          } else {
            break;
          }
        }
        ctx.count_runs(shard.runs.size());
        return shard;
      });

  // Phase C: reconstruct the server's result store in upload order — each
  // fired sync carried the site's runs recorded since its previous sync.
  std::vector<std::size_t> uploaded(sites.size(), 0);
  for (const SyncEvent& ev : syncs) {
    SiteShard& shard = shards[ev.site];
    std::size_t& next = uploaded[ev.site];
    while (next < shard.runs.size() && shard.runs[next].t < ev.t) {
      out.server->mutable_results().add(std::move(shard.runs[next].rec));
      ++next;
    }
  }

  // Final sync so the last results reach the server.
  for (std::size_t i = 0; i < sites.size(); ++i) {
    SiteShard& shard = shards[i];
    std::size_t& next = uploaded[i];
    if (next == shard.runs.size()) continue;
    uucs::UucsClient& client = sites[i]->client;
    client.ensure_registered(api);
    uucs::SyncRequest request;
    request.guid = client.guid();
    request.known_testcase_ids = client.testcases().ids();
    for (; next < shard.runs.size(); ++next) {
      request.results.push_back(std::move(shard.runs[next].rec));
    }
    uucs::SyncResponse response = api.hot_sync(request);
    for (auto& tc : response.new_testcases) {
      client.mutable_testcases().add(std::move(tc));
    }
    ++out.total_syncs;
  }

  std::set<std::string> distinct_testcases;
  for (const SiteShard& shard : shards) {
    out.total_runs += shard.runs.size();
    distinct_testcases.insert(shard.distinct.begin(), shard.distinct.end());
  }
  out.distinct_testcases_run = distinct_testcases.size();
  out.engine = eng.stats();
  return out;
}

}  // namespace uucs::study
