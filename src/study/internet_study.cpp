#include "study/internet_study.hpp"

#include <algorithm>
#include <chrono>
#include <functional>
#include <memory>
#include <set>
#include <unordered_map>

#include "client/client.hpp"
#include "sim/host_model.hpp"
#include "sim/simulation.hpp"
#include "util/error.hpp"
#include "util/interner.hpp"
#include "util/rng_streams.hpp"
#include "util/strings.hpp"

namespace uucs::study {

namespace {

/// One simulated deployment site: a client machine, its user, and the glue
/// the replay needs. Heap-allocated so the RunSimulator's reference to the
/// HostModel stays valid.
struct Site {
  Site(uucs::HostSpec spec, const uucs::ClientConfig& cc,
       std::array<double, uucs::sim::kTaskCount> noise, double nonblank_scale,
       uucs::sim::UserProfile user_in, std::uint64_t seed)
      : client(spec, cc),
        host(std::move(spec)),
        simulator(host, noise),
        user(std::move(user_in)),
        rng(seed) {
    simulator.set_nonblank_noise_scale(nonblank_scale);
  }

  uucs::UucsClient client;
  uucs::sim::HostModel host;
  uucs::sim::RunSimulator simulator;
  uucs::sim::UserProfile user;
  uucs::Rng rng;
};

uucs::HostSpec make_host(double power, std::size_t index) {
  uucs::HostSpec spec = uucs::HostSpec::paper_study_machine();
  spec.hostname = uucs::strprintf("inet-host-%03zu", index);
  spec.os_name = "Windows XP";
  spec.cpu_mhz = 2000.0 * power;  // single core: power index == clock ratio
  spec.cpu_count = 1;
  return spec;
}

/// A hot sync fired during the event-driven sync phase, in fire order.
struct SyncEvent {
  double t;
  std::size_t site;
};

/// Testcases a sync delivered to one site, by id (bodies live in the
/// server's catalog, which is immutable during the run phase).
struct SyncDelivery {
  double t;
  std::vector<std::string> ids;
};

/// Everything one site produced during the parallel run phase.
struct SiteShard {
  struct TimedRun {
    double t;
    uucs::RunRecord rec;
  };
  std::vector<TimedRun> runs;  ///< empty in streaming mode
  std::set<std::string> distinct;
  std::size_t n_runs = 0;      ///< counted in both modes
};

/// One engine worker's streaming state, interned against the worker's
/// private (unsynchronized) string pool: flat key table, the server
/// catalog's (id, description) pairs, and the worker's accumulator. Built
/// lazily on the slot's first site; afterwards the per-run hot path takes
/// no lock. Accumulator state is id-free, so per-worker pools merge
/// without any id reconciliation (DESIGN.md §11).
struct WorkerLocal {
  uucs::StringInterner* pool = nullptr;  ///< unset until first site
  std::unique_ptr<uucs::sim::FlatRunKeys> keys;
  std::unordered_map<std::string, uucs::InternedTestcase> interned_catalog;
  std::unique_ptr<analysis::StudyAccumulator> acc;

  void init(uucs::StringInterner& worker_pool,
            const uucs::TestcaseStore& catalog) {
    pool = &worker_pool;
    keys = std::make_unique<uucs::sim::FlatRunKeys>(worker_pool);
    for (const std::string& id : catalog.ids()) {
      const uucs::Testcase& tc = catalog.get(id);
      interned_catalog.emplace(
          id, uucs::InternedTestcase{worker_pool.intern(tc.id()),
                                     worker_pool.intern(tc.description())});
    }
    acc = std::make_unique<analysis::StudyAccumulator>(worker_pool);
  }
};

}  // namespace

InternetStudyOutput run_internet_study(const InternetStudyConfig& config) {
  return run_internet_study(config, calibrate_population());
}

/// The fleet simulation runs as three discrete-event phases that share one
/// determinism contract (sim::EventClass: sync < run-start < feedback <
/// run-end, FIFO among equals — the tie-breaking the old driver left to a
/// "ties have measure zero" comment):
///
///  A. (sequential) Sync schedule. One Simulation drives every site's
///     self-rescheduling hot-sync events. Sync times depend only on each
///     site's setup draws (stagger + fixed interval), never on runs, and
///     the server's RNG consumption per sync depends only on the sync
///     order and each client's known-testcase set, never on uploaded
///     result content — so syncs can fire before any run is simulated,
///     yielding each site's delivery log (when which testcases arrived).
///  B. (parallel) Run phase. Each site is an engine job with its own
///     Simulation: its deliveries become sync events, its Poisson run
///     arrivals become self-rescheduling run-start events. A delivery and
///     a run at the same instant resolve sync-first by EventClass, so the
///     run sees the freshly delivered testcases — exactly the old replay's
///     "apply deliveries with t <= now" rule.
///  C. (sequential) Upload phase. One Simulation replays each site's
///     recorded runs as run-end events against the fired syncs as sync
///     events; each sync uploads the site's runs recorded strictly before
///     it (a run at the sync's own instant loses the tie and waits,
///     because sync < run-end). The trailing flush syncs then run against
///     the real server, exactly like before.
InternetStudyOutput run_internet_study(const InternetStudyConfig& config,
                                       const PopulationParams& params) {
  UUCS_CHECK_MSG(config.clients > 0, "need at least one client");
  UUCS_CHECK_MSG(config.duration_s > 0, "duration must be positive");
  UUCS_CHECK_MSG(config.power_min > 0 && config.power_max >= config.power_min,
                 "power range");

  InternetStudyOutput out;
  out.params = params;
  uucs::Rng root(config.seed);

  out.server = std::make_unique<uucs::UucsServer>(
      root.fork(streams::kInternetServer)(), /*sample_batch=*/32);
  {
    uucs::Rng suite_rng = root.fork(streams::kInternetSuite);
    out.server->add_testcases(uucs::generate_internet_suite(config.suite, suite_rng));
  }
  uucs::LocalServerApi api(*out.server);

  const std::array<double, uucs::sim::kTaskCount> noise = {
      params.noise_rates[0], params.noise_rates[1], params.noise_rates[2],
      params.noise_rates[3]};

  uucs::Rng pop_rng = root.fork(streams::kInternetPopulation);
  std::vector<std::unique_ptr<Site>> sites;
  sites.reserve(config.clients);
  for (std::size_t i = 0; i < config.clients; ++i) {
    const double log_lo = std::log(config.power_min);
    const double log_hi = std::log(config.power_max);
    const double power = std::exp(pop_rng.uniform(log_lo, log_hi));
    uucs::ClientConfig cc;
    cc.sync_interval_s = config.sync_interval_s;
    cc.mean_run_interarrival_s = config.mean_run_interarrival_s;
    cc.seed = pop_rng();
    auto user = draw_user(params, pop_rng, uucs::strprintf("inet-user-%03zu", i));
    sites.push_back(std::make_unique<Site>(make_host(power, i), cc, noise,
                                           params.nonblank_noise_scale,
                                           std::move(user), pop_rng()));
  }

  // Setup draws, in site order: initial sync stagger across the first
  // interval, then the delay before the first run.
  std::vector<double> stagger(sites.size());
  std::vector<double> first_run(sites.size());
  for (std::size_t i = 0; i < sites.size(); ++i) {
    stagger[i] = sites[i]->rng.uniform(0.0, config.sync_interval_s);
    first_run[i] = sites[i]->client.next_run_delay(sites[i]->rng);
  }

  // Phase A: the sync schedule as self-rescheduling events. A sync fires
  // at its stagger (if within the horizon) and every interval after that
  // while the next one would still land strictly inside the horizon.
  // Initial events are scheduled in site order, so equal-time syncs fire
  // in site order (FIFO among equal keys), and rescheduling preserves it.
  std::vector<SyncEvent> syncs;  ///< fired syncs, in fire order
  std::vector<std::vector<SyncDelivery>> deliveries(sites.size());
  {
    uucs::sim::SimulationConfig sim_config;
    sim_config.trace = config.trace;
    uucs::sim::Simulation sync_sim(sim_config);
    std::function<void(std::size_t)> fire_sync = [&](std::size_t i) {
      const double t = sync_sim.now();
      syncs.push_back(SyncEvent{t, i});
      uucs::UucsClient& client = sites[i]->client;
      // Same server interaction as UucsClient::hot_sync with no pending
      // results (runs have not been simulated yet, and upload content
      // never influences the server's draws).
      client.ensure_registered(api);
      uucs::SyncRequest request;
      request.guid = client.guid();
      request.known_testcase_ids = client.testcases().ids();
      uucs::SyncResponse response = api.hot_sync(request);
      SyncDelivery delivery{t, {}};
      delivery.ids.reserve(response.new_testcases.size());
      for (auto& tc : response.new_testcases) {
        delivery.ids.push_back(tc.id());
        client.mutable_testcases().add(std::move(tc));
      }
      deliveries[i].push_back(std::move(delivery));
      ++out.total_syncs;
      if (t + config.sync_interval_s < config.duration_s) {
        sync_sim.schedule_in(
            config.sync_interval_s, uucs::sim::EventClass::kSync,
            sync_sim.tracing() ? uucs::strprintf("hot-sync site=%zu", i)
                               : std::string(),
            [&fire_sync, i] { fire_sync(i); });
      }
    };
    for (std::size_t i = 0; i < sites.size(); ++i) {
      if (stagger[i] > config.duration_s) continue;
      sync_sim.schedule_at(
          stagger[i], uucs::sim::EventClass::kSync,
          sync_sim.tracing() ? uucs::strprintf("hot-sync site=%zu", i)
                             : std::string(),
          [&fire_sync, i] { fire_sync(i); });
    }
    sync_sim.run_all();
    if (config.trace) out.trace.append(sync_sim.take_trace());
  }

  // Phase B: each site's run schedule as an engine job with its own
  // Simulation — deliveries as sync events, Poisson arrivals as
  // self-rescheduling run-start events.
  const uucs::TestcaseStore& catalog = out.server->testcases();
  engine::SessionEngine eng(engine::EngineConfig{config.jobs, config.trace});

  // Streaming mode: one WorkerLocal per worker slot (accumulator, flat key
  // table, interned catalog — all over the worker's private pool, see
  // controlled_study.cpp), built lazily on the slot's first site so the
  // per-run hot path never takes the interner lock.
  std::vector<WorkerLocal> locals(config.streaming ? eng.workers() : 0);

  std::vector<SiteShard> shards = eng.map<SiteShard>(
      sites.size(), [&](engine::JobContext& ctx) {
        const std::size_t i = ctx.index();
        Site& site = *sites[i];
        SiteShard shard;
        if (first_run[i] > config.duration_s) return shard;
        uucs::sim::Simulation& sim = ctx.simulation();
        WorkerLocal* local = nullptr;
        analysis::StudyAccumulator* acc = nullptr;
        if (config.streaming) {
          local = &locals[ctx.worker_slot()];
          if (!local->pool) local->init(ctx.interner(), catalog);
          acc = local->acc.get();
        }
        uucs::sim::RunSimulator::FlatRunContext flat_ctx;
        std::uint32_t nil_guid_id = 0, real_guid_id = 0;
        if (!config.streaming) {
          // ~duration / interarrival runs per site in expectation.
          shard.runs.reserve(static_cast<std::size_t>(
                                 config.duration_s /
                                 std::max(config.mean_run_interarrival_s, 1.0)) +
                             4);
        }

        const std::vector<double> weights(config.task_weights.begin(),
                                          config.task_weights.end());
        // Guid as the client saw it at each instant: nil until the first
        // sync registered it (record_result stamps at record time). The
        // first sync event flips it, and a run at that same instant sees
        // the real guid because sync < run-start.
        const std::string nil_guid = uucs::Guid().to_string();
        const std::string real_guid = site.client.guid().to_string();
        if (acc) {
          flat_ctx =
              site.simulator.flat_context(site.user, *local->keys, *local->pool);
          nil_guid_id = local->pool->intern(nil_guid);
          real_guid_id = local->pool->intern(real_guid);
        }
        bool synced = false;
        uucs::TestcaseStore known;
        std::uint64_t run_serial = 0;

        for (const SyncDelivery& delivery : deliveries[i]) {
          sim.schedule_at(
              delivery.t, uucs::sim::EventClass::kSync,
              sim.tracing()
                  ? uucs::strprintf("delivery site=%zu n=%zu", i,
                                    delivery.ids.size())
                  : std::string(),
              [&, dp = &delivery] {
                synced = true;
                for (const std::string& id : dp->ids) known.add(catalog.get(id));
              });
        }

        std::function<void()> fire_run = [&] {
          const double t = sim.now();
          if (const auto id = known.random_id(site.rng)) {
            // Task context at this moment, drawn from the configured mix.
            const auto task =
                static_cast<uucs::sim::Task>(site.rng.weighted_index(weights));
            const std::string& guid = synced ? real_guid : nil_guid;
            // Run ids label traces and uploaded records; an untraced
            // streaming run reads neither, so skip the per-run strprintf.
            std::string run_id =
                (!acc || sim.tracing())
                    ? uucs::strprintf(
                          "%s/%llu", guid.c_str(),
                          static_cast<unsigned long long>(run_serial))
                    : std::string();
            ++run_serial;
            if (acc) {
              // Flat hot path: same simulate() draw sequence as
              // simulate_record, folded straight into the accumulator.
              uucs::FlatRunRecord rec = site.simulator.simulate_flat(
                  site.user, task, known.get(*id),
                  local->interned_catalog.at(*id), site.rng,
                  std::move(run_id), flat_ctx, *local->keys, *local->pool);
              rec.client_guid = synced ? real_guid_id : nil_guid_id;
              if (sim.tracing() && rec.discomforted) {
                sim.schedule_in(rec.offset_s, uucs::sim::EventClass::kFeedback,
                                uucs::strprintf("site=%zu run=%s", i,
                                                rec.run_id.c_str()),
                                [] {});
              }
              acc->add(rec);
            } else {
              uucs::RunRecord rec = site.simulator.simulate_record(
                  site.user, task, known.get(*id), site.rng, run_id);
              rec.client_guid = guid;
              if (sim.tracing() && rec.discomforted) {
                sim.schedule_in(rec.offset_s, uucs::sim::EventClass::kFeedback,
                                uucs::strprintf("site=%zu run=%s", i,
                                                rec.run_id.c_str()),
                                [] {});
              }
              shard.runs.push_back(SiteShard::TimedRun{t, std::move(rec)});
            }
            shard.distinct.insert(*id);
            ++shard.n_runs;
          }
          const double delay = site.client.next_run_delay(site.rng);
          if (t + delay < config.duration_s) {
            sim.schedule_in(
                delay, uucs::sim::EventClass::kRunStart,
                sim.tracing() ? uucs::strprintf("run site=%zu", i)
                              : std::string(),
                fire_run);
          }
        };
        sim.schedule_at(first_run[i], uucs::sim::EventClass::kRunStart,
                        sim.tracing() ? uucs::strprintf("run site=%zu", i)
                                      : std::string(),
                        fire_run);
        sim.run_all();
        ctx.count_runs(shard.n_runs);
        return shard;
      });

  if (config.trace) out.trace.append(eng.merged_trace());

  if (config.streaming) {
    // Everything the upload phase would deliver is already aggregated;
    // merge the per-worker accumulators (exact, so slot order is just a
    // convention) and leave the server's result store empty.
    const auto merge_start = std::chrono::steady_clock::now();
    out.aggregates = std::make_unique<analysis::StudyAccumulator>();
    for (const WorkerLocal& local : locals) {
      if (local.acc) out.aggregates->merge(*local.acc);
    }
    eng.add_merge_time(std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - merge_start)
                           .count());
  } else {
  // Phase C: the server's result store in upload order — each fired sync
  // carries the site's runs recorded strictly before it.
  std::vector<std::vector<uucs::RunRecord>> pending(sites.size());
  {
    uucs::sim::SimulationConfig sim_config;
    sim_config.trace = config.trace;
    uucs::sim::Simulation upload_sim(sim_config);
    for (std::size_t i = 0; i < sites.size(); ++i) {
      for (SiteShard::TimedRun& run : shards[i].runs) {
        upload_sim.schedule_at(
            run.t, uucs::sim::EventClass::kRunEnd,
            upload_sim.tracing()
                ? uucs::strprintf("record site=%zu run=%s", i,
                                  run.rec.run_id.c_str())
                : std::string(),
            [&pending, i, rp = &run] {
              pending[i].push_back(std::move(rp->rec));
            });
      }
    }
    for (const SyncEvent& ev : syncs) {
      upload_sim.schedule_at(
          ev.t, uucs::sim::EventClass::kSync,
          upload_sim.tracing() ? uucs::strprintf("upload site=%zu", ev.site)
                               : std::string(),
          [&, site = ev.site] {
            for (uucs::RunRecord& rec : pending[site]) {
              out.server->mutable_results().add(std::move(rec));
            }
            pending[site].clear();
          });
    }
    upload_sim.run_all();
    if (config.trace) out.trace.append(upload_sim.take_trace());
  }

  // Final sync so the last results reach the server.
  for (std::size_t i = 0; i < sites.size(); ++i) {
    if (pending[i].empty()) continue;
    uucs::UucsClient& client = sites[i]->client;
    client.ensure_registered(api);
    uucs::SyncRequest request;
    request.guid = client.guid();
    request.known_testcase_ids = client.testcases().ids();
    for (uucs::RunRecord& rec : pending[i]) {
      request.results.push_back(std::move(rec));
    }
    pending[i].clear();
    uucs::SyncResponse response = api.hot_sync(request);
    for (auto& tc : response.new_testcases) {
      client.mutable_testcases().add(std::move(tc));
    }
    ++out.total_syncs;
  }
  }  // !config.streaming

  std::set<std::string> distinct_testcases;
  for (const SiteShard& shard : shards) {
    out.total_runs += shard.n_runs;
    distinct_testcases.insert(shard.distinct.begin(), shard.distinct.end());
  }
  out.distinct_testcases_run = distinct_testcases.size();
  out.engine = eng.stats();
  return out;
}

}  // namespace uucs::study
