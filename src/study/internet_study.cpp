#include "study/internet_study.hpp"

#include <set>

#include "client/client.hpp"
#include "sim/event_queue.hpp"
#include "sim/host_model.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace uucs::study {

namespace {

/// One simulated deployment site: a client machine, its user, and the glue
/// the event handlers need. Heap-allocated so the RunSimulator's reference
/// to the HostModel stays valid.
struct Site {
  Site(uucs::HostSpec spec, const uucs::ClientConfig& cc,
       std::array<double, uucs::sim::kTaskCount> noise, double nonblank_scale,
       uucs::sim::UserProfile user_in, std::uint64_t seed)
      : client(spec, cc),
        host(std::move(spec)),
        simulator(host, noise),
        user(std::move(user_in)),
        rng(seed) {
    simulator.set_nonblank_noise_scale(nonblank_scale);
  }

  uucs::UucsClient client;
  uucs::sim::HostModel host;
  uucs::sim::RunSimulator simulator;
  uucs::sim::UserProfile user;
  uucs::Rng rng;
};

uucs::HostSpec make_host(double power, std::size_t index) {
  uucs::HostSpec spec = uucs::HostSpec::paper_study_machine();
  spec.hostname = uucs::strprintf("inet-host-%03zu", index);
  spec.os_name = "Windows XP";
  spec.cpu_mhz = 2000.0 * power;  // single core: power index == clock ratio
  spec.cpu_count = 1;
  return spec;
}

}  // namespace

InternetStudyOutput run_internet_study(const InternetStudyConfig& config) {
  return run_internet_study(config, calibrate_population());
}

InternetStudyOutput run_internet_study(const InternetStudyConfig& config,
                                       const PopulationParams& params) {
  UUCS_CHECK_MSG(config.clients > 0, "need at least one client");
  UUCS_CHECK_MSG(config.duration_s > 0, "duration must be positive");
  UUCS_CHECK_MSG(config.power_min > 0 && config.power_max >= config.power_min,
                 "power range");

  InternetStudyOutput out;
  out.params = params;
  uucs::Rng root(config.seed);

  out.server = std::make_unique<uucs::UucsServer>(root.fork(1)(), /*sample_batch=*/32);
  {
    uucs::Rng suite_rng = root.fork(2);
    out.server->add_testcases(uucs::generate_internet_suite(config.suite, suite_rng));
  }
  uucs::LocalServerApi api(*out.server);

  const std::array<double, uucs::sim::kTaskCount> noise = {
      params.noise_rates[0], params.noise_rates[1], params.noise_rates[2],
      params.noise_rates[3]};

  uucs::Rng pop_rng = root.fork(3);
  std::vector<std::unique_ptr<Site>> sites;
  sites.reserve(config.clients);
  for (std::size_t i = 0; i < config.clients; ++i) {
    const double log_lo = std::log(config.power_min);
    const double log_hi = std::log(config.power_max);
    const double power = std::exp(pop_rng.uniform(log_lo, log_hi));
    uucs::ClientConfig cc;
    cc.sync_interval_s = config.sync_interval_s;
    cc.mean_run_interarrival_s = config.mean_run_interarrival_s;
    cc.seed = pop_rng();
    auto user = draw_user(params, pop_rng, uucs::strprintf("inet-user-%03zu", i));
    sites.push_back(std::make_unique<Site>(make_host(power, i), cc, noise,
                                           params.nonblank_noise_scale,
                                           std::move(user), pop_rng()));
  }

  uucs::VirtualClock clock;
  uucs::sim::EventQueue events(clock);
  std::set<std::string> distinct_testcases;

  // Event handlers. Syncs and runs reschedule themselves until the horizon.
  std::function<void(Site&)> do_sync = [&](Site& site) {
    site.client.hot_sync(api);
    ++out.total_syncs;
    if (clock.now() + site.client.sync_interval_s() < config.duration_s) {
      events.schedule_in(site.client.sync_interval_s(), [&] { do_sync(site); });
    }
  };

  std::function<void(Site&)> do_run = [&](Site& site) {
    if (const auto id = site.client.choose_testcase_id(site.rng)) {
      const uucs::Testcase& tc = site.client.testcases().get(*id);
      // Task context at this moment, drawn from the configured mix.
      const std::vector<double> weights(config.task_weights.begin(),
                                        config.task_weights.end());
      const auto task = static_cast<uucs::sim::Task>(site.rng.weighted_index(weights));
      uucs::RunRecord rec = site.simulator.simulate_record(
          site.user, task, tc, site.rng, site.client.next_run_id());
      site.client.record_result(std::move(rec));
      ++out.total_runs;
      distinct_testcases.insert(*id);
    }
    const double delay = site.client.next_run_delay(site.rng);
    if (clock.now() + delay < config.duration_s) {
      events.schedule_in(delay, [&] { do_run(site); });
    }
  };

  for (auto& site_ptr : sites) {
    Site& site = *site_ptr;
    // Stagger initial contact across the first sync interval.
    events.schedule_in(site.rng.uniform(0.0, config.sync_interval_s),
                       [&] { do_sync(site); });
    events.schedule_in(site.client.next_run_delay(site.rng), [&] { do_run(site); });
  }

  events.run_until(config.duration_s);

  // Final sync so the last results reach the server.
  for (auto& site_ptr : sites) {
    if (!site_ptr->client.pending_results().empty()) {
      site_ptr->client.hot_sync(api);
      ++out.total_syncs;
    }
  }
  out.distinct_testcases_run = distinct_testcases.size();
  return out;
}

}  // namespace uucs::study
