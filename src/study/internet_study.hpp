#pragma once

#include <memory>

#include "analysis/streaming.hpp"
#include "engine/session_engine.hpp"
#include "server/server.hpp"
#include "study/population.hpp"
#include "testcase/suite.hpp"

namespace uucs::study {

/// Configuration of the §4 Internet-wide study simulation: a fleet of
/// heterogeneous clients that register, hot-sync growing random samples of
/// a large testcase suite, execute testcases at Poisson arrival times while
/// their users do everyday tasks, and upload results.
struct InternetStudyConfig {
  std::size_t clients = 100;  ///< "We currently have about 100 users" (§4)
  double duration_s = 7.0 * 24 * 3600;
  double mean_run_interarrival_s = 2.0 * 3600;
  double sync_interval_s = 12.0 * 3600;
  std::uint64_t seed = 42;

  /// Host heterogeneity: power indices drawn log-uniformly in this range
  /// (1.0 = the paper's study machine) — this is the data the paper wants
  /// for its open question 6 (raw host power).
  double power_min = 0.5;
  double power_max = 4.0;

  /// Task mix while testcases run (word, powerpoint, ie, quake).
  std::array<double, uucs::sim::kTaskCount> task_weights{0.35, 0.15, 0.35, 0.15};

  /// The server's testcase catalog (defaults to the paper-scale 2000+
  /// suite; shrink for quick runs).
  uucs::SuiteSpec suite;

  /// SessionEngine worker threads for the per-site run simulation phase
  /// (0 = hardware concurrency). Any value produces bit-identical output
  /// for one seed: sync traffic is simulated deterministically first, then
  /// sites simulate independently and merge in site order.
  std::size_t jobs = 0;

  /// Record every simulation event into InternetStudyOutput::trace, in
  /// phase order (sync schedule, per-site runs in site order, uploads).
  /// Observability only — never changes results. In streaming mode the
  /// trace covers phases A and B only (the upload phase does not run).
  bool trace = false;

  /// Streaming aggregation (DESIGN.md §10): fold every run into one
  /// analysis::StudyAccumulator per engine worker during the run phase
  /// instead of retaining RunRecords. The upload phase is skipped — the
  /// server's result store stays empty — and Output::aggregates holds
  /// exactly what the analysis layer computes over the records a
  /// non-streaming run uploads (same seed, any job count).
  bool streaming = false;
};

/// Summary of a simulated deployment.
struct InternetStudyOutput {
  /// Holds all uploaded results (empty result store in streaming mode).
  std::unique_ptr<uucs::UucsServer> server;
  std::size_t total_runs = 0;
  std::size_t total_syncs = 0;
  std::size_t distinct_testcases_run = 0;
  PopulationParams params;
  engine::EngineStats engine;  ///< session-engine instrumentation
  sim::EventTrace trace;       ///< fired events, when config.trace was set

  /// Streaming-mode aggregates (config.streaming): what the analysis layer
  /// derives from the uploaded records, without retaining any of them.
  std::unique_ptr<analysis::StudyAccumulator> aggregates;
};

/// Runs the fleet simulation in virtual time (discrete-event). Clients
/// register on first contact, sync on their own schedules, choose testcases
/// by local random choice, and execute them with Poisson interarrivals —
/// the §2 design "to make a collection of clients execute a random sample
/// with respect to testcases, users, and times".
InternetStudyOutput run_internet_study(const InternetStudyConfig& config = {});

InternetStudyOutput run_internet_study(const InternetStudyConfig& config,
                                       const PopulationParams& params);

}  // namespace uucs::study
