#include "study/paper_constants.hpp"

#include <limits>

#include "util/error.hpp"

namespace uucs::study {

namespace {
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
}

std::size_t resource_index(uucs::Resource r) {
  switch (r) {
    case uucs::Resource::kCpu:
      return 0;
    case uucs::Resource::kMemory:
      return 1;
    case uucs::Resource::kDisk:
      return 2;
    case uucs::Resource::kNetwork:
      break;
  }
  throw uucs::Error("network is not a study resource");
}

uucs::Resource resource_at(std::size_t i) {
  UUCS_CHECK_MSG(i < kResources, "resource index out of range");
  return uucs::kStudyResources[i];
}

double ramp_max(Task t, uucs::Resource r) {
  // Fig 8 rows 1 (CPU), 3 (Disk), 4 (Memory): ramp parameters x per task.
  static constexpr double kRamp[kTasks][kResources] = {
      // cpu,  mem,  disk
      {7.0, 1.0, 7.0},  // Word
      {2.0, 1.0, 8.0},  // Powerpoint
      {2.0, 1.0, 5.0},  // IE
      {1.3, 1.0, 5.0},  // Quake
  };
  return kRamp[static_cast<std::size_t>(t)][resource_index(r)];
}

double step_level(Task t, uucs::Resource r) {
  // Fig 8 rows 5 (CPU), 6 (Disk), 8 (Memory): step parameters x per task.
  static constexpr double kStep[kTasks][kResources] = {
      {5.5, 1.0, 5.0},   // Word
      {0.98, 1.0, 6.0},  // Powerpoint
      {1.0, 1.0, 4.0},   // IE
      {0.5, 1.0, 5.0},   // Quake
  };
  return kStep[static_cast<std::size_t>(t)][resource_index(r)];
}

const PaperBreakdown& paper_breakdown(Task t) {
  // Fig 9.
  static const PaperBreakdown kRows[kTasks] = {
      {48, 20, 0, 59, 0.0},    // Word
      {71, 4, 0, 60, 0.0},     // Powerpoint
      {50, 17, 14, 50, 0.22},  // IE
      {126, 6, 19, 43, 0.30},  // Quake
  };
  return kRows[static_cast<std::size_t>(t)];
}

const PaperBreakdown& paper_breakdown_total() {
  static const PaperBreakdown kTotal = {295, 47, 33, 212, 33.0 / 245.0};
  return kTotal;
}

const PaperCell& paper_cell(Task t, uucs::Resource r) {
  // Figs 14 (fd), 15 (c05), 16 (ca with 95% CI).
  static const PaperCell kCells[kTasks][kResources] = {
      // Word:       cpu                          mem                        disk
      {{0.71, 3.06, 4.35, 3.97, 4.72},
       {0.00, kNan, kNan, kNan, kNan},
       {0.10, 3.28, 4.20, 1.89, 6.51}},
      // Powerpoint
      {{0.95, 1.00, 1.17, 1.11, 1.24},
       {0.07, 0.64, 0.64, 0.21, 1.06},
       {0.17, 3.84, 4.65, 3.67, 5.63}},
      // IE
      {{0.75, 0.61, 1.20, 1.07, 1.33},
       {0.30, 0.31, 0.55, 0.39, 0.71},
       {0.61, 2.02, 3.11, 2.69, 3.52}},
      // Quake
      {{0.95, 0.18, 0.64, 0.58, 0.69},
       {0.45, 0.08, 0.55, 0.37, 0.74},
       {0.29, 0.69, 1.19, 0.86, 1.52}},
  };
  return kCells[static_cast<std::size_t>(t)][resource_index(r)];
}

const PaperCell& paper_total(uucs::Resource r) {
  static const PaperCell kTotals[kResources] = {
      {0.86, 0.35, 1.47, 1.31, 1.64},  // CPU
      {0.21, 0.33, 0.58, 0.46, 0.71},  // Memory
      {0.33, 1.11, 2.97, 2.54, 3.41},  // Disk
  };
  return kTotals[resource_index(r)];
}

char paper_sensitivity(Task t, uucs::Resource r) {
  // Fig 13 (per-cell judgements; the totals row/column is separate).
  static constexpr char kGrades[kTasks][kResources] = {
      {'L', 'L', 'L'},  // Word
      {'M', 'L', 'L'},  // Powerpoint
      {'M', 'M', 'H'},  // IE
      {'H', 'M', 'M'},  // Quake
  };
  return kGrades[static_cast<std::size_t>(t)][resource_index(r)];
}

const std::vector<PaperSkillRow>& paper_skill_rows() {
  using uucs::sim::SkillCategory;
  using uucs::sim::SkillRating;
  static const std::vector<PaperSkillRow> kRows = {
      {Task::kQuake, uucs::Resource::kCpu, SkillCategory::kPc,
       SkillRating::kPower, SkillRating::kTypical, 0.006, 0.176},
      {Task::kQuake, uucs::Resource::kCpu, SkillCategory::kWindows,
       SkillRating::kPower, SkillRating::kTypical, 0.031, 0.137},
      {Task::kQuake, uucs::Resource::kCpu, SkillCategory::kQuake,
       SkillRating::kPower, SkillRating::kTypical, 0.001, 0.224},
      {Task::kQuake, uucs::Resource::kCpu, SkillCategory::kQuake,
       SkillRating::kTypical, SkillRating::kBeginner, 0.031, 0.139},
      {Task::kIe, uucs::Resource::kDisk, SkillCategory::kWindows,
       SkillRating::kPower, SkillRating::kTypical, 0.004, 1.114},
      {Task::kIe, uucs::Resource::kMemory, SkillCategory::kWindows,
       SkillRating::kPower, SkillRating::kTypical, 0.011, 0.354},
  };
  return kRows;
}

double noise_rate_per_s(Task t) {
  const double p = paper_breakdown(t).blank_prob;
  if (p <= 0) return 0.0;
  return -std::log1p(-p) / kRunDuration;
}

}  // namespace uucs::study
