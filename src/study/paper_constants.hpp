#pragma once

#include <array>
#include <cmath>
#include <optional>
#include <string>
#include <vector>

#include "sim/task.hpp"
#include "sim/user_model.hpp"
#include "testcase/resource.hpp"

namespace uucs::study {

/// Every number the paper publishes about the controlled study, transcribed
/// from the HPDC'04 text. These drive (a) the population calibration and
/// (b) the figure benches' "paper" reference columns.

/// Index helpers: [task][resource] with resource order cpu, memory, disk.
using Task = uucs::sim::Task;
inline constexpr std::size_t kTasks = uucs::sim::kTaskCount;
inline constexpr std::size_t kResources = 3;

std::size_t resource_index(uucs::Resource r);
uucs::Resource resource_at(std::size_t i);

/// Fig 8: ramp(x, 120) maxima per cell.
double ramp_max(Task t, uucs::Resource r);
/// Fig 8: step(x, 120, 40) levels per cell.
double step_level(Task t, uucs::Resource r);
/// Every testcase runs for two minutes with the step break at 40 s.
inline constexpr double kRunDuration = 120.0;
inline constexpr double kStepBreak = 40.0;

/// §3.1: the study had 33 participants; each task session lasted 16 min.
inline constexpr std::size_t kParticipants = 33;
inline constexpr double kSessionSeconds = 16.0 * 60.0;

/// Fig 9: run counts per task.
struct PaperBreakdown {
  std::size_t nonblank_df, nonblank_ex, blank_df, blank_ex;
  double blank_prob;
};
const PaperBreakdown& paper_breakdown(Task t);
const PaperBreakdown& paper_breakdown_total();

/// Figs 14/15/16: per-cell statistics. c05/ca are NaN where the paper
/// prints '*' (insufficient information).
struct PaperCell {
  double fd;
  double c05;
  double ca;
  double ca_lo;
  double ca_hi;
  bool has_c05() const { return !std::isnan(c05); }
  bool has_ca() const { return !std::isnan(ca); }
};
const PaperCell& paper_cell(Task t, uucs::Resource r);
const PaperCell& paper_total(uucs::Resource r);

/// Fig 13: the paper's subjective L/M/H sensitivity grades ('L', 'M', 'H').
char paper_sensitivity(Task t, uucs::Resource r);

/// Fig 17: the significant skill-group differences the paper reports.
struct PaperSkillRow {
  Task task;
  uucs::Resource resource;
  uucs::sim::SkillCategory category;
  uucs::sim::SkillRating group_hi;  ///< higher-rated group (less tolerant)
  uucs::sim::SkillRating group_lo;
  double p;
  double diff;
};
const std::vector<PaperSkillRow>& paper_skill_rows();

/// §3.3.5: the Powerpoint/CPU frog-in-the-pot observation.
inline constexpr double kRampStepFracHigher = 0.96;
inline constexpr double kRampStepMeanDiff = 0.22;
inline constexpr double kRampStepPValue = 0.0001;

/// Noise-floor hazard per second for `t`, back-solved from Fig 9's blank
/// discomfort probability over a 120 s run: lambda = -ln(1-p)/120.
double noise_rate_per_s(Task t);

}  // namespace uucs::study
