#include "study/population.hpp"

#include <cmath>

#include "stats/special.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace uucs::study {

namespace {

/// Tertile boundary of the standard normal: splits ratings ~1/3 each.
const double kTertile = uucs::stats::normal_quantile(2.0 / 3.0);

uucs::sim::SkillRating discretize_rating(double v) {
  if (v > kTertile) return uucs::sim::SkillRating::kPower;
  if (v < -kTertile) return uucs::sim::SkillRating::kBeginner;
  return uucs::sim::SkillRating::kTypical;
}

}  // namespace

uucs::sim::UserProfile draw_user(const PopulationParams& params, uucs::Rng& rng,
                                 const std::string& user_id) {
  uucs::sim::UserProfile user;
  user.user_id = user_id;
  user.surprise_penalty = params.surprise_penalty;

  const double z_user = rng.normal();
  const double u = rng.normal();  // latent expertise
  user.latent_skill = u;

  // Per-category aptitudes behind the questionnaire answers: all share the
  // latent expertise u, plus category-specific variation. The *task's own*
  // aptitude drives its cells' thresholds, so the strongest group
  // differences appear under the task-relevant self-rating — the pattern of
  // Fig 17, where Quake/CPU splits hardest on the Quake rating while the
  // general PC/Windows ratings still separate groups via their correlation.
  const double rho = params.rating_fidelity;
  UUCS_CHECK_MSG(rho >= 0 && rho <= 1, "rating fidelity must be in [0,1]");
  std::array<double, uucs::sim::kSkillCategoryCount> aptitude{};
  for (std::size_t k = 0; k < uucs::sim::kSkillCategoryCount; ++k) {
    aptitude[k] = rho * u + std::sqrt(1.0 - rho * rho) * rng.normal();
    user.ratings[k] = discretize_rating(aptitude[k]);
  }

  const double a = params.sensitivity_loading;
  for (std::size_t ti = 0; ti < kTasks; ++ti) {
    const auto t = static_cast<Task>(ti);
    const double task_aptitude =
        aptitude[static_cast<std::size_t>(uucs::sim::task_skill_category(t))];
    for (std::size_t ri = 0; ri < kResources; ++ri) {
      const uucs::Resource r = resource_at(ri);
      const double b = params.skill_loading(t, r);
      UUCS_CHECK_MSG(a * a + b * b <= 1.0, "copula loadings exceed unit variance");
      const double resid = std::sqrt(1.0 - a * a - b * b);
      const double z = a * z_user - b * task_aptitude + resid * rng.normal();
      user.set_threshold(t, r, params.cell(t, r).threshold_at(z));
    }
  }

  // Personal noise-floor multiplier with mean one, and a reaction delay.
  constexpr double kNoiseSigma = 0.25;
  user.noise_multiplier =
      rng.lognormal(-kNoiseSigma * kNoiseSigma / 2.0, kNoiseSigma);
  user.reaction_delay_s = rng.lognormal(params.reaction_mu, params.reaction_sigma);
  return user;
}

std::vector<uucs::sim::UserProfile> generate_population(const PopulationParams& params,
                                                        std::size_t n,
                                                        uucs::Rng& rng) {
  std::vector<uucs::sim::UserProfile> users;
  users.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    users.push_back(draw_user(params, rng, uucs::strprintf("user-%03zu", i)));
  }
  return users;
}

}  // namespace uucs::study
