#pragma once

#include <vector>

#include "sim/user_model.hpp"
#include "study/calibration.hpp"
#include "util/rng.hpp"

namespace uucs::study {

/// Draws one synthetic participant from the calibrated population model.
///
/// Structure (a Gaussian copula, so every cell's marginal threshold
/// distribution is exactly its fitted lognormal):
///  - z_user ~ N(0,1): general tolerance; loads on every cell with
///    `sensitivity_loading`, giving the within-user correlation real
///    populations show.
///  - u ~ N(0,1): latent expertise; loads negatively with the per-cell
///    `skill_loadings` (experts expect more from their machines, §3.3.4)
///    and drives the questionnaire self-ratings through `rating_fidelity`.
///  - an independent residual per cell fills the remaining variance.
uucs::sim::UserProfile draw_user(const PopulationParams& params, uucs::Rng& rng,
                                 const std::string& user_id);

/// Draws `n` users ("user-00" ...), deterministically in `rng`.
std::vector<uucs::sim::UserProfile> generate_population(const PopulationParams& params,
                                                        std::size_t n, uucs::Rng& rng);

}  // namespace uucs::study
