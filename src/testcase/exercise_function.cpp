#include "testcase/exercise_function.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace uucs {

ExerciseFunction::ExerciseFunction(double rate_hz, std::vector<double> values)
    : rate_hz_(rate_hz), values_(std::move(values)) {
  UUCS_CHECK_MSG(rate_hz_ > 0, "sample rate must be positive");
  for (double v : values_) {
    UUCS_CHECK_MSG(v >= 0 && std::isfinite(v), "contention values must be finite and >= 0");
  }
}

double ExerciseFunction::duration() const {
  return static_cast<double>(values_.size()) / rate_hz_;
}

double ExerciseFunction::level_at(double t) const {
  if (t < 0 || values_.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(t * rate_hz_);
  if (idx >= values_.size()) return 0.0;
  return values_[idx];
}

double ExerciseFunction::max_level() const {
  double m = 0.0;
  for (double v : values_) m = std::max(m, v);
  return m;
}

double ExerciseFunction::mean_level() const {
  if (values_.empty()) return 0.0;
  double s = 0.0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

std::vector<double> ExerciseFunction::last_values_before(double t, std::size_t n) const {
  std::vector<double> out;
  if (t < 0 || values_.empty() || n == 0) return out;
  auto idx = static_cast<std::size_t>(t * rate_hz_);
  idx = std::min(idx, values_.size() - 1);
  const std::size_t first = idx + 1 >= n ? idx + 1 - n : 0;
  out.assign(values_.begin() + static_cast<std::ptrdiff_t>(first),
             values_.begin() + static_cast<std::ptrdiff_t>(idx + 1));
  return out;
}

std::size_t ExerciseFunction::last_values_before_into(double t, double* out,
                                                      std::size_t n) const {
  if (t < 0 || values_.empty() || n == 0) return 0;
  auto idx = static_cast<std::size_t>(t * rate_hz_);
  idx = std::min(idx, values_.size() - 1);
  const std::size_t first = idx + 1 >= n ? idx + 1 - n : 0;
  const std::size_t count = idx + 1 - first;
  std::copy(values_.begin() + static_cast<std::ptrdiff_t>(first),
            values_.begin() + static_cast<std::ptrdiff_t>(idx + 1), out);
  return count;
}

double ExerciseFunction::first_time_at_level(double threshold) const {
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (values_[i] >= threshold) return static_cast<double>(i) / rate_hz_;
  }
  return -1.0;
}

namespace {

std::size_t sample_count_for(double duration, double rate_hz) {
  UUCS_CHECK_MSG(duration > 0 && rate_hz > 0, "duration and rate must be positive");
  return static_cast<std::size_t>(std::llround(duration * rate_hz));
}

}  // namespace

ExerciseFunction make_step(double x, double t, double b, double rate_hz) {
  UUCS_CHECK_MSG(x >= 0, "step level must be >= 0");
  UUCS_CHECK_MSG(b >= 0 && b <= t, "step requires 0 <= b <= t");
  const auto n = sample_count_for(t, rate_hz);
  std::vector<double> v(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double time = static_cast<double>(i) / rate_hz;
    v[i] = time >= b ? x : 0.0;
  }
  return ExerciseFunction(rate_hz, std::move(v));
}

ExerciseFunction make_ramp(double x, double t, double rate_hz) {
  UUCS_CHECK_MSG(x >= 0, "ramp level must be >= 0");
  const auto n = sample_count_for(t, rate_hz);
  std::vector<double> v(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    // Sample at the end of each interval so the final sample reaches x.
    v[i] = x * static_cast<double>(i + 1) / static_cast<double>(n);
  }
  return ExerciseFunction(rate_hz, std::move(v));
}

ExerciseFunction make_sine(double amplitude, double period, double duration,
                           double rate_hz) {
  UUCS_CHECK_MSG(amplitude >= 0 && period > 0, "sine parameters");
  const auto n = sample_count_for(duration, rate_hz);
  std::vector<double> v(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double time = static_cast<double>(i) / rate_hz;
    v[i] = amplitude / 2.0 * (1.0 + std::sin(2.0 * M_PI * time / period));
  }
  return ExerciseFunction(rate_hz, std::move(v));
}

ExerciseFunction make_sawtooth(double amplitude, double period, double duration,
                               double rate_hz) {
  UUCS_CHECK_MSG(amplitude >= 0 && period > 0, "sawtooth parameters");
  const auto n = sample_count_for(duration, rate_hz);
  std::vector<double> v(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double time = static_cast<double>(i) / rate_hz;
    v[i] = amplitude * std::fmod(time, period) / period;
  }
  return ExerciseFunction(rate_hz, std::move(v));
}

namespace {

/// Shared single-server queue simulation for the M/M/1 and M/G/1 traces.
/// `service_draw` returns one job's service demand in seconds.
template <typename ServiceDraw>
ExerciseFunction make_queue_trace(double mean_interarrival, double duration, Rng& rng,
                                  double rate_hz, ServiceDraw service_draw) {
  UUCS_CHECK_MSG(mean_interarrival > 0, "interarrival mean must be positive");
  const auto n = sample_count_for(duration, rate_hz);
  // Generate arrivals over the window.
  std::vector<std::pair<double, double>> jobs;  // (arrival time, service demand)
  double t = rng.exponential(mean_interarrival);
  while (t < duration) {
    jobs.emplace_back(t, service_draw());
    t += rng.exponential(mean_interarrival);
  }
  // FCFS single-server queue: compute each job's departure time.
  std::vector<double> depart(jobs.size());
  double server_free = 0.0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const double start = std::max(server_free, jobs[i].first);
    depart[i] = start + jobs[i].second;
    server_free = depart[i];
  }
  // Sample "number in system" at each sample instant.
  std::vector<double> v(n, 0.0);
  for (std::size_t s = 0; s < n; ++s) {
    const double at = static_cast<double>(s) / rate_hz;
    std::size_t in_system = 0;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (jobs[i].first <= at && depart[i] > at) ++in_system;
    }
    v[s] = static_cast<double>(in_system);
  }
  return ExerciseFunction(rate_hz, std::move(v));
}

}  // namespace

ExerciseFunction make_expexp(double mean_interarrival, double mean_service,
                             double duration, Rng& rng, double rate_hz) {
  UUCS_CHECK_MSG(mean_service > 0, "service mean must be positive");
  return make_queue_trace(mean_interarrival, duration, rng, rate_hz,
                          [&] { return rng.exponential(mean_service); });
}

ExerciseFunction make_exppar(double mean_interarrival, double mean_service,
                             double alpha, double duration, Rng& rng, double rate_hz) {
  UUCS_CHECK_MSG(mean_service > 0, "service mean must be positive");
  UUCS_CHECK_MSG(alpha > 1, "pareto alpha must exceed 1 for a finite mean");
  // Pareto(alpha, xm) has mean alpha*xm/(alpha-1); pick xm for the target mean.
  const double xm = mean_service * (alpha - 1.0) / alpha;
  return make_queue_trace(mean_interarrival, duration, rng, rate_hz,
                          [&] { return rng.pareto(alpha, xm); });
}

ExerciseFunction make_constant(double level, double duration, double rate_hz) {
  UUCS_CHECK_MSG(level >= 0, "constant level must be >= 0");
  const auto n = sample_count_for(duration, rate_hz);
  return ExerciseFunction(rate_hz, std::vector<double>(n, level));
}

ExerciseFunction add_functions(const ExerciseFunction& a, const ExerciseFunction& b) {
  UUCS_CHECK_MSG(a.sample_rate_hz() == b.sample_rate_hz(),
                 "add_functions requires equal sample rates");
  std::vector<double> v(std::max(a.sample_count(), b.sample_count()), 0.0);
  for (std::size_t i = 0; i < v.size(); ++i) {
    const double av = i < a.sample_count() ? a.values()[i] : 0.0;
    const double bv = i < b.sample_count() ? b.values()[i] : 0.0;
    v[i] = av + bv;
  }
  return ExerciseFunction(a.sample_rate_hz(), std::move(v));
}

ExerciseFunction clamp_levels(const ExerciseFunction& f, double cap) {
  UUCS_CHECK_MSG(cap >= 0, "cap must be >= 0");
  std::vector<double> v = f.values();
  for (double& x : v) x = std::min(x, cap);
  return ExerciseFunction(f.sample_rate_hz(), std::move(v));
}

}  // namespace uucs
