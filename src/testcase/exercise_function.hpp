#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace uucs {

class Rng;

/// An exercise function (§2.1): a vector of contention values representing a
/// time series sampled at a fixed rate. Value i applies on the time interval
/// [i/rate, (i+1)/rate) from the start of the testcase; playback holds each
/// sample for one sample period.
class ExerciseFunction {
 public:
  ExerciseFunction() = default;

  /// Builds from explicit samples. rate_hz > 0; all values >= 0.
  ExerciseFunction(double rate_hz, std::vector<double> values);

  double sample_rate_hz() const { return rate_hz_; }
  const std::vector<double>& values() const { return values_; }
  std::size_t sample_count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  /// Total duration in seconds: sample_count / rate.
  double duration() const;

  /// Contention level in effect at time `t` seconds into the run
  /// (sample-and-hold). Returns 0 outside [0, duration()).
  double level_at(double t) const;

  /// Maximum contention value over the whole function (0 if empty).
  double max_level() const;

  /// Mean contention value (0 if empty).
  double mean_level() const;

  /// The last `n` samples at or before time `t` — the paper records "the
  /// last five contention values used in each exercise function at the point
  /// of user feedback" (§2.3). Shorter if t is early in the run.
  std::vector<double> last_values_before(double t, std::size_t n = 5) const;

  /// Allocation-free variant for the simulation hot path: writes up to `n`
  /// samples into `out` and returns how many were written (same values and
  /// order as last_values_before).
  std::size_t last_values_before_into(double t, double* out,
                                      std::size_t n = 5) const;

  /// First time at which the level reaches at least `threshold`;
  /// negative if never reached.
  double first_time_at_level(double threshold) const;

 private:
  double rate_hz_ = 1.0;
  std::vector<double> values_;
};

/// Generators for the paper's exercise-function catalog (Fig 3). All return
/// functions sampled at `rate_hz` (default 1 Hz as in the paper's example).

/// step(x, t, b): contention 0 until time b, then x until time t.
ExerciseFunction make_step(double x, double t, double b, double rate_hz = 1.0);

/// ramp(x, t): linear ramp from 0 at time 0 to x at time t.
ExerciseFunction make_ramp(double x, double t, double rate_hz = 1.0);

/// Sine wave of the given amplitude and period (seconds), offset so levels
/// stay non-negative: level = amp/2 * (1 + sin(2*pi*time/period)).
ExerciseFunction make_sine(double amplitude, double period, double duration,
                           double rate_hz = 1.0);

/// Sawtooth: repeats a linear 0->amplitude ramp every `period` seconds.
ExerciseFunction make_sawtooth(double amplitude, double period, double duration,
                               double rate_hz = 1.0);

/// expexp: contention trace of an M/M/1 queue — Poisson arrivals (mean
/// interarrival `mean_interarrival` s) of exponential-sized jobs (mean
/// service `mean_service` s); the level at time t is the number of jobs in
/// the system, as produced by a single-server queue simulation.
ExerciseFunction make_expexp(double mean_interarrival, double mean_service,
                             double duration, Rng& rng, double rate_hz = 1.0);

/// exppar: M/G/1 variant of expexp with Pareto-distributed job sizes
/// (shape `alpha` > 1, scaled to the requested mean service time).
ExerciseFunction make_exppar(double mean_interarrival, double mean_service,
                             double alpha, double duration, Rng& rng,
                             double rate_hz = 1.0);

/// Constant level for `duration` seconds.
ExerciseFunction make_constant(double level, double duration, double rate_hz = 1.0);

/// Point-wise sum of two functions (max of the durations; missing samples
/// are treated as 0). Both inputs must share the sample rate.
ExerciseFunction add_functions(const ExerciseFunction& a, const ExerciseFunction& b);

/// Clamps every sample to at most `cap` (used by the memory exerciser,
/// which avoids contention > 1 because it instantly causes thrashing, §2.2).
ExerciseFunction clamp_levels(const ExerciseFunction& f, double cap);

}  // namespace uucs
