#include "testcase/resource.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace uucs {

const std::string& resource_name(Resource r) {
  static const std::string kNames[kResourceCount] = {"cpu", "memory", "disk", "network"};
  const auto i = static_cast<std::size_t>(r);
  UUCS_CHECK_MSG(i < kResourceCount, "bad Resource value");
  return kNames[i];
}

Resource parse_resource(const std::string& name) {
  const std::string n = to_lower(trim(name));
  if (n == "cpu") return Resource::kCpu;
  if (n == "memory" || n == "mem") return Resource::kMemory;
  if (n == "disk") return Resource::kDisk;
  if (n == "network" || n == "net") return Resource::kNetwork;
  throw ParseError("unknown resource '" + name + "'");
}

std::string contention_semantics(Resource r) {
  switch (r) {
    case Resource::kCpu:
      return "equivalent number of competing equal-priority busy threads";
    case Resource::kMemory:
      return "fraction of physical memory borrowed into the working set";
    case Resource::kDisk:
      return "equivalent number of competing disk-bandwidth-bound tasks";
    case Resource::kNetwork:
      return "fraction of link bandwidth consumed";
  }
  throw Error("bad Resource value");
}

}  // namespace uucs
