#pragma once

#include <array>
#include <string>

namespace uucs {

/// A borrowable host resource. The paper's controlled study exercises CPU,
/// memory and disk; a network exerciser was built but excluded from the
/// study because its impact extends beyond the client machine (§2.2) — it is
/// modeled here but likewise excluded from the study drivers.
enum class Resource { kCpu = 0, kMemory = 1, kDisk = 2, kNetwork = 3 };

/// Number of Resource values.
inline constexpr std::size_t kResourceCount = 4;

/// The three resources covered by the controlled study, in paper order.
inline constexpr std::array<Resource, 3> kStudyResources = {
    Resource::kCpu, Resource::kMemory, Resource::kDisk};

/// Lowercase canonical name ("cpu", "memory", "disk", "network").
const std::string& resource_name(Resource r);

/// Parses a canonical name (case-insensitive); throws ParseError otherwise.
Resource parse_resource(const std::string& name);

/// Meaning of a contention value for this resource, per §2.2:
///  - CPU: number of competing equal-priority busy threads (can be
///    fractional; a competing busy thread runs at 1/(1+c) of full speed).
///  - Memory: fraction of physical memory whose working set is borrowed.
///  - Disk: number of competing I/O-busy tasks (fractional; an I/O-bound
///    thread gets 1/(1+c) of the disk bandwidth).
///  - Network: fraction of link bandwidth consumed (model only).
std::string contention_semantics(Resource r);

}  // namespace uucs
