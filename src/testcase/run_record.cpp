#include "testcase/run_record.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace uucs {

std::optional<double> RunRecord::level_at_feedback(Resource r) const {
  const auto it = last_levels.find(resource_name(r));
  if (it == last_levels.end() || it->second.empty()) return std::nullopt;
  return it->second.back();
}

void RunRecord::set_last_levels(Resource r, std::vector<double> values) {
  last_levels[resource_name(r)] = std::move(values);
}

std::string RunRecord::meta(const std::string& key, const std::string& dflt) const {
  const auto it = metadata.find(key);
  return it == metadata.end() ? dflt : it->second;
}

double RunRecord::meta_double(const std::string& key, double dflt) const {
  const auto it = metadata.find(key);
  if (it == metadata.end()) return dflt;
  return parse_double(it->second).value_or(dflt);
}

std::string RunRecord::run_outcome() const { return meta("run.outcome", "ok"); }

bool RunRecord::host_fault() const { return run_outcome() != "ok"; }

KvRecord RunRecord::to_record() const {
  KvRecord rec("run");
  rec.set("run_id", run_id);
  rec.set("client_guid", client_guid);
  rec.set("user_id", user_id);
  rec.set("testcase_id", testcase_id);
  rec.set("task", task);
  rec.set_bool("discomforted", discomforted);
  rec.set_double("offset_s", offset_s);
  for (const auto& [name, values] : last_levels) {
    rec.set_doubles("last." + name, values);
  }
  for (const auto& [key, value] : metadata) {
    rec.set("meta." + key, value);
  }
  return rec;
}

RunRecord RunRecord::from_record(const KvRecord& rec) {
  if (rec.type() != "run") {
    throw ParseError("expected [run] record, got [" + rec.type() + "]");
  }
  RunRecord r;
  r.run_id = rec.get("run_id");
  r.client_guid = rec.get_or("client_guid", "");
  r.user_id = rec.get_or("user_id", "");
  r.testcase_id = rec.get("testcase_id");
  r.task = rec.get_or("task", "");
  r.discomforted = rec.get_bool("discomforted");
  r.offset_s = rec.get_double("offset_s");
  for (const auto& key : rec.keys()) {
    if (starts_with(key, "last.")) {
      r.last_levels[key.substr(5)] = rec.get_doubles(key);
    } else if (starts_with(key, "meta.")) {
      r.metadata[key.substr(5)] = rec.get(key);
    }
  }
  return r;
}

void ResultStore::add(RunRecord r) { records_.push_back(std::move(r)); }

std::vector<const RunRecord*> ResultStore::filter(
    const std::string& task, const std::string& testcase_prefix) const {
  std::vector<const RunRecord*> out;
  for (const auto& r : records_) {
    if (!task.empty() && r.task != task) continue;
    if (!testcase_prefix.empty() && !starts_with(r.testcase_id, testcase_prefix)) {
      continue;
    }
    out.push_back(&r);
  }
  return out;
}

std::vector<RunRecord> ResultStore::drain() {
  std::vector<RunRecord> out = std::move(records_);
  records_.clear();
  return out;
}

std::size_t ResultStore::remove_ids(const std::vector<std::string>& ids) {
  const std::unordered_set<std::string> gone(ids.begin(), ids.end());
  const std::size_t before = records_.size();
  records_.erase(std::remove_if(records_.begin(), records_.end(),
                                [&](const RunRecord& r) {
                                  return gone.count(r.run_id) != 0;
                                }),
                 records_.end());
  return before - records_.size();
}

void ResultStore::save(const std::string& path) const {
  std::vector<KvRecord> recs;
  recs.reserve(records_.size());
  for (const auto& r : records_) recs.push_back(r.to_record());
  kv_save_file(path, recs);
}

ResultStore ResultStore::load(const std::string& path) {
  ResultStore store;
  for (const auto& rec : kv_load_file(path)) {
    store.add(RunRecord::from_record(rec));
  }
  return store;
}

void ResultStore::merge(const ResultStore& other) {
  records_.insert(records_.end(), other.records_.begin(), other.records_.end());
}

}  // namespace uucs
