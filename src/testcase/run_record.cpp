#include "testcase/run_record.hpp"

#include <algorithm>
#include <cstdio>
#include <string_view>
#include <unordered_set>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace uucs {

std::optional<double> RunRecord::level_at_feedback(Resource r) const {
  const auto it = last_levels.find(resource_name(r));
  if (it == last_levels.end() || it->second.empty()) return std::nullopt;
  return it->second.back();
}

void RunRecord::set_last_levels(Resource r, std::vector<double> values) {
  last_levels[resource_name(r)] = std::move(values);
}

std::string RunRecord::meta(const std::string& key, const std::string& dflt) const {
  const auto it = metadata.find(key);
  return it == metadata.end() ? dflt : it->second;
}

double RunRecord::meta_double(const std::string& key, double dflt) const {
  const auto it = metadata.find(key);
  if (it == metadata.end()) return dflt;
  return parse_double(it->second).value_or(dflt);
}

std::string RunRecord::run_outcome() const { return meta("run.outcome", "ok"); }

bool RunRecord::host_fault() const { return run_outcome() != "ok"; }

namespace {

// %.17g — the exact format KvRecord::set_double / set_doubles use, so
// serialize_into stays byte-identical to the to_record() path.
void append_double(std::string& out, double v) {
  char buf[40];
  const int n = std::snprintf(buf, sizeof(buf), "%.17g", v);
  out.append(buf, static_cast<std::size_t>(n));
}

void append_line(std::string& out, std::string_view key, std::string_view value) {
  out.append(key);
  out.append(" = ");
  out.append(value);
  out.push_back('\n');
}

}  // namespace

void RunRecord::serialize_into(std::string& out) const {
  out.append("[run]\n");
  append_line(out, "run_id", run_id);
  append_line(out, "client_guid", client_guid);
  append_line(out, "user_id", user_id);
  append_line(out, "testcase_id", testcase_id);
  append_line(out, "task", task);
  append_line(out, "discomforted", discomforted ? "true" : "false");
  out.append("offset_s = ");
  append_double(out, offset_s);
  out.push_back('\n');
  for (const auto& [name, values] : last_levels) {
    out.append("last.");
    out.append(name);
    out.append(" = ");
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i) out.push_back(',');
      append_double(out, values[i]);
    }
    out.push_back('\n');
  }
  for (const auto& [key, value] : metadata) {
    out.append("meta.");
    append_line(out, key, value);
  }
  out.push_back('\n');
}

KvRecord RunRecord::to_record() const {
  KvRecord rec("run");
  rec.set("run_id", run_id);
  rec.set("client_guid", client_guid);
  rec.set("user_id", user_id);
  rec.set("testcase_id", testcase_id);
  rec.set("task", task);
  rec.set_bool("discomforted", discomforted);
  rec.set_double("offset_s", offset_s);
  for (const auto& [name, values] : last_levels) {
    rec.set_doubles("last." + name, values);
  }
  for (const auto& [key, value] : metadata) {
    rec.set("meta." + key, value);
  }
  return rec;
}

namespace {

// One decoder for both representations: KvRecord and KvDoc::Rec expose the
// same positional (size/key_at/value_at) and typed-getter interface, and
// both throw the same ParseError messages.
template <class R>
RunRecord decode_run_impl(const R& rec) {
  if (rec.type() != "run") {
    throw ParseError("expected [run] record, got [" + std::string(rec.type()) +
                     "]");
  }
  RunRecord r;
  r.run_id = rec.get("run_id");
  r.client_guid = rec.get_or("client_guid", "");
  r.user_id = rec.get_or("user_id", "");
  r.testcase_id = rec.get("testcase_id");
  r.task = rec.get_or("task", "");
  r.discomforted = rec.get_bool("discomforted");
  r.offset_s = rec.get_double("offset_s");
  const std::size_t n = rec.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::string_view key = rec.key_at(i);
    if (starts_with(key, "last.")) {
      parse_double_list(rec.value_at(i), key,
                        r.last_levels[std::string(key.substr(5))]);
    } else if (starts_with(key, "meta.")) {
      r.metadata[std::string(key.substr(5))] = std::string(rec.value_at(i));
    }
  }
  return r;
}

}  // namespace

RunRecord RunRecord::from_record(const KvRecord& rec) {
  return decode_run_impl(rec);
}

RunRecord RunRecord::from_kv(const KvDoc::Rec& rec) {
  return decode_run_impl(rec);
}

void ResultStore::add(RunRecord r) { records_.push_back(std::move(r)); }

std::vector<const RunRecord*> ResultStore::filter(
    const std::string& task, const std::string& testcase_prefix) const {
  std::vector<const RunRecord*> out;
  for (const auto& r : records_) {
    if (!task.empty() && r.task != task) continue;
    if (!testcase_prefix.empty() && !starts_with(r.testcase_id, testcase_prefix)) {
      continue;
    }
    out.push_back(&r);
  }
  return out;
}

std::vector<RunRecord> ResultStore::drain() {
  std::vector<RunRecord> out = std::move(records_);
  records_.clear();
  return out;
}

std::size_t ResultStore::remove_ids(const std::vector<std::string>& ids) {
  const std::unordered_set<std::string> gone(ids.begin(), ids.end());
  const std::size_t before = records_.size();
  records_.erase(std::remove_if(records_.begin(), records_.end(),
                                [&](const RunRecord& r) {
                                  return gone.count(r.run_id) != 0;
                                }),
                 records_.end());
  return before - records_.size();
}

void ResultStore::save(const std::string& path) const {
  std::vector<KvRecord> recs;
  recs.reserve(records_.size());
  for (const auto& r : records_) recs.push_back(r.to_record());
  kv_save_file(path, recs);
}

ResultStore ResultStore::load(const std::string& path) {
  ResultStore store;
  for (const auto& rec : kv_load_file(path)) {
    store.add(RunRecord::from_record(rec));
  }
  return store;
}

void ResultStore::merge(const ResultStore& other) {
  records_.insert(records_.end(), other.records_.begin(), other.records_.end());
}

}  // namespace uucs
