#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "testcase/resource.hpp"
#include "util/kvtext.hpp"

namespace uucs {

/// The result of one testcase run (§2.3). A *run* is "the execution of a
/// testcase during a specific task by a specific user". The paper records:
///  - whether the run terminated due to user feedback or testcase exhaustion,
///  - the time offset of the irritation/exhaustion report,
///  - the last five contention values per exercise function at feedback,
/// plus contextual information (client, foreground task, load, processes).
struct RunRecord {
  std::string run_id;       ///< unique per run
  std::string client_guid;  ///< the registered client that produced it
  std::string user_id;      ///< study participant id ("" when anonymous)
  std::string testcase_id;
  std::string task;         ///< foreground context, e.g. "word", "quake"

  bool discomforted = false;   ///< true: user feedback; false: exhausted
  double offset_s = 0.0;       ///< time into the testcase of the report/end

  /// Last <=5 contention values per exercised resource at the feedback
  /// point (keyed by resource name).
  std::map<std::string, std::vector<double>> last_levels;

  /// Free-form context: skill self-ratings, host power index, testcase
  /// shape, etc. Keys use dotted lowercase ("skill.quake", "host.power").
  std::map<std::string, std::string> metadata;

  /// Contention level in force for `r` at the feedback point (the last of
  /// last_levels); nullopt if the resource was not exercised.
  std::optional<double> level_at_feedback(Resource r) const;

  /// Sets last_levels for `r` from an exercise function's recording.
  void set_last_levels(Resource r, std::vector<double> values);

  /// Metadata accessors ("" / default when absent).
  std::string meta(const std::string& key, const std::string& dflt = "") const;
  double meta_double(const std::string& key, double dflt) const;

  /// Typed run outcome recorded by the live executor — "ok", "degraded",
  /// "failed", "hung", or "aborted" (see exerciser/supervisor.hpp). Healthy
  /// runs do not carry the key, so the default is "ok".
  std::string run_outcome() const;

  /// True when the host, not the user, shaped how the run ended or played
  /// (any non-ok outcome). Analysis excludes such records from comfort
  /// estimates: their contention schedule was not delivered faithfully.
  bool host_fault() const;

  KvRecord to_record() const;
  static RunRecord from_record(const KvRecord& rec);

  /// Zero-copy decode from a parsed KvDoc record (the ingest hot path);
  /// field semantics and error messages identical to from_record.
  static RunRecord from_kv(const KvDoc::Rec& rec);

  /// Appends this record in kv-text form to `out`, byte-identical to
  /// kv_serialize({to_record()}) but without materializing the intermediate
  /// KvRecord — the journal-entry and sync-response encoders build their
  /// buffers with this.
  void serialize_into(std::string& out) const;
};

/// Append-only collection of run records with text-file persistence —
/// the client's local result store and the server's master result store.
class ResultStore {
 public:
  void add(RunRecord r);

  /// Pre-sizes the backing vector (the study drivers know their run counts
  /// up front; this avoids growth reallocations during the merge).
  void reserve(std::size_t n) { records_.reserve(n); }

  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  const std::vector<RunRecord>& records() const { return records_; }
  const RunRecord& at(std::size_t i) const { return records_.at(i); }

  /// Records matching a predicate-style filter: empty filter matches all.
  std::vector<const RunRecord*> filter(const std::string& task,
                                       const std::string& testcase_prefix = "") const;

  /// Removes and returns all records (the client's upload-and-clear during
  /// a hot sync).
  std::vector<RunRecord> drain();

  /// Removes every record whose run_id is in `ids`; returns how many were
  /// removed (the client clears exactly the records the server acked).
  std::size_t remove_ids(const std::vector<std::string>& ids);

  void save(const std::string& path) const;
  static ResultStore load(const std::string& path);

  /// Appends all of `other`'s records.
  void merge(const ResultStore& other);

 private:
  std::vector<RunRecord> records_;
};

}  // namespace uucs
