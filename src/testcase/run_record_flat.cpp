#include "testcase/run_record_flat.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace uucs {

void FlatRunRecord::set_levels(Resource r, const double* values,
                               std::size_t n, StringInterner& pool) {
  if (n > kTrailMax) {
    // Rare spill path: intern the canonical name into the record's pool so
    // the key id stays resolvable against the same pool as every other id.
    extra_levels.emplace_back(pool.intern(resource_name(r)),
                              std::vector<double>(values, values + n));
    return;
  }
  LevelTrail& t = levels[static_cast<std::size_t>(r)];
  t.present = true;
  t.n = static_cast<std::uint8_t>(n);
  std::copy(values, values + n, t.v.begin());
}

std::uint32_t FlatRunRecord::meta_value(std::uint32_t key) const {
  std::uint32_t value = StringInterner::kEmptyId;
  bool found = false;
  for (std::uint32_t i = 0; i < meta_count; ++i) {
    if (meta[i].key == key) {
      value = meta[i].value;
      found = true;
    }
  }
  for (const MetaEntry& e : extra_meta) {
    if (e.key == key) {
      value = e.value;
      found = true;
    }
  }
  return found ? value : StringInterner::kEmptyId;
}

RunRecord FlatRunRecord::to_run_record(const StringInterner& pool) const {
  RunRecord r;
  r.run_id = run_id;
  r.client_guid = pool.str(client_guid);
  r.user_id = pool.str(user_id);
  r.testcase_id = pool.str(testcase_id);
  r.task = pool.str(task);
  r.discomforted = discomforted;
  r.offset_s = offset_s;
  for (std::size_t i = 0; i < kResourceCount; ++i) {
    const LevelTrail& t = levels[i];
    if (!t.present) continue;
    r.last_levels[resource_name(static_cast<Resource>(i))] =
        std::vector<double>(t.v.begin(), t.v.begin() + t.n);
  }
  for (const auto& [key, values] : extra_levels) {
    r.last_levels[pool.str(key)] = values;
  }
  for (std::uint32_t i = 0; i < meta_count; ++i) {
    r.metadata[pool.str(meta[i].key)] = pool.str(meta[i].value);
  }
  for (const MetaEntry& e : extra_meta) {
    r.metadata[pool.str(e.key)] = pool.str(e.value);
  }
  return r;
}

FlatRunRecord FlatRunRecord::from_run_record(const RunRecord& r,
                                             StringInterner& pool) {
  FlatRunRecord f;
  f.run_id = r.run_id;
  f.client_guid = pool.intern(r.client_guid);
  f.user_id = pool.intern(r.user_id);
  f.testcase_id = pool.intern(r.testcase_id);
  f.task = pool.intern(r.task);
  f.discomforted = r.discomforted;
  f.offset_s = r.offset_s;
  for (const auto& [name, values] : r.last_levels) {
    bool canonical = false;
    for (std::size_t i = 0; i < kResourceCount; ++i) {
      if (name == resource_name(static_cast<Resource>(i))) {
        f.set_levels(static_cast<Resource>(i), values, pool);
        canonical = true;
        break;
      }
    }
    if (!canonical) f.extra_levels.emplace_back(pool.intern(name), values);
  }
  for (const auto& [key, value] : r.metadata) {
    f.add_meta(pool.intern(key), pool.intern(value));
  }
  return f;
}

}  // namespace uucs
