#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "testcase/resource.hpp"
#include "testcase/run_record.hpp"
#include "util/interner.hpp"

namespace uucs {

/// Flat, allocation-light representation of one run record for the
/// simulation hot path. Where RunRecord carries two `std::map`s of heap
/// strings (~20 node + string allocations per run), a FlatRunRecord holds
/// interned 32-bit ids (util/interner.hpp) and fixed inline arrays:
///
///  - identity fields (client, user, testcase, task) are interner ids,
///  - the per-resource "last five contention values" trail is a fixed
///    array indexed by Resource,
///  - metadata is an inline array of (key id, value id) pairs.
///
/// Only run_id stays a real string (unique per run, fits SSO for the study
/// drivers' formats). Rare shapes the inline layout cannot hold —
/// non-canonical resource names, trails longer than kTrailMax, more than
/// kInlineMeta metadata entries — spill into overflow vectors, so the
/// conversion to/from RunRecord is lossless for *every* record, not just
/// well-formed ones (the fuzz round-trip test exercises adversarial keys).
///
/// Conversion contract: to_run_record() and from_run_record() round-trip,
/// and because RunRecord's maps sort keys on insertion, a converted record
/// serializes byte-identically via RunRecord::to_record() no matter in
/// which order the flat entries were added.
struct FlatRunRecord {
  static constexpr std::size_t kTrailMax = 5;    ///< §2.3: last five values
  static constexpr std::size_t kInlineMeta = 12;

  std::string run_id;
  std::uint32_t client_guid = StringInterner::kEmptyId;
  std::uint32_t user_id = StringInterner::kEmptyId;
  std::uint32_t testcase_id = StringInterner::kEmptyId;
  std::uint32_t task = StringInterner::kEmptyId;

  bool discomforted = false;
  double offset_s = 0.0;

  /// Contention trail for a canonically named resource.
  struct LevelTrail {
    bool present = false;
    std::uint8_t n = 0;
    std::array<double, kTrailMax> v{};
  };
  std::array<LevelTrail, kResourceCount> levels{};

  /// Trails the inline array cannot hold: non-canonical resource names or
  /// more than kTrailMax values. Key is an interner id.
  std::vector<std::pair<std::uint32_t, std::vector<double>>> extra_levels;

  struct MetaEntry {
    std::uint32_t key = StringInterner::kEmptyId;
    std::uint32_t value = StringInterner::kEmptyId;
  };
  std::array<MetaEntry, kInlineMeta> meta{};
  std::uint32_t meta_count = 0;
  std::vector<MetaEntry> extra_meta;  ///< spill past kInlineMeta

  /// Appends a metadata pair (ids from the record's string pool — the
  /// global one by default, a worker-local pool on sharded drivers).
  /// Duplicate keys resolve last-wins on conversion, like map assignment
  /// would.
  void add_meta(std::uint32_t key, std::uint32_t value) {
    if (meta_count < kInlineMeta) {
      meta[meta_count++] = MetaEntry{key, value};
    } else {
      extra_meta.push_back(MetaEntry{key, value});
    }
  }

  /// Stores the contention trail for canonical resource `r`; spills to
  /// extra_levels when longer than kTrailMax (the spill key is interned
  /// into `pool`, which must be the record's pool).
  void set_levels(Resource r, const double* values, std::size_t n,
                  StringInterner& pool = StringInterner::global());
  void set_levels(Resource r, const std::vector<double>& values,
                  StringInterner& pool = StringInterner::global()) {
    set_levels(r, values.data(), values.size(), pool);
  }

  /// Level trail for `r` if present inline (canonical name, <= kTrailMax
  /// values); the common fast path for analysis.
  const LevelTrail& trail(Resource r) const {
    return levels[static_cast<std::size_t>(r)];
  }

  /// Metadata value id for `key`, kEmptyId when absent. Last entry wins,
  /// mirroring conversion semantics. Linear scan — fine at these sizes.
  std::uint32_t meta_value(std::uint32_t key) const;

  /// Lossless expansion into the map-based representation; serializes
  /// byte-identically to a record built directly by simulate_record().
  /// `pool` must be the pool this record's ids were interned against.
  RunRecord to_run_record(
      const StringInterner& pool = StringInterner::global()) const;

  /// Interns every field of `r` (slow path: tests, tools, ingestion).
  static FlatRunRecord from_run_record(
      const RunRecord& r, StringInterner& pool = StringInterner::global());
};

/// Pre-interned (id, description) of one testcase, built once per store so
/// the per-run hot path never calls the interner. Aligned with
/// TestcaseStore::ids() order by the driver that builds it.
struct InternedTestcase {
  std::uint32_t id = StringInterner::kEmptyId;
  std::uint32_t description = StringInterner::kEmptyId;
};

}  // namespace uucs
