#include "testcase/store.hpp"

#include <algorithm>
#include <set>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace uucs {

void TestcaseStore::add(Testcase tc) {
  // Warm the serialization cache here, before the instance is shared:
  // every sync response that hands this testcase out appends the cached
  // bytes instead of re-formatting each sample.
  tc.warm_encoded_record();
  const std::string id = tc.id();
  cases_.insert_or_assign(id, std::move(tc));
}

bool TestcaseStore::contains(const std::string& id) const { return cases_.count(id) != 0; }

const Testcase& TestcaseStore::get(const std::string& id) const {
  const auto it = cases_.find(id);
  if (it == cases_.end()) throw Error("no testcase with id '" + id + "'");
  return it->second;
}

std::vector<std::string> TestcaseStore::ids() const {
  std::vector<std::string> out;
  out.reserve(cases_.size());
  for (const auto& [id, tc] : cases_) out.push_back(id);
  return out;  // map iteration is already sorted
}

std::vector<std::string> TestcaseStore::ids_not_in(
    const std::vector<std::string>& known) const {
  const std::set<std::string> known_set(known.begin(), known.end());
  std::vector<std::string> out;
  for (const auto& [id, tc] : cases_) {
    if (!known_set.count(id)) out.push_back(id);
  }
  return out;
}

std::vector<std::string> TestcaseStore::random_sample(
    std::size_t n, Rng& rng, const std::vector<std::string>& exclude) const {
  std::vector<std::string> pool = ids_not_in(exclude);
  rng.shuffle(pool);
  if (pool.size() > n) pool.resize(n);
  std::sort(pool.begin(), pool.end());
  return pool;
}

std::optional<std::string> TestcaseStore::random_id(Rng& rng) const {
  if (cases_.empty()) return std::nullopt;
  const auto all = ids();
  return all[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(all.size()) - 1))];
}

void TestcaseStore::save(const std::string& path) const {
  std::vector<KvRecord> records;
  records.reserve(cases_.size());
  for (const auto& [id, tc] : cases_) records.push_back(tc.to_record());
  kv_save_file(path, records);
}

TestcaseStore TestcaseStore::load(const std::string& path) {
  TestcaseStore store;
  for (const auto& rec : kv_load_file(path)) {
    store.add(Testcase::from_record(rec));
  }
  return store;
}

void TestcaseStore::merge(const TestcaseStore& other) {
  for (const auto& [id, tc] : other.cases_) cases_.insert_or_assign(id, tc);
}

}  // namespace uucs
