#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "testcase/testcase.hpp"

namespace uucs {

class Rng;

/// A collection of testcases keyed by id, with optional text-file
/// persistence — the paper's client and server both "store testcases ... on
/// permanent storage in text files" (§2). New testcases can be added at any
/// time; the server hands out growing random samples of them (§2).
class TestcaseStore {
 public:
  TestcaseStore() = default;

  /// Adds (or replaces) a testcase.
  void add(Testcase tc);

  /// Number of testcases.
  std::size_t size() const { return cases_.size(); }
  bool empty() const { return cases_.empty(); }

  /// True if `id` is present.
  bool contains(const std::string& id) const;

  /// Fetches by id; throws Error if absent.
  const Testcase& get(const std::string& id) const;

  /// All ids, sorted.
  std::vector<std::string> ids() const;

  /// Ids present here but not in `known` — what a hot sync would transfer.
  std::vector<std::string> ids_not_in(const std::vector<std::string>& known) const;

  /// Uniform random sample (without replacement) of up to `n` ids not in
  /// `exclude`. This implements the server's growing-random-sample handout.
  std::vector<std::string> random_sample(std::size_t n, Rng& rng,
                                         const std::vector<std::string>& exclude = {}) const;

  /// One uniformly random id, or nullopt when empty — the client's local
  /// random choice of the next testcase to run. Shared by UucsClient and
  /// the Internet-study session engine so both consume `rng` identically.
  std::optional<std::string> random_id(Rng& rng) const;

  /// Writes every testcase to `path` as a multi-record text file.
  void save(const std::string& path) const;

  /// Loads a multi-record text file, replacing the current contents.
  static TestcaseStore load(const std::string& path);

  /// Merges all testcases from `other` into this store.
  void merge(const TestcaseStore& other);

 private:
  std::map<std::string, Testcase> cases_;
};

}  // namespace uucs
