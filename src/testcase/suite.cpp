#include "testcase/suite.hpp"

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace uucs {

Testcase make_ramp_testcase(Resource r, double x, double t, double rate_hz) {
  Testcase tc(strprintf("%s-ramp-x%s-t%s", resource_name(r).c_str(),
                        format_compact(x).c_str(), format_compact(t).c_str()));
  tc.set_description(strprintf("ramp(%s,%s) %s", format_compact(x).c_str(),
                               format_compact(t).c_str(), resource_name(r).c_str()));
  tc.set_function(r, make_ramp(x, t, rate_hz));
  return tc;
}

Testcase make_step_testcase(Resource r, double x, double t, double b, double rate_hz) {
  Testcase tc(strprintf("%s-step-x%s-t%s-b%s", resource_name(r).c_str(),
                        format_compact(x).c_str(), format_compact(t).c_str(),
                        format_compact(b).c_str()));
  tc.set_description(strprintf("step(%s,%s,%s) %s", format_compact(x).c_str(),
                               format_compact(t).c_str(), format_compact(b).c_str(),
                               resource_name(r).c_str()));
  tc.set_function(r, make_step(x, t, b, rate_hz));
  return tc;
}

Testcase make_blank_testcase(double duration, const std::string& suffix) {
  std::string id = strprintf("blank-t%s", format_compact(duration).c_str());
  if (!suffix.empty()) id += "-" + suffix;
  Testcase tc(id, duration);
  tc.set_description(strprintf("blank(%s)", format_compact(duration).c_str()));
  return tc;
}

namespace {

double resource_max(const SuiteSpec& spec, Resource r) {
  switch (r) {
    case Resource::kCpu:
      return spec.cpu_max;
    case Resource::kMemory:
      return spec.memory_max;
    case Resource::kDisk:
      return spec.disk_max;
    case Resource::kNetwork:
      return 1.0;
  }
  throw Error("bad resource");
}

}  // namespace

TestcaseStore generate_internet_suite(const SuiteSpec& spec, Rng& rng) {
  TestcaseStore store;
  std::size_t serial = 0;
  auto next_id = [&](const char* kind, Resource r) {
    return strprintf("inet-%s-%s-%04zu", resource_name(r).c_str(), kind, serial++);
  };

  for (Resource r : kStudyResources) {
    const double cap = resource_max(spec, r);

    for (std::size_t i = 0; i < spec.ramps_per_resource; ++i) {
      const double x = rng.uniform(0.1 * cap, cap);
      Testcase tc(next_id("ramp", r));
      tc.set_description(strprintf("ramp(%.2f,%.0f) %s", x, spec.duration,
                                   resource_name(r).c_str()));
      tc.set_function(r, make_ramp(x, spec.duration, spec.rate_hz));
      store.add(std::move(tc));
    }

    for (std::size_t i = 0; i < spec.steps_per_resource; ++i) {
      const double x = rng.uniform(0.1 * cap, cap);
      const double b = rng.uniform(0.0, spec.duration / 2.0);
      Testcase tc(next_id("step", r));
      tc.set_description(strprintf("step(%.2f,%.0f,%.0f) %s", x, spec.duration, b,
                                   resource_name(r).c_str()));
      tc.set_function(r, make_step(x, spec.duration, b, spec.rate_hz));
      store.add(std::move(tc));
    }

    for (std::size_t i = 0; i < spec.sines_per_resource; ++i) {
      const double amp = rng.uniform(0.1 * cap, cap);
      const double period = rng.uniform(10.0, spec.duration);
      Testcase tc(next_id("sin", r));
      tc.set_description(strprintf("sin(amp=%.2f,per=%.0f) %s", amp, period,
                                   resource_name(r).c_str()));
      tc.set_function(r, make_sine(amp, period, spec.duration, spec.rate_hz));
      store.add(std::move(tc));
    }

    for (std::size_t i = 0; i < spec.saws_per_resource; ++i) {
      const double amp = rng.uniform(0.1 * cap, cap);
      const double period = rng.uniform(10.0, spec.duration);
      Testcase tc(next_id("saw", r));
      tc.set_description(strprintf("saw(amp=%.2f,per=%.0f) %s", amp, period,
                                   resource_name(r).c_str()));
      tc.set_function(r, make_sawtooth(amp, period, spec.duration, spec.rate_hz));
      store.add(std::move(tc));
    }

    for (std::size_t i = 0; i < spec.expexp_per_resource; ++i) {
      // Utilization rho in (0.2, 0.95): mean number in system rho/(1-rho).
      const double rho = rng.uniform(0.2, 0.95);
      const double service = rng.uniform(1.0, 10.0);
      const double interarrival = service / rho;
      Testcase tc(next_id("expexp", r));
      tc.set_description(strprintf("expexp(ia=%.1f,svc=%.1f) %s", interarrival,
                                   service, resource_name(r).c_str()));
      auto f = make_expexp(interarrival, service, spec.duration, rng, spec.rate_hz);
      if (r == Resource::kMemory) f = clamp_levels(f, cap);
      tc.set_function(r, std::move(f));
      store.add(std::move(tc));
    }

    for (std::size_t i = 0; i < spec.exppar_per_resource; ++i) {
      const double rho = rng.uniform(0.2, 0.9);
      const double service = rng.uniform(1.0, 10.0);
      const double interarrival = service / rho;
      const double alpha = rng.uniform(1.2, 2.5);
      Testcase tc(next_id("exppar", r));
      tc.set_description(strprintf("exppar(ia=%.1f,svc=%.1f,a=%.2f) %s", interarrival,
                                   service, alpha, resource_name(r).c_str()));
      auto f = make_exppar(interarrival, service, alpha, spec.duration, rng, spec.rate_hz);
      if (r == Resource::kMemory) f = clamp_levels(f, cap);
      tc.set_function(r, std::move(f));
      store.add(std::move(tc));
    }
  }

  for (std::size_t i = 0; i < spec.blanks; ++i) {
    store.add(make_blank_testcase(spec.duration, strprintf("inet-%04zu", i)));
  }
  return store;
}

}  // namespace uucs
