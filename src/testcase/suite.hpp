#pragma once

#include <string>

#include "testcase/store.hpp"

namespace uucs {

class Rng;

/// Builders for common single-resource testcases, named so ids are
/// self-describing (e.g. "cpu-ramp-x2.0-t120").

/// ramp(x, t) on resource `r`.
Testcase make_ramp_testcase(Resource r, double x, double t, double rate_hz = 1.0);

/// step(x, t, b) on resource `r`.
Testcase make_step_testcase(Resource r, double x, double t, double b,
                            double rate_hz = 1.0);

/// Blank testcase of the given duration.
Testcase make_blank_testcase(double duration, const std::string& suffix = "");

/// Parameters controlling the Internet-study suite generator.
struct SuiteSpec {
  /// Duration of every generated testcase in seconds.
  double duration = 120.0;
  double rate_hz = 1.0;
  /// Per-exercise-function-type counts. The paper's Internet suite holds
  /// over 2000 testcases, "predominantly from the M/M/1 and M/G/1 models"
  /// (§2.1); the defaults below total 2080 with that skew.
  std::size_t steps_per_resource = 60;
  std::size_t ramps_per_resource = 60;
  std::size_t sines_per_resource = 30;
  std::size_t saws_per_resource = 30;
  std::size_t expexp_per_resource = 280;
  std::size_t exppar_per_resource = 240;
  std::size_t blanks = 40;
  /// Contention-level upper bounds per resource (memory capped at 1.0:
  /// higher causes immediate thrashing, §2.2).
  double cpu_max = 10.0;
  double memory_max = 1.0;
  double disk_max = 7.0;
};

/// Generates the Internet-wide study suite: a large randomized catalog of
/// single-resource testcases across all six exercise-function types.
/// Deterministic in `rng`.
TestcaseStore generate_internet_suite(const SuiteSpec& spec, Rng& rng);

}  // namespace uucs
