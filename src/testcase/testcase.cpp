#include "testcase/testcase.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace uucs {

Testcase::Testcase(std::string id, double blank_duration)
    : id_(std::move(id)), blank_duration_(blank_duration) {
  UUCS_CHECK_MSG(!id_.empty(), "testcase id must be non-empty");
  UUCS_CHECK_MSG(blank_duration_ >= 0, "blank duration must be >= 0");
}

void Testcase::set_function(Resource r, ExerciseFunction f) {
  UUCS_CHECK_MSG(!f.empty(), "cannot attach an empty exercise function");
  functions_[r] = std::move(f);
  encoded_record_.clear();  // cache no longer matches
}

const ExerciseFunction* Testcase::function(Resource r) const {
  const auto it = functions_.find(r);
  return it == functions_.end() ? nullptr : &it->second;
}

std::vector<Resource> Testcase::resources() const {
  std::vector<Resource> out;
  out.reserve(functions_.size());
  for (const auto& [r, f] : functions_) out.push_back(r);
  return out;
}

double Testcase::duration() const {
  double d = blank_duration_;
  for (const auto& [r, f] : functions_) d = std::max(d, f.duration());
  return d;
}

double Testcase::max_level(Resource r) const {
  const auto* f = function(r);
  return f ? f->max_level() : 0.0;
}

KvRecord Testcase::to_record() const {
  KvRecord rec("testcase");
  rec.set("id", id_);
  if (!description_.empty()) rec.set("description", description_);
  rec.set_double("blank_duration", blank_duration_);
  for (const auto& [r, f] : functions_) {
    const std::string& name = resource_name(r);
    rec.set_double(name + ".rate", f.sample_rate_hz());
    rec.set_doubles(name + ".values", f.values());
  }
  return rec;
}

void Testcase::serialize_record_into(std::string& out) const {
  if (!encoded_record_.empty()) {
    out += encoded_record_;
    return;
  }
  kv_serialize_record_into(to_record(), out);
}

void Testcase::warm_encoded_record() {
  encoded_record_.clear();
  kv_serialize_record_into(to_record(), encoded_record_);
}

Testcase Testcase::from_record(const KvRecord& rec) {
  if (rec.type() != "testcase") {
    throw ParseError("expected [testcase] record, got [" + rec.type() + "]");
  }
  Testcase tc(rec.get("id"), rec.get_double_or("blank_duration", 0.0));
  tc.set_description(rec.get_or("description", ""));
  for (std::size_t i = 0; i < kResourceCount; ++i) {
    const auto r = static_cast<Resource>(i);
    const std::string& name = resource_name(r);
    if (!rec.has(name + ".values")) continue;
    const double rate = rec.get_double(name + ".rate");
    if (rate <= 0) throw ParseError("testcase " + tc.id() + ": bad sample rate");
    auto values = rec.get_doubles(name + ".values");
    if (values.empty()) throw ParseError("testcase " + tc.id() + ": empty function");
    for (double v : values) {
      if (v < 0) throw ParseError("testcase " + tc.id() + ": negative contention");
    }
    tc.set_function(r, ExerciseFunction(rate, std::move(values)));
  }
  return tc;
}

}  // namespace uucs
