#pragma once

#include <map>
#include <optional>
#include <string>

#include "testcase/exercise_function.hpp"
#include "testcase/resource.hpp"
#include "util/kvtext.hpp"

namespace uucs {

/// A testcase (§2.1): a unique identifier, a sample rate, and one exercise
/// function per resource that will be borrowed during the run. A testcase
/// with no exercise functions is *blank* — the paper uses blanks to measure
/// the background (noise-floor) level of discomfort.
class Testcase {
 public:
  Testcase() = default;

  /// Creates a testcase. `id` must be non-empty. For a blank testcase, pass
  /// a positive `blank_duration` so the run still has a length.
  explicit Testcase(std::string id, double blank_duration = 0.0);

  const std::string& id() const { return id_; }

  /// Free-form description, e.g. "ramp(2.0,120) cpu".
  const std::string& description() const { return description_; }
  void set_description(std::string d) {
    description_ = std::move(d);
    encoded_record_.clear();  // cache no longer matches
  }

  /// Attaches the exercise function for `r`, replacing any existing one.
  void set_function(Resource r, ExerciseFunction f);

  /// The function for `r`, or nullptr if the testcase does not exercise it.
  const ExerciseFunction* function(Resource r) const;

  /// Resources this testcase exercises, in enum order.
  std::vector<Resource> resources() const;

  /// True when no resource is exercised.
  bool is_blank() const { return functions_.empty(); }

  /// Run length: the longest function's duration, or the blank duration.
  double duration() const;

  /// Maximum contention over all functions for `r` (0 when absent).
  double max_level(Resource r) const;

  /// Serializes to one [testcase] record: id, description, duration, and
  /// per-resource "<name>.rate" / "<name>.values" keys.
  KvRecord to_record() const;

  /// Appends the kv-text serialization of to_record() to `out`. When
  /// warm_encoded_record() has been called (TestcaseStore::add does), this
  /// appends the cached bytes instead of re-formatting every "%.17g" sample
  /// — the dominant cost of a sync response that hands out testcases. Cold
  /// instances encode on the fly; either way the bytes are identical to
  /// kv_serialize_record_into(to_record(), out).
  void serialize_record_into(std::string& out) const;

  /// Builds the serialization cache (copies carry it along). Not
  /// thread-safe against concurrent readers: call before the testcase is
  /// shared, as TestcaseStore::add does.
  void warm_encoded_record();

  /// Parses a [testcase] record; throws ParseError on malformed input.
  static Testcase from_record(const KvRecord& rec);

 private:
  std::string id_;
  std::string description_;
  double blank_duration_ = 0.0;
  std::map<Resource, ExerciseFunction> functions_;
  std::string encoded_record_;  ///< warm serialization cache ("" = cold)
};

}  // namespace uucs
