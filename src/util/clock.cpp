#include "util/clock.hpp"

#include <thread>

#include "util/error.hpp"

namespace uucs {

RealClock::RealClock() : epoch_(std::chrono::steady_clock::now()) {}

double RealClock::now() const {
  const auto d = std::chrono::steady_clock::now() - epoch_;
  return std::chrono::duration<double>(d).count();
}

void RealClock::sleep(double seconds) {
  if (seconds <= 0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

void VirtualClock::advance(double seconds) {
  UUCS_CHECK_MSG(seconds >= 0, "cannot move a clock backwards");
  now_ += seconds;
}

void VirtualClock::advance_to(double t) {
  UUCS_CHECK_MSG(t >= now_, "cannot move a clock backwards");
  now_ = t;
}

}  // namespace uucs
