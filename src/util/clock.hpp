#pragma once

#include <chrono>
#include <cstdint>
#include <memory>

namespace uucs {

/// Abstract monotonic clock used by the client, the exercisers and the
/// simulation. Time is expressed in seconds since an arbitrary epoch.
///
/// Two implementations exist: RealClock (wraps std::chrono::steady_clock,
/// used when exercising a live machine) and VirtualClock (manually advanced,
/// used by the discrete-event simulator so multi-hour studies run in
/// milliseconds).
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in seconds.
  virtual double now() const = 0;

  /// Blocks (or, for a virtual clock, advances time) for `seconds`.
  virtual void sleep(double seconds) = 0;
};

/// Wall-clock implementation backed by std::chrono::steady_clock.
class RealClock final : public Clock {
 public:
  RealClock();
  double now() const override;
  void sleep(double seconds) override;

 private:
  std::chrono::steady_clock::time_point epoch_;
};

/// Manually advanced clock for simulation and deterministic tests.
/// sleep() advances time instantly; advance() moves time forward directly.
class VirtualClock final : public Clock {
 public:
  explicit VirtualClock(double start = 0.0) : now_(start) {}

  double now() const override { return now_; }
  void sleep(double seconds) override { advance(seconds); }

  /// Moves the clock forward by `seconds` (must be >= 0).
  void advance(double seconds);

  /// Jumps the clock to the absolute time `t` (must be >= now()).
  void advance_to(double t);

  /// Rewinds the clock to `start` unconditionally — the one sanctioned
  /// backwards jump, used when a simulation context is recycled for the
  /// next job (sim::Simulation::reset). Never call this while events are
  /// pending against the old timeline.
  void reset(double start) { now_ = start; }

 private:
  double now_;
};

}  // namespace uucs
