#include "util/crc32.hpp"

#include <array>
#include <cstddef>
#include <cstring>

#if defined(__aarch64__) && defined(__linux__)
#include <sys/auxv.h>
#ifndef HWCAP_CRC32
#define HWCAP_CRC32 (1 << 7)
#endif
#endif

namespace uucs {

namespace {

// 8 x 256 slicing tables for the reflected IEEE polynomial. Table 0 is the
// classic Sarwate table; table k satisfies
//   tab[k][b] = (tab[k-1][b] >> 8) ^ tab[0][tab[k-1][b] & 0xff]
// so eight bytes can be folded per step.
struct Slice8Tables {
  std::array<std::array<std::uint32_t, 256>, 8> t;

  Slice8Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c >> 1) ^ (0xedb88320u & (0u - (c & 1u)));
      t[0][i] = c;
    }
    for (std::size_t k = 1; k < 8; ++k) {
      for (std::uint32_t i = 0; i < 256; ++i) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xffu];
      }
    }
  }
};

const Slice8Tables& tables() {
  static const Slice8Tables tabs;
  return tabs;
}

std::uint32_t update_bytewise(std::uint32_t crc, const unsigned char* p,
                              std::size_t n) {
  const auto& t0 = tables().t[0];
  for (std::size_t i = 0; i < n; ++i) {
    crc = t0[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc;
}

#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
#define UUCS_CRC32_SLICE8 1
std::uint32_t update_slice8(std::uint32_t crc, const unsigned char* p,
                            std::size_t n) {
  const auto& t = tables().t;
  // Align to 8 bytes so the memcpy loads below read whole words.
  while (n > 0 && (reinterpret_cast<std::uintptr_t>(p) & 7u) != 0) {
    crc = t[0][(crc ^ *p++) & 0xffu] ^ (crc >> 8);
    --n;
  }
  while (n >= 8) {
    std::uint64_t w;
    std::memcpy(&w, p, 8);
    w ^= crc;
    crc = t[7][w & 0xffu] ^ t[6][(w >> 8) & 0xffu] ^ t[5][(w >> 16) & 0xffu] ^
          t[4][(w >> 24) & 0xffu] ^ t[3][(w >> 32) & 0xffu] ^
          t[2][(w >> 40) & 0xffu] ^ t[1][(w >> 48) & 0xffu] ^
          t[0][(w >> 56) & 0xffu];
    p += 8;
    n -= 8;
  }
  return update_bytewise(crc, p, n);
}
#endif

#if defined(__aarch64__) && defined(__linux__)
#define UUCS_CRC32_ARMV8 1
// The ARMv8 CRC32 extension implements this exact (IEEE 802.3) polynomial,
// unlike x86 SSE4.2 which is CRC-32C only.
__attribute__((target("+crc"))) std::uint32_t update_armv8(
    std::uint32_t crc, const unsigned char* p, std::size_t n) {
  while (n > 0 && (reinterpret_cast<std::uintptr_t>(p) & 7u) != 0) {
    crc = __builtin_aarch64_crc32b(crc, *p++);
    --n;
  }
  while (n >= 8) {
    std::uint64_t w;
    std::memcpy(&w, p, 8);
    crc = __builtin_aarch64_crc32x(crc, w);
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = __builtin_aarch64_crc32b(crc, *p++);
    --n;
  }
  return crc;
}
#endif

using UpdateFn = std::uint32_t (*)(std::uint32_t, const unsigned char*,
                                   std::size_t);

struct Dispatch {
  UpdateFn fn;
  const char* name;
};

Dispatch pick_impl() {
#if defined(UUCS_CRC32_ARMV8)
  if (getauxval(AT_HWCAP) & HWCAP_CRC32) {
    return {&update_armv8, "armv8-crc"};
  }
#endif
#if defined(UUCS_CRC32_SLICE8)
  return {&update_slice8, "slice8"};
#else
  return {&update_bytewise, "bytewise"};
#endif
}

const Dispatch& impl() {
  static const Dispatch d = pick_impl();
  return d;
}

}  // namespace

std::uint32_t crc32_update(std::uint32_t state, std::string_view data) {
  return impl().fn(state,
                   reinterpret_cast<const unsigned char*>(data.data()),
                   data.size());
}

std::uint32_t crc32(std::string_view data) {
  return crc32_final(crc32_update(crc32_init(), data));
}

std::uint32_t crc32_bytewise(std::string_view data) {
  return crc32_final(
      update_bytewise(crc32_init(),
                      reinterpret_cast<const unsigned char*>(data.data()),
                      data.size()));
}

const char* crc32_impl_name() { return impl().name; }

}  // namespace uucs
