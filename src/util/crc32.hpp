#pragma once

#include <cstdint>
#include <string_view>

namespace uucs {

/// CRC-32 (IEEE 802.3: polynomial 0xEDB88320 reflected, init and xor-out
/// 0xFFFFFFFF) of `data`. This is the checksum the journal's on-disk frames
/// carry, shared with every framing consumer (Journal, FrameReader tooling,
/// the golden byte-identity tests) so there is exactly one implementation of
/// the polynomial in the tree.
///
/// Dispatches once at first use to the fastest implementation the host
/// supports: the ARMv8 CRC32 instructions where present (they implement this
/// exact polynomial), otherwise a slice-by-8 table walk that processes eight
/// bytes per step. The x86 SSE4.2 `crc32` instruction is deliberately NOT
/// used: it hard-wires the Castagnoli polynomial (CRC-32C), and swapping
/// polynomials would silently change every journal frame on disk.
std::uint32_t crc32(std::string_view data);

/// Incremental form: feed chunks through a running state. Start from
/// crc32_init(), finish with crc32_final(). crc32(x) ==
/// crc32_final(crc32_update(crc32_init(), x)).
constexpr std::uint32_t crc32_init() { return 0xffffffffu; }
std::uint32_t crc32_update(std::uint32_t state, std::string_view data);
constexpr std::uint32_t crc32_final(std::uint32_t state) {
  return state ^ 0xffffffffu;
}

/// The original one-byte-per-step table loop, kept as the reference the
/// dispatched implementation is differentially tested against and the
/// baseline the bench_micro speedup guard (>=4x) measures from.
std::uint32_t crc32_bytewise(std::string_view data);

/// Name of the implementation crc32() dispatched to ("armv8-crc" or
/// "slice8"); surfaced by bench_micro labels and the perf-smoke log.
const char* crc32_impl_name();

}  // namespace uucs
