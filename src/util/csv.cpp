#include "util/csv.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace uucs {

namespace {

bool needs_quoting(const std::string& s) {
  return s.find_first_of(",\"\n\r") != std::string::npos;
}

std::string escape(const std::string& s) {
  if (!needs_quoting(s)) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void Csv::add_row(std::vector<std::string> fields) { rows_.push_back(std::move(fields)); }

void Csv::add_row_doubles(const std::vector<double>& values) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  for (double v : values) fields.push_back(strprintf("%.10g", v));
  add_row(std::move(fields));
}

std::string Csv::serialize() const {
  std::ostringstream os;
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << escape(row[i]);
    }
    os << '\n';
  }
  return os.str();
}

Csv Csv::parse(const std::string& text) {
  Csv out;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool row_has_data = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        row_has_data = true;
        break;
      case ',':
        row.push_back(std::move(field));
        field.clear();
        row_has_data = true;
        break;
      case '\r':
        break;
      case '\n':
        if (row_has_data || !field.empty()) {
          row.push_back(std::move(field));
          field.clear();
          out.rows_.push_back(std::move(row));
          row.clear();
          row_has_data = false;
        }
        break;
      default:
        field += c;
        row_has_data = true;
        break;
    }
  }
  if (in_quotes) throw ParseError("csv: unterminated quoted field");
  if (row_has_data || !field.empty()) {
    row.push_back(std::move(field));
    out.rows_.push_back(std::move(row));
  }
  return out;
}

void Csv::save(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f) throw SystemError("cannot write " + path);
  f << serialize();
  if (!f) throw SystemError("write failed for " + path);
}

Csv Csv::load(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw SystemError("cannot open " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  return parse(buf.str());
}

}  // namespace uucs
