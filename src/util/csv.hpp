#pragma once

#include <string>
#include <vector>

namespace uucs {

/// RFC-4180-style CSV writer/reader used by the analysis tools to export
/// CDFs and metric tables for external plotting.
///
/// Fields containing commas, quotes or newlines are quoted; embedded quotes
/// are doubled. Rows may have differing widths.
class Csv {
 public:
  /// Appends a row of raw (unescaped) fields.
  void add_row(std::vector<std::string> fields);

  /// Convenience: appends a row of doubles formatted with %.10g.
  void add_row_doubles(const std::vector<double>& values);

  std::size_t row_count() const { return rows_.size(); }
  const std::vector<std::string>& row(std::size_t i) const { return rows_.at(i); }

  /// Serializes all rows.
  std::string serialize() const;

  /// Parses CSV text; throws ParseError on unbalanced quotes.
  static Csv parse(const std::string& text);

  /// Writes serialize() to `path`.
  void save(const std::string& path) const;

  /// Loads and parses `path`.
  static Csv load(const std::string& path);

 private:
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace uucs
