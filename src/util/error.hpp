#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace uucs {

/// Base class for all errors thrown by the UUCS library.
///
/// Every throwing site goes through Error (or a subclass) so callers can
/// catch one type at API boundaries. The message always carries enough
/// context to identify the failing subsystem.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Error parsing a testcase, result, or config text file.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error("parse error: " + what) {}
};

/// Error from the OS (file I/O, sockets, ...). Carries errno text.
class SystemError : public Error {
 public:
  explicit SystemError(const std::string& what) : Error("system error: " + what) {}
};

/// A configuration value is out of range or internally inconsistent.
/// Thrown at construction time (e.g. ExerciserConfig::validate) so bad
/// knobs fail loudly before any resource is touched.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error("config error: " + what) {}
};

/// Error in the wire protocol between client and server.
class ProtocolError : public Error {
 public:
  explicit ProtocolError(const std::string& what) : Error("protocol error: " + what) {}
};

/// The server answered with a typed busy/degraded rejection instead of
/// serving the request (overload shedding or a read-degraded journal).
/// Unlike a plain [error] reply this IS retryable — the request was fine,
/// the server just cannot take it right now — and it may carry a server
/// hint for how long to back off (0 = none given).
class ServerBusyError : public Error {
 public:
  ServerBusyError(const std::string& what, std::string kind,
                  std::uint64_t retry_after_ms)
      : Error("server busy: " + what),
        kind_(std::move(kind)),
        retry_after_ms_(retry_after_ms) {}

  /// Shedding class: "overload" (admission control) or "degraded"
  /// (journal disk failed; writes rejected until recovery).
  const std::string& kind() const { return kind_; }
  std::uint64_t retry_after_ms() const { return retry_after_ms_; }

 private:
  std::string kind_;
  std::uint64_t retry_after_ms_ = 0;
};

/// A deadline expired on a blocking operation (connect, read, write).
/// Subclasses SystemError so existing catch sites treat it as an I/O
/// failure; retry layers catch it specifically to distinguish "slow or
/// hung peer" from "peer rejected us".
class TimeoutError : public SystemError {
 public:
  explicit TimeoutError(const std::string& what) : SystemError("timeout: " + what) {}
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* expr, const char* file, int line,
                                      const std::string& msg);
}  // namespace detail

/// Internal invariant check: throws uucs::Error with location info when
/// `expr` is false. Used for conditions that indicate a library bug or a
/// violated precondition, not for routine error handling.
#define UUCS_CHECK(expr)                                                     \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::uucs::detail::throw_check_failure(#expr, __FILE__, __LINE__, "");    \
    }                                                                        \
  } while (0)

/// Like UUCS_CHECK but with an extra message (any string expression).
#define UUCS_CHECK_MSG(expr, msg)                                            \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::uucs::detail::throw_check_failure(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                        \
  } while (0)

}  // namespace uucs
