#include "util/exact_sum.hpp"

#include <cmath>
#include <cstring>

#include "util/error.hpp"

namespace uucs {

namespace {

// Each chunk may accumulate this many raw 32-bit contributions before a
// carry-propagation pass is forced; keeps |chunk| < 2^62 so that merging
// two accumulators can never overflow int64.
constexpr std::uint32_t kNormalizeEvery = 1u << 30;

}  // namespace

void ExactSum::add(double x) {
  UUCS_CHECK_MSG(std::isfinite(x), "ExactSum requires finite inputs");
  ++count_;
  if (x != 0.0) {
    std::uint64_t bits;
    std::memcpy(&bits, &x, sizeof(bits));
    const std::int64_t sign = (bits >> 63) ? -1 : 1;
    std::uint64_t mant = bits & ((std::uint64_t{1} << 52) - 1);
    const int biased_exp = static_cast<int>((bits >> 52) & 0x7ff);
    int exp2;  // value = sign * mant * 2^exp2
    if (biased_exp == 0) {
      exp2 = -kBias;  // subnormal
    } else {
      mant |= std::uint64_t{1} << 52;
      exp2 = biased_exp - 1 - kBias;
    }
    // Split mant * 2^exp2 across the 32-bit windows it straddles.
    const int e = exp2 + kBias;  // bit position of the mantissa's LSB, >= 0
    const std::size_t q = static_cast<std::size_t>(e) / 32;
    const unsigned r = static_cast<unsigned>(e) % 32;
    const unsigned __int128 shifted = static_cast<unsigned __int128>(mant) << r;
    chunks_[q] += sign * static_cast<std::int64_t>(
                             static_cast<std::uint64_t>(shifted) & 0xffffffffu);
    chunks_[q + 1] += sign * static_cast<std::int64_t>(
                               static_cast<std::uint64_t>(shifted >> 32) &
                               0xffffffffu);
    chunks_[q + 2] +=
        sign * static_cast<std::int64_t>(
                   static_cast<std::uint64_t>(shifted >> 64) & 0xffffffffu);
  }
  if (++adds_since_normalize_ >= kNormalizeEvery) normalize();
}

void ExactSum::merge(const ExactSum& other) {
  for (std::size_t i = 0; i < kChunks; ++i) chunks_[i] += other.chunks_[i];
  count_ += other.count_;
  // Both sides keep |chunk| < 2^62 between normalizations, so the sums
  // above cannot have overflowed; normalize to restore that invariant.
  normalize();
}

void ExactSum::normalize() {
  // Propagate carries so every chunk lands in [-2^31, 2^31). The symmetric
  // range keeps the representation signed without a separate sign word.
  std::int64_t carry = 0;
  for (std::size_t i = 0; i < kChunks; ++i) {
    const std::int64_t v = chunks_[i] + carry;
    carry = (v + (std::int64_t{1} << 31)) >> 32;  // floor((v + 2^31) / 2^32)
    chunks_[i] = v - (carry << 32);
  }
  UUCS_CHECK_MSG(carry == 0, "ExactSum overflowed the double range");
  adds_since_normalize_ = 0;
}

double ExactSum::round() const {
  // Work on a normalized copy (round() must stay const and deterministic).
  ExactSum tmp = *this;
  tmp.normalize();
  std::size_t h = kChunks;
  while (h > 0 && tmp.chunks_[h - 1] == 0) --h;
  if (h == 0) return 0.0;
  // A 4-chunk window (>= 96 significant bits below the leading chunk)
  // dwarfs the ignored tail (< 2^31 * 2^32/2^127 relative), so the result
  // is within 1 ulp of the exact total — and a pure function of it.
  const std::size_t base = h >= 4 ? h - 4 : 0;
  __int128 window = 0;
  for (std::size_t i = h; i-- > base;) {
    window = (window << 32) + tmp.chunks_[i];
  }
  return std::ldexp(static_cast<double>(window),
                    static_cast<int>(base) * 32 - kBias);
}

}  // namespace uucs
