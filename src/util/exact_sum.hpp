#pragma once

#include <array>
#include <cstdint>

namespace uucs {

/// Exact (error-free) summation of doubles, after Neal's superaccumulator:
/// the running total is held as a fixed-point integer spanning the entire
/// finite-double range, split into 32-bit windows stored in 64-bit chunks.
/// Adding a double decomposes its mantissa into at most three chunk
/// contributions — pure integer arithmetic, so addition is *associative and
/// commutative*: any grouping or ordering of the same multiset of inputs
/// yields the same exact total, and merging two accumulators is chunkwise
/// integer addition.
///
/// This is what makes streaming aggregation order-independent (DESIGN.md
/// §10): per-worker accumulators can absorb runs in whatever order the
/// scheduler produces, and the merged total — and therefore round() — is
/// bit-identical to a sequential in-memory pass over the same runs.
///
/// round() converts the exact total back to the nearest representable
/// double (error < 1 ulp, and a pure function of the exact total).
///
/// Inputs must be finite; infinities/NaNs throw.
class ExactSum {
 public:
  void add(double x);

  /// Chunkwise addition: *this becomes the exact sum of both input streams.
  void merge(const ExactSum& other);

  /// The exact total as a double (deterministic; error < 1 ulp).
  double round() const;

  /// Number of add() calls folded in (merge() accumulates counts too).
  std::uint64_t count() const { return count_; }

 private:
  // value = sum_i chunks_[i] * 2^(32*i - 1074). Finite doubles need
  // ceil(2098 / 32) = 66 windows; two extra chunks absorb carries from
  // astronomically long sums without overflow checks on every add.
  static constexpr std::size_t kChunks = 68;
  static constexpr int kBias = 1074;  ///< exponent of chunk 0's unit, negated

  void normalize();

  std::array<std::int64_t, kChunks> chunks_{};
  std::uint64_t count_ = 0;
  std::uint32_t adds_since_normalize_ = 0;
};

}  // namespace uucs
