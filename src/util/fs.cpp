#include "util/fs.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace fs = std::filesystem;

namespace uucs {

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw SystemError("cannot open " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  return buf.str();
}

void write_file(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) throw SystemError("cannot write " + tmp);
    f << content;
    if (!f) throw SystemError("write failed for " + tmp);
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) throw SystemError("rename " + tmp + " -> " + path + ": " + ec.message());
}

bool path_exists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec);
}

void make_dirs(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) throw SystemError("mkdir " + path + ": " + ec.message());
}

std::vector<std::string> list_files(const std::string& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file()) out.push_back(entry.path().filename().string());
  }
  if (ec) throw SystemError("list " + dir + ": " + ec.message());
  std::sort(out.begin(), out.end());
  return out;
}

TempDir::TempDir(const std::string& prefix) {
  const char* base = std::getenv("TMPDIR");
  std::string templ = std::string(base && *base ? base : "/tmp") + "/" + prefix + ".XXXXXX";
  std::vector<char> buf(templ.begin(), templ.end());
  buf.push_back('\0');
  if (!mkdtemp(buf.data())) {
    throw SystemError("mkdtemp " + templ + ": " + std::strerror(errno));
  }
  path_ = buf.data();
}

TempDir::~TempDir() {
  std::error_code ec;
  fs::remove_all(path_, ec);  // best-effort; never throw from a destructor
}

}  // namespace uucs
