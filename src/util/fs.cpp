#include "util/fs.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace fs = std::filesystem;

namespace uucs {

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw SystemError("cannot open " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  return buf.str();
}

void fsync_parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd =
      ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;  // best-effort: some filesystems refuse directory fds
  ::fsync(fd);
  ::close(fd);
}

void write_file(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    throw SystemError("cannot write " + tmp + ": " + std::strerror(errno));
  }
  try {
    std::size_t off = 0;
    while (off < content.size()) {
      const ssize_t n = ::write(fd, content.data() + off, content.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw SystemError("write " + tmp + ": " + std::strerror(errno));
      }
      off += static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0) {
      throw SystemError("fsync " + tmp + ": " + std::strerror(errno));
    }
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    throw SystemError("rename " + tmp + " -> " + path + ": " + std::strerror(err));
  }
  fsync_parent_dir(path);
}

bool path_exists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec);
}

void make_dirs(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) throw SystemError("mkdir " + path + ": " + ec.message());
}

std::vector<std::string> list_files(const std::string& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file()) out.push_back(entry.path().filename().string());
  }
  if (ec) throw SystemError("list " + dir + ": " + ec.message());
  std::sort(out.begin(), out.end());
  return out;
}

TempDir::TempDir(const std::string& prefix) {
  const char* base = std::getenv("TMPDIR");
  std::string templ = std::string(base && *base ? base : "/tmp") + "/" + prefix + ".XXXXXX";
  std::vector<char> buf(templ.begin(), templ.end());
  buf.push_back('\0');
  if (!mkdtemp(buf.data())) {
    throw SystemError("mkdtemp " + templ + ": " + std::strerror(errno));
  }
  path_ = buf.data();
}

TempDir::~TempDir() {
  std::error_code ec;
  fs::remove_all(path_, ec);  // best-effort; never throw from a destructor
}

}  // namespace uucs
