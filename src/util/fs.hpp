#pragma once

#include <string>
#include <vector>

namespace uucs {

/// Reads the whole file into a string; throws SystemError if unreadable.
std::string read_file(const std::string& path);

/// Atomically and durably replaces `path` with `content`: writes a temp
/// file, fsyncs it, renames it over `path`, and fsyncs the parent
/// directory. A crash or power loss at any point leaves either the old or
/// the new content intact — never a truncated or torn file.
void write_file(const std::string& path, const std::string& content);

/// fsyncs the directory containing `path` so a rename inside it is
/// durable. Best-effort: silently ignored on filesystems that refuse
/// directory fds.
void fsync_parent_dir(const std::string& path);

/// True if `path` exists (any file type).
bool path_exists(const std::string& path);

/// Creates `path` and missing parents; no-op if it already exists.
void make_dirs(const std::string& path);

/// Names of regular files directly inside `dir` (no recursion), sorted.
std::vector<std::string> list_files(const std::string& dir);

/// RAII temporary directory under $TMPDIR (or /tmp), removed recursively on
/// destruction. Used heavily by the tests and the on-disk store tests.
class TempDir {
 public:
  /// Creates a unique directory with the given name prefix.
  explicit TempDir(const std::string& prefix = "uucs");
  ~TempDir();

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::string& path() const { return path_; }

  /// Joins a relative name onto the temp dir path.
  std::string file(const std::string& name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

}  // namespace uucs
