#include "util/guid.hpp"

#include <cctype>
#include <cstdio>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace uucs {

Guid Guid::generate(Rng& rng) {
  Guid g;
  g.hi = rng();
  g.lo = rng();
  if (g.is_nil()) g.lo = 1;  // nil is reserved for "unregistered"
  return g;
}

Guid Guid::parse(const std::string& text) {
  std::string hex;
  hex.reserve(32);
  for (char c : text) {
    if (c == '-') continue;
    if (!std::isxdigit(static_cast<unsigned char>(c))) {
      throw ParseError("bad guid: " + text);
    }
    hex += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (hex.size() != 32) throw ParseError("bad guid length: " + text);
  auto nibble = [](char c) -> std::uint64_t {
    return static_cast<std::uint64_t>(c <= '9' ? c - '0' : c - 'a' + 10);
  };
  Guid g;
  for (int i = 0; i < 16; ++i) g.hi = (g.hi << 4) | nibble(hex[static_cast<std::size_t>(i)]);
  for (int i = 16; i < 32; ++i) g.lo = (g.lo << 4) | nibble(hex[static_cast<std::size_t>(i)]);
  return g;
}

std::string Guid::to_string() const {
  std::string out;
  append_to(out);
  return out;
}

void Guid::append_to(std::string& out) const {
  char buf[40];
  const int n =
      std::snprintf(buf, sizeof(buf), "%08llx-%04llx-%04llx-%04llx-%012llx",
                    static_cast<unsigned long long>(hi >> 32),
                    static_cast<unsigned long long>((hi >> 16) & 0xffff),
                    static_cast<unsigned long long>(hi & 0xffff),
                    static_cast<unsigned long long>(lo >> 48),
                    static_cast<unsigned long long>(lo & 0xffffffffffffULL));
  out.append(buf, static_cast<std::size_t>(n));
}

}  // namespace uucs
