#pragma once

#include <cstdint>
#include <string>

namespace uucs {

class Rng;

/// Globally unique identifier the server assigns to each registered client
/// (§2 of the paper). 128 bits, printed as 32 lowercase hex digits grouped
/// UUID-style (8-4-4-4-12) for readability.
struct Guid {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  /// Draws a fresh identifier from `rng`.
  static Guid generate(Rng& rng);

  /// Parses the canonical textual form; throws ParseError on bad input.
  static Guid parse(const std::string& text);

  /// Canonical textual form, e.g. "0011aabb-ccdd-eeff-0123-456789abcdef".
  std::string to_string() const;

  /// Appends the canonical textual form to `out` without allocating a
  /// temporary — the hot-path encoders write one guid per request.
  void append_to(std::string& out) const;

  bool is_nil() const { return hi == 0 && lo == 0; }

  friend bool operator==(const Guid&, const Guid&) = default;
  friend auto operator<=>(const Guid&, const Guid&) = default;
};

}  // namespace uucs
