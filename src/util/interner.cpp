#include "util/interner.hpp"

#include "util/error.hpp"

namespace uucs {

StringInterner& StringInterner::global() {
  static StringInterner pool(/*synchronized=*/true);
  return pool;
}

StringInterner::StringInterner(bool synchronized) : synchronized_(synchronized) {
  strings_.emplace_back();  // id 0 = ""
  index_.emplace(std::string_view(strings_.back()), kEmptyId);
}

std::uint32_t StringInterner::intern(std::string_view s) {
  MaybeLock lock(mu_, synchronized_);
  const auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  UUCS_CHECK_MSG(strings_.size() < 0xffffffffu, "string interner exhausted");
  strings_.emplace_back(s);
  const auto id = static_cast<std::uint32_t>(strings_.size() - 1);
  index_.emplace(std::string_view(strings_.back()), id);
  return id;
}

const std::string& StringInterner::str(std::uint32_t id) const {
  MaybeLock lock(mu_, synchronized_);
  UUCS_CHECK_MSG(id < strings_.size(), "unknown interned string id");
  return strings_[id];
}

std::size_t StringInterner::size() const {
  MaybeLock lock(mu_, synchronized_);
  return strings_.size();
}

}  // namespace uucs
