#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace uucs {

/// Append-only string pool backing the flat run-record representation
/// (testcase/run_record_flat.hpp). Interning maps a string to a dense
/// 32-bit id; the reverse lookup returns a reference that stays valid for
/// the life of the pool (strings are never freed or moved).
///
/// Id 0 is always the empty string, so a zero-initialized flat record reads
/// back as empty fields.
///
/// Two flavors share this class:
///
///  - the process-wide pool (global()) is synchronized — every intern()
///    and str() takes a mutex, so it is safe from any thread but must stay
///    off per-run hot paths;
///  - worker-local pools (the default constructor) take no lock at all.
///    Each engine worker owns one (engine::JobContext::interner()) and is
///    the only thread that ever touches it, so the simulate/record/
///    accumulate hot path runs mutex-free. Ids are pool-relative: an id
///    from one pool means nothing to another, so records interned against
///    a worker pool must be resolved (or re-interned) against that same
///    pool — see DESIGN.md §11 for the merge discipline.
class StringInterner {
 public:
  static constexpr std::uint32_t kEmptyId = 0;

  /// An unsynchronized pool for single-thread ownership (no mutex ever).
  StringInterner() : StringInterner(false) {}

  /// The process-wide synchronized pool.
  static StringInterner& global();

  /// Returns the id for `s`, adding it to the pool on first sight.
  std::uint32_t intern(std::string_view s);

  /// The string for an id previously returned by intern(); the reference
  /// is stable for the pool's lifetime. Throws on an id never handed out.
  const std::string& str(std::uint32_t id) const;

  /// Number of distinct strings pooled (>= 1: the empty string).
  std::size_t size() const;

 private:
  explicit StringInterner(bool synchronized);

  /// Locks mu_ only for the synchronized (global) pool; worker-local pools
  /// skip the mutex entirely.
  class MaybeLock {
   public:
    MaybeLock(std::mutex& mu, bool lock) : mu_(mu), locked_(lock) {
      if (locked_) mu_.lock();
    }
    ~MaybeLock() {
      if (locked_) mu_.unlock();
    }
    MaybeLock(const MaybeLock&) = delete;
    MaybeLock& operator=(const MaybeLock&) = delete;

   private:
    std::mutex& mu_;
    bool locked_;
  };

  const bool synchronized_;
  mutable std::mutex mu_;
  std::deque<std::string> strings_;  ///< stable element addresses
  std::unordered_map<std::string_view, std::uint32_t> index_;  ///< views into strings_
};

}  // namespace uucs
