#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace uucs {

/// Process-global, append-only string pool backing the flat run-record
/// representation (testcase/run_record_flat.hpp). Interning maps a string
/// to a dense 32-bit id; the reverse lookup returns a reference that stays
/// valid for the life of the process (strings are never freed or moved).
///
/// Id 0 is always the empty string, so a zero-initialized flat record reads
/// back as empty fields.
///
/// Thread-safe, but intern() takes a lock — hot paths must pre-intern
/// everything that is constant across their loop (per-user ids, testcase
/// ids and descriptions, well-known metadata keys) and carry only 32-bit
/// ids per record.
class StringInterner {
 public:
  static constexpr std::uint32_t kEmptyId = 0;

  /// The process-wide pool.
  static StringInterner& global();

  /// Returns the id for `s`, adding it to the pool on first sight.
  std::uint32_t intern(std::string_view s);

  /// The string for an id previously returned by intern(); the reference
  /// is stable forever. Throws on an id never handed out.
  const std::string& str(std::uint32_t id) const;

  /// Number of distinct strings pooled (>= 1: the empty string).
  std::size_t size() const;

 private:
  StringInterner();

  mutable std::mutex mu_;
  std::deque<std::string> strings_;  ///< stable element addresses
  std::unordered_map<std::string_view, std::uint32_t> index_;  ///< views into strings_
};

}  // namespace uucs
