#include "util/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/statvfs.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace uucs {

namespace {

void write_fully(int fd, const char* data, std::size_t len, const std::string& path) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw SystemError("journal write " + path + ": " + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
}

void fsync_or_throw(int fd, const std::string& path, std::uint64_t* counter = nullptr) {
  if (::fsync(fd) != 0) {
    throw SystemError("journal fsync " + path + ": " + std::strerror(errno));
  }
  if (counter) ++*counter;
}

std::string read_fd(int fd, const std::string& path) {
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    throw SystemError("journal stat " + path + ": " + std::strerror(errno));
  }
  std::string data(static_cast<std::size_t>(st.st_size), '\0');
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::pread(fd, data.data() + off, data.size() - off,
                              static_cast<off_t>(off));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw SystemError("journal read " + path + ": " + std::strerror(errno));
    }
    if (n == 0) {
      data.resize(off);  // file shrank under us; parse what we have
      break;
    }
    off += static_cast<std::size_t>(n);
  }
  return data;
}

}  // namespace

std::uint32_t Journal::crc32(std::string_view data) { return uucs::crc32(data); }

void Journal::frame_into(std::string& out, std::string_view payload) {
  char header[48];
  const int n = std::snprintf(header, sizeof(header), "UUCSJ %zu %08x\n",
                              payload.size(), uucs::crc32(payload));
  out.append(header, static_cast<std::size_t>(n));
  out.append(payload);
  out.push_back('\n');
}

Journal Journal::open(const std::string& path) {
  Journal j;
  j.path_ = path;
  j.fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (j.fd_ < 0) {
    throw SystemError("journal open " + path + ": " + std::strerror(errno));
  }

  const std::string data = read_fd(j.fd_, path);
  std::size_t off = 0;
  std::size_t good = 0;  // offset just past the last intact frame
  while (off < data.size()) {
    const auto nl = data.find('\n', off);
    if (nl == std::string::npos) break;
    const auto fields = split_ws(std::string_view(data).substr(off, nl - off));
    if (fields.size() != 3 || fields[0] != "UUCSJ") break;
    const auto len = parse_int(fields[1]);
    if (!len || *len < 0) break;
    char* end = nullptr;
    const unsigned long crc = std::strtoul(fields[2].c_str(), &end, 16);
    if (end == nullptr || *end != '\0') break;
    const std::size_t payload_at = nl + 1;
    const std::size_t payload_len = static_cast<std::size_t>(*len);
    if (payload_at + payload_len + 1 > data.size()) break;  // torn tail
    if (data[payload_at + payload_len] != '\n') break;
    // CRC the view first; copy the payload only once it verifies.
    const std::string_view payload =
        std::string_view(data).substr(payload_at, payload_len);
    if (crc32(payload) != static_cast<std::uint32_t>(crc)) break;
    j.entries_.emplace_back(payload);
    off = payload_at + payload_len + 1;
    good = off;
  }

  j.recovery_.entries = j.entries_.size();
  j.recovery_.dropped_bytes = data.size() - good;
  if (j.recovery_.dropped_bytes > 0) {
    if (::ftruncate(j.fd_, static_cast<off_t>(good)) != 0) {
      throw SystemError("journal truncate " + path + ": " + std::strerror(errno));
    }
    fsync_or_throw(j.fd_, path, &j.fsync_count_);
  }
  j.size_bytes_ = good;
  return j;
}

Journal::Journal(Journal&& other) noexcept
    : path_(std::move(other.path_)),
      fd_(other.fd_),
      entries_(std::move(other.entries_)),
      recovery_(other.recovery_),
      size_bytes_(other.size_bytes_),
      fsync_count_(other.fsync_count_),
      batch_buf_(std::move(other.batch_buf_)) {
  other.fd_ = -1;
}

Journal& Journal::operator=(Journal&& other) noexcept {
  if (this != &other) {
    close();
    path_ = std::move(other.path_);
    fd_ = other.fd_;
    entries_ = std::move(other.entries_);
    recovery_ = other.recovery_;
    size_bytes_ = other.size_bytes_;
    fsync_count_ = other.fsync_count_;
    batch_buf_ = std::move(other.batch_buf_);
    other.fd_ = -1;
  }
  return *this;
}

Journal::~Journal() { close(); }

void Journal::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Journal::append(const std::string& payload) { append_batch({payload}); }

void Journal::append_batch(const std::vector<std::string>& payloads) {
  if (payloads.empty()) return;
  UUCS_CHECK_MSG(fd_ >= 0, "journal " + path_ + " is closed");
  // Frame directly into the persistent batch buffer: its capacity is warm
  // after the first few batches, so steady-state group commit performs no
  // allocation between the caller's payloads and the write(2).
  batch_buf_.clear();
  for (const auto& p : payloads) frame_into(batch_buf_, p);
  write_fully(fd_, batch_buf_.data(), batch_buf_.size(), path_);
  fsync_or_throw(fd_, path_, &fsync_count_);
  for (const auto& p : payloads) entries_.push_back(p);
  size_bytes_ += batch_buf_.size();
}

std::uint64_t Journal::free_bytes() const {
  if (fd_ < 0) return ~std::uint64_t{0};
  struct statvfs vfs {};
  if (::fstatvfs(fd_, &vfs) != 0) return ~std::uint64_t{0};
  return static_cast<std::uint64_t>(vfs.f_bavail) *
         static_cast<std::uint64_t>(vfs.f_frsize);
}

bool Journal::repair_tail() noexcept {
  if (fd_ < 0) return false;
  if (::ftruncate(fd_, static_cast<off_t>(size_bytes_)) != 0) return false;
  // A shrinking fsync allocates nothing, so it works even on a full disk;
  // if it still fails the device itself is gone and appending is unsafe.
  if (::fsync(fd_) != 0) return false;
  ++fsync_count_;
  return true;
}

void Journal::compact(const std::vector<std::string>& keep) {
  UUCS_CHECK_MSG(fd_ >= 0, "journal " + path_ + " is closed");
  const std::string tmp = path_ + ".compact";
  const int tfd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (tfd < 0) {
    throw SystemError("journal open " + tmp + ": " + std::strerror(errno));
  }
  std::string buf;
  for (const auto& p : keep) frame_into(buf, p);
  try {
    write_fully(tfd, buf.data(), buf.size(), tmp);
    fsync_or_throw(tfd, tmp, &fsync_count_);
  } catch (...) {
    ::close(tfd);
    ::unlink(tmp.c_str());
    throw;
  }
  ::close(tfd);
  if (::rename(tmp.c_str(), path_.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    throw SystemError("journal rename " + tmp + ": " + std::strerror(err));
  }
  fsync_parent_dir(path_);
  // The old fd still points at the replaced inode; reopen the new file.
  ::close(fd_);
  fd_ = ::open(path_.c_str(), O_RDWR | O_APPEND | O_CLOEXEC);
  if (fd_ < 0) {
    throw SystemError("journal reopen " + path_ + ": " + std::strerror(errno));
  }
  entries_ = keep;
  size_bytes_ = buf.size();
}

GroupCommitJournal::GroupCommitJournal(Journal& journal)
    : GroupCommitJournal(journal, Config()) {}

GroupCommitJournal::GroupCommitJournal(Journal& journal, Config config)
    : journal_(journal), config_(config) {
  if (config_.max_batch_entries == 0) config_.max_batch_entries = 1;
  committer_ = std::thread([this] { commit_loop(); });
}

GroupCommitJournal::~GroupCommitJournal() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  state_cv_.notify_all();
  if (committer_.joinable()) committer_.join();
}

void GroupCommitJournal::append_async(std::vector<std::string> entries,
                                      std::function<void(bool)> on_durable) {
  // Empty appends are ordering barriers: they ride the pending queue and
  // complete only once everything queued before them is durable. The ingest
  // plane routes duplicate-acks through here so an "already stored" response
  // can never overtake the fsync of the batch holding the original entry.
  bool reject = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const Health h = health_.load(std::memory_order_relaxed);
    if (h != Health::kOk || stopping_) {
      // Degraded or broken: nothing queued now can become durable before
      // the parked backlog replays, so fail the ack immediately — the
      // caller answers with a typed DEGRADED rejection (or stays silent and
      // lets the client time out) instead of trusting a lost write.
      // The payloads themselves were already applied in memory by dispatch
      // (the ingest plane gates writes pre-dispatch while degraded, but a
      // health flip can race that check), so they join the parked backlog:
      // recovery replays them before any ack can refer to them again.
      ++stats_.rejected_appends;
      if (h == Health::kDegraded && !stopping_) {
        for (std::string& e : entries) parked_.push_back(std::move(e));
        stats_.parked_entries = parked_.size();
      }
      reject = true;
    } else {
      ++stats_.async_appends;
      pending_entries_ += entries.size();
      pending_.push_back({std::move(entries), std::move(on_durable)});
    }
  }
  if (reject) {
    if (on_durable) on_durable(false);
    return;
  }
  work_cv_.notify_one();
}

void GroupCommitJournal::append_sync(std::vector<std::string> entries) {
  if (entries.empty()) return;
  std::mutex done_mu;
  std::condition_variable done_cv;
  bool done = false;
  bool ok = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.sync_appends;
  }
  append_async(std::move(entries), [&](bool durable) {
    std::lock_guard<std::mutex> lock(done_mu);
    done = true;
    ok = durable;
    done_cv.notify_all();
  });
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return done; });
  if (!ok) {
    throw SystemError("group commit failed for journal " + journal_.path());
  }
}

void GroupCommitJournal::flush() {
  std::unique_lock<std::mutex> lock(mu_);
  work_cv_.notify_all();
  // Degraded mode keeps pending_ empty (appends are rejected at the door),
  // so flush() does not wait out a recovery — parked entries were never
  // acked and owe nobody a durability barrier.
  state_cv_.wait(lock, [&] {
    return (pending_.empty() && !committing_) || stopping_;
  });
}

void GroupCommitJournal::with_exclusive(const std::function<void()>& fn) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    ++exclusive_waiters_;
    work_cv_.notify_all();
    // Wait until the backlog is durable and the commit thread is parked —
    // only then is the underlying Journal safe to touch (compact swaps the
    // fd out from under any in-flight append otherwise).
    state_cv_.wait(lock, [&] {
      return (pending_.empty() && !committing_ && !exclusive_active_) ||
             stopping_;
    });
    --exclusive_waiters_;
    if (stopping_) return;
    exclusive_active_ = true;
  }
  try {
    fn();
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    exclusive_active_ = false;
    work_cv_.notify_all();
    state_cv_.notify_all();
    throw;
  }
  std::lock_guard<std::mutex> lock(mu_);
  exclusive_active_ = false;
  work_cv_.notify_all();
  state_cv_.notify_all();
}

GroupCommitJournal::Stats GroupCommitJournal::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t GroupCommitJournal::effective_batch_cap() const {
  if (!slow_mode_) return config_.max_batch_entries;
  const std::size_t factor = std::max<std::size_t>(1, config_.widened_batch_factor);
  return config_.max_batch_entries * factor;
}

std::uint32_t GroupCommitJournal::effective_wait_us() const {
  if (!slow_mode_) return config_.max_wait_us;
  return std::max(config_.max_wait_us, config_.widened_max_wait_us);
}

void GroupCommitJournal::note_batch_seconds(double seconds) {
  if (config_.slow_fsync_threshold_s <= 0.0) return;
  fsync_ewma_s_ = fsync_ewma_s_ <= 0.0 ? seconds
                                       : 0.8 * fsync_ewma_s_ + 0.2 * seconds;
  if (seconds > config_.slow_fsync_threshold_s) ++stats_.slow_fsyncs;
  // Hysteresis: widen above the threshold, narrow only once the device is
  // comfortably fast again, so the regime does not flap per batch.
  if (!slow_mode_ && fsync_ewma_s_ > config_.slow_fsync_threshold_s) {
    slow_mode_ = true;
    widened_flag_.store(true, std::memory_order_release);
  } else if (slow_mode_ && fsync_ewma_s_ < config_.slow_fsync_threshold_s / 2.0) {
    slow_mode_ = false;
    widened_flag_.store(false, std::memory_order_release);
  }
}

bool GroupCommitJournal::write_batch(const std::vector<std::string>& payloads,
                                     bool* broken, std::string* why,
                                     double* seconds) {
  // Injected fault first: a simulated ENOSPC/EIO fails the attempt without
  // touching the file — exactly the shape of the headroom check below, so
  // the recovery path the chaos suite exercises is the production one.
  JournalFault fault;
  if (config_.fault_hook) fault = config_.fault_hook();
  if (fault.stall_s > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(fault.stall_s));
  }
  const auto t0 = std::chrono::steady_clock::now();
  if (fault.err != 0) {
    *why = std::string("injected ") + std::strerror(fault.err);
    *seconds = fault.stall_s;
    return false;
  }
  if (config_.min_free_bytes > 0) {
    std::size_t need = 0;
    for (const auto& p : payloads) need += p.size() + 32;  // frame overhead
    const std::uint64_t free = journal_.free_bytes();
    if (free < config_.min_free_bytes + need) {
      *why = strprintf("journal disk headroom %llu below floor %llu",
                       static_cast<unsigned long long>(free),
                       static_cast<unsigned long long>(config_.min_free_bytes));
      return false;
    }
  }
  if (payloads.empty()) return true;  // recovery probe with nothing parked
  try {
    journal_.append_batch(payloads);  // one buffered write + one fsync
  } catch (const std::exception& e) {
    *why = e.what();
    // A failed write may have left torn bytes past the last good frame;
    // truncate them away so the file stays appendable once space returns.
    if (!journal_.repair_tail()) *broken = true;
    return false;
  }
  *seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                 .count() +
             fault.stall_s;
  return true;
}

void GroupCommitJournal::attempt_recovery(std::unique_lock<std::mutex>& lock) {
  std::vector<std::string> parked;
  parked.swap(parked_);
  committing_ = true;
  lock.unlock();

  bool broken = false;
  std::string why;
  double seconds = 0.0;
  // Parked entries replay FIRST, before any new append can queue: requests
  // whose state they carry were applied in memory, so a later duplicate-ack
  // barrier must find them already on disk.
  const bool ok = write_batch(parked, &broken, &why, &seconds);

  lock.lock();
  committing_ = false;
  if (ok) {
    if (!parked.empty()) {
      ++stats_.batches;
      stats_.entries += parked.size();
      stats_.largest_batch = std::max(stats_.largest_batch, parked.size());
      note_batch_seconds(seconds);
    }
    if (parked_.empty()) {
      health_.store(Health::kOk, std::memory_order_release);
      ++stats_.recoveries;
      stats_.parked_entries = 0;
    } else {
      // An append raced the probe and parked fresh entries meanwhile; stay
      // degraded so the next recheck replays them before service resumes.
      stats_.parked_entries = parked_.size();
    }
  } else {
    // Keep queue order: the probed batch is older than anything parked
    // while the probe ran.
    for (std::string& e : parked_) parked.push_back(std::move(e));
    parked_ = std::move(parked);
    stats_.parked_entries = parked_.size();
    if (broken) health_.store(Health::kBroken, std::memory_order_release);
  }
  state_cv_.notify_all();
  work_cv_.notify_all();
}

void GroupCommitJournal::commit_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (stopping_ && pending_.empty()) return;
    const Health h = health_.load(std::memory_order_relaxed);
    if (h == Health::kDegraded && !stopping_) {
      // Appends are rejected at the door while degraded, so the only job is
      // probing the disk for recovery at the recheck cadence.
      work_cv_.wait_for(
          lock,
          std::chrono::milliseconds(
              std::max<std::uint32_t>(1, config_.recheck_interval_ms)),
          [&] { return stopping_; });
      if (stopping_ || exclusive_active_) continue;
      attempt_recovery(lock);
      continue;
    }
    if (h == Health::kBroken) {
      // Terminal: serve rejections until shutdown.
      work_cv_.wait(lock, [&] { return stopping_; });
      continue;
    }
    // Exclusive *waiters* do not pause the loop — they are waiting for the
    // backlog to drain, so the loop must keep committing (the linger window
    // below is skipped to get there faster). Only an *active* exclusive
    // section parks it.
    work_cv_.wait(lock, [&] {
      return stopping_ || (!pending_.empty() && !exclusive_active_);
    });
    if (pending_.empty()) {
      if (stopping_) return;
      continue;  // woken for an exclusive section; state_cv_ handles it
    }
    // Group window: linger briefly for stragglers so concurrent syncs
    // coalesce, but never past the batch cap and never when shutting down.
    // A slow device widens both knobs (note_batch_seconds) so the fsync
    // cadence drops instead of the ack queue growing without bound.
    const std::size_t batch_cap = effective_batch_cap();
    const std::uint32_t wait_us = effective_wait_us();
    if (wait_us > 0 && pending_entries_ < batch_cap && !stopping_) {
      work_cv_.wait_for(lock, std::chrono::microseconds(wait_us), [&] {
        return stopping_ || pending_entries_ >= batch_cap ||
               exclusive_waiters_ > 0;
      });
    }
    std::vector<Pending> batch;
    batch.swap(pending_);
    pending_entries_ = 0;
    committing_ = true;
    const bool widened = slow_mode_;
    lock.unlock();

    std::vector<std::string> payloads;
    std::size_t count = 0;
    for (const Pending& p : batch) count += p.entries.size();
    payloads.reserve(count);
    for (Pending& p : batch) {
      for (std::string& e : p.entries) payloads.push_back(std::move(e));
    }
    bool ok = true;
    bool broken = false;
    std::string why;
    double seconds = 0.0;
    if (!payloads.empty()) {
      ok = write_batch(payloads, &broken, &why, &seconds);
    }
    // Record the batch before releasing any ack, so an observer woken by an
    // ack never sees stats that lag the durability it was just promised.
    lock.lock();
    std::vector<Pending> stranded;  ///< queued during the failed attempt
    if (!ok) {
      ++stats_.failed_batches;
      if (broken) {
        health_.store(Health::kBroken, std::memory_order_release);
        log_error("journal", "group commit broken (unrepairable): " + why);
      } else {
        if (health_.load(std::memory_order_relaxed) == Health::kOk) {
          ++stats_.degraded_spells;
          log_warn("journal", "group commit degraded: " + why);
        }
        health_.store(Health::kDegraded, std::memory_order_release);
        // Park the failed batch's payloads: they replay ahead of everything
        // else on recovery, restoring "applied in memory implies on disk"
        // before any new ack can be released.
        for (std::string& p : payloads) parked_.push_back(std::move(p));
        stats_.parked_entries = parked_.size();
      }
      // Appends that slipped in while this batch was failing are failed like
      // any append arriving after the health flip — but their payloads were
      // already applied in memory by dispatch, so they must be parked for
      // the recovery replay too, not dropped.
      stranded.swap(pending_);
      stats_.rejected_appends += stranded.size();
      pending_entries_ = 0;
      if (!broken) {
        for (Pending& p : stranded) {
          for (std::string& e : p.entries) parked_.push_back(std::move(e));
        }
        stats_.parked_entries = parked_.size();
      }
    } else if (count > 0) {  // barrier-only batches touched no disk
      ++stats_.batches;
      stats_.entries += count;
      stats_.largest_batch = std::max(stats_.largest_batch, count);
      if (widened) ++stats_.widened_batches;
      note_batch_seconds(seconds);
    }
    lock.unlock();

    // Acks release strictly after the batch hit disk (or failed).
    for (Pending& p : batch) {
      if (p.on_durable) p.on_durable(ok);
    }
    for (Pending& p : stranded) {
      if (p.on_durable) p.on_durable(false);
    }

    lock.lock();
    committing_ = false;
    state_cv_.notify_all();
    if (stopping_ && pending_.empty()) return;
  }
}

}  // namespace uucs
